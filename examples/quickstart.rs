//! Quickstart: map a small SNN onto RESPARC, simulate one classification
//! and compare against the digital CMOS baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small MLP (like a scaled-down digit classifier).
    let topology = Topology::mlp(256, &[128, 64, 10]);
    println!(
        "network: {} layers, {} neurons, {} synapses",
        topology.layer_count(),
        topology.neuron_count(),
        topology.synapse_count()
    );

    // Map it onto the paper's RESPARC-64 machine.
    let mapping = Mapper::new(ResparcConfig::resparc_64()).map(&topology)?;
    let report = mapping.report();
    println!(
        "mapped onto {} MCAs across {} mPEs in {} NeuroCell(s); overall utilization {:.0}%",
        report.mcas_used,
        report.mpes_used,
        report.ncs_used,
        100.0 * mapping.overall_utilization()
    );

    // Simulate a classification under a typical activity profile.
    let mut counts = vec![topology.input_count()];
    counts.extend(topology.layers().iter().map(|l| l.output_count()));
    let profile = ActivityProfile::uniform(&counts, 0.2, 0.1);
    let resparc = Simulator::new(&mapping).run(&profile);
    println!(
        "RESPARC:  {:>10.3} per classification, {:>8.1} us  ({} cycles/timestep)",
        resparc.total_energy(),
        resparc.latency.microseconds(),
        resparc.timestep_cycles
    );

    // Same workload on the CMOS baseline.
    let cmos = CmosSimulator::new(CmosConfig::paper_baseline()).run(&topology, &profile);
    println!(
        "CMOS:     {:>10.3} per classification, {:>8.1} us",
        cmos.total_energy(),
        cmos.latency.microseconds()
    );
    println!(
        "RESPARC wins: {:.0}x energy, {:.0}x speed",
        cmos.total_energy() / resparc.total_energy(),
        cmos.latency.nanoseconds() / resparc.latency.nanoseconds()
    );
    Ok(())
}
