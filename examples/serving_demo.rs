//! Online serving walkthrough: open-loop traffic against one RESPARC-64
//! pool, priced like a service — tail latency, goodput, SLO violations
//! and the power-gated energy bill.
//!
//! Three request classes (premium / standard / bulk, 2/1/4-NC MLPs at
//! 4:2:1 bus weights) receive a bursty arrival trace at ~3x the
//! fabric's round rate. The demo runs the same trace three ways:
//!
//! 1. static weights on an always-powered pool (the PR-4/5 discipline),
//! 2. static weights with idle NCs power-gated to 10% leakage,
//! 3. the SLO-adaptive controller on the gated pool — premium's weight
//!    escalates whenever a completion misses its SLO, and the
//!    work-conserving bus means the schedule and energy stay identical
//!    while the tail moves.
//!
//! Run with: `cargo run --release --example serving_demo`

use resparc_suite::prelude::*;

fn print_report(tag: &str, r: &ServingReport) {
    println!("--- {tag}");
    println!(
        "  arrivals {}  completed {}  rejected {}  preempted {}  rounds {}",
        r.arrivals, r.completed, r.rejected, r.preempted, r.rounds
    );
    println!(
        "  p50 {:.1} us   p95 {:.1} us   p99 {:.1} us   goodput {:.0}/ms   violations {:.0}%",
        r.p50.microseconds(),
        r.p95.microseconds(),
        r.p99.microseconds(),
        1e-3 * r.goodput,
        100.0 * r.violation_rate()
    );
    for c in &r.classes {
        println!(
            "    {:<9} p50 {:>6.1} us  p99 {:>6.1} us  viol {}  weight@end {}",
            c.name,
            c.p50.microseconds(),
            c.p99.microseconds(),
            c.slo_violations,
            c.final_weight
        );
    }
    println!(
        "  energy: dynamic {:.1} nJ + occupied leak {:.1} nJ + idle leak {:.1} nJ \
         = {:.1} nJ (always-on bill {:.1} nJ, saving {:.0}%)",
        r.dynamic_energy.nanojoules(),
        r.occupied_leakage.nanojoules(),
        r.gated_idle_leakage.nanojoules(),
        r.pool_energy().nanojoules(),
        r.ungated_pool_energy().nanojoules(),
        100.0 * r.gating_saving()
    );
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pool_cfg = ResparcConfig::resparc_64();
    println!(
        "Online serving on RESPARC-64 ({} NeuroCells), bursty open-loop traffic\n",
        pool_cfg.physical_ncs
    );

    let nets = vec![
        Network::random(Topology::mlp(144, &[576, 576, 10]), 90, 1.0), // 2 NCs
        Network::random(Topology::mlp(144, &[96, 10]), 91, 1.0),       // 1 NC
        Network::random(Topology::mlp(144, &[576, 576, 576, 10]), 92, 1.0), // 4 NCs
    ];
    let classes = vec![
        ServiceClass::new("premium", 2, 35_000.0).with_weight(4),
        ServiceClass::new("standard", 3, 250_000.0).with_weight(2),
        ServiceClass::new("bulk", 4, 1_000_000.0).with_weight(1),
    ];
    let sweep = SweepConfig::rate(20, 0.7, 7);
    let spec = ServingSpec::new(18, 3_000.0, ArrivalProcess::Bursty { burst: 6 }, 7);
    let run = |spec: &ServingSpec| {
        serving_sweep(
            &nets,
            &classes,
            spec,
            &sweep,
            &pool_cfg,
            PackingPolicy::BestFit,
        )
    };

    let ungated = run(&spec.clone().with_idle_gating(1.0))?;
    print_report("static 4:2:1 weights, always-powered pool", &ungated);

    let gated = run(&spec)?;
    print_report("static 4:2:1 weights, idle NCs gated to 10%", &gated);
    assert_eq!(gated.outcomes, ungated.outcomes, "gating never reschedules");

    let adaptive = run(&spec
        .clone()
        .with_qos(QosPolicy::Adaptive { max_weight: 64 }))?;
    print_report("SLO-adaptive weights, gated pool", &adaptive);
    assert_eq!(adaptive.rounds, gated.rounds, "the bus is work-conserving");

    let (s, a) = (&gated.classes[0], &adaptive.classes[0]);
    println!(
        "premium under the controller: p99 {:.2} us -> {:.2} us, weight 4 -> {} \
         (same rounds, same energy; standard absorbs the wait)",
        s.p99.microseconds(),
        a.p99.microseconds(),
        a.final_weight
    );
    Ok(())
}
