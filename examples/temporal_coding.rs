//! Temporal coding as a workload: the same labelled set presented under
//! rate, TTFS and burst coding, priced by the trace-driven event
//! simulator — the accuracy-vs-energy trade-off the stationary simulator
//! structurally cannot run (paper §3.2's event-driven fabric is exactly
//! what makes sparse temporal codes cheap).
//!
//! Run with: `cargo run --release --example temporal_coding`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small trained MLP, Diehl-normalized for spiking operation.
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, 3);
    let train = gen.labelled_set(200, 0);
    let mut tcfg = TrainConfig::quick_test();
    tcfg.epochs = 15;
    let mut net = train_mlp(144, &[32, 10], &train, &tcfg);
    let calib: Vec<Vec<f32>> = train.iter().take(24).map(|(x, _)| x.clone()).collect();
    normalize_for_snn(&mut net, &calib, 0.99);
    let test = gen.labelled_set(32, 9_000);

    let steps = 40usize;
    let mapping =
        Mapper::new(ResparcConfig::resparc_64().with_timesteps(steps as u32)).map_network(&net)?;
    let sweep = SweepConfig::rate(steps, 0.8, 7);

    // One raster per code for the first stimulus, to show the shapes.
    let (x0, _) = &test[0];
    for encoding in [
        Encoding::Rate,
        Encoding::Ttfs,
        Encoding::Burst {
            max_burst: 8,
            gap: 2,
        },
    ] {
        let raster = encoding.encode(sweep.peak_rate, x0, steps, sweep.sample_seed(0));
        println!(
            "{encoding:<22} input spikes over {steps} steps: {:>5}  (zero 64-bit packets: {:.0}%)",
            raster.total_spikes(),
            100.0 * raster.zero_packet_fraction(64),
        );
    }

    // The full comparison: accuracy + energy per inference per code,
    // every number measured by replaying actual spike traces through the
    // mapped fabric's event simulator.
    println!("\nEncoding sweep over {} labelled samples:", test.len());
    println!(
        "{:<22} {:>9} {:>12} {:>15} {:>13} {:>13}",
        "encoding", "accuracy", "E/inf", "comm+crossbar", "latency", "active steps"
    );
    let reports = encoding_energy_sweep(
        &net,
        &mapping,
        &test,
        &sweep,
        &[
            Encoding::Rate,
            Encoding::RegularRate,
            Encoding::Ttfs,
            Encoding::Burst {
                max_burst: 8,
                gap: 2,
            },
        ],
    );
    for (encoding, report) in &reports {
        // Re-derive the mean active-step count from one representative
        // trace (the sweep itself reports the energy means).
        let raster = encoding.encode(sweep.peak_rate, x0, steps, sweep.sample_seed(0));
        let (_, trace) = net.spiking().run_traced(&raster);
        let event = EventSimulator::new(&mapping).run(&trace);
        println!(
            "{:<22} {:>8.1}% {:>9.2} nJ {:>12.2} nJ {:>10.2} us {:>10}/{steps}",
            encoding.to_string(),
            100.0 * report.accuracy(),
            report.mean_total_energy().nanojoules(),
            report.mean_comm_crossbar_energy().nanojoules(),
            report.mean_latency.microseconds(),
            event.active_steps,
        );
    }

    let rate = &reports[0].1;
    let ttfs = &reports[2].1;
    println!(
        "\nTTFS moves {:.1}x less comm+crossbar energy than rate coding at matched steps\n\
         (one spike per input instead of ~peak_rate x intensity x steps) — the trade-off\n\
         is accuracy: thresholds balanced for rate input underdrive on single spikes.",
        rate.mean_comm_crossbar_energy() / ttfs.mean_comm_crossbar_energy()
    );
    Ok(())
}
