//! End-to-end digit-recognition pipeline: train an ANN offline, convert
//! it to a spiking network (Diehl-style balancing), quantize to the
//! paper's 4-bit devices, check spiking accuracy, then map and cost it
//! on RESPARC.
//!
//! Run with: `cargo run --release --example mnist_pipeline`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic MNIST-like data (16x16 for a fast demo).
    let gen = SyntheticImages::new(DatasetKind::Mnist, 16, 42);
    let train = gen.labelled_set(400, 0);
    let test = gen.labelled_set(80, 9_000);

    // 2. Offline supervised training (no biases — crossbar-compatible).
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 30;
    let mut net = train_mlp(256, &[64, 10], &train, &cfg);
    let ann = analog_accuracy_sweep(&net, &test);
    println!("ANN accuracy: {:.1}%", 100.0 * ann.accuracy());

    // 3. ANN -> SNN conversion + 4-bit weight discretization.
    let calib: Vec<Vec<f32>> = train.iter().take(32).map(|(x, _)| x.clone()).collect();
    normalize_for_snn(&mut net, &calib, 0.99);
    let (snn, rms) = quantize_network(&net, Precision::paper_default());
    println!("quantized to 4 bits (per-layer RMS error {rms:?})");

    // 4. Spiking accuracy over 80 timesteps of Poisson input — a batched
    // sweep on the network's compiled kernels, parallel across stimuli.
    let sweep = SweepConfig::rate(80, 0.8, 0);
    let snn_report = spiking_accuracy_sweep(&snn, &test, &sweep);
    println!(
        "SNN accuracy (4-bit, 80 steps): {:.1}%",
        100.0 * snn_report.accuracy()
    );

    // 5. Map the trained network and report hardware cost.
    let mapping = Mapper::new(ResparcConfig::resparc_64()).map_network(&snn)?;
    let profile = ActivityProfile::uniform(&[256, 64, 10], 0.2, 0.1);
    let report = Simulator::new(&mapping).run(&profile);
    println!(
        "on RESPARC-64: {} MCAs, {:.3} per classification, {:.2} us",
        mapping.report().mcas_used,
        report.total_energy(),
        report.latency.microseconds()
    );
    Ok(())
}
