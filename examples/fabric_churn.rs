//! Dynamic fabric scheduling walkthrough: tenants arriving, queueing,
//! departing — and the pool defragmenting itself to admit through
//! fragmentation — while replay traffic is in flight.
//!
//! The demo drives a `FabricScheduler` round by round over a RESPARC-64
//! pool with a `Defragment` packing policy: eight 2-NC tenants fill the
//! pool, two depart early leaving non-adjacent holes, and a 4-NC
//! request that no contiguous hole can hold is admitted anyway after
//! compaction. Each round's residents replay through the
//! `SharedEventSimulator` under weighted round-robin bus arbitration,
//! so the printout also shows who absorbs the bus contention.
//! `churn_sweep` then runs the same schedule end to end against the
//! static co-resident batching baseline.
//!
//! Run with: `cargo run --release --example fabric_churn`

use resparc_suite::prelude::*;
use resparc_suite::resparc_workloads::churn_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ResparcConfig::resparc_64();
    println!(
        "FabricScheduler over RESPARC-64: {} physical NeuroCells, {:?} packing\n",
        cfg.physical_ncs,
        PackingPolicy::Defragment
    );

    // Eight 2-NC tenants (t0/t2 depart after one round), then a 4-NC
    // request that must wait for compaction.
    let mut nets: Vec<Network> = (0..8u64)
        .map(|s| Network::random(Topology::mlp(144, &[576, 576, 10]), 40 + s, 1.0))
        .collect();
    nets.push(Network::random(
        Topology::mlp(144, &[576, 576, 576, 10]),
        99,
        1.0,
    ));
    let traces: Vec<SpikeTrace> = nets
        .iter()
        .map(|net| {
            let stimulus: Vec<f32> = (0..144).map(|i| (i % 7) as f32 / 7.0).collect();
            let raster = RegularEncoder::new(0.8).encode(&stimulus, 15);
            net.spiking().run_traced(&raster).1
        })
        .collect();

    // --- Round-by-round churn ----------------------------------------
    let pool = FabricPool::new(cfg.clone()).with_policy(PackingPolicy::Defragment);
    let mut sched = FabricScheduler::new(pool);
    for (i, net) in nets.iter().enumerate().take(8) {
        let rounds = if i == 0 || i == 2 { 1 } else { 3 };
        sched.submit(net, &format!("t{i}"), rounds, 1)?;
    }
    sched.submit(&nets[8], "wide-4nc", 2, 4)?; // heavier bus weight, too

    while !sched.is_idle() {
        let round = sched.round();
        let residents = sched.begin_round();
        let pairs: Vec<(TenantId, &SpikeTrace)> = residents
            .iter()
            .map(|st| (st.tenant, &traces[st.request.index() as usize]))
            .collect();
        let weights: Vec<u32> = residents.iter().map(|st| st.weight).collect();
        let report = SharedEventSimulator::new(sched.pool()).run_weighted(&pairs, &weights);
        println!(
            "round {round}: {} resident ({} queued), {:>2}/{} NCs busy, makespan {:.2} us, \
             bus busy {:.0}%",
            residents.len(),
            sched.queue_len(),
            sched.pool().occupied_ncs(),
            sched.pool().physical_ncs(),
            report.latency.microseconds(),
            100.0 * report.bus_occupancy(),
        );
        for t in &report.tenants {
            println!(
                "    {:<9} weight {} -> stalled {:>4} bus cycles, perceived latency {:.2} us",
                t.name,
                t.weight,
                t.bus_stall_cycles,
                t.latency.microseconds()
            );
        }
        sched.end_round();
    }
    println!("\ncompleted requests (submission -> admission -> departure):");
    for r in sched.completed() {
        println!(
            "  {:<9} {} NCs  round {} -> {} -> {}  (waited {} round(s))",
            r.name,
            r.ncs,
            r.submitted_round,
            r.admitted_round,
            r.departed_round.expect("completed"),
            r.wait_rounds(),
        );
    }

    // --- The end-to-end comparison -----------------------------------
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, 3);
    let samples = gen.labelled_set(3, 700);
    let mut specs: Vec<ChurnSpec> = (0..8)
        .map(|i| ChurnSpec::new(0, if i == 0 || i == 2 { 1 } else { 4 }))
        .collect();
    specs.push(ChurnSpec::new(0, 2).with_weight(4));

    println!("\ndynamic churn vs static co-resident batches (same traces, per policy):");
    println!(
        "  {:<12} {:>17} {:>13} {:>15} {:>12} {:>8}",
        "policy", "rounds dyn/static", "active util", "wait mean (max)", "E/inf (nJ)", "gain"
    );
    for policy in [PackingPolicy::FirstFit, PackingPolicy::Defragment] {
        let r = churn_sweep(
            &nets,
            &specs,
            &samples,
            &SweepConfig::rate(15, 0.7, 13),
            &cfg,
            policy,
        )?;
        println!(
            "  {:<12} {:>8} / {:<6} {:>5.0}% / {:.0}% {:>9.1} ({}) {:>13.1} {:>7.2}x",
            format!("{policy:?}"),
            r.churned.rounds,
            r.static_baseline.rounds,
            100.0 * r.churned.mean_active_utilization,
            100.0 * r.static_baseline.mean_active_utilization,
            r.churned.mean_queue_wait,
            r.churned.max_queue_wait,
            r.churned.tenancy.energy_per_inference().nanojoules(),
            r.energy_per_inference_gain(),
        );
    }
    println!(
        "\nthe defragmenting scheduler turns a CapacityExhausted rejection into an \
         admission:\nresident tenants slide toward NC 0 (pure coordinate translation, \
         bit-identical replay),\nthe freed tail becomes contiguous, and the wide tenant \
         starts rounds earlier."
    );
    Ok(())
}
