//! Multi-tenant fabric exploration: several mapped SNNs co-resident on
//! one physical NeuroCell pool, their event traces interleaved per
//! timestep — RESPARC's reconfigurability pitch made measurable.
//!
//! The walk-through admits a mixed set of networks to a `FabricPool`
//! (watching the NC free-list fill until admission is rejected with a
//! typed error), replays one round of traces through the
//! `SharedEventSimulator`, and then runs the serial-vs-co-resident
//! comparison `multi_tenant_sweep` builds on top: identical spike
//! traces, identical per-event charges, but the powered pool's leakage
//! amortized over one overlapped makespan instead of a sum of dedicated
//! runs.
//!
//! Run with: `cargo run --release --example tenancy_explorer`

use resparc_suite::prelude::*;
use resparc_suite::resparc_workloads::multi_tenant_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ResparcConfig::resparc_64();
    println!(
        "FabricPool over RESPARC-64: {} physical NeuroCells\n",
        cfg.physical_ncs
    );

    // --- Admission: a mixed set of tenants until the pool is full -----
    let mut pool = FabricPool::new(cfg.clone());
    let tenants: Vec<(&str, Topology)> = vec![
        ("mnist-mlp-small", Topology::mlp(144, &[96, 10])),
        ("svhn-mlp-slice", Topology::mlp(256, &[128, 10])),
        ("keyword-spotter", Topology::mlp(64, &[48, 12])),
        ("mnist-mlp-paper", Topology::mlp(784, &[800, 800, 10])),
        ("anomaly-head", Topology::mlp(96, &[64, 2])),
        ("mnist-mlp-paper-2", Topology::mlp(784, &[800, 800, 10])),
    ];
    for (name, topology) in &tenants {
        match pool.admit_topology(topology, name) {
            Ok(id) => {
                let t = pool.tenant(id).expect("just admitted");
                println!(
                    "  admitted {name:<18} -> NCs {:>2}..{:<2} ({} mPEs, {} MCAs)   free: {}/{}",
                    t.first_nc(),
                    t.end_nc(),
                    t.mapping.placement.mpes_used,
                    t.mapping.placement.mcas_used,
                    pool.free_ncs(),
                    pool.physical_ncs(),
                );
            }
            Err(e) => println!("  rejected {name:<18} -- {e}"),
        }
    }
    println!(
        "\npool utilization: {:.0}% of NCs, largest free run {}\n",
        100.0 * pool.utilization(),
        pool.largest_free_run()
    );

    // --- One shared replay round --------------------------------------
    let steps = 30usize;
    let resident: Vec<_> = pool.tenants().to_vec();
    let nets: Vec<Network> = resident
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let counts: Vec<usize> = t
                .mapping
                .partitions
                .iter()
                .map(|p| p.outputs as usize)
                .collect();
            let inputs = t.mapping.partitions[0].inputs as usize;
            Network::random(Topology::mlp(inputs, &counts), 40 + i as u64, 1.0)
        })
        .collect();
    let traces: Vec<SpikeTrace> = nets
        .iter()
        .map(|net| {
            let stimulus: Vec<f32> = (0..net.input_count())
                .map(|i| (i % 7) as f32 / 7.0)
                .collect();
            let raster = RegularEncoder::new(0.8).encode(&stimulus, steps);
            net.spiking().run_traced(&raster).1
        })
        .collect();
    let pairs: Vec<(TenantId, &SpikeTrace)> =
        resident.iter().map(|t| t.id).zip(traces.iter()).collect();
    let shared = SharedEventSimulator::new(&pool).run(&pairs);
    println!(
        "shared replay: {} tenants x {} steps  ->  {:.2} us makespan, bus busy {:.1}% of cycles",
        shared.tenants.len(),
        shared.steps,
        shared.latency.microseconds(),
        100.0 * shared.bus_occupancy(),
    );
    for t in &shared.tenants {
        println!(
            "  {:<18} dynamic {:>9.2} nJ  + leakage share {:>8.2} nJ  ({} active steps)",
            t.name,
            t.energy.total().nanojoules(),
            t.leakage_share.nanojoules(),
            t.active_steps,
        );
    }

    // --- Weighted bus QoS: same replay, tenant 0 gets a 6x bus weight.
    let mut weights = vec![1u32; pairs.len()];
    weights[0] = 6;
    let weighted = SharedEventSimulator::new(&pool).run_weighted(&pairs, &weights);
    assert_eq!(
        weighted.latency, shared.latency,
        "the bus is work-conserving"
    );
    println!(
        "\nweighted bus QoS (tenant0 at weight 6, makespan unchanged at {:.2} us):",
        weighted.latency.microseconds()
    );
    for (fair, qos) in shared.tenants.iter().zip(&weighted.tenants) {
        println!(
            "  {:<18} weight {} -> bus stall {:>5} cycles (fair: {:>5}), perceived latency \
             {:.2} us (fair: {:.2})",
            qos.name,
            qos.weight,
            qos.bus_stall_cycles,
            fair.bus_stall_cycles,
            qos.latency.microseconds(),
            fair.latency.microseconds(),
        );
    }

    // --- Defragmenting admission: evict to fragment, admit through it.
    // The three 1-NC tenants at NCs 0..3 and the one at NC 9 leave, so
    // the two big residents pin a 3-NC hole and a 1-NC hole apart.
    let mut frag = pool.clone().with_policy(PackingPolicy::Defragment);
    let leavers: Vec<TenantId> = [0usize, 1, 2, 4]
        .iter()
        .map(|&i| frag.tenants()[i].id)
        .collect();
    for id in leavers {
        frag.evict(id);
    }
    println!(
        "\nafter four departures: {} NCs free but largest contiguous run is {}",
        frag.free_ncs(),
        frag.largest_free_run()
    );
    let wide = Topology::mlp(144, &[576, 576, 576, 10]); // 4 NCs
    match frag
        .clone()
        .with_policy(PackingPolicy::FirstFit)
        .admit_topology(&wide, "wide")
    {
        Err(e) => println!("  first-fit rejects the 4-NC tenant -- {e}"),
        Ok(_) => println!("  first-fit unexpectedly admitted"),
    }
    let residents = frag.tenants().len();
    match frag.admit_topology(&wide, "wide") {
        Ok(id) => {
            let t = frag.tenant(id).expect("admitted");
            println!(
                "  defragmenting pool compacts the {} big resident(s) and admits it at NCs \
                 {}..{}",
                residents,
                t.first_nc(),
                t.end_nc()
            );
        }
        Err(e) => println!("  defragmentation could not help -- {e}"),
    }

    // --- Serial vs co-resident, end to end ----------------------------
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, 3);
    let samples = gen.labelled_set(4, 700);
    let sweep_nets: Vec<Network> = (0..3)
        .map(|s| Network::random(Topology::mlp(144, &[96, 10]), 50 + s, 1.0))
        .collect();
    let report = multi_tenant_sweep(&sweep_nets, &samples, &SweepConfig::rate(25, 0.7, 13), &cfg)?;
    println!(
        "\nserial vs co-resident ({} tenants x {} rounds, {:.0}% NC utilization):",
        report.tenants,
        report.rounds,
        100.0 * report.pool_utilization
    );
    println!(
        "  {:<14} {:>12} {:>14} {:>14} {:>12}",
        "discipline", "wall-clock", "pool energy", "E/inference", "EDP (nJ.us)"
    );
    for (name, m) in [("serial", &report.serial), ("co-resident", &report.shared)] {
        println!(
            "  {:<14} {:>9.2} us {:>11.2} nJ {:>11.2} nJ {:>12.4}",
            name,
            m.latency.microseconds(),
            m.pool_energy.nanojoules(),
            m.energy_per_inference().nanojoules(),
            m.energy_delay_product() * 1e-6,
        );
    }
    println!(
        "\nco-residency amortizes the powered pool's idle-NC leakage: {:.2}x lower energy per \
         inference,\n{:.2}x lower batch EDP, at {:.1}% shared-bus occupancy — same spikes, same \
         per-event charges.",
        report.energy_per_inference_gain(),
        report.edp_gain(),
        100.0 * report.mean_bus_occupancy
    );
    Ok(())
}
