//! CNN mapping deep-dive: how sparse convolutional connectivity maps
//! onto crossbars, what input-sharing buys, and why utilization falls
//! with array size (the §3.1.1 story).
//!
//! Run with: `cargo run --release --example cnn_mapping`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = resparc_workloads::mnist_cnn();
    println!(
        "{}: {} layers, {} neurons, {} connections\n",
        bench.name,
        bench.topology.layer_count(),
        bench.topology.neuron_count(),
        bench.topology.synapse_count()
    );

    for mca in [32usize, 64, 128] {
        let mapping = Mapper::new(ResparcConfig::with_mca_size(mca)).map(&bench.topology)?;
        let report = mapping.report();
        println!(
            "MCA {mca}x{mca}: {} crossbars, {} mPEs, {} NCs",
            report.mcas_used, report.mpes_used, report.ncs_used
        );
        for l in &report.layers {
            println!(
                "  layer {}: {:>5} tiles, degree {:>2}, util {:>5.1}%, rows {:>5.1}%, cols {:>5.1}%",
                l.layer,
                l.tiles,
                l.max_degree,
                100.0 * l.mean_utilization,
                100.0 * l.mean_row_occupancy,
                100.0 * l.mean_col_occupancy
            );
        }
    }

    // The input-sharing ablation.
    println!("\nInput-sharing ablation at MCA 64:");
    let with = Mapper::new(ResparcConfig::resparc_64()).map(&bench.topology)?;
    let without = Mapper::new(ResparcConfig::resparc_64())
        .without_input_sharing()
        .map(&bench.topology)?;
    println!(
        "  with sharing:    {:>6} crossbars (util {:.1}%)",
        with.placement.mcas_used,
        100.0 * with.overall_utilization()
    );
    println!(
        "  without sharing: {:>6} crossbars (util {:.1}%)",
        without.placement.mcas_used,
        100.0 * without.overall_utilization()
    );
    Ok(())
}
