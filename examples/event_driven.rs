//! Event-driven computation: how input sparsity translates into energy
//! savings through RESPARC's zero-check logic (the Fig. 13 mechanism).
//!
//! Run with: `cargo run --release --example event_driven`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::mlp(784, &[800, 10]);
    println!("MLP 784-800-10 on RESPARC-64, sweeping input activity:\n");
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "activity", "w/o zero-check", "w/ zero-check", "saving"
    );

    for rate in [0.02f64, 0.05, 0.1, 0.2, 0.4] {
        let profile = ActivityProfile::uniform(&[784, 800, 10], rate, rate / 2.0);
        let run = |event_driven: bool| -> Result<f64, MapError> {
            let cfg = ResparcConfig::resparc_64().with_event_driven(event_driven);
            let mapping = Mapper::new(cfg).map(&topology)?;
            Ok(Simulator::new(&mapping)
                .run(&profile)
                .total_energy()
                .microjoules())
        };
        let without = run(false)?;
        let with = run(true)?;
        println!(
            "{:<10.2} {:>11.2} uJ {:>11.2} uJ {:>8.1}%",
            rate,
            without,
            with,
            100.0 * (1.0 - with / without)
        );
    }

    // Trace-driven replay: meter the fabric on an *actual* spike trace
    // instead of a stationary expectation. A bursty stimulus (all spikes
    // compressed into the first 15 of 50 steps at rate 1.0, matching the
    // uniform train's 0.3 × 50 mean) has the same mean rate as a uniform
    // one, but only the event simulator sees the silent tail.
    println!("\nTrace-driven event simulation (same mean rate, bursty vs uniform):");
    let net = Network::random(Topology::mlp(784, &[800, 10]), 7, 1.0);
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(50)).map_network(&net)?;
    let stimulus: Vec<f32> = (0..784).map(|i| ((i % 5) as f32) / 5.0).collect();

    let enc = RegularEncoder::new(0.3);
    let uniform = enc.encode(&stimulus, 50);
    let mut bursty = SpikeRaster::new(784);
    let dense = RegularEncoder::new(1.0).encode(&stimulus, 15);
    for step in dense.iter() {
        bursty.push_view(step);
    }
    for _ in 15..50 {
        bursty.push(SpikeVector::new(784));
    }

    for (tag, raster) in [("uniform", &uniform), ("bursty", &bursty)] {
        let (_, trace) = net.spiking().run_traced(raster);
        let event = EventSimulator::new(&mapping).run(&trace);
        // The stationary model sees only the mean rates (all it can
        // represent without the trace's temporal/spatial structure).
        let analytic = ActivityProfile::new(
            (0..trace.boundary_count())
                .map(|b| {
                    BoundaryStats::analytic(
                        trace.boundary(b).neurons(),
                        trace.boundary(b).mean_rate(),
                    )
                })
                .collect(),
        );
        let stationary = Simulator::new(&mapping).run(&analytic);
        println!(
            "  {tag:<8} input rate {:.3}  event {:>8.2} uJ  stationary {:>8.2} uJ \
             (reads skipped: {})",
            trace.input().mean_rate(),
            event.total_energy().microjoules(),
            stationary.total_energy().microjoules(),
            event.layers.iter().map(|l| l.reads_skipped).sum::<u64>(),
        );
    }

    // The spike-accurate view: count skipped crossbar reads directly.
    println!("\nHardware cosim on a small net (spike-accurate zero-check):");
    let net = Network::random(Topology::mlp(24, &[16, 4]), 3, 1.0);
    let mut cfg = ResparcConfig::with_mca_size(16);
    cfg.mca_levels = 1 << 12;
    let mapping = Mapper::new(cfg).with_details().map_network(&net)?;
    let mut hw = HwCore::build(&net, &mapping)?;
    let mut enc = PoissonEncoder::new(0.15, 5);
    let stimulus: Vec<f32> = (0..24).map(|i| if i < 6 { 0.9 } else { 0.0 }).collect();
    let raster = enc.encode(&stimulus, 50);
    for step in raster.iter() {
        hw.step(step);
    }
    println!(
        "  crossbar reads performed: {}, skipped by zero-check: {}",
        hw.reads_performed, hw.reads_skipped
    );
    Ok(())
}
