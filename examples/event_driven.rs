//! Event-driven computation: how input sparsity translates into energy
//! savings through RESPARC's zero-check logic (the Fig. 13 mechanism).
//!
//! Run with: `cargo run --release --example event_driven`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::mlp(784, &[800, 10]);
    println!("MLP 784-800-10 on RESPARC-64, sweeping input activity:\n");
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "activity", "w/o zero-check", "w/ zero-check", "saving"
    );

    for rate in [0.02f64, 0.05, 0.1, 0.2, 0.4] {
        let profile = ActivityProfile::uniform(&[784, 800, 10], rate, rate / 2.0);
        let run = |event_driven: bool| -> Result<f64, MapError> {
            let cfg = ResparcConfig::resparc_64().with_event_driven(event_driven);
            let mapping = Mapper::new(cfg).map(&topology)?;
            Ok(Simulator::new(&mapping)
                .run(&profile)
                .total_energy()
                .microjoules())
        };
        let without = run(false)?;
        let with = run(true)?;
        println!(
            "{:<10.2} {:>11.2} uJ {:>11.2} uJ {:>8.1}%",
            rate,
            without,
            with,
            100.0 * (1.0 - with / without)
        );
    }

    // The spike-accurate view: count skipped crossbar reads directly.
    println!("\nHardware cosim on a small net (spike-accurate zero-check):");
    let net = Network::random(Topology::mlp(24, &[16, 4]), 3, 1.0);
    let mut cfg = ResparcConfig::with_mca_size(16);
    cfg.mca_levels = 1 << 12;
    let mapping = Mapper::new(cfg).with_details().map_network(&net)?;
    let mut hw = HwCore::build(&net, &mapping)?;
    let mut enc = PoissonEncoder::new(0.15, 5);
    let stimulus: Vec<f32> = (0..24).map(|i| if i < 6 { 0.9 } else { 0.0 }).collect();
    let raster = enc.encode(&stimulus, 50);
    for step in raster.iter() {
        hw.step(step);
    }
    println!(
        "  crossbar reads performed: {}, skipped by zero-check: {}",
        hw.reads_performed, hw.reads_skipped
    );
    Ok(())
}
