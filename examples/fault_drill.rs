//! Fault injection and self-healing walkthrough: silicon damage on the
//! compiled kernels, NeuroCell failures mid-replay, and the scheduler's
//! evict-requeue-readmit recovery loop.
//!
//! Part 1 applies seeded [`FaultPlan`]s — stuck-at cells, conductance
//! drift — to a network's compiled kernels as a pure transform and shows
//! what each plan does to the spike traffic (the empty plan is
//! bit-identical to the fault-free path, asserted here). Part 2 drives a
//! `FabricScheduler` round by round while a NeuroCell dies under a
//! resident tenant: the victim is evicted, re-queued at the head and
//! re-admitted on surviving cells, and the pool's health map shows the
//! dead cell routed around. `fault_recovery_drill` then runs the same
//! shape of scenario end to end and prices the recovery.
//!
//! Run with: `cargo run --release --example fault_drill`

use std::sync::Arc;

use resparc_suite::prelude::*;
use resparc_suite::resparc_workloads::{fault_recovery_drill, ChurnSpec, FaultEvent};

/// One row of the 16-cell pool rendered as a health/occupancy map:
/// `#` occupied, `.` healthy free, `x` failed, `q` quarantined.
fn health_map(pool: &FabricPool) -> String {
    let mut cells: Vec<char> = pool
        .nc_health()
        .iter()
        .map(|h| match h {
            NcHealth::Healthy => '.',
            NcHealth::Quarantined => 'q',
            NcHealth::Failed => 'x',
        })
        .collect();
    for t in pool.tenants() {
        for c in cells.iter_mut().skip(t.first_nc()).take(t.nc_count()) {
            *c = '#';
        }
    }
    cells.into_iter().collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: device faults on the compiled kernels ----------------
    let net = Network::random(Topology::mlp(144, &[96, 10]), 7, 1.0);
    let stimulus: Vec<f32> = (0..144).map(|i| (i % 7) as f32 / 7.0).collect();
    let raster = RegularEncoder::new(0.8).encode(&stimulus, 20);

    assert!(
        net.compiled().with_faults(&FaultPlan::none()) == *net.compiled(),
        "the empty plan must leave the kernels bit-identical"
    );
    println!("device faults on a 144-96-10 MLP (20-step regular-rate stimulus):");
    for (label, plan) in [
        ("clean", FaultPlan::none()),
        ("stuck 5%", FaultPlan::stuck_at(7, 0.05)),
        ("stuck 25%", FaultPlan::stuck_at(7, 0.25)),
        ("drift 30%", FaultPlan::none().with_drift(0.3)),
    ] {
        let kernels = Arc::new(net.compiled().with_faults(&plan));
        let (out, trace) = SnnRunner::from_compiled(kernels).run_traced(&raster);
        println!(
            "  {:<9} -> predicted class {}, {:>5} spikes in the trace",
            label,
            out.predicted,
            trace.total_spikes()
        );
    }

    // --- Part 2: a NeuroCell dies under a scheduled tenant ------------
    let cfg = ResparcConfig::resparc_64();
    println!(
        "\nscheduler recovery on RESPARC-64 ({} NeuroCells); NC 0 fails in round 1:",
        cfg.physical_ncs
    );
    let nets = [
        Network::random(Topology::mlp(144, &[576, 576, 576, 576, 10]), 21, 1.0), // 5 NCs
        Network::random(Topology::mlp(144, &[576, 576, 10]), 22, 1.0),           // 2 NCs
        Network::random(Topology::mlp(144, &[576, 576, 10]), 23, 1.0),           // 2 NCs
    ];
    let traces: Vec<SpikeTrace> = nets
        .iter()
        .map(|net| {
            let raster = RegularEncoder::new(0.8).encode(&stimulus, 15);
            net.spiking().run_traced(&raster).1
        })
        .collect();
    let mut sched = FabricScheduler::new(FabricPool::new(cfg.clone()));
    for (i, net) in nets.iter().enumerate() {
        sched.submit(net, &format!("t{i}"), 3, 1)?;
    }
    while !sched.is_idle() {
        let round = sched.round();
        let mut residents = sched.begin_round();
        if round == 1 {
            let victim = sched.fail_nc(0).expect("NC 0 is occupied in round 1");
            residents.retain(|st| st.request != victim);
            println!(
                "    !! NC 0 failed: request {} evicted, re-queued at the head \
                 (its in-flight round is void)",
                victim.index()
            );
        }
        let pairs: Vec<(TenantId, &SpikeTrace)> = residents
            .iter()
            .map(|st| (st.tenant, &traces[st.request.index() as usize]))
            .collect();
        let report = SharedEventSimulator::new(sched.pool()).run(&pairs);
        println!(
            "  round {round}: [{}] {} resident, {} queued, makespan {:.2} us",
            health_map(sched.pool()),
            residents.len(),
            sched.queue_len(),
            report.latency.microseconds(),
        );
        sched.end_round();
    }
    println!("\ncompleted requests (interruptions -> recovery rounds):");
    for r in sched.completed() {
        println!(
            "  t{} {} NCs  served {} round(s), interrupted {}x, {} recovery round(s){}",
            r.request.index(),
            r.ncs,
            r.rounds_served,
            r.interruptions,
            r.recovery_rounds,
            if r.aborted { "  [aborted]" } else { "" },
        );
    }

    // --- Part 3: the end-to-end drill ---------------------------------
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, 3);
    let samples = gen.labelled_set(4, 700);
    let mut drill_nets: Vec<Network> = (0..4u64)
        .map(|s| Network::random(Topology::mlp(144, &[576, 576, 10]), 50 + s, 1.0))
        .collect();
    drill_nets.push(Network::random(
        Topology::mlp(144, &[576, 576, 576, 576, 10]),
        60,
        1.0,
    ));
    let specs: Vec<ChurnSpec> = (0..drill_nets.len())
        .map(|_| ChurnSpec::new(0, 4))
        .collect();
    let r = fault_recovery_drill(
        &drill_nets,
        &specs,
        &samples,
        &SweepConfig::rate(15, 0.7, 13),
        &cfg,
        PackingPolicy::Defragment,
        &[FaultEvent::new(1, 0), FaultEvent::new(2, 10)],
    )?;
    println!(
        "\nfault_recovery_drill (4x 2-NC + 1x 5-NC, 4 rounds each; NCs 0 and 10 die):\n  \
         {} rounds, {} completed / {} aborted, {} interruption(s), mean recovery \
         {:.1} round(s),\n  {} replay(s) lost, utilization {:.0}% before -> {:.0}% after \
         the first fault,\n  {:.1} nJ/inference over {} credited replays",
        r.rounds,
        r.completed,
        r.aborted,
        r.total_interruptions,
        r.mean_recovery_rounds,
        r.lost_replays,
        100.0 * r.utilization_before,
        100.0 * r.utilization_after,
        r.dynamic_energy.nanojoules() / r.inferences.max(1) as f64,
        r.inferences,
    );
    println!(
        "\nthe fabric self-heals: dead cells are fenced out of the free list, resident\n\
         victims lose only their in-flight round, and the defragmenting admission path\n\
         re-packs the survivors around the damage."
    );
    Ok(())
}
