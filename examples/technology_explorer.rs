//! Technology-aware crossbar sizing: which MCA sizes does each device
//! technology support, and which size maps a given SNN most efficiently?
//!
//! Run with: `cargo run --release --example technology_explorer`

use resparc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = 0.15; // acceptable combined non-ideality error

    println!("Feasible MCA sizes per technology (error budget {budget}):");
    for dev in [
        MemristorSpec::ag_si(),
        MemristorSpec::pcm(),
        MemristorSpec::spintronic(),
    ] {
        let report = sizing_report(&dev, budget);
        print!("  {:<11}", report.technology);
        for (size, err) in &report.errors {
            print!(" {size}:{:.3}", err);
        }
        println!("  -> max feasible: {:?}", report.max_feasible);
    }

    // Sweep the MNIST benchmarks across MCA sizes and report energy.
    for bench in [
        resparc_workloads::mnist_mlp(),
        resparc_workloads::mnist_cnn(),
    ] {
        println!("\n{} energy vs MCA size:", bench.name);
        let profile = bench.activity_profile(&[16, 32, 64, 128], 7);
        for mca in [32usize, 64, 128] {
            let mapping = Mapper::new(ResparcConfig::with_mca_size(mca)).map(&bench.topology)?;
            let report = Simulator::new(&mapping).run(&profile);
            let warn = mapping
                .technology_warning
                .as_deref()
                .map(|_| "  [exceeds reliable size!]")
                .unwrap_or("");
            println!(
                "  MCA {mca:>3}: {:>12.3}  ({} crossbars, util {:.0}%){warn}",
                report.total_energy(),
                mapping.report().mcas_used,
                100.0 * mapping.overall_utilization()
            );
        }
    }
    Ok(())
}
