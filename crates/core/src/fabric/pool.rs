//! The physical NeuroCell inventory and its admission policies.
//!
//! A [`FabricPool`] tracks per-NC ownership of one chip. Admission maps
//! the candidate network once at origin 0 (the *probe*), asks the
//! configured [`PackingPolicy`] for a contiguous free run of the probe's
//! NC footprint, and translates the probe into the chosen run — a pure
//! coordinate shift, so the expensive partitioning runs exactly once per
//! admission. Eviction restores the free list exactly (property-tested
//! in `tests/proptests.rs`).
//!
//! Every NC additionally carries an [`NcHealth`] state. A *free* NC is
//! one that is both unoccupied **and** healthy: quarantined
//! ([`FabricPool::drain_nc`]) and failed ([`FabricPool::fail_nc`])
//! cells are invisible to free-run admission and to
//! [`FabricPool::largest_free_run`], and
//! [`FabricPool::defragment`] compacts resident tenants *around* them
//! (tenants pack into the earliest healthy segments instead of one
//! leftmost prefix). Taking out an **occupied** cell evicts the
//! resident tenant — its whole run frees — and returns it so a
//! scheduler can re-queue it for recovery.
//!
//! # Heterogeneous inventories
//!
//! A pool built with [`FabricPool::heterogeneous`] carries a per-NC
//! **size class** — the MCA dimension its crossbars were fabricated at
//! (mixed 32/64/128 inventories in the paper's design space). A tenant
//! mapped at class `s` only fits a contiguous free run of class-`s`
//! cells: runs never span a size boundary, exactly as they never span
//! an unhealthy cell. All run accounting is therefore *size-aware* —
//! [`FabricPool::largest_free_run`] / [`FabricPool::max_admissible_run`]
//! report the longest **uniform-class** run (a long run of small cells
//! is not admissible capacity for a large-class tenant), with per-class
//! variants ([`FabricPool::largest_free_run_for`],
//! [`FabricPool::max_admissible_run_for`],
//! [`FabricPool::can_admit_sized`]) for callers that know their class.
//! On a homogeneous pool every cell shares one class and all of this
//! degenerates bit-identically to the historical behaviour.

use resparc_neuro::network::Network;
use resparc_neuro::topology::Topology;

use crate::config::ResparcConfig;
use crate::fabric::{AdmitError, Tenant, TenantId};
use crate::map::{MapError, Mapper, Mapping};

/// A contiguous uniform-class NC run as `(start_nc, len, mca_size)`:
/// every cell in the run shares the MCA size class `mca_size`.
type ClassRun = (usize, usize, usize);

/// Health of one physical NeuroCell.
///
/// Lifecycle: `Healthy ⇄ Quarantined` via [`FabricPool::drain_nc`] /
/// [`FabricPool::restore_nc`] (maintenance that is expected to end),
/// and `Healthy | Quarantined → Failed` via [`FabricPool::fail_nc`]
/// (permanent — there is no way back from `Failed`). Only `Healthy`
/// cells participate in admission; an occupied cell is always
/// `Healthy`, because taking a cell out of service evicts its tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum NcHealth {
    /// In service: admissible when unoccupied.
    #[default]
    Healthy,
    /// Drained for maintenance: not admissible, restorable.
    Quarantined,
    /// Permanently dead: never admissible again.
    Failed,
}

impl std::fmt::Display for NcHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NcHealth::Healthy => "healthy",
            NcHealth::Quarantined => "quarantined",
            NcHealth::Failed => "failed",
        })
    }
}

/// How a [`FabricPool`] chooses the free NC run an admission receives.
///
/// The policy only picks *where* a tenant lands — the tenant's footprint
/// (its probe mapping) is policy-independent, so switching policies never
/// changes what a tenant costs to replay, only whether and where it fits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PackingPolicy {
    /// The leftmost contiguous free run that fits — the cheapest probe
    /// and the historical default.
    #[default]
    FirstFit,
    /// The smallest contiguous free run that fits (leftmost on ties):
    /// small tenants fill holes instead of splitting the large runs big
    /// tenants will need.
    BestFit,
    /// Best-fit, falling back to **compaction**: when no contiguous run
    /// fits but the pool's *total* free capacity does,
    /// [`FabricPool::defragment`] slides every resident tenant toward
    /// NC 0 (pure whole-NC translation, no re-partitioning) and the
    /// admission retries on the now-contiguous free tail — turning a
    /// fragmented [`AdmitError::CapacityExhausted`] into a successful
    /// admit.
    Defragment,
}

/// The physical NC/mPE inventory of one chip, shared by many tenants.
///
/// # Examples
///
/// Admission hands out disjoint contiguous NC runs and eviction returns
/// them:
///
/// ```
/// use resparc_core::fabric::FabricPool;
/// use resparc_core::ResparcConfig;
/// use resparc_neuro::topology::Topology;
///
/// let mut pool = FabricPool::new(ResparcConfig::resparc_64());
/// let a = pool.admit_topology(&Topology::mlp(96, &[64, 10]), "kws")?;
/// let b = pool.admit_topology(&Topology::mlp(144, &[96, 10]), "mnist")?;
/// let (ta, tb) = (pool.tenant(a).unwrap(), pool.tenant(b).unwrap());
/// assert!(ta.end_nc() <= tb.first_nc()); // disjoint pool coordinates
/// assert_eq!(pool.occupied_ncs(), ta.nc_count() + tb.nc_count());
///
/// let evicted = pool.evict(a).expect("a was resident");
/// assert_eq!(evicted.id, a);
/// assert_eq!(pool.occupied_ncs(), pool.tenant(b).unwrap().nc_count());
/// # Ok::<(), resparc_core::fabric::AdmitError>(())
/// ```
///
/// A defragmenting pool admits through fragmentation a first-fit pool
/// rejects — compare the two policies on the same admission sequence:
///
/// ```
/// use resparc_core::fabric::{AdmitError, FabricPool, PackingPolicy};
/// use resparc_core::ResparcConfig;
/// use resparc_neuro::topology::Topology;
///
/// let two_nc = Topology::mlp(144, &[576, 576, 10]); // 2 NCs on RESPARC-64
/// let wide = Topology::mlp(144, &[576, 576, 576, 10]); // 4 NCs: wider than any hole
/// let fragment = |pool: &mut FabricPool| {
///     // Fill the 16-NC pool with 2-NC tenants, then evict every other
///     // one: 8 NCs free, but only 2-NC holes remain.
///     let ids: Vec<_> = (0..8)
///         .map(|i| pool.admit_topology(&two_nc, &format!("t{i}")).unwrap())
///         .collect();
///     for id in ids.iter().step_by(2) {
///         pool.evict(*id);
///     }
/// };
///
/// let mut first_fit = FabricPool::new(ResparcConfig::resparc_64());
/// fragment(&mut first_fit);
/// assert!(matches!(
///     first_fit.admit_topology(&wide, "wide"),
///     Err(AdmitError::CapacityExhausted { .. })
/// ));
///
/// let mut defrag = FabricPool::new(ResparcConfig::resparc_64())
///     .with_policy(PackingPolicy::Defragment);
/// fragment(&mut defrag);
/// let id = defrag.admit_topology(&wide, "wide")?; // compaction made room
/// assert!(defrag.tenant(id).is_some());
/// # Ok::<(), resparc_core::fabric::AdmitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FabricPool {
    config: ResparcConfig,
    policy: PackingPolicy,
    /// Per-physical-NC owner; `None` = unoccupied. Together with
    /// `health` this *is* the free list (free = unoccupied **and**
    /// healthy): eviction must restore it exactly (property-tested).
    occupancy: Vec<Option<TenantId>>,
    /// Per-physical-NC health, parallel to `occupancy`. Invariant: an
    /// occupied cell is `Healthy` — `fail_nc`/`drain_nc` evict the
    /// occupant and admission only lands on healthy runs.
    health: Vec<NcHealth>,
    /// Per-physical-NC MCA size class, parallel to `occupancy`. A
    /// homogeneous pool repeats `config.mca_size`; admission runs never
    /// cross a class boundary.
    nc_sizes: Vec<usize>,
    tenants: Vec<Tenant>,
    next_id: u32,
    /// Fraction of full leakage power the *idle* (unowned) NC domain
    /// draws; `1.0` = ungated (the historical always-powered pool).
    idle_gating: f64,
}

impl FabricPool {
    /// Creates an empty pool over the machine's `physical_ncs`
    /// NeuroCells, packing with [`PackingPolicy::FirstFit`] and idle
    /// NCs ungated (billed at full leakage rate).
    pub fn new(config: ResparcConfig) -> Self {
        let slots = config.physical_ncs;
        let mca = config.mca_size;
        Self {
            config,
            policy: PackingPolicy::FirstFit,
            occupancy: vec![None; slots],
            health: vec![NcHealth::Healthy; slots],
            nc_sizes: vec![mca; slots],
            tenants: Vec::new(),
            next_id: 0,
            idle_gating: 1.0,
        }
    }

    /// Creates an empty pool over a **heterogeneous** NC inventory:
    /// `nc_sizes[i]` is the MCA dimension NC `i` was fabricated at
    /// (e.g. `&[32, 32, 64, 64, 128]` for a mixed chip). The machine
    /// shape otherwise follows `config` — `config.physical_ncs` is
    /// overridden to `nc_sizes.len()`, and `config.mca_size` remains
    /// the *default class* used by sizeless probes like
    /// [`can_admit`](Self::can_admit).
    ///
    /// A tenant admitted onto a heterogeneous pool lands on a
    /// contiguous run of cells **all of its own class** (the class its
    /// probe was mapped at — `probe.config.mca_size`). The convenience
    /// entry points [`admit`](Self::admit) /
    /// [`admit_topology`](Self::admit_topology) map the candidate once
    /// per class present in the inventory and greedily admit into the
    /// class with the smallest NC footprint (ties to the smaller MCA);
    /// [`admit_mapped`](Self::admit_mapped) trusts the caller's class
    /// choice.
    ///
    /// # Examples
    ///
    /// ```
    /// use resparc_core::fabric::FabricPool;
    /// use resparc_core::ResparcConfig;
    ///
    /// let pool =
    ///     FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[32, 32, 64, 64, 64, 128]);
    /// assert_eq!(pool.physical_ncs(), 6);
    /// assert_eq!(pool.size_classes(), vec![32, 64, 128]);
    /// // The longest *uniform-class* free run is the three 64s, even
    /// // though all six cells are free and contiguous.
    /// assert_eq!(pool.largest_free_run(), 3);
    /// assert_eq!(pool.largest_free_run_for(128), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `nc_sizes` is empty or contains a zero size.
    pub fn heterogeneous(mut config: ResparcConfig, nc_sizes: &[usize]) -> Self {
        assert!(
            !nc_sizes.is_empty(),
            "a heterogeneous pool needs at least one NC"
        );
        assert!(
            nc_sizes.iter().all(|&s| s > 0),
            "every NC size class must be positive, got {nc_sizes:?}"
        );
        config.physical_ncs = nc_sizes.len();
        // A uniform inventory is just a homogeneous pool of that class:
        // anchor the base config to it so the single-class admission
        // paths (which map against `config`) probe the right crossbar.
        if nc_sizes.windows(2).all(|w| w[0] == w[1]) {
            config.mca_size = nc_sizes[0];
        }
        let slots = nc_sizes.len();
        Self {
            config,
            policy: PackingPolicy::FirstFit,
            occupancy: vec![None; slots],
            health: vec![NcHealth::Healthy; slots],
            nc_sizes: nc_sizes.to_vec(),
            tenants: Vec::new(),
            next_id: 0,
            idle_gating: 1.0,
        }
    }

    /// Sets the packing policy future admissions use (resident tenants
    /// are not moved until a [`PackingPolicy::Defragment`] admission
    /// needs the room).
    pub fn with_policy(mut self, policy: PackingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Power-gates the pool's *idle* NC domain: NeuroCells (and their
    /// mPEs/switches) no resident tenant owns are billed at `factor` ×
    /// full leakage power instead of full rate. The occupied domain and
    /// the shared input SRAM always leak at full rate — gating is
    /// partial-pool, per the floorplan, not per-round.
    ///
    /// The default `1.0` reproduces the historical always-powered
    /// accounting bit-identically (`x × 1.0 ≡ x` in IEEE-754), which is
    /// asserted in tests; `0.0` models perfect gating where an unowned
    /// NC costs nothing.
    ///
    /// # Examples
    ///
    /// ```
    /// use resparc_core::fabric::{FabricPool, SharedEventSimulator};
    /// use resparc_core::ResparcConfig;
    /// use resparc_neuro::encoding::RegularEncoder;
    /// use resparc_neuro::network::Network;
    /// use resparc_neuro::topology::Topology;
    ///
    /// let net = Network::random(Topology::mlp(96, &[64, 10]), 7, 1.0);
    /// let raster = RegularEncoder::new(0.9).encode(&vec![0.5; 96], 6);
    /// let (_, trace) = net.spiking().run_traced(&raster);
    ///
    /// let run = |factor: f64| {
    ///     let mut pool =
    ///         FabricPool::new(ResparcConfig::resparc_64()).with_idle_gating(factor);
    ///     let id = pool.admit(&net, "solo").unwrap();
    ///     SharedEventSimulator::new(&pool).run(&[(id, &trace)])
    /// };
    /// let (gated, ungated) = (run(0.1), run(1.0));
    /// // Same replay, same ledger — only the idle domain's bill shrinks.
    /// assert_eq!(gated.energy, ungated.energy);
    /// assert!(gated.idle_leakage < ungated.idle_leakage);
    /// assert!((gated.idle_leakage.picojoules()
    ///     / ungated.idle_leakage.picojoules()
    ///     - 0.1).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= factor <= 1.0`.
    pub fn with_idle_gating(mut self, factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&factor),
            "idle-gating factor must be in [0, 1], got {factor}"
        );
        self.idle_gating = factor;
        self
    }

    /// The idle-domain leakage factor (`1.0` = ungated; see
    /// [`with_idle_gating`](Self::with_idle_gating)).
    pub fn idle_gating(&self) -> f64 {
        self.idle_gating
    }

    /// The packing policy admissions use.
    pub fn policy(&self) -> PackingPolicy {
        self.policy
    }

    /// The machine configuration every tenant is mapped against.
    pub fn config(&self) -> &ResparcConfig {
        &self.config
    }

    /// Physical NeuroCells on the chip.
    pub fn physical_ncs(&self) -> usize {
        self.occupancy.len()
    }

    /// Per-NC ownership (`None` = free), in NC order.
    pub fn occupancy(&self) -> &[Option<TenantId>] {
        &self.occupancy
    }

    /// Per-NC health, in NC order (parallel to
    /// [`occupancy`](Self::occupancy)).
    pub fn nc_health(&self) -> &[NcHealth] {
        &self.health
    }

    /// Per-NC MCA size class, in NC order (parallel to
    /// [`occupancy`](Self::occupancy)). Homogeneous pools repeat
    /// `config().mca_size`.
    pub fn nc_sizes(&self) -> &[usize] {
        &self.nc_sizes
    }

    /// The distinct MCA size classes present in the inventory, sorted
    /// ascending. A homogeneous pool has exactly one.
    pub fn size_classes(&self) -> Vec<usize> {
        let mut classes = self.nc_sizes.clone();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// Whether the inventory mixes MCA size classes.
    pub fn is_heterogeneous(&self) -> bool {
        self.nc_sizes.windows(2).any(|w| w[0] != w[1])
    }

    /// The machine configuration for mapping a tenant onto class
    /// `mca_size` cells: [`config`](Self::config) with its `mca_size`
    /// swapped. Probes handed to [`admit_mapped`](Self::admit_mapped)
    /// for a given class must be produced against this.
    pub fn class_config(&self, mca_size: usize) -> ResparcConfig {
        let mut cfg = self.config.clone();
        cfg.mca_size = mca_size;
        cfg
    }

    /// Free NeuroCells (any position): unoccupied **and** healthy — the
    /// capacity admission can actually use. Quarantined and failed
    /// cells are not free.
    pub fn free_ncs(&self) -> usize {
        self.occupancy
            .iter()
            .zip(&self.health)
            .filter(|(s, h)| s.is_none() && **h == NcHealth::Healthy)
            .count()
    }

    /// NeuroCells currently owned by tenants.
    pub fn occupied_ncs(&self) -> usize {
        self.occupancy.iter().filter(|s| s.is_some()).count()
    }

    /// NeuroCells currently quarantined (drained, restorable).
    pub fn quarantined_ncs(&self) -> usize {
        self.health
            .iter()
            .filter(|h| **h == NcHealth::Quarantined)
            .count()
    }

    /// NeuroCells permanently failed.
    pub fn failed_ncs(&self) -> usize {
        self.health
            .iter()
            .filter(|h| **h == NcHealth::Failed)
            .count()
    }

    /// Fraction of the pool's NeuroCells owned by tenants.
    pub fn utilization(&self) -> f64 {
        if self.occupancy.is_empty() {
            return 0.0;
        }
        self.occupied_ncs() as f64 / self.physical_ncs() as f64
    }

    /// Longest contiguous free NC run (what the next admission can get
    /// without compaction). Runs never span unhealthy cells **or size
    /// class boundaries** — on a heterogeneous pool this is the longest
    /// *uniform-class* free run, since a run of mixed-size cells is not
    /// usable capacity for any single tenant.
    pub fn largest_free_run(&self) -> usize {
        self.free_runs()
            .into_iter()
            .map(|(_, len, _)| len)
            .max()
            .unwrap_or(0)
    }

    /// Longest contiguous free run of class-`mca_size` NCs — what the
    /// next admission *of that class* can get without compaction.
    pub fn largest_free_run_for(&self, mca_size: usize) -> usize {
        self.free_runs_for(mca_size)
            .into_iter()
            .map(|(_, len, _)| len)
            .max()
            .unwrap_or(0)
    }

    /// Longest contiguous run of **healthy** NCs, occupied or not — the
    /// hard ceiling on what any future admission could ever receive,
    /// however many tenants depart and however the pool compacts. A
    /// request needing more can never be served while the unhealthy
    /// cells stay out (a [`FabricScheduler`] uses this to abort
    /// unservable queued requests instead of waiting forever). Like
    /// free runs, healthy runs never span a size class boundary; use
    /// [`max_admissible_run_for`](Self::max_admissible_run_for) when
    /// the request's class is known.
    ///
    /// [`FabricScheduler`]: crate::fabric::FabricScheduler
    pub fn max_admissible_run(&self) -> usize {
        self.healthy_segments()
            .into_iter()
            .map(|(_, len, _)| len)
            .max()
            .unwrap_or(0)
    }

    /// Longest contiguous healthy run of class-`mca_size` NCs — the
    /// hard admissibility ceiling for tenants mapped at that class. On
    /// a heterogeneous pool a contiguous healthy stretch of *small*
    /// cells can dwarf [`max_admissible_run`](Self::max_admissible_run)
    /// for a *large* class: a class-aware scheduler must gate on this,
    /// not the class-blind maximum.
    pub fn max_admissible_run_for(&self, mca_size: usize) -> usize {
        self.healthy_segments_for(mca_size)
            .into_iter()
            .map(|(_, len, _)| len)
            .max()
            .unwrap_or(0)
    }

    /// Number of maximal free fragments (uniform-class free runs): the
    /// fragmentation signal an optimizing placer minimises — fewer,
    /// larger holes admit wider future tenants.
    pub fn free_fragments(&self) -> usize {
        self.free_runs().len()
    }

    /// Resident tenants, in admission order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Looks up a resident tenant by id.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Whether an admission needing `needed_ncs` contiguous NeuroCells
    /// **of the pool's default class** (`config().mca_size`) would
    /// currently succeed under the pool's policy (counting the room a
    /// [`PackingPolicy::Defragment`] compaction would free, but
    /// performing no mutation). [`FabricScheduler`] probes with
    /// [`can_admit_sized`](Self::can_admit_sized) before committing a
    /// queued request; this class-blind form is exact on homogeneous
    /// pools.
    ///
    /// [`FabricScheduler`]: crate::fabric::FabricScheduler
    pub fn can_admit(&self, needed_ncs: usize) -> bool {
        self.can_admit_sized(needed_ncs, self.config.mca_size)
    }

    /// Whether an admission needing `needed_ncs` contiguous NeuroCells
    /// of class `mca_size` would currently succeed under the pool's
    /// policy (counting the room a [`PackingPolicy::Defragment`]
    /// compaction would free, but performing no mutation).
    pub fn can_admit_sized(&self, needed_ncs: usize, mca_size: usize) -> bool {
        let needed = needed_ncs.max(1);
        match self.policy {
            PackingPolicy::FirstFit | PackingPolicy::BestFit => {
                self.find_run(needed, mca_size).is_some()
            }
            // Compaction packs tenants into healthy segments: the
            // admissible room is the largest *post-compaction* free
            // tail of this class, not the raw free total (free cells
            // split across dead-NC or class boundaries cannot be
            // fused).
            PackingPolicy::Defragment => {
                self.find_run(needed, mca_size).is_some()
                    || self.post_defrag_largest_run(mca_size) >= needed
            }
        }
    }

    /// Admits a trained network: maps it with the pool's configuration,
    /// allocates the free NC run the pool's [`PackingPolicy`] selects
    /// and places the mapping there in pool coordinates.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Map`] if mapping fails,
    /// [`AdmitError::CapacityExhausted`] if the policy finds no run
    /// (even after defragmentation, when the policy compacts), or
    /// [`AdmitError::NoHealthyCapacity`] when the rejection exists only
    /// because quarantined/failed NCs hold the capacity the request
    /// needs.
    pub fn admit(&mut self, network: &Network, name: &str) -> Result<TenantId, AdmitError> {
        if self.is_heterogeneous() {
            return self.admit_choosing_class(|mapper| mapper.map_network(network), name);
        }
        let probe = Mapper::new(self.config.clone())
            .map_network(network)
            .map_err(AdmitError::Map)?;
        self.admit_mapped(probe, name)
    }

    /// Admits a bare topology (mean |weight| 0.5 per layer, as
    /// [`Mapper::map`]); see [`FabricPool::admit`].
    ///
    /// # Errors
    ///
    /// Same as [`FabricPool::admit`].
    pub fn admit_topology(
        &mut self,
        topology: &Topology,
        name: &str,
    ) -> Result<TenantId, AdmitError> {
        if self.is_heterogeneous() {
            return self.admit_choosing_class(|mapper| mapper.map(topology), name);
        }
        let probe = Mapper::new(self.config.clone())
            .map(topology)
            .map_err(AdmitError::Map)?;
        self.admit_mapped(probe, name)
    }

    /// The greedy class-choice admission heterogeneous [`admit`] /
    /// [`admit_topology`] share: map the candidate once per size class
    /// present in the inventory, then try classes in ascending
    /// `(nc_footprint, mca_size)` order — the smallest footprint wins,
    /// ties to the smaller (cheaper) crossbar. This is the *greedy
    /// oracle* an optimizing placer is measured against.
    ///
    /// [`admit`]: Self::admit
    /// [`admit_topology`]: Self::admit_topology
    fn admit_choosing_class<F>(&mut self, probe_for: F, name: &str) -> Result<TenantId, AdmitError>
    where
        F: Fn(&Mapper) -> Result<Mapping, MapError>,
    {
        let mut probes: Vec<Mapping> = Vec::new();
        let mut last_map_err: Option<MapError> = None;
        for size in self.size_classes() {
            match probe_for(&Mapper::new(self.class_config(size))) {
                Ok(probe) => probes.push(probe),
                Err(e) => last_map_err = Some(e),
            }
        }
        probes.sort_by_key(|p| (p.placement.ncs_used.max(1), p.config.mca_size));
        let Some(first) = probes.first() else {
            // Every class failed to map; surface the last mapping error
            // (the inventory is never empty, so at least one class was
            // tried).
            return match last_map_err {
                Some(e) => Err(AdmitError::Map(e)),
                None => Err(self.capacity_error(1, self.config.mca_size)),
            };
        };
        let fallback = (first.placement.ncs_used.max(1), first.config.mca_size);
        for i in 0..probes.len() {
            let needed = probes[i].placement.ncs_used.max(1);
            let size = probes[i].config.mca_size;
            if self.can_admit_sized(needed, size) {
                return self.admit_mapped(probes.swap_remove(i), name);
            }
        }
        // No class fits: report the rejection for the best-footprint
        // class (the one greedy admission would have preferred).
        Err(self.capacity_error(fallback.0, fallback.1))
    }

    /// Admits an already-mapped probe (any origin; it is re-anchored
    /// into the allocated run). This is the allocation core `admit` and
    /// `admit_topology` share, and what a [`FabricScheduler`] uses to
    /// avoid re-mapping a queued request on every admission attempt.
    ///
    /// The probe must have been produced against [`FabricPool::config`]
    /// (same machine shape) — on a heterogeneous pool, against
    /// [`class_config`](Self::class_config) for its size class — or the
    /// resulting placement is meaningless. The probe's
    /// `config.mca_size` *is* its class: the allocated run holds only
    /// cells of that class.
    ///
    /// # Errors
    ///
    /// [`AdmitError::CapacityExhausted`] if the policy finds no run (on
    /// a heterogeneous pool its `free_ncs`/`largest_free_run` count the
    /// probe's class only — see [`AdmitError::CapacityExhausted`]), or
    /// [`AdmitError::NoHealthyCapacity`] when only unhealthy NCs stand
    /// between the request and the capacity it needs.
    ///
    /// [`FabricScheduler`]: crate::fabric::FabricScheduler
    pub fn admit_mapped(&mut self, probe: Mapping, name: &str) -> Result<TenantId, AdmitError> {
        // The probe sizes the tenant; translating it into the allocated
        // run is a pure coordinate shift (identical to re-placing there —
        // property-tested), so the expensive partitioning runs exactly
        // once per admission.
        let needed = probe.placement.ncs_used.max(1);
        let class = probe.config.mca_size;
        let origin = match self.find_run(needed, class) {
            Some(origin) => origin,
            None if self.policy == PackingPolicy::Defragment
                && self.post_defrag_largest_run(class) >= needed =>
            {
                self.defragment();
                match self.find_run(needed, class) {
                    Some(origin) => origin,
                    // The compaction plan guaranteed a fitting free
                    // run; tolerate a miss as plain exhaustion rather
                    // than panicking mid-admission.
                    None => return Err(self.capacity_error(needed, class)),
                }
            }
            None => return Err(self.capacity_error(needed, class)),
        };
        let mut mapping = probe;
        if origin != mapping.placement.origin_nc {
            mapping.placement = mapping.placement.translated_to(origin, &self.config);
        }
        let id = TenantId(self.next_id);
        self.next_id += 1;
        for slot in &mut self.occupancy[origin..origin + needed] {
            *slot = Some(id);
        }
        self.tenants.push(Tenant {
            id,
            name: name.to_string(),
            mapping,
        });
        Ok(id)
    }

    /// Evicts a tenant, freeing its NC run; returns it (with its
    /// pool-coordinate mapping) or `None` if the id is not resident.
    pub fn evict(&mut self, id: TenantId) -> Option<Tenant> {
        let at = self.tenants.iter().position(|t| t.id == id)?;
        let tenant = self.tenants.remove(at);
        for slot in &mut self.occupancy {
            if *slot == Some(id) {
                *slot = None;
            }
        }
        Some(tenant)
    }

    /// Marks NC `nc` permanently [`NcHealth::Failed`]. If the cell is
    /// occupied, the resident tenant is **evicted** (its whole run
    /// frees — the failure costs the tenant its residency, not just one
    /// cell) and returned so the caller can re-queue it for recovery.
    /// Failing an already-unhealthy or free cell returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `nc` is out of range.
    pub fn fail_nc(&mut self, nc: usize) -> Option<Tenant> {
        assert!(nc < self.physical_ncs(), "NC {nc} out of range");
        self.health[nc] = NcHealth::Failed;
        self.occupancy[nc].and_then(|id| self.evict(id))
    }

    /// Quarantines NC `nc` ([`NcHealth::Quarantined`]): the cell leaves
    /// service — evicting and returning the occupant tenant like
    /// [`fail_nc`](Self::fail_nc) — but can re-enter it via
    /// [`restore_nc`](Self::restore_nc). Draining a failed cell is a
    /// no-op (`Failed` is permanent) and returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `nc` is out of range.
    pub fn drain_nc(&mut self, nc: usize) -> Option<Tenant> {
        assert!(nc < self.physical_ncs(), "NC {nc} out of range");
        if self.health[nc] == NcHealth::Failed {
            return None;
        }
        self.health[nc] = NcHealth::Quarantined;
        self.occupancy[nc].and_then(|id| self.evict(id))
    }

    /// Returns a quarantined NC to service (`Quarantined → Healthy`);
    /// `false` if the cell was not quarantined (healthy cells have
    /// nothing to restore, failed cells are permanent).
    ///
    /// # Panics
    ///
    /// Panics if `nc` is out of range.
    pub fn restore_nc(&mut self, nc: usize) -> bool {
        assert!(nc < self.physical_ncs(), "NC {nc} out of range");
        if self.health[nc] == NcHealth::Quarantined {
            self.health[nc] = NcHealth::Healthy;
            true
        } else {
            false
        }
    }

    /// Compacts every resident tenant leftward into the earliest
    /// contiguous run of **healthy** NCs with room, in NC order (on an
    /// all-healthy pool this is the classic pack-into-one-prefix; with
    /// unhealthy cells, tenants pack *around* them). Tenants move via
    /// [`Placement::translated_to`](crate::map::Placement::translated_to)
    /// — a pure whole-NC coordinate shift, with **no re-partitioning**:
    /// replaying any trace through a moved tenant charges bit-identical
    /// dynamic energy and cycles (property-tested in
    /// `tests/proptests.rs`). Returns the number of tenants that moved.
    pub fn defragment(&mut self) -> usize {
        let (assignments, _) = self.compaction_plan();
        let mut moved = 0usize;
        for (i, origin) in assignments {
            let tenant = &mut self.tenants[i];
            if tenant.first_nc() != origin {
                tenant.mapping.placement =
                    tenant.mapping.placement.translated_to(origin, &self.config);
                moved += 1;
            }
        }
        for slot in &mut self.occupancy {
            *slot = None;
        }
        for tenant in &self.tenants {
            let (first, end) = (tenant.first_nc(), tenant.end_nc());
            for slot in &mut self.occupancy[first..end] {
                *slot = Some(tenant.id);
            }
        }
        moved
    }

    /// Every maximal contiguous run of cells satisfying `keep`, broken
    /// additionally at size class boundaries, as `(start_nc, len,
    /// mca_size)` in NC order. On a homogeneous pool the class never
    /// changes, so the runs are exactly the historical health/occupancy
    /// runs.
    fn class_runs<F>(&self, keep: F) -> Vec<ClassRun>
    where
        F: Fn(usize) -> bool,
    {
        let mut runs = Vec::new();
        let mut start = 0usize;
        let mut len = 0usize;
        let mut class = 0usize;
        for i in 0..self.nc_sizes.len() {
            let size = self.nc_sizes[i];
            if keep(i) && (len == 0 || size == class) {
                if len == 0 {
                    start = i;
                    class = size;
                }
                len += 1;
            } else {
                if len > 0 {
                    runs.push((start, len, class));
                    len = 0;
                }
                if keep(i) {
                    start = i;
                    class = size;
                    len = 1;
                }
            }
        }
        if len > 0 {
            runs.push((start, len, class));
        }
        runs
    }

    /// Every maximal contiguous free run (unoccupied **healthy** cells
    /// of one class), as `(start_nc, len, mca_size)` in NC order.
    /// Unhealthy cells and class boundaries break runs.
    fn free_runs(&self) -> Vec<ClassRun> {
        self.class_runs(|i| self.occupancy[i].is_none() && self.health[i] == NcHealth::Healthy)
    }

    /// The free runs of one size class only.
    fn free_runs_for(&self, mca_size: usize) -> Vec<ClassRun> {
        let mut runs = self.free_runs();
        runs.retain(|&(_, _, class)| class == mca_size);
        runs
    }

    /// Every maximal contiguous run of healthy NCs of one class
    /// (occupied or not), as `(start_nc, len, mca_size)` in NC order —
    /// the segments compaction packs tenants into.
    fn healthy_segments(&self) -> Vec<ClassRun> {
        self.class_runs(|i| self.health[i] == NcHealth::Healthy)
    }

    /// The healthy segments of one size class only.
    fn healthy_segments_for(&self, mca_size: usize) -> Vec<ClassRun> {
        let mut segments = self.healthy_segments();
        segments.retain(|&(_, _, class)| class == mca_size);
        segments
    }

    /// The greedy compaction assignment [`defragment`](Self::defragment)
    /// applies: tenants in `first_nc` order, each packed into the
    /// earliest healthy segment **of its own size class** with
    /// contiguous room. Returns the `(tenant_index, new_origin)`
    /// assignments plus each segment's leftover free tail as
    /// `(start_nc, len, mca_size)`.
    fn compaction_plan(&self) -> (Vec<(usize, usize)>, Vec<ClassRun>) {
        let segments = self.healthy_segments();
        let mut used = vec![0usize; segments.len()];
        let mut order: Vec<usize> = (0..self.tenants.len()).collect();
        order.sort_by_key(|&i| self.tenants[i].first_nc());
        let mut assignments = Vec::with_capacity(order.len());
        for i in order {
            let size = self.tenants[i].nc_count();
            let tenant_class = self.tenants[i].mapping.config.mca_size;
            // Invariant, not a reachable failure: when the tenants of
            // the k-th healthy segment are processed (first_nc order),
            // every same-class tenant from segments ≤ k has already
            // been packed into segment k or earlier, so segment k never
            // holds more than the current (valid) layout already fits —
            // first-fit always finds room for every resident. Classes
            // cannot interfere: each tenant only competes for segments
            // of its own class.
            let Some(s) = segments
                .iter()
                .zip(&used)
                .position(|(&(_, len, class), &u)| class == tenant_class && len - u >= size)
            else {
                // Unreachable per the invariant above; degrade to
                // keep-in-place so a broken plan never tears a layout.
                debug_assert!(false, "greedy compaction re-fits every resident tenant");
                assignments.push((i, self.tenants[i].first_nc()));
                continue;
            };
            assignments.push((i, segments[s].0 + used[s]));
            used[s] += size;
        }
        let tails = segments
            .iter()
            .zip(&used)
            .filter(|(&(_, len, _), &u)| len > u)
            .map(|(&(start, len, class), &u)| (start + u, len - u, class))
            .collect();
        (assignments, tails)
    }

    /// The largest contiguous class-`mca_size` free run a
    /// [`defragment`](Self::defragment) compaction would leave (pure
    /// probe, no mutation).
    fn post_defrag_largest_run(&self, mca_size: usize) -> usize {
        self.compaction_plan()
            .1
            .into_iter()
            .filter(|&(_, _, class)| class == mca_size)
            .map(|(_, len, _)| len)
            .max()
            .unwrap_or(0)
    }

    /// The typed rejection for a `needed`-NC class-`mca_size` admission
    /// the policy found no run for: [`AdmitError::NoHealthyCapacity`]
    /// when restoring the class's unhealthy cells to healthy free
    /// capacity would cover the request (the sickness is the cause), a
    /// plain [`AdmitError::CapacityExhausted`] otherwise. All counts
    /// are **size-aware** — they tally class-`mca_size` cells only, so
    /// a long run of smaller cells never masquerades as admissible
    /// capacity in the error. On a homogeneous pool every cell is the
    /// one class and the counts match the historical pool-wide values.
    fn capacity_error(&self, needed: usize, mca_size: usize) -> AdmitError {
        let class_cells = |pred: &dyn Fn(usize) -> bool| {
            (0..self.nc_sizes.len())
                .filter(|&i| self.nc_sizes[i] == mca_size && pred(i))
                .count()
        };
        let quarantined = class_cells(&|i| self.health[i] == NcHealth::Quarantined);
        let failed = class_cells(&|i| self.health[i] == NcHealth::Failed);
        let free =
            class_cells(&|i| self.occupancy[i].is_none() && self.health[i] == NcHealth::Healthy);
        if quarantined + failed > 0 && needed <= free + quarantined + failed {
            AdmitError::NoHealthyCapacity {
                needed_ncs: needed,
                quarantined,
                failed,
            }
        } else {
            AdmitError::CapacityExhausted {
                needed_ncs: needed,
                free_ncs: free,
                largest_free_run: self.largest_free_run_for(mca_size),
            }
        }
    }

    /// The free-run start the pool's policy selects for a `len`-NC
    /// class-`mca_size` tenant, or `None` when no run of that class
    /// fits (defragmentation is the caller's fallback, not this
    /// probe's).
    fn find_run(&self, len: usize, mca_size: usize) -> Option<usize> {
        let runs = self.free_runs_for(mca_size);
        let candidates = runs.into_iter().filter(|&(_, run, _)| run >= len);
        match self.policy {
            PackingPolicy::FirstFit => candidates.map(|(start, _, _)| start).next(),
            // Smallest fitting run; leftmost on ties. Defragment packs
            // best-fit first and only compacts when that fails.
            PackingPolicy::BestFit | PackingPolicy::Defragment => candidates
                .min_by_key(|&(start, run, _)| (run, start))
                .map(|(start, _, _)| start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;

    fn small_net(seed: u64) -> Network {
        Network::random(Topology::mlp(96, &[64, 10]), seed, 1.0)
    }

    /// A topology occupying exactly `ncs` NeuroCells on RESPARC-64
    /// (verified by the tests that use it).
    fn sized_topology(ncs: usize) -> Topology {
        // Each extra 576-wide hidden layer adds ~21 mPEs; the measured
        // footprints below are asserted by the next test.
        match ncs {
            1 => Topology::mlp(144, &[576, 10]),
            2 => Topology::mlp(144, &[576, 576, 10]),
            4 => Topology::mlp(144, &[576, 576, 576, 10]),
            5 => Topology::mlp(144, &[576, 576, 576, 576, 10]),
            other => panic!("no sized topology for {other} NCs"),
        }
    }

    #[test]
    fn sized_topologies_have_the_advertised_footprint() {
        let mapper = Mapper::new(ResparcConfig::resparc_64());
        for ncs in [1usize, 2, 4, 5] {
            let mapping = mapper.map(&sized_topology(ncs)).unwrap();
            assert_eq!(mapping.placement.ncs_used, ncs, "{ncs}-NC topology");
        }
    }

    #[test]
    fn admits_tenants_on_disjoint_nc_runs() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let a = pool.admit(&small_net(1), "a").unwrap();
        let b = pool.admit(&small_net(2), "b").unwrap();
        assert_ne!(a, b);
        let ta = pool.tenant(a).unwrap();
        let tb = pool.tenant(b).unwrap();
        assert!(ta.end_nc() <= tb.first_nc() || tb.end_nc() <= ta.first_nc());
        assert_eq!(pool.occupied_ncs(), ta.nc_count() + tb.nc_count());
        assert!(pool.utilization() > 0.0);
    }

    #[test]
    fn admission_rejects_when_capacity_exhausted() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        // The paper's MNIST MLP occupies 8 NCs on RESPARC-64; a third
        // copy cannot fit the 16-NC pool.
        let big = Topology::mlp(784, &[800, 800, 10]);
        pool.admit_topology(&big, "one").unwrap();
        pool.admit_topology(&big, "two").unwrap();
        let err = pool.admit_topology(&big, "three").unwrap_err();
        match err {
            AdmitError::CapacityExhausted {
                needed_ncs,
                free_ncs,
                largest_free_run,
            } => {
                assert!(needed_ncs > largest_free_run);
                assert!(largest_free_run <= free_ncs);
            }
            other => panic!("expected CapacityExhausted, got {other}"),
        }
    }

    #[test]
    fn evict_restores_free_list_exactly() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let a = pool.admit(&small_net(1), "a").unwrap();
        let before = pool.occupancy().to_vec();
        let b = pool.admit(&small_net(2), "b").unwrap();
        let evicted = pool.evict(b).expect("b resident");
        assert_eq!(evicted.id, b);
        assert_eq!(pool.occupancy(), &before[..]);
        assert!(pool.tenant(b).is_none());
        assert!(pool.tenant(a).is_some());
        assert!(pool.evict(b).is_none(), "double evict must be None");
    }

    #[test]
    fn best_fit_fills_the_smallest_hole_first_fit_the_leftmost() {
        // Layout a(2)@0..2 b(5)@2..7 c(1)@7..8 d(5)@8..13, tail 13..16;
        // evicting a and c leaves holes of width 2 (NC 0) and 1 (NC 7).
        // A 1-NC admission must land at NC 7 under best-fit but NC 0
        // under first-fit.
        let fragment = |pool: &mut FabricPool| {
            let a = pool.admit_topology(&sized_topology(2), "a").unwrap();
            pool.admit_topology(&sized_topology(5), "b").unwrap();
            let c = pool.admit_topology(&sized_topology(1), "c").unwrap();
            pool.admit_topology(&sized_topology(5), "d").unwrap();
            pool.evict(a);
            pool.evict(c);
        };

        let mut best =
            FabricPool::new(ResparcConfig::resparc_64()).with_policy(PackingPolicy::BestFit);
        fragment(&mut best);
        assert_eq!(best.largest_free_run(), 3);
        let id = best.admit_topology(&sized_topology(1), "snug").unwrap();
        assert_eq!(best.tenant(id).unwrap().first_nc(), 7, "smallest hole");
        // The 2-NC hole survives intact for a 2-NC tenant.
        let id2 = best.admit_topology(&sized_topology(2), "pair").unwrap();
        assert_eq!(best.tenant(id2).unwrap().first_nc(), 0);

        let mut first = FabricPool::new(ResparcConfig::resparc_64());
        fragment(&mut first);
        let id = first.admit_topology(&sized_topology(1), "snug").unwrap();
        assert_eq!(first.tenant(id).unwrap().first_nc(), 0, "leftmost hole");
    }

    #[test]
    fn defragment_admits_where_first_fit_exhausts() {
        // The acceptance-criterion scenario: enough total free NCs but
        // no contiguous run. Five 2-NC tenants plus one 5-NC tenant
        // fill 15 of 16 NCs; evicting 2-NC tenants #1 and #3 frees two
        // 2-NC holes (+1 tail). A 4-NC tenant cannot fit any hole —
        // first-fit (and best-fit) reject, the defragmenting pool
        // compacts and admits.
        let fragment = |pool: &mut FabricPool| {
            let ids: Vec<TenantId> = (0..5)
                .map(|i| {
                    pool.admit_topology(&sized_topology(2), &format!("t{i}"))
                        .unwrap()
                })
                .collect();
            pool.admit_topology(&sized_topology(5), "big").unwrap();
            pool.evict(ids[1]);
            pool.evict(ids[3]);
        };

        let mut first = FabricPool::new(ResparcConfig::resparc_64());
        fragment(&mut first);
        assert_eq!(first.free_ncs(), 5);
        assert_eq!(first.largest_free_run(), 2);
        let err = first
            .admit_topology(&sized_topology(4), "wide")
            .unwrap_err();
        assert!(
            matches!(
                err,
                AdmitError::CapacityExhausted {
                    needed_ncs: 4,
                    free_ncs: 5,
                    largest_free_run: 2,
                }
            ),
            "got {err}"
        );

        let mut defrag =
            FabricPool::new(ResparcConfig::resparc_64()).with_policy(PackingPolicy::Defragment);
        fragment(&mut defrag);
        let before: Vec<(TenantId, usize)> = defrag
            .tenants()
            .iter()
            .map(|t| (t.id, t.nc_count()))
            .collect();
        let id = defrag.admit_topology(&sized_topology(4), "wide").unwrap();
        let tenant = defrag.tenant(id).unwrap();
        // Residents were compacted to NCs 0..11; the new tenant fills
        // the reunified tail.
        assert_eq!(tenant.first_nc(), 11);
        assert_eq!(tenant.end_nc(), 15);
        assert_eq!(defrag.free_ncs(), 1);
        // Every pre-defrag resident survived with its footprint intact
        // and the occupancy map agrees with the placements.
        for (id, ncs) in before {
            let t = defrag.tenant(id).expect("resident survived compaction");
            assert_eq!(t.nc_count(), ncs);
            for nc in t.first_nc()..t.end_nc() {
                assert_eq!(defrag.occupancy()[nc], Some(id));
            }
        }
    }

    #[test]
    fn defragment_is_a_no_op_on_a_compact_pool() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        pool.admit(&small_net(1), "a").unwrap();
        pool.admit(&small_net(2), "b").unwrap();
        let before = pool.occupancy().to_vec();
        assert_eq!(pool.defragment(), 0);
        assert_eq!(pool.occupancy(), &before[..]);
        // And on an empty pool.
        let mut empty = FabricPool::new(ResparcConfig::resparc_64());
        assert_eq!(empty.defragment(), 0);
    }

    #[test]
    fn can_admit_matches_admission_outcomes() {
        let fragment = |pool: &mut FabricPool| {
            let ids: Vec<TenantId> = (0..5)
                .map(|i| {
                    pool.admit_topology(&sized_topology(2), &format!("t{i}"))
                        .unwrap()
                })
                .collect();
            pool.admit_topology(&sized_topology(5), "big").unwrap();
            pool.evict(ids[1]);
            pool.evict(ids[3]);
        };

        let mut pool =
            FabricPool::new(ResparcConfig::resparc_64()).with_policy(PackingPolicy::Defragment);
        fragment(&mut pool);
        // 5 free NCs in 2-NC holes (+1 tail): a 4-NC tenant is
        // admissible only via compaction, a 6-NC one not at all.
        assert!(pool.can_admit(4));
        assert!(!pool.can_admit(6));
        assert!(pool.can_admit(0), "zero-NC probe rounds up to one NC");

        let mut first = FabricPool::new(ResparcConfig::resparc_64());
        fragment(&mut first);
        assert!(first.can_admit(2));
        assert!(!first.can_admit(4), "first-fit does not compact");
    }

    #[test]
    fn fail_nc_evicts_the_occupant_and_blocks_the_cell() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let a = pool.admit_topology(&sized_topology(2), "a").unwrap();
        let b = pool.admit_topology(&sized_topology(2), "b").unwrap();
        let victim_nc = pool.tenant(a).unwrap().first_nc();

        let evicted = pool.fail_nc(victim_nc).expect("NC was occupied");
        assert_eq!(evicted.id, a);
        assert!(pool.tenant(a).is_none());
        assert!(pool.tenant(b).is_some(), "bystander survives");
        assert_eq!(pool.nc_health()[victim_nc], NcHealth::Failed);
        assert_eq!(pool.failed_ncs(), 1);
        // The dead cell is not free capacity and never re-admitted into.
        assert_eq!(pool.free_ncs(), 16 - pool.occupied_ncs() - 1);
        let c = pool.admit_topology(&sized_topology(5), "c").unwrap();
        let tc = pool.tenant(c).unwrap();
        assert!(victim_nc < tc.first_nc() || victim_nc >= tc.end_nc());
        // Failing a free cell evicts nobody; restore does not resurrect.
        assert!(pool.fail_nc(15).is_none());
        assert!(!pool.restore_nc(15), "failed cells are permanent");
        assert_eq!(pool.nc_health()[15], NcHealth::Failed);
    }

    #[test]
    fn drain_and_restore_round_trip() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let a = pool.admit_topology(&sized_topology(2), "a").unwrap();
        let free_before = pool.free_ncs();
        let nc = pool.tenant(a).unwrap().first_nc();

        let evicted = pool.drain_nc(nc).expect("NC was occupied");
        assert_eq!(evicted.id, a);
        assert_eq!(pool.nc_health()[nc], NcHealth::Quarantined);
        assert_eq!(pool.quarantined_ncs(), 1);
        // Draining freed the tenant's other cell but quarantined this one.
        assert_eq!(pool.free_ncs(), free_before + 1);

        assert!(pool.restore_nc(nc));
        assert_eq!(pool.nc_health()[nc], NcHealth::Healthy);
        assert_eq!(pool.free_ncs(), free_before + 2);
        assert!(!pool.restore_nc(nc), "already healthy");
        // Draining a failed cell is a no-op.
        pool.fail_nc(nc);
        assert!(pool.drain_nc(nc).is_none());
        assert_eq!(pool.nc_health()[nc], NcHealth::Failed);
    }

    #[test]
    fn free_runs_and_admission_route_around_unhealthy_cells() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        // Kill NC 5: the 16-cell free space splits into runs of 5 and 10.
        pool.fail_nc(5);
        assert_eq!(pool.free_ncs(), 15);
        assert_eq!(pool.largest_free_run(), 10);
        assert_eq!(pool.max_admissible_run(), 10);
        let a = pool.admit_topology(&sized_topology(5), "a").unwrap();
        assert_eq!(pool.tenant(a).unwrap().first_nc(), 0, "fills 0..5");
        let b = pool.admit_topology(&sized_topology(5), "b").unwrap();
        assert_eq!(pool.tenant(b).unwrap().first_nc(), 6, "skips NC 5");
    }

    #[test]
    fn defragment_compacts_around_dead_cells() {
        let mut pool =
            FabricPool::new(ResparcConfig::resparc_64()).with_policy(PackingPolicy::Defragment);
        // a(2)@0..2 b(2)@2..4 c(2)@4..6 d(5)@6..11; kill NC 12 in the
        // tail, then evict a and c: free = {0..2, 4..6, 11..12, 13..16},
        // largest run 3. A 4-NC tenant only fits after compaction packs
        // b and d into 0..7 *around* the dead NC 12.
        let a = pool.admit_topology(&sized_topology(2), "a").unwrap();
        let b = pool.admit_topology(&sized_topology(2), "b").unwrap();
        let c = pool.admit_topology(&sized_topology(2), "c").unwrap();
        let d = pool.admit_topology(&sized_topology(5), "d").unwrap();
        assert!(pool.fail_nc(12).is_none(), "NC 12 was free");
        pool.evict(a);
        pool.evict(c);
        assert_eq!(pool.largest_free_run(), 3);

        assert!(pool.can_admit(4));
        let wide = pool.admit_topology(&sized_topology(4), "wide").unwrap();
        let tw = pool.tenant(wide).unwrap();
        // Survivors packed into 0..7; the new tenant fills the hole
        // before the dead cell — nobody landed on NC 12.
        assert_eq!((tw.first_nc(), tw.end_nc()), (7, 11));
        assert_eq!(pool.tenant(b).unwrap().first_nc(), 0);
        assert_eq!(pool.tenant(d).unwrap().first_nc(), 2);
        assert_eq!(pool.occupancy()[12], None);
        assert_eq!(pool.nc_health()[12], NcHealth::Failed);
    }

    #[test]
    fn heterogeneous_runs_break_at_class_boundaries() {
        let mut pool =
            FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[64, 64, 64, 32, 32, 64]);
        assert!(pool.is_heterogeneous());
        assert_eq!(pool.size_classes(), vec![32, 64]);
        assert_eq!(pool.physical_ncs(), 6, "physical_ncs follows the inventory");
        assert_eq!(pool.free_ncs(), 6);
        // All six cells are free and contiguous, but runs never span a
        // class boundary: the pool-wide maxima are uniform-class runs.
        assert_eq!(pool.largest_free_run(), 3);
        assert_eq!(pool.largest_free_run_for(64), 3);
        assert_eq!(pool.largest_free_run_for(32), 2);
        assert_eq!(pool.largest_free_run_for(128), 0, "class absent");
        assert_eq!(pool.max_admissible_run(), 3);
        assert_eq!(pool.max_admissible_run_for(32), 2);
        assert_eq!(pool.free_fragments(), 3);
        // Health still breaks runs inside a class.
        pool.fail_nc(1);
        assert_eq!(pool.largest_free_run_for(64), 1);
        assert_eq!(pool.max_admissible_run_for(64), 1);
        assert_eq!(pool.max_admissible_run_for(32), 2);
        // A homogeneous pool is never heterogeneous.
        assert!(!FabricPool::new(ResparcConfig::resparc_64()).is_heterogeneous());
    }

    #[test]
    fn uniform_nonbase_inventory_admits_as_that_class() {
        // Regression: `heterogeneous` with a uniform inventory whose
        // class differs from the base config used to leave
        // `config.mca_size` at the base value, so the homogeneous
        // admission path probed a class the pool had zero cells of and
        // rejected everything.
        let mut pool = FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[32, 32, 32, 32]);
        assert!(!pool.is_heterogeneous());
        assert_eq!(pool.size_classes(), vec![32]);
        assert_eq!(
            pool.config().mca_size,
            32,
            "base config anchored to the class"
        );
        let id = pool
            .admit_topology(&Topology::mlp(96, &[64, 10]), "t")
            .expect("a uniform 32-class pool admits a 32-class tenant");
        let t = pool.tenant(id).unwrap();
        assert_eq!(t.mapping.config.mca_size, 32);
        for nc in t.first_nc()..t.end_nc() {
            assert_eq!(pool.nc_sizes()[nc], 32);
        }
    }

    #[test]
    fn heterogeneous_admission_reports_size_aware_errors() {
        // Regression for the misleading class-blind error: the 32-class
        // cells are free and contiguous, yet they are no capacity at
        // all for a 64-class tenant — the rejection must count the
        // probe's class only.
        let mut pool =
            FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[64, 64, 32, 32, 32, 64]);
        let probe64 = Mapper::new(pool.class_config(64))
            .map(&sized_topology(2))
            .unwrap();
        let a = pool.admit_mapped(probe64.clone(), "a").unwrap();
        let ta = pool.tenant(a).unwrap();
        assert_eq!((ta.first_nc(), ta.end_nc()), (0, 2));
        assert_eq!(ta.mapping.config.mca_size, 64);
        // 4 cells free in one contiguous stretch 2..6, but only one is
        // 64-class: the error must say 1 free / largest run 1, not 4.
        assert_eq!(pool.free_ncs(), 4);
        let err = pool.admit_mapped(probe64, "b").unwrap_err();
        assert_eq!(
            err,
            AdmitError::CapacityExhausted {
                needed_ncs: 2,
                free_ncs: 1,
                largest_free_run: 1,
            },
            "got {err}"
        );
    }

    #[test]
    fn heterogeneous_capacity_errors_count_the_probe_class_only() {
        let mut pool = FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[64, 64, 32]);
        pool.fail_nc(0);
        // One healthy + one failed 64-class cell: restoring the class's
        // sick cell would cover the 2-NC request, so the rejection
        // blames the sickness — with class-filtered counts (the healthy
        // 32-class cell is not part of the story).
        let probe64 = Mapper::new(pool.class_config(64))
            .map(&sized_topology(2))
            .unwrap();
        let err = pool.admit_mapped(probe64, "t").unwrap_err();
        assert_eq!(
            err,
            AdmitError::NoHealthyCapacity {
                needed_ncs: 2,
                quarantined: 0,
                failed: 1,
            },
            "got {err}"
        );
        // A class absent from the inventory is plain exhaustion with
        // zero class capacity.
        let probe128 = Mapper::new(pool.class_config(128))
            .map(&Topology::mlp(96, &[64, 10]))
            .unwrap();
        let err = pool.admit_mapped(probe128, "t").unwrap_err();
        assert_eq!(
            err,
            AdmitError::CapacityExhausted {
                needed_ncs: 1,
                free_ncs: 0,
                largest_free_run: 0,
            },
            "got {err}"
        );
    }

    #[test]
    fn heterogeneous_admit_chooses_the_smallest_footprint_class() {
        let pool = FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[32, 32, 32, 64]);
        // Preconditions that make the choices below meaningful: the
        // 1-NC-at-64 topology widens at MCA 32, the small one does not.
        let at64 = Mapper::new(pool.class_config(64))
            .map(&sized_topology(1))
            .unwrap();
        let at32 = Mapper::new(pool.class_config(32))
            .map(&sized_topology(1))
            .unwrap();
        assert_eq!(at64.placement.ncs_used, 1);
        assert!(at32.placement.ncs_used > 1);
        let small = Topology::mlp(96, &[64, 10]);
        for class in [32usize, 64] {
            let probe = Mapper::new(pool.class_config(class)).map(&small).unwrap();
            assert_eq!(probe.placement.ncs_used, 1, "1 NC at MCA {class}");
        }

        let mut pool = pool;
        // Smaller footprint wins: 1 NC at 64 beats >1 NC at 32.
        let id = pool.admit_topology(&sized_topology(1), "t").unwrap();
        let t = pool.tenant(id).unwrap();
        assert_eq!(t.mapping.config.mca_size, 64);
        assert_eq!(t.first_nc(), 3);
        // On a footprint tie the smaller (cheaper) crossbar class wins.
        let id = pool.admit_topology(&small, "s").unwrap();
        let s = pool.tenant(id).unwrap();
        assert_eq!(s.mapping.config.mca_size, 32);
        assert_eq!(s.first_nc(), 0);
        // When the preferred class is full, admission falls through to
        // the next class that fits rather than rejecting.
        let id = pool.admit_topology(&small, "s2").unwrap();
        let id2 = pool.admit_topology(&small, "s3").unwrap();
        assert_eq!(pool.tenant(id).unwrap().first_nc(), 1);
        assert_eq!(pool.tenant(id2).unwrap().first_nc(), 2);
        let err = pool.admit_topology(&small, "s4").unwrap_err();
        assert!(
            matches!(err, AdmitError::CapacityExhausted { .. }),
            "every class full: {err}"
        );
    }

    #[test]
    fn heterogeneous_defragment_compacts_within_classes() {
        let mut pool =
            FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[64, 64, 64, 64, 64, 64, 32])
                .with_policy(PackingPolicy::Defragment);
        let p2 = Mapper::new(pool.class_config(64))
            .map(&sized_topology(2))
            .unwrap();
        let a = pool.admit_mapped(p2.clone(), "a").unwrap();
        let b = pool.admit_mapped(p2, "b").unwrap();
        let p32 = Mapper::new(pool.class_config(32))
            .map(&Topology::mlp(96, &[64, 10]))
            .unwrap();
        let s = pool.admit_mapped(p32, "s").unwrap();
        assert_eq!(pool.tenant(s).unwrap().first_nc(), 6, "32-class cell");
        pool.evict(a);
        // Free 64-class runs {0..2} and {4..6}: a 4-NC 64-class tenant
        // needs compaction. It must slide b leftward within the 64
        // segment and leave the 32-class resident alone.
        assert!(pool.can_admit_sized(4, 64));
        let p4 = Mapper::new(pool.class_config(64))
            .map(&sized_topology(4))
            .unwrap();
        let w = pool.admit_mapped(p4, "w").unwrap();
        assert_eq!(pool.tenant(b).unwrap().first_nc(), 0);
        let tw = pool.tenant(w).unwrap();
        assert_eq!((tw.first_nc(), tw.end_nc()), (2, 6));
        assert_eq!(pool.tenant(s).unwrap().first_nc(), 6, "never moved");
    }

    #[test]
    fn sick_pools_report_no_healthy_capacity() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        // 12 of 16 cells out of service: a 5-NC request would fit a
        // healthy pool, so the rejection must blame the sickness.
        for nc in 0..10 {
            pool.fail_nc(nc);
        }
        pool.drain_nc(10);
        pool.drain_nc(11);
        let err = pool.admit_topology(&sized_topology(5), "t").unwrap_err();
        assert_eq!(
            err,
            AdmitError::NoHealthyCapacity {
                needed_ncs: 5,
                quarantined: 2,
                failed: 10,
            },
            "got {err}"
        );

        // A request even a fully-restored pool could not hold stays a
        // plain capacity error: three 5-NC tenants plus one dead cell
        // leave 0 free + 1 sick, short of the MNIST MLP's footprint
        // even if the dead cell were revived.
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        pool.admit_topology(&sized_topology(5), "a").unwrap();
        pool.admit_topology(&sized_topology(5), "b").unwrap();
        pool.admit_topology(&sized_topology(5), "c").unwrap();
        pool.fail_nc(15);
        let big = Topology::mlp(784, &[800, 800, 10]);
        let err = pool.admit_topology(&big, "mnist").unwrap_err();
        assert!(
            matches!(err, AdmitError::CapacityExhausted { free_ncs: 0, .. }),
            "got {err}"
        );
    }
}
