//! Interleaved shared-fabric replay with weighted bus arbitration.
//!
//! The interleave model, per timestep: tenants occupy disjoint NC runs,
//! so their compute phases and switch traffic proceed concurrently and
//! the step pays the **maximum** of the tenants' local cycles; the
//! global bus and input SRAM are shared and serialise, so the step pays
//! the **sum** of every tenant's bus transactions on top. The bus is
//! work-conserving — the summed cycles (and therefore the makespan, the
//! ledger and every aggregate of [`SharedReport`]) are the same whatever
//! the arbitration order — but *who waits* is not: weighted round-robin
//! ([`SharedEventSimulator::run_weighted`]) grants each tenant its
//! weight in bus cycles per round, and the report carries each tenant's
//! [`bus_stall_cycles`](TenantReport::bus_stall_cycles) (cycles its
//! transactions queued behind other tenants) and perceived
//! [`latency`](TenantReport::latency). Weights are ratios: they are
//! normalised by their gcd, so `[2, 2]` is the same fair arbitration as
//! `[1, 1]` (what [`SharedEventSimulator::run`] performs) and any
//! single-tenant replay reproduces the dedicated-fabric
//! [`EventSimulator`](crate::sim::event::EventSimulator) bit-identically.

use resparc_energy::accounting::{Category, EnergyBreakdown};
use resparc_energy::sram::SramSpec;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::trace::SpikeTrace;

use crate::fabric::{logic_leakage_power, FabricPool, Tenant, TenantId};
use crate::sim::cost;
use crate::sim::event::{fold_factor, replay_trace, EventLayerStats, ReplayEngine, TraceReplay};

/// One tenant's slice of a shared replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Which tenant.
    pub tenant: TenantId,
    /// The tenant's label at admission.
    pub name: String,
    /// The tenant's bus-arbitration weight, gcd-normalised (equal
    /// weights always report as 1).
    pub weight: u32,
    /// Dynamic energy this tenant's trace charged (no leakage).
    pub energy: EnergyBreakdown,
    /// This tenant's amortized share of the whole pool's leakage over
    /// the shared makespan (occupied + idle NCs + SRAM), split
    /// proportionally to mapped NC count across the pool's *residents*.
    /// Shares of resident tenants absent from this replay round are not
    /// reported, so the reported shares sum to the full pool leakage
    /// only when every resident ran.
    pub leakage_share: Energy,
    /// Timesteps in the tenant's trace.
    pub steps: usize,
    /// Steps in which the tenant fired at least one crossbar read.
    pub active_steps: usize,
    /// Cycles of the shared timeline this tenant's own work spanned:
    /// per step, its local (compute + switch) cycles plus the cycle at
    /// which the arbitrated bus finished serving its transactions.
    /// Always ≤ the round's total cycles.
    pub tenant_cycles: u64,
    /// Bus cycles this tenant's transactions spent queued behind other
    /// tenants under the weighted round-robin arbiter (0 with one
    /// tenant: an uncontended bus never stalls).
    pub bus_stall_cycles: u64,
    /// The tenant's perceived completion time
    /// ([`tenant_cycles`](Self::tenant_cycles) at the pool clock) —
    /// what this tenant's inference latency looks like from inside the
    /// shared round. Never exceeds [`SharedReport::latency`].
    pub latency: Time,
    /// Per-layer event tallies (identical to a dedicated-fabric replay).
    pub layers: Vec<EventLayerStats>,
}

impl TenantReport {
    /// Dynamic energy plus the amortized pool-leakage share — the
    /// tenant's all-in energy bill for this inference.
    pub fn billed_energy(&self) -> Energy {
        self.energy.total() + self.leakage_share
    }
}

/// Report of one shared replay round: every tenant's trace interleaved
/// through the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedReport {
    /// The pool-wide ledger: every tenant's dynamic charges plus the
    /// *occupied*-fabric leakage over the makespan — category-compatible
    /// with a single-tenant [`EventReport`](crate::sim::event::EventReport)
    /// (a one-tenant pool reproduces it exactly).
    pub energy: EnergyBreakdown,
    /// Leakage of the NeuroCells no resident tenant owns, over the
    /// makespan — the cost of owning a bigger chip than the resident
    /// tenants need, billed at the pool's
    /// [`idle_gating`](crate::fabric::FabricPool::idle_gating) factor.
    /// On an ungated pool (factor `1.0`, the default) ledger leakage
    /// plus this always equals
    /// [`pool_leakage_power`](crate::fabric::pool_leakage_power)` ×
    /// latency`; gating scales only this idle term.
    pub idle_leakage: Energy,
    /// Makespan in timesteps (longest tenant trace).
    pub steps: usize,
    /// Steps in which at least one tenant fired a crossbar read.
    pub active_steps: usize,
    /// Total cycles of the shared timeline.
    pub total_cycles: u64,
    /// Cycles the shared global bus was busy (summed tenant
    /// transactions — the contention signal). Arbitration-weight
    /// independent: the bus is work-conserving.
    pub bus_busy_cycles: u64,
    /// Wall-clock makespan.
    pub latency: Time,
    /// Classifications per second: every tenant finishes one inference
    /// in one makespan.
    pub throughput: f64,
    /// Per-tenant splits, in input order.
    pub tenants: Vec<TenantReport>,
}

impl SharedReport {
    /// Total ledger energy (dynamic + occupied leakage, no idle).
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Whole-powered-pool energy: ledger plus idle-NC leakage. Equals
    /// `Σ tenant dynamic + pool_leakage_power × latency`.
    pub fn pool_energy(&self) -> Energy {
        self.energy.total() + self.idle_leakage
    }

    /// Mean all-in energy per inference (pool energy over the tenant
    /// count).
    pub fn pool_energy_per_inference(&self) -> Energy {
        if self.tenants.is_empty() {
            return Energy::ZERO;
        }
        self.pool_energy() * (1.0 / self.tenants.len() as f64)
    }

    /// Pool-energy × makespan (pJ·ns); `0.0` when not finite.
    pub fn energy_delay_product(&self) -> f64 {
        let edp = self.pool_energy().picojoules() * self.latency.nanoseconds();
        if edp.is_finite() {
            edp
        } else {
            0.0
        }
    }

    /// Fraction of the makespan's cycles the shared bus was busy.
    pub fn bus_occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.bus_busy_cycles as f64 / self.total_cycles as f64
    }

    /// Total bus cycles tenants spent queued behind each other — the
    /// whole round's arbitration cost, however the weights split it.
    pub fn total_bus_stall_cycles(&self) -> u64 {
        self.tenants.iter().map(|t| t.bus_stall_cycles).sum()
    }
}

/// Trace-driven event simulator over a [`FabricPool`]: replays one trace
/// per tenant, interleaved per timestep through the shared fabric.
#[derive(Debug, Clone)]
pub struct SharedEventSimulator<'p> {
    pool: &'p FabricPool,
    engine: ReplayEngine,
}

impl<'p> SharedEventSimulator<'p> {
    /// Creates a simulator over the pool's resident tenants using the
    /// default (plan) replay engine.
    pub fn new(pool: &'p FabricPool) -> Self {
        Self::with_engine(pool, ReplayEngine::default())
    }

    /// Creates a simulator pinned to a specific replay engine. Both
    /// engines produce bit-identical reports (see
    /// [`crate::sim::event::ReplayEngine`]); the choice only affects
    /// replay speed.
    pub fn with_engine(pool: &'p FabricPool, engine: ReplayEngine) -> Self {
        Self { pool, engine }
    }

    /// Replays one trace per tenant through the shared fabric under
    /// fair (equal-weight) bus arbitration — exactly
    /// [`run_weighted`](Self::run_weighted) with every weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty, names a tenant not resident in the
    /// pool, lists a tenant twice, or a trace's boundary structure does
    /// not match its tenant's mapping.
    pub fn run(&self, traces: &[(TenantId, &SpikeTrace)]) -> SharedReport {
        self.run_weighted(traces, &vec![1; traces.len()])
    }

    /// Replays one trace per tenant through the shared fabric,
    /// apportioning the serialised bus by **weighted round-robin**.
    ///
    /// Per timestep, tenants on their disjoint NC runs compute and
    /// switch concurrently (the step pays the maximum of their local
    /// cycles) while their global-bus transactions serialise on the
    /// shared bus/SRAM (the step sums them). The arbiter grants tenant
    /// `i` up to `weights[i] / gcd(weights)` bus cycles per round-robin
    /// round; a tenant's transactions therefore finish earlier the
    /// heavier its weight, which the report exposes as per-tenant
    /// [`bus_stall_cycles`](TenantReport::bus_stall_cycles) and
    /// perceived [`latency`](TenantReport::latency). The bus is
    /// work-conserving, so every aggregate (ledger, makespan, bus
    /// occupancy) is weight-independent — with one tenant or equal
    /// weights the whole report is bit-identical to [`run`](Self::run).
    ///
    /// Dynamic energy is charged through the same replay core as the
    /// single-tenant
    /// [`EventSimulator`](crate::sim::event::EventSimulator); leakage of
    /// the occupied fabric goes to the ledger and the idle remainder of
    /// the pool is reported separately, amortized across tenants in
    /// [`TenantReport::leakage_share`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run), and
    /// additionally if `weights.len() != traces.len()` or any weight is
    /// zero.
    pub fn run_weighted(
        &self,
        traces: &[(TenantId, &SpikeTrace)],
        weights: &[u32],
    ) -> SharedReport {
        assert!(
            !traces.is_empty(),
            "shared replay needs at least one tenant trace"
        );
        assert_eq!(
            weights.len(),
            traces.len(),
            "one arbitration weight per tenant trace"
        );
        assert!(
            weights.iter().all(|&w| w > 0),
            "arbitration weights must be positive"
        );
        let mut entries: Vec<(&Tenant, &SpikeTrace)> = Vec::with_capacity(traces.len());
        for (id, trace) in traces {
            let tenant = self
                .pool
                .tenant(*id)
                // resparc-lint: allow(no-panic, reason = "documented panic contract: run_weighted takes ids the caller obtained from this pool")
                .unwrap_or_else(|| panic!("{id} is not resident in the pool"));
            assert!(
                entries.iter().all(|(t, _)| t.id != *id),
                "{id} listed twice in one shared replay"
            );
            entries.push((tenant, trace));
        }
        // Weights are ratios: gcd-normalise so [2, 2] and [1, 1] run the
        // identical arbitration schedule (asserted in tests).
        let g = weights.iter().copied().fold(0, gcd);
        let quanta: Vec<u64> = weights.iter().map(|&w| u64::from(w / g)).collect();

        let cfg = self.pool.config();
        let replays: Vec<TraceReplay> = entries
            .iter()
            .map(|(tenant, trace)| replay_trace(&tenant.mapping, trace, self.engine))
            .collect();
        let folds: Vec<u64> = entries
            .iter()
            .map(|(tenant, _)| fold_factor(&tenant.mapping))
            .collect();
        let steps = replays
            .iter()
            .map(|r| r.compute_cycles.len())
            .max()
            .unwrap_or(0);

        // --- Shared timeline: max over disjoint NC runs, sum on the
        // bus, weighted round-robin deciding who waits for whom.
        let n = entries.len();
        let mut total_cycles = 0u64;
        let mut bus_busy_cycles = 0u64;
        let mut active_steps = 0usize;
        let mut tenant_cycles = vec![0u64; n];
        let mut stall_cycles = vec![0u64; n];
        let mut pending = vec![0u64; n];
        let mut finish = vec![0u64; n];
        for t in 0..steps {
            let mut local = 0u64;
            let mut bus = 0u64;
            let mut any_active = false;
            for (i, (replay, &fold)) in replays.iter().zip(&folds).enumerate() {
                pending[i] = 0;
                if t < replay.compute_cycles.len() {
                    local = local.max((replay.compute_cycles[t] + replay.comm_cycles[t]) * fold);
                    pending[i] = replay.bus_cycles[t];
                    bus += replay.bus_cycles[t];
                    any_active |= replay.compute_cycles[t] > 0;
                }
            }
            // Work-conserving WRR service of this step's bus
            // transactions, in tenant order: tenant i is granted up to
            // quanta[i] cycles per round until its backlog drains, and
            // its finish time is the arbitration cycle its last
            // transaction was served at. Full rounds in which nobody
            // drains are batched (no per-tenant finish can land inside
            // them and elapsed only accumulates whole grants, so the
            // skip is bit-identical to iterating them), keeping the
            // arbiter O(drain events × tenants) per step instead of
            // O(bus cycles × tenants).
            finish[..n].fill(0);
            let mut elapsed = 0u64;
            loop {
                let rounds_to_drain = pending
                    .iter()
                    .zip(&quanta)
                    .filter(|(&p, _)| p > 0)
                    .map(|(&p, &q)| p.div_ceil(q))
                    .min();
                let Some(rounds) = rounds_to_drain else { break };
                if rounds > 1 {
                    let whole = rounds - 1;
                    for (p, &q) in pending.iter_mut().zip(&quanta) {
                        if *p > 0 {
                            *p -= whole * q;
                            elapsed += whole * q;
                        }
                    }
                }
                // One explicit round in tenant order — at least one
                // tenant drains here and records its finish time.
                for i in 0..n {
                    if pending[i] > 0 {
                        let served = pending[i].min(quanta[i]);
                        pending[i] -= served;
                        elapsed += served;
                        if pending[i] == 0 {
                            finish[i] = elapsed;
                        }
                    }
                }
            }
            for (i, replay) in replays.iter().enumerate() {
                if t < replay.compute_cycles.len() {
                    let own_local = (replay.compute_cycles[t] + replay.comm_cycles[t]) * folds[i];
                    stall_cycles[i] += finish[i] - replay.bus_cycles[t];
                    tenant_cycles[i] += (own_local + finish[i]).max(1);
                }
            }
            total_cycles += (local + bus).max(1);
            bus_busy_cycles += bus;
            if any_active {
                active_steps += 1;
            }
        }
        let latency = cfg.frequency.cycles_to_time(total_cycles);

        // --- Ledger: every replayed tenant's dynamic charges, then
        // leakage of the occupied fabric. "Occupied" is a property of
        // pool *residency*, not of this round's trace set: a resident
        // tenant's silicon is powered whether or not it ran this round.
        // The domain is the same min-of-physical-and-mapped one the
        // single-tenant simulator charges, so a pool whose only resident
        // is the one replayed tenant reproduces it exactly.
        let mut energy = EnergyBreakdown::new();
        for replay in &replays {
            energy.merge(&replay.energy);
        }
        let sram = SramSpec::new(cfg.input_sram_bytes, cfg.packet_bits).build();
        let physical_mpes_cap = cfg.physical_ncs * cfg.mpes_per_nc();
        let resident_mpes: usize = self
            .pool
            .tenants()
            .iter()
            .map(|tenant| tenant.mapping.placement.mpes_used)
            .sum();
        let resident_ncs: usize = self
            .pool
            .tenants()
            .iter()
            .map(|tenant| tenant.mapping.placement.ncs_used)
            .sum();
        let occupied_mpes = physical_mpes_cap.min(resident_mpes.max(1));
        let occupied_switch_ncs = cfg.physical_ncs.min(resident_ncs.max(1));
        let logic_leak = logic_leakage_power(cfg, occupied_mpes, occupied_switch_ncs);
        energy.charge(Category::LogicLeakage, logic_leak * latency);
        energy.charge(Category::MemoryLeakage, sram.leakage() * latency);

        // --- Idle remainder of the pool + per-tenant amortization. The
        // occupied and idle domains partition the physical pool, so on
        // an ungated pool ledger leakage + idle_leakage equals
        // `pool_leakage_power(cfg) × latency` by construction; the
        // idle-gating factor scales only this idle term (× 1.0 is
        // IEEE-exact, keeping the default bit-identical to PR 4/5).
        let idle_mpes = physical_mpes_cap - occupied_mpes;
        let idle_switch_ncs = cfg.physical_ncs - occupied_switch_ncs;
        let idle_leakage = logic_leakage_power(cfg, idle_mpes, idle_switch_ncs)
            * latency
            * self.pool.idle_gating();
        let pool_leakage =
            energy.get(Category::LogicLeakage) + energy.get(Category::MemoryLeakage) + idle_leakage;

        let tenants = entries
            .iter()
            .zip(replays)
            .enumerate()
            .map(|(i, ((tenant, _), replay))| {
                // NC-proportional amortization over *residents*: replaying
                // a subset of the pool bills each replayed tenant its own
                // floorplan share and leaves the absent residents' shares
                // unreported rather than shifting them onto this round.
                let nc_share =
                    tenant.mapping.placement.ncs_used as f64 / resident_ncs.max(1) as f64;
                TenantReport {
                    tenant: tenant.id,
                    name: tenant.name.clone(),
                    weight: (quanta[i] as u32),
                    leakage_share: pool_leakage * nc_share,
                    steps: replay.compute_cycles.len(),
                    active_steps: replay.compute_cycles.iter().filter(|&&c| c > 0).count(),
                    tenant_cycles: tenant_cycles[i],
                    bus_stall_cycles: stall_cycles[i],
                    latency: cfg.frequency.cycles_to_time(tenant_cycles[i]),
                    energy: replay.energy,
                    layers: replay.layers,
                }
            })
            .collect();

        SharedReport {
            energy,
            idle_leakage,
            steps,
            active_steps,
            total_cycles,
            bus_busy_cycles,
            latency,
            throughput: cost::safe_throughput(latency) * traces.len() as f64,
            tenants,
        }
    }
}

/// Greatest common divisor (`gcd(0, x) == x`, so a fold seeded with 0
/// yields the gcd of the whole weight list).
fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::map::Mapper;
    use resparc_energy::units::Energy;
    use resparc_neuro::encoding::RegularEncoder;
    use resparc_neuro::network::Network;
    use resparc_neuro::topology::Topology;

    use crate::fabric::pool_leakage_power;

    fn small_net(seed: u64) -> Network {
        Network::random(Topology::mlp(96, &[64, 10]), seed, 1.0)
    }

    fn traced(net: &Network, rate: f32, steps: usize) -> SpikeTrace {
        let inputs = net.input_count();
        let stimulus: Vec<f32> = (0..inputs).map(|i| rate * ((i % 5) as f32 / 4.0)).collect();
        let raster = RegularEncoder::new(1.0).encode(&stimulus, steps);
        let (_, trace) = net.spiking().run_traced(&raster);
        trace
    }

    #[test]
    fn single_tenant_shared_replay_is_bit_identical_to_dedicated() {
        use crate::sim::event::EventSimulator;

        let net = small_net(7);
        let trace = traced(&net, 0.8, 18);
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let id = pool.admit(&net, "solo").unwrap();

        let dedicated = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        let single = EventSimulator::new(&dedicated).run(&trace);
        let shared = SharedEventSimulator::new(&pool).run(&[(id, &trace)]);

        assert_eq!(shared.energy, single.energy, "ledger must be bit-identical");
        assert_eq!(shared.total_cycles, single.total_cycles);
        assert_eq!(shared.latency, single.latency);
        assert_eq!(shared.steps, single.steps);
        assert_eq!(shared.active_steps, single.active_steps);
        assert_eq!(shared.throughput, single.throughput);
        assert_eq!(shared.tenants[0].layers, single.layers);
        // An uncontended bus never stalls, and a lone tenant's perceived
        // latency is the makespan.
        assert_eq!(shared.tenants[0].bus_stall_cycles, 0);
        assert_eq!(shared.tenants[0].tenant_cycles, single.total_cycles);
        assert_eq!(shared.tenants[0].latency, single.latency);
    }

    #[test]
    fn shared_replay_sums_dynamic_and_overlaps_makespan() {
        use crate::sim::event::EventSimulator;

        let nets: Vec<Network> = (0..3).map(small_net).collect();
        let traces: Vec<SpikeTrace> = nets.iter().map(|n| traced(n, 0.7, 20)).collect();
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let ids: Vec<TenantId> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| pool.admit(n, &format!("t{i}")).unwrap())
            .collect();
        let pairs: Vec<(TenantId, &SpikeTrace)> = ids.iter().copied().zip(traces.iter()).collect();
        let shared = SharedEventSimulator::new(&pool).run(&pairs);

        // Per-tenant dynamic energy and tallies match a dedicated run.
        let mapper = Mapper::new(ResparcConfig::resparc_64());
        let mut serial_cycles = 0u64;
        for (net, (trace, tr)) in nets.iter().zip(traces.iter().zip(&shared.tenants)) {
            let dedicated = mapper.map_network(net).unwrap();
            let single = EventSimulator::new(&dedicated).run(trace);
            assert_eq!(tr.layers, single.layers);
            for cat in Category::ALL {
                if matches!(cat, Category::LogicLeakage | Category::MemoryLeakage) {
                    continue;
                }
                assert_eq!(tr.energy.get(cat), single.energy.get(cat), "{cat}");
            }
            serial_cycles += single.total_cycles;
        }

        // The overlapped makespan beats serial execution, even with bus
        // contention.
        assert!(
            shared.total_cycles < serial_cycles,
            "shared {} vs serial {}",
            shared.total_cycles,
            serial_cycles
        );
        assert!(shared.bus_occupancy() > 0.0 && shared.bus_occupancy() <= 1.0);
        // Contention is real: somebody waited for the bus, and every
        // tenant's perceived latency fits inside the makespan.
        assert!(shared.total_bus_stall_cycles() > 0);
        for t in &shared.tenants {
            assert!(t.tenant_cycles <= shared.total_cycles);
            assert!(t.latency <= shared.latency);
        }
        // Leakage shares amortize the entire powered pool.
        let shares: Energy = shared.tenants.iter().map(|t| t.leakage_share).sum();
        let pool_leak = pool_leakage_power(pool.config()) * shared.latency;
        assert!(
            (shares.picojoules() / pool_leak.picojoules() - 1.0).abs() < 1e-9,
            "shares {shares} vs pool {pool_leak}"
        );
        assert!(
            (shared.pool_energy().picojoules()
                / (shared
                    .tenants
                    .iter()
                    .map(|t| t.energy.total())
                    .sum::<Energy>()
                    + pool_leak)
                    .picojoules()
                - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn equal_weights_of_any_magnitude_match_the_fair_run_bit_identically() {
        let nets: Vec<Network> = (0..3).map(small_net).collect();
        let traces: Vec<SpikeTrace> = nets.iter().map(|n| traced(n, 0.7, 16)).collect();
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let ids: Vec<TenantId> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| pool.admit(n, &format!("t{i}")).unwrap())
            .collect();
        let pairs: Vec<(TenantId, &SpikeTrace)> = ids.iter().copied().zip(traces.iter()).collect();

        let sim = SharedEventSimulator::new(&pool);
        let fair = sim.run(&pairs);
        // gcd normalisation: [5, 5, 5] is the same schedule as [1, 1, 1]
        // — the whole report (stall and latency accounting included) is
        // bit-identical, not merely the aggregates.
        assert_eq!(sim.run_weighted(&pairs, &[5, 5, 5]), fair);
        assert_eq!(sim.run_weighted(&pairs, &[1, 1, 1]), fair);
        for t in &fair.tenants {
            assert_eq!(t.weight, 1);
        }
    }

    #[test]
    fn weights_shift_stalls_but_never_the_aggregates() {
        let nets: Vec<Network> = (0..2).map(small_net).collect();
        let traces: Vec<SpikeTrace> = nets.iter().map(|n| traced(n, 0.9, 16)).collect();
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let ids: Vec<TenantId> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| pool.admit(n, &format!("t{i}")).unwrap())
            .collect();
        let pairs: Vec<(TenantId, &SpikeTrace)> = ids.iter().copied().zip(traces.iter()).collect();

        let sim = SharedEventSimulator::new(&pool);
        let fair = sim.run(&pairs);
        let favoured = sim.run_weighted(&pairs, &[6, 1]);

        // The bus is work-conserving: every aggregate is
        // weight-independent.
        assert_eq!(favoured.energy, fair.energy);
        assert_eq!(favoured.total_cycles, fair.total_cycles);
        assert_eq!(favoured.bus_busy_cycles, fair.bus_busy_cycles);
        assert_eq!(favoured.latency, fair.latency);
        assert_eq!(favoured.idle_leakage, fair.idle_leakage);
        // QoS is zero-sum: the favoured tenant waits less than under
        // fair arbitration, the other at least as much.
        assert!(
            favoured.tenants[0].bus_stall_cycles < fair.tenants[0].bus_stall_cycles,
            "favoured stall {} vs fair {}",
            favoured.tenants[0].bus_stall_cycles,
            fair.tenants[0].bus_stall_cycles
        );
        assert!(favoured.tenants[1].bus_stall_cycles >= fair.tenants[1].bus_stall_cycles);
        assert!(favoured.tenants[0].tenant_cycles <= fair.tenants[0].tenant_cycles);
        assert!(favoured.tenants[0].latency <= fair.tenants[0].latency);
        assert_eq!(favoured.tenants[0].weight, 6);
        assert_eq!(favoured.tenants[1].weight, 1);
    }

    #[test]
    fn subset_replay_bills_residency_not_the_trace_set() {
        // Leakage domains follow pool residency: replaying one of two
        // resident tenants must still treat the absent resident's
        // silicon as occupied (not idle), and must not shift its
        // floorplan share of the pool leakage onto the tenant that ran.
        let cfg = ResparcConfig::resparc_64();
        let a = small_net(1);
        let b = small_net(2);
        let trace = traced(&a, 0.8, 12);

        let mut solo = FabricPool::new(cfg.clone());
        let solo_id = solo.admit(&a, "a").unwrap();
        let solo_run = SharedEventSimulator::new(&solo).run(&[(solo_id, &trace)]);

        let mut pool = FabricPool::new(cfg);
        let id_a = pool.admit(&a, "a").unwrap();
        pool.admit(&b, "b").unwrap();
        let shared = SharedEventSimulator::new(&pool).run(&[(id_a, &trace)]);

        // Same trace, same timeline — but the two-resident pool's
        // occupied-leakage domain includes b's NCs.
        assert_eq!(shared.latency, solo_run.latency);
        assert!(
            shared.energy.get(Category::LogicLeakage) > solo_run.energy.get(Category::LogicLeakage)
        );
        assert!(shared.idle_leakage < solo_run.idle_leakage);
        // a pays its own NC-proportional share of the pool, strictly
        // less than the whole pool's leakage (b's share goes unreported,
        // not onto a).
        let pool_leak = pool_leakage_power(pool.config()) * shared.latency;
        assert!(shared.tenants[0].leakage_share < pool_leak);
        assert!(shared.tenants[0].leakage_share < solo_run.tenants[0].leakage_share);
        // Occupied + idle still partitions the full powered pool.
        let accounted = shared.energy.get(Category::LogicLeakage)
            + shared.energy.get(Category::MemoryLeakage)
            + shared.idle_leakage;
        assert!((accounted.picojoules() / pool_leak.picojoules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ungated_factor_reproduces_default_billing_bit_identically() {
        // `with_idle_gating(1.0)` must be a bit-identical no-op: the
        // whole SharedReport (idle term, shares, aggregates) matches a
        // pool that never heard of gating.
        let nets: Vec<Network> = (0..2).map(small_net).collect();
        let traces: Vec<SpikeTrace> = nets.iter().map(|n| traced(n, 0.7, 14)).collect();
        let run = |pool: FabricPool| {
            let mut pool = pool;
            let ids: Vec<TenantId> = nets
                .iter()
                .enumerate()
                .map(|(i, n)| pool.admit(n, &format!("t{i}")).unwrap())
                .collect();
            let pairs: Vec<(TenantId, &SpikeTrace)> =
                ids.iter().copied().zip(traces.iter()).collect();
            SharedEventSimulator::new(&pool).run_weighted(&pairs, &[4, 1])
        };
        let default = run(FabricPool::new(ResparcConfig::resparc_64()));
        let ungated = run(FabricPool::new(ResparcConfig::resparc_64()).with_idle_gating(1.0));
        assert_eq!(ungated, default);
    }

    #[test]
    fn idle_gating_scales_only_the_idle_domain() {
        let net = small_net(5);
        let trace = traced(&net, 0.8, 12);
        let run = |factor: f64| {
            let mut pool = FabricPool::new(ResparcConfig::resparc_64()).with_idle_gating(factor);
            let id = pool.admit(&net, "solo").unwrap();
            SharedEventSimulator::new(&pool).run(&[(id, &trace)])
        };
        let full = run(1.0);
        let quarter = run(0.25);
        let off = run(0.0);

        // The replay and the occupied-domain ledger never move.
        assert_eq!(quarter.energy, full.energy);
        assert_eq!(quarter.latency, full.latency);
        assert_eq!(quarter.total_cycles, full.total_cycles);
        assert_eq!(off.energy, full.energy);

        // The idle term scales linearly with the factor; perfect gating
        // zeroes it and the pool bill collapses onto the ledger.
        assert!(full.idle_leakage > Energy::ZERO);
        assert!(
            (quarter.idle_leakage.picojoules() / full.idle_leakage.picojoules() - 0.25).abs()
                < 1e-12
        );
        assert!(off.idle_leakage.is_zero());
        assert_eq!(off.pool_energy(), off.total_energy());
        assert!(quarter.pool_energy() < full.pool_energy());
        // Tenant amortization follows: the gated pool bills its tenant
        // a smaller leakage share.
        assert!(quarter.tenants[0].leakage_share < full.tenants[0].leakage_share);
    }

    #[test]
    fn out_of_range_gating_factor_panics() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let result = std::panic::catch_unwind(|| {
                FabricPool::new(ResparcConfig::resparc_64()).with_idle_gating(bad)
            });
            assert!(result.is_err(), "factor {bad} must be rejected");
        }
    }

    #[test]
    fn mismatched_tenant_trace_panics() {
        let net = small_net(3);
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let id = pool.admit(&net, "a").unwrap();
        let bad = SpikeTrace::silent(&[96, 10], 4);
        let result = std::panic::catch_unwind(|| {
            SharedEventSimulator::new(&pool).run(&[(id, &bad)]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn zero_or_mismatched_weights_panic() {
        let net = small_net(3);
        let trace = traced(&net, 0.5, 6);
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let id = pool.admit(&net, "a").unwrap();
        let sim = SharedEventSimulator::new(&pool);
        assert!(std::panic::catch_unwind(|| sim.run_weighted(&[(id, &trace)], &[0])).is_err());
        assert!(std::panic::catch_unwind(|| sim.run_weighted(&[(id, &trace)], &[1, 1])).is_err());
    }
}
