//! Multi-tenant fabric: several mapped networks co-resident on one
//! physical NeuroCell pool, their event traces interleaved per timestep,
//! with dynamic admission, packing policies and per-tenant bus QoS.
//!
//! RESPARC's reconfigurability pitch is that one mPE fabric serves many
//! SNN topologies. The mapper and simulators elsewhere in this crate are
//! single-tenant — every [`Mapping`] assumes it owns NC `0..N` and every
//! replay assumes an idle fabric. This module hosts the shared view,
//! split across three layers:
//!
//! * [`FabricPool`] ([`pool`]) owns the physical NC inventory of a
//!   [`ResparcConfig`] and admits mappings at NeuroCell granularity: a
//!   tenant receives a contiguous run of free NCs chosen by the pool's
//!   [`PackingPolicy`] — leftmost fit ([`PackingPolicy::FirstFit`]),
//!   smallest fit ([`PackingPolicy::BestFit`]), or best-fit with a
//!   compacting fallback ([`PackingPolicy::Defragment`]) that slides
//!   resident tenants toward NC 0 via
//!   [`Placement::translated_to`](crate::map::Placement::translated_to)
//!   when no contiguous run fits but the total free capacity does.
//!   The tenant's [`Placement`](crate::map::Placement) is expressed in
//!   pool coordinates (the origin-0 probe is translated into the
//!   allocated run — identical to
//!   [`Mapper::map_network_at`](crate::map::Mapper::map_network_at)
//!   there, without re-partitioning), and admission fails with a typed
//!   [`AdmitError`] when the policy finds no run. Evicting a tenant
//!   restores the free list exactly. Every NC also carries an
//!   [`NcHealth`] state: [`FabricPool::fail_nc`] /
//!   [`FabricPool::drain_nc`] take cells out of service (evicting the
//!   occupant tenant), admission and defragmentation route around
//!   unhealthy cells, and [`AdmitError::NoHealthyCapacity`] reports
//!   rejections that only exist because cells are sick.
//! * [`SharedEventSimulator`] ([`shared`]) replays one
//!   [`SpikeTrace`](resparc_neuro::trace::SpikeTrace) per tenant
//!   through the pool **concurrently**.
//!   The interleave model: tenants sit on disjoint NC runs, so per
//!   timestep their compute phases and switch traffic overlap — the step
//!   costs the *maximum* of the tenants' local cycles — while the global
//!   bus and input SRAM are shared and serialise — the step *sums* every
//!   tenant's bus transactions. The serialised bus cycles are
//!   apportioned by **weighted round-robin** ([`SharedEventSimulator::
//!   run_weighted`]): a tenant with arbitration weight `w` is served `w`
//!   bus cycles per grant round, and the cycles its transactions spend
//!   waiting behind other tenants are reported as
//!   [`TenantReport::bus_stall_cycles`] along with the tenant's own
//!   perceived [`TenantReport::latency`]. Equal weights (any magnitude —
//!   weights are normalised by their gcd) are the fair arbitration
//!   [`SharedEventSimulator::run`] performs, and a pool with one tenant
//!   reproduces the dedicated-fabric
//!   [`EventSimulator`](crate::sim::event::EventSimulator) report
//!   *bit-identically* (every per-event charge goes through the exact
//!   same replay core).
//! * [`FabricScheduler`] ([`scheduler`]) makes tenancy **dynamic across
//!   replay rounds**: requests arrive over time
//!   ([`FabricScheduler::submit`]), are admitted when the pool's policy
//!   finds capacity (possibly after defragmentation), queue FIFO
//!   otherwise, and are evicted when their service completes — so the
//!   fabric is re-partitioned *while a workload stream is in flight*
//!   instead of once per batch. `resparc_workloads::sweep` builds the
//!   `churn_sweep` comparison (dynamic churn vs a static co-resident
//!   baseline) on top.
//!
//! The economics of co-residency are leakage and occupancy: a pool
//! executing tenants serially bills the whole powered chip's leakage for
//! the *sum* of their latencies, while co-resident tenants amortize it
//! over one overlapped makespan. [`SharedReport`] exposes the split —
//! per-tenant dynamic energy, the occupied-fabric leakage charged to the
//! ledger, the [`idle-NC leakage`](SharedReport::idle_leakage) of the
//! pool remainder, and bus occupancy — and
//! `resparc_workloads::sweep::multi_tenant_sweep` turns it into the
//! serial-vs-co-resident comparison.

use std::fmt;

use resparc_energy::sram::SramSpec;
use resparc_energy::units::Power;

use crate::config::ResparcConfig;
use crate::map::{MapError, Mapping};

pub mod pool;
pub mod scheduler;
pub mod shared;

pub use pool::{FabricPool, NcHealth, PackingPolicy};
pub use scheduler::{FabricScheduler, RequestId, ScheduleError, ScheduledTenant, ServiceRecord};
pub use shared::{SharedEventSimulator, SharedReport, TenantReport};

/// Handle of one admitted tenant (stable across evictions of others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub(crate) u32);

impl TenantId {
    /// The raw admission index (monotone per pool).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Why the pool rejected an admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The network could not be mapped at all (invalid configuration).
    Map(MapError),
    /// No contiguous run of free NeuroCells is large enough (after
    /// defragmentation, if the pool's [`PackingPolicy`] compacts).
    ///
    /// All counts are **size-aware**: on a heterogeneous pool
    /// ([`FabricPool::heterogeneous`]) they tally cells of the
    /// rejected probe's MCA size class only, so a long free run of
    /// *smaller* crossbars is never reported as capacity the tenant
    /// could have used. On a homogeneous pool every cell is the one
    /// class and the counts are the historical pool-wide values.
    CapacityExhausted {
        /// NeuroCells the tenant needs (contiguously, all of its own
        /// size class).
        needed_ncs: usize,
        /// Free NeuroCells of the tenant's size class (any position).
        free_ncs: usize,
        /// Longest contiguous free run of the tenant's size class
        /// currently available.
        largest_free_run: usize,
    },
    /// Admission failed *because of unhealthy NeuroCells*: the pool's
    /// healthy free capacity cannot cover the request, but restoring
    /// the quarantined/failed cells to healthy free capacity would.
    /// Pools without faults never return this variant. Like
    /// [`CapacityExhausted`](Self::CapacityExhausted), the counts are
    /// size-aware — they tally the rejected probe's class only.
    NoHealthyCapacity {
        /// NeuroCells the tenant needs (contiguously, all of its own
        /// size class).
        needed_ncs: usize,
        /// Same-class NeuroCells currently quarantined (drained,
        /// restorable).
        quarantined: usize,
        /// Same-class NeuroCells permanently failed.
        failed: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Map(e) => write!(f, "mapping failed: {e}"),
            AdmitError::CapacityExhausted {
                needed_ncs,
                free_ncs,
                largest_free_run,
            } => write!(
                f,
                "capacity exhausted: tenant needs {needed_ncs} contiguous NeuroCell(s), pool has \
                 {free_ncs} free ({largest_free_run} contiguous)"
            ),
            AdmitError::NoHealthyCapacity {
                needed_ncs,
                quarantined,
                failed,
            } => write!(
                f,
                "no healthy capacity: tenant needs {needed_ncs} NeuroCell(s) the pool could \
                 cover if its {quarantined} quarantined and {failed} failed NeuroCell(s) were \
                 healthy"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// One network resident on the pool: its mapping is placed in pool
/// coordinates (spans carry the NC-run offset the pool allocated).
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Admission handle.
    pub id: TenantId,
    /// Caller-supplied label (reports, figures).
    pub name: String,
    /// The tenant's mapping, placed at its allocated NC origin.
    pub mapping: Mapping,
}

impl Tenant {
    /// First NeuroCell this tenant occupies.
    pub fn first_nc(&self) -> usize {
        self.mapping.placement.origin_nc
    }

    /// One past the last NeuroCell this tenant occupies.
    pub fn end_nc(&self) -> usize {
        self.mapping.placement.end_nc()
    }

    /// NeuroCells this tenant occupies.
    pub fn nc_count(&self) -> usize {
        self.mapping.placement.ncs_used
    }
}

/// Leakage power of `mpes` mPEs plus the switch fabric of `switch_ncs`
/// NeuroCells — the one composition every leakage domain (dedicated
/// chip, occupied pool, idle remainder, whole pool) is built from, so
/// the domains can never drift apart term-by-term.
pub(crate) fn logic_leakage_power(config: &ResparcConfig, mpes: usize, switch_ncs: usize) -> Power {
    config.catalog.mpe_leakage * mpes as f64
        + config.catalog.switch_leakage * (switch_ncs * config.switches_per_nc()) as f64
}

/// Leakage power of the whole powered pool: every physical mPE and
/// switch plus the shared input SRAM. This is what a serially-executed
/// tenant bills for its entire latency — and what co-residency amortizes.
pub fn pool_leakage_power(config: &ResparcConfig) -> Power {
    let sram = SramSpec::new(config.input_sram_bytes, config.packet_bits).build();
    logic_leakage_power(
        config,
        config.physical_ncs * config.mpes_per_nc(),
        config.physical_ncs,
    ) + sram.leakage()
}
