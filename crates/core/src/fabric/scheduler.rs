//! Dynamic admission across replay rounds: arrivals queue, departures
//! free capacity mid-stream.
//!
//! PR 4's [`FabricPool`] realised reconfigurability *statically*: the
//! tenant set was fixed before a replay round and never changed while
//! traffic was in flight. [`FabricScheduler`] closes the loop — it owns
//! a pool and drives an arrival/departure schedule over **rounds** (one
//! round = one interleaved shared replay of the currently-resident
//! tenants):
//!
//! * [`submit`](FabricScheduler::submit) maps a request once (the probe
//!   is cached, never re-partitioned) and appends it to a FIFO queue;
//! * [`begin_round`](FabricScheduler::begin_round) admits from the
//!   queue head while the pool's [`PackingPolicy`] finds capacity —
//!   including room a [`PackingPolicy::Defragment`] compaction can
//!   create — and returns the round's residents with their
//!   bus-arbitration weights (by default head-of-line blocking keeps
//!   admission strictly FIFO: no request starves behind a later,
//!   smaller one);
//! * [`with_backfill`](FabricScheduler::with_backfill) relaxes strict
//!   FIFO: while the head is blocked on capacity, later requests that
//!   fit are admitted out of order — but only for a bounded
//!   **starvation window** of rounds per blocked head. When the window
//!   expires, backfilling stops, so the head's total wait is bounded by
//!   the window plus the residual service of the tenants resident at
//!   expiry — a wide request is delayed, never starved (tested in
//!   `backfill_window_bounds_head_starvation`);
//! * [`cancel`](FabricScheduler::cancel) preempts a request wherever it
//!   is (evicting it mid-service or dropping it from the queue),
//!   retiring it as an [`ServiceRecord::aborted`] record — the hook
//!   `resparc_workloads::serving` uses to evict over-budget tenants;
//! * the caller replays the round (e.g.
//!   [`SharedEventSimulator::run_weighted`](crate::fabric::SharedEventSimulator::run_weighted));
//! * [`end_round`](FabricScheduler::end_round) retires one service
//!   round per resident and **evicts** tenants whose service completed,
//!   freeing their NC runs for the next round's admissions.
//!
//! The scheduler is also the **recovery loop** for NeuroCell faults:
//! [`fail_nc`](FabricScheduler::fail_nc) /
//! [`drain_nc`](FabricScheduler::drain_nc) forward to the pool's health
//! transitions, and when the sick cell evicts a resident tenant the
//! scheduler re-queues that request at the **head** of the queue (its
//! cached probe is reused — no re-partitioning) so the next
//! [`begin_round`](FabricScheduler::begin_round) re-admits it wherever
//! healthy capacity remains. The interrupted round is voided (the
//! victim earns no service credit for it); the rounds between
//! interruption and re-admission are counted as
//! [`ServiceRecord::recovery_rounds`]. A queued request wider than the
//! pool's largest healthy segment can never be admitted again —
//! `begin_round` retires it with [`ServiceRecord::aborted`] set instead
//! of letting it block the queue forever.
//!
//! Every request's life cycle is recorded as a [`ServiceRecord`]
//! (submission, admission, interruptions and departure rounds), so
//! queue-wait, recovery and utilization statistics fall out of the log
//! — `resparc_workloads::sweep::churn_sweep` builds the
//! dynamic-vs-static comparison on top.
//!
//! [`PackingPolicy`]: crate::fabric::PackingPolicy
//! [`PackingPolicy::Defragment`]: crate::fabric::PackingPolicy::Defragment

use std::collections::VecDeque;
use std::fmt;

use resparc_neuro::network::Network;

use crate::fabric::{FabricPool, TenantId};
use crate::map::{MapError, Mapping};

/// Handle of one submitted service request (stable from submission
/// through departure, unlike the [`TenantId`] that only exists while
/// the request is resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u32);

impl RequestId {
    /// The raw submission index (monotone per scheduler).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request#{}", self.0)
    }
}

/// A violation of the scheduler's cross-structure invariants, surfaced
/// by [`FabricScheduler::check_consistency`]. These are bugs, not
/// operational conditions: a healthy scheduler never returns one. The
/// bounded model checker in `resparc-analysis` calls the check after
/// every transition of every explored interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An active record's tenant is unknown to the pool, or resident
    /// with a different NeuroCell footprint than the scheduler recorded.
    TenantNotResident {
        /// The request whose residency is inconsistent.
        request: RequestId,
        /// The stale (or mismatched) pool handle.
        tenant: TenantId,
    },
    /// A request id appears more than once across queue, active set and
    /// completed log — a request was duplicated instead of moved.
    DuplicateRequest {
        /// The duplicated id.
        request: RequestId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::TenantNotResident { request, tenant } => write!(
                f,
                "{request} is active as tenant {tenant:?} but the pool disagrees"
            ),
            ScheduleError::DuplicateRequest { request } => {
                write!(f, "{request} appears in more than one scheduler structure")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One resident tenant in the round [`FabricScheduler::begin_round`]
/// planned: what to replay and at which bus-arbitration weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTenant {
    /// The originating request.
    pub request: RequestId,
    /// The pool residency handle (valid until the request departs).
    pub tenant: TenantId,
    /// The request's label.
    pub name: String,
    /// Bus-arbitration weight for this round's shared replay.
    pub weight: u32,
    /// Service rounds already completed (0 on the admission round) —
    /// the index of the presentation this round should replay.
    pub rounds_served: usize,
}

/// The recorded life cycle of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// The request this record describes.
    pub request: RequestId,
    /// The request's label.
    pub name: String,
    /// NeuroCells the request's mapping occupies while resident.
    pub ncs: usize,
    /// Bus-arbitration weight.
    pub weight: u32,
    /// Round the request was submitted in.
    pub submitted_round: usize,
    /// Round the request was *first* admitted in (it replayed that
    /// round). An aborted request that was never admitted records the
    /// abort round here.
    pub admitted_round: usize,
    /// Round the request's final service round ran in (or the round an
    /// aborted request was retired in); `None` while still resident.
    pub departed_round: Option<usize>,
    /// Service rounds completed so far.
    pub rounds_served: usize,
    /// Times a NeuroCell fault ([`FabricScheduler::fail_nc`] /
    /// [`FabricScheduler::drain_nc`]) evicted this request mid-service.
    pub interruptions: usize,
    /// Rounds lost to fault recovery: for each interruption, the rounds
    /// between the eviction and the re-admission (the voided interrupted
    /// round included).
    pub recovery_rounds: usize,
    /// The request was retired *unserved to completion* because it
    /// needs more NeuroCells than the pool's largest healthy segment —
    /// it could never be admitted again. Fault-free pools never abort.
    pub aborted: bool,
}

impl ServiceRecord {
    /// Rounds the request waited in the queue before first admission.
    pub fn wait_rounds(&self) -> usize {
        self.admitted_round - self.submitted_round
    }
}

/// A queued request: the probe mapping is computed once at submission
/// (a fault-evicted request re-enters the queue with its service
/// progress and interruption history carried along).
#[derive(Debug, Clone)]
struct Pending {
    request: RequestId,
    name: String,
    probe: Mapping,
    service_rounds: usize,
    weight: u32,
    submitted_round: usize,
    rounds_served: usize,
    interruptions: usize,
    recovery_rounds: usize,
    first_admitted_round: Option<usize>,
    interrupted_round: usize,
}

/// A resident request.
#[derive(Debug, Clone)]
struct Active {
    request: RequestId,
    tenant: TenantId,
    name: String,
    ncs: usize,
    weight: u32,
    submitted_round: usize,
    admitted_round: usize,
    service_rounds: usize,
    rounds_served: usize,
    interruptions: usize,
    recovery_rounds: usize,
}

/// Drives dynamic admission/eviction of a [`FabricPool`] across replay
/// rounds; see the [module docs](self) for the round protocol.
#[derive(Debug, Clone)]
pub struct FabricScheduler {
    pool: FabricPool,
    round: usize,
    next_request: u32,
    queue: VecDeque<Pending>,
    active: Vec<Active>,
    completed: Vec<ServiceRecord>,
    /// `Some(window)` enables backfilling behind a blocked head for at
    /// most `window` rounds; `None` is the strict-FIFO PR-5 behaviour.
    backfill_window: Option<usize>,
    /// The queue head currently blocked on capacity and the round it
    /// first failed admission — the starvation clock backfilling is
    /// bounded by. Cleared whenever the head changes or admits.
    blocked_head: Option<(RequestId, usize)>,
}

impl FabricScheduler {
    /// Creates a scheduler owning `pool`. Tenants already resident in
    /// the pool are left untouched (they occupy capacity but never
    /// depart — static residents under a dynamic workload).
    pub fn new(pool: FabricPool) -> Self {
        Self {
            pool,
            round: 0,
            next_request: 0,
            queue: VecDeque::new(),
            active: Vec::new(),
            completed: Vec::new(),
            backfill_window: None,
            blocked_head: None,
        }
    }

    /// Enables **backfilling** with a bounded starvation window: when
    /// the queue head does not fit the pool, later queued requests that
    /// *do* fit may be admitted out of order — but only while the head
    /// has been blocked for fewer than `window` rounds. Once the window
    /// expires, backfilling stops and residents drain until the head
    /// admits, which bounds head-of-line starvation at `window` plus
    /// the residual service of the tenants already resident when the
    /// window closed (no new work is admitted past it). The blocked
    /// clock restarts whenever the head changes.
    ///
    /// Without this (the default), admission is strictly FIFO — a
    /// blocked head stalls everything behind it (PR-5 semantics,
    /// asserted by `head_of_line_blocking_is_strictly_fifo`).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (that would be strict FIFO spelled
    /// confusingly — use [`new`](Self::new)).
    pub fn with_backfill(mut self, window: usize) -> Self {
        assert!(window > 0, "a zero backfill window is strict FIFO");
        self.backfill_window = Some(window);
        self
    }

    /// The backfill starvation window, if backfilling is enabled.
    pub fn backfill_window(&self) -> Option<usize> {
        self.backfill_window
    }

    /// The scheduled pool (its policy decides how admissions pack).
    pub fn pool(&self) -> &FabricPool {
        &self.pool
    }

    /// The current round index (0 before the first
    /// [`begin_round`](Self::begin_round)).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Requests waiting for capacity, in FIFO order.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no request is queued or resident (future submissions may
    /// still arrive — the *caller* owns the arrival schedule).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Life-cycle records of departed requests, in departure order.
    pub fn completed(&self) -> &[ServiceRecord] {
        &self.completed
    }

    /// Request ids waiting for capacity, head first.
    pub fn queued_requests(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.queue.iter().map(|p| p.request)
    }

    /// Resident requests with their pool residency handles, in
    /// admission order.
    pub fn active_requests(&self) -> impl Iterator<Item = (RequestId, TenantId)> + '_ {
        self.active.iter().map(|a| (a.request, a.tenant))
    }

    /// Validates the scheduler's cross-structure invariants: every
    /// active record's tenant is resident in the pool with the recorded
    /// NeuroCell footprint, and no request id appears in more than one
    /// of queue / active set / completed log. Cheap (linear in the
    /// request population); a healthy scheduler always returns `Ok`.
    ///
    /// # Errors
    ///
    /// The first [`ScheduleError`] violation found, if any.
    pub fn check_consistency(&self) -> Result<(), ScheduleError> {
        for a in &self.active {
            match self.pool.tenant(a.tenant) {
                Some(t) if t.nc_count() == a.ncs => {}
                _ => {
                    return Err(ScheduleError::TenantNotResident {
                        request: a.request,
                        tenant: a.tenant,
                    })
                }
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        let queued = self.queue.iter().map(|p| p.request);
        let active = self.active.iter().map(|a| a.request);
        let completed = self.completed.iter().map(|r| r.request);
        for request in queued.chain(active).chain(completed) {
            if !seen.insert(request) {
                return Err(ScheduleError::DuplicateRequest { request });
            }
        }
        Ok(())
    }

    /// Submits a request: the network is mapped once against the pool's
    /// configuration and queued FIFO for `service_rounds` replay rounds
    /// at bus-arbitration weight `weight`. Admission happens in
    /// [`begin_round`](Self::begin_round); a request submitted before a
    /// round begins can be admitted into that same round (wait 0).
    ///
    /// # Errors
    ///
    /// [`MapError`] if the network cannot be mapped at all. A network
    /// too large for the whole pool maps fine but is retired as
    /// [aborted](ServiceRecord::aborted) at the next
    /// [`begin_round`](Self::begin_round); size requests with
    /// [`FabricPool::physical_ncs`] in mind.
    ///
    /// # Panics
    ///
    /// Panics if `service_rounds` or `weight` is zero.
    pub fn submit(
        &mut self,
        network: &Network,
        name: &str,
        service_rounds: usize,
        weight: u32,
    ) -> Result<RequestId, MapError> {
        let probe = crate::map::Mapper::new(self.pool.config().clone()).map_network(network)?;
        Ok(self.submit_mapped(probe, name, service_rounds, weight))
    }

    /// Submits an already-mapped probe (produced against the pool's
    /// configuration) — the queueing core [`submit`](Self::submit)
    /// delegates to. Callers that already sized a request (e.g.
    /// `resparc_workloads::churn_sweep` validating footprints up front)
    /// use this to avoid partitioning the same network twice.
    ///
    /// # Panics
    ///
    /// Panics if `service_rounds` or `weight` is zero.
    pub fn submit_mapped(
        &mut self,
        probe: Mapping,
        name: &str,
        service_rounds: usize,
        weight: u32,
    ) -> RequestId {
        assert!(
            service_rounds > 0,
            "a request must serve at least one round"
        );
        assert!(weight > 0, "arbitration weights must be positive");
        let request = RequestId(self.next_request);
        self.next_request += 1;
        self.queue.push_back(Pending {
            request,
            name: name.to_string(),
            probe,
            service_rounds,
            weight,
            submitted_round: self.round,
            rounds_served: 0,
            interruptions: 0,
            recovery_rounds: 0,
            first_admitted_round: None,
            interrupted_round: 0,
        });
        request
    }

    /// Marks NeuroCell `nc` permanently [`Failed`](crate::fabric::NcHealth::Failed)
    /// via [`FabricPool::fail_nc`]. If the cell was occupied by a
    /// scheduled tenant, that request is evicted and re-queued at the
    /// **head** of the queue for re-admission (returning its id): its
    /// in-flight round is voided, its completed service rounds are kept,
    /// and [`ServiceRecord::interruptions`] /
    /// [`ServiceRecord::recovery_rounds`] account the disruption.
    /// Returns `None` when the cell was free (or held a non-scheduled
    /// static resident, which is simply evicted).
    pub fn fail_nc(&mut self, nc: usize) -> Option<RequestId> {
        let evicted = self.pool.fail_nc(nc);
        self.requeue_interrupted(evicted)
    }

    /// Quarantines NeuroCell `nc` via [`FabricPool::drain_nc`] —
    /// identical to [`fail_nc`](Self::fail_nc) for the occupant (evicted
    /// and re-queued at the head), but the cell is restorable with
    /// [`restore_nc`](Self::restore_nc).
    pub fn drain_nc(&mut self, nc: usize) -> Option<RequestId> {
        let evicted = self.pool.drain_nc(nc);
        self.requeue_interrupted(evicted)
    }

    /// Returns a quarantined NeuroCell to service
    /// ([`FabricPool::restore_nc`]); `true` if the cell transitioned
    /// back to healthy.
    pub fn restore_nc(&mut self, nc: usize) -> bool {
        self.pool.restore_nc(nc)
    }

    /// Moves a fault-evicted tenant back to the queue head, carrying its
    /// service progress. Non-scheduled tenants (admitted directly on the
    /// pool before scheduling started) have no request to recover.
    fn requeue_interrupted(&mut self, evicted: Option<crate::fabric::Tenant>) -> Option<RequestId> {
        let evicted = evicted?;
        let at = self.active.iter().position(|a| a.tenant == evicted.id)?;
        let a = self.active.remove(at);
        self.queue.push_front(Pending {
            request: a.request,
            name: a.name,
            probe: evicted.mapping,
            service_rounds: a.service_rounds,
            weight: a.weight,
            submitted_round: a.submitted_round,
            rounds_served: a.rounds_served,
            interruptions: a.interruptions + 1,
            recovery_rounds: a.recovery_rounds,
            first_admitted_round: Some(a.admitted_round),
            interrupted_round: self.round,
        });
        Some(a.request)
    }

    /// Opens the next round: admits queued requests from the head while
    /// the pool's policy finds capacity (stopping at the first that
    /// does not fit — strict FIFO), then returns every resident tenant
    /// the caller should replay this round, in admission order.
    ///
    /// A head request wider than the pool's largest **healthy** segment
    /// of its own size class
    /// ([`FabricPool::max_admissible_run_for`] — on a heterogeneous
    /// pool a long healthy run of the *wrong* class is not servable
    /// capacity) can never be admitted, not even by compaction on an
    /// otherwise-empty pool — it is retired immediately as an
    /// [aborted](ServiceRecord::aborted) record rather than
    /// head-of-line-blocking the queue forever. Fault-evicted requests
    /// re-admitted here resume at their recorded
    /// [`ScheduledTenant::rounds_served`] presentation.
    pub fn begin_round(&mut self) -> Vec<ScheduledTenant> {
        while let Some(head) = self.queue.front() {
            let needed = head.probe.placement.ncs_used.max(1);
            let class = head.probe.config.mca_size;
            let servable = needed <= self.pool.max_admissible_run_for(class);
            if servable && !self.pool.can_admit_sized(needed, class) {
                break;
            }
            let Some(head) = self.queue.pop_front() else {
                break;
            };
            if servable {
                self.admit_pending(head);
            } else {
                self.retire_aborted(head);
            }
        }
        // The head (if any) is now blocked on capacity. Track how long
        // it has been *this* head waiting — the starvation clock — and
        // backfill behind it only while the window is open.
        match self.queue.front() {
            None => self.blocked_head = None,
            Some(head) => {
                let request = head.request;
                let since = match self.blocked_head {
                    Some((req, since)) if req == request => since,
                    _ => self.round,
                };
                self.blocked_head = Some((request, since));
                if self.backfill_window.is_some_and(|w| self.round - since < w) {
                    // FIFO scan of the queue behind the head, admitting
                    // whatever fits right now. Unservable requests are
                    // skipped, never aborted here: aborting stays a
                    // head-only decision so the blocked head keeps its
                    // place and records retire in FIFO order.
                    let mut i = 1;
                    while i < self.queue.len() {
                        let needed = self.queue[i].probe.placement.ncs_used.max(1);
                        let class = self.queue[i].probe.config.mca_size;
                        if needed <= self.pool.max_admissible_run_for(class)
                            && self.pool.can_admit_sized(needed, class)
                        {
                            match self.queue.remove(i) {
                                Some(p) => self.admit_pending(p),
                                None => break,
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
        self.active
            .iter()
            .map(|a| ScheduledTenant {
                request: a.request,
                tenant: a.tenant,
                name: a.name.clone(),
                weight: a.weight,
                rounds_served: a.rounds_served,
            })
            .collect()
    }

    /// Admits one pending request into the pool (capacity was probed by
    /// the caller) and activates it for this round. Should the pool
    /// refuse despite the probe — a probe/allocator disagreement that
    /// would be a bug — the request is retired as aborted rather than
    /// panicking or silently dropping it (the request-conservation
    /// invariant the `resparc-analysis` model checker asserts).
    fn admit_pending(&mut self, head: Pending) {
        let needed = head.probe.placement.ncs_used.max(1);
        let recovery = if head.interruptions > 0 {
            self.round - head.interrupted_round
        } else {
            0
        };
        let tenant = match self.pool.admit_mapped(head.probe, &head.name) {
            Ok(tenant) => tenant,
            Err(_) => {
                debug_assert!(false, "can_admit probed this admission");
                self.completed.push(ServiceRecord {
                    request: head.request,
                    name: head.name,
                    ncs: needed,
                    weight: head.weight,
                    submitted_round: head.submitted_round,
                    admitted_round: head.first_admitted_round.unwrap_or(self.round),
                    departed_round: Some(self.round),
                    rounds_served: head.rounds_served,
                    interruptions: head.interruptions,
                    recovery_rounds: head.recovery_rounds,
                    aborted: true,
                });
                return;
            }
        };
        self.active.push(Active {
            request: head.request,
            tenant,
            name: head.name,
            ncs: needed,
            weight: head.weight,
            submitted_round: head.submitted_round,
            admitted_round: head.first_admitted_round.unwrap_or(self.round),
            service_rounds: head.service_rounds,
            rounds_served: head.rounds_served,
            interruptions: head.interruptions,
            recovery_rounds: head.recovery_rounds + recovery,
        });
    }

    /// Retires a queued request as [aborted](ServiceRecord::aborted) in
    /// the current round.
    fn retire_aborted(&mut self, p: Pending) {
        self.completed.push(ServiceRecord {
            request: p.request,
            name: p.name,
            ncs: p.probe.placement.ncs_used.max(1),
            weight: p.weight,
            submitted_round: p.submitted_round,
            admitted_round: p.first_admitted_round.unwrap_or(self.round),
            departed_round: Some(self.round),
            rounds_served: p.rounds_served,
            interruptions: p.interruptions,
            recovery_rounds: p.recovery_rounds,
            aborted: true,
        });
    }

    /// Cancels a request wherever it currently is — the preemption hook
    /// serving layers use to evict over-budget work. An **active**
    /// request is evicted from the pool immediately (its NC run frees
    /// for the next round's admissions; service credit for an in-flight
    /// round is forfeit); a **queued** request is removed from the
    /// queue. Either way the request retires as an
    /// [aborted](ServiceRecord::aborted) record in the current round,
    /// keeping whatever service it already earned. Returns `false` if
    /// no such request is queued or active (e.g. it already departed).
    pub fn cancel(&mut self, request: RequestId) -> bool {
        if let Some(at) = self.active.iter().position(|a| a.request == request) {
            let a = self.active.remove(at);
            let evicted = self.pool.evict(a.tenant);
            debug_assert!(evicted.is_some(), "active tenant was resident");
            self.completed.push(ServiceRecord {
                request: a.request,
                name: a.name,
                ncs: a.ncs,
                weight: a.weight,
                submitted_round: a.submitted_round,
                admitted_round: a.admitted_round,
                departed_round: Some(self.round),
                rounds_served: a.rounds_served,
                interruptions: a.interruptions,
                recovery_rounds: a.recovery_rounds,
                aborted: true,
            });
            return true;
        }
        if let Some(at) = self.queue.iter().position(|p| p.request == request) {
            if let Some(p) = self.queue.remove(at) {
                self.retire_aborted(p);
                return true;
            }
        }
        false
    }

    /// Closes the round: every resident retires one service round,
    /// requests whose service completed are evicted (their NC runs are
    /// free for the next round's admissions) and logged, and the round
    /// counter advances.
    pub fn end_round(&mut self) {
        let round = self.round;
        let mut i = 0;
        while i < self.active.len() {
            self.active[i].rounds_served += 1;
            if self.active[i].rounds_served == self.active[i].service_rounds {
                let done = self.active.remove(i);
                let evicted = self.pool.evict(done.tenant);
                debug_assert!(evicted.is_some(), "active tenant was resident");
                self.completed.push(ServiceRecord {
                    request: done.request,
                    name: done.name,
                    ncs: done.ncs,
                    weight: done.weight,
                    submitted_round: done.submitted_round,
                    admitted_round: done.admitted_round,
                    departed_round: Some(round),
                    rounds_served: done.rounds_served,
                    interruptions: done.interruptions,
                    recovery_rounds: done.recovery_rounds,
                    aborted: false,
                });
            } else {
                i += 1;
            }
        }
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::fabric::PackingPolicy;
    use resparc_neuro::topology::Topology;

    fn net(seed: u64, hiddens: &[usize]) -> Network {
        Network::random(Topology::mlp(144, hiddens), seed, 1.0)
    }

    /// 2 NCs on RESPARC-64 (see `pool::tests::sized_topologies_*`).
    fn two_nc_net(seed: u64) -> Network {
        net(seed, &[576, 576, 10])
    }

    #[test]
    fn admits_immediately_when_capacity_allows() {
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let a = sched.submit(&net(1, &[96, 10]), "a", 2, 1).unwrap();
        let b = sched.submit(&net(2, &[96, 10]), "b", 1, 3).unwrap();
        assert_ne!(a, b);

        let round0 = sched.begin_round();
        assert_eq!(round0.len(), 2);
        assert_eq!(round0[0].request, a);
        assert_eq!(round0[0].weight, 1);
        assert_eq!(round0[1].weight, 3);
        assert_eq!(sched.queue_len(), 0);
        sched.end_round();

        // b's single service round is done; a serves one more.
        let round1 = sched.begin_round();
        assert_eq!(round1.len(), 1);
        assert_eq!(round1[0].request, a);
        assert_eq!(round1[0].rounds_served, 1);
        sched.end_round();
        assert!(sched.is_idle());

        let records = sched.completed();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].request, b);
        assert_eq!(records[0].departed_round, Some(0));
        assert_eq!(records[0].wait_rounds(), 0);
        assert_eq!(records[1].request, a);
        assert_eq!(records[1].departed_round, Some(1));
        assert_eq!(records[1].rounds_served, 2);
    }

    #[test]
    fn queues_fifo_and_backfills_on_departure() {
        // 16-NC pool; four 5-NC requests: three fit (15 NCs), the
        // fourth waits for the first departure.
        let five_nc = |seed| net(seed, &[576, 576, 576, 576, 10]);
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let ids: Vec<RequestId> = (0..4)
            .map(|i| {
                sched
                    .submit(&five_nc(i), &format!("t{i}"), if i == 0 { 1 } else { 3 }, 1)
                    .unwrap()
            })
            .collect();

        let round0 = sched.begin_round();
        assert_eq!(round0.len(), 3, "three 5-NC tenants fill 15 of 16 NCs");
        assert_eq!(sched.queue_len(), 1);
        sched.end_round(); // t0 (1 service round) departs

        let round1 = sched.begin_round();
        assert_eq!(round1.len(), 3, "t3 backfills t0's freed run");
        assert!(round1.iter().any(|t| t.request == ids[3]));
        sched.end_round();

        // Drain the rest.
        while !sched.is_idle() {
            sched.begin_round();
            sched.end_round();
        }
        let t3 = sched
            .completed()
            .iter()
            .find(|r| r.request == ids[3])
            .unwrap();
        assert_eq!(t3.submitted_round, 0);
        assert_eq!(t3.admitted_round, 1);
        assert_eq!(t3.wait_rounds(), 1);
        assert_eq!(t3.ncs, 5);
    }

    #[test]
    fn defragmenting_scheduler_admits_through_fragmentation() {
        // Eight 2-NC residents fill the 16-NC pool; #0 and #2 depart
        // after round 0, leaving two 2-NC holes. A queued 4-NC request
        // needs compaction: the first-fit scheduler keeps it waiting,
        // the defragmenting one admits it in round 1.
        let run = |policy: PackingPolicy| {
            let pool = FabricPool::new(ResparcConfig::resparc_64()).with_policy(policy);
            let mut sched = FabricScheduler::new(pool);
            for i in 0..8u64 {
                let rounds = if i == 0 || i == 2 { 1 } else { 4 };
                sched
                    .submit(&two_nc_net(i), &format!("t{i}"), rounds, 1)
                    .unwrap();
            }
            let wide = net(9, &[576, 576, 576, 10]); // 4 NCs
            let wide_id = sched.submit(&wide, "wide", 1, 1).unwrap();
            assert_eq!(sched.begin_round().len(), 8);
            sched.end_round();
            let round1: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
            (round1.contains(&wide_id), sched.pool().utilization())
        };

        let (admitted, util) = run(PackingPolicy::Defragment);
        assert!(
            admitted,
            "defragmentation must make room for the wide tenant"
        );
        assert!(util > 0.8, "utilization {util}");
        let (admitted, _) = run(PackingPolicy::FirstFit);
        assert!(!admitted, "first-fit cannot admit through fragmentation");
    }

    #[test]
    fn head_of_line_blocking_is_strictly_fifo() {
        // A wide request at the queue head must not be overtaken by a
        // narrow one behind it, even though the narrow one would fit.
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        for i in 0..8u64 {
            sched
                .submit(&two_nc_net(i), &format!("t{i}"), 2, 1)
                .unwrap();
        }
        let wide = sched
            .submit(&net(9, &[576, 576, 576, 576, 10]), "wide", 1, 1)
            .unwrap();
        let narrow = sched.submit(&net(10, &[96, 10]), "narrow", 1, 1).unwrap();

        // All eight 2-NC tenants fit (16/16 NCs); the 5-NC head of the
        // remaining queue does not, and the 1-NC request behind it must
        // not jump the line.
        let round0: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
        assert_eq!(round0.len(), 8);
        assert!(!round0.contains(&wide));
        assert!(
            !round0.contains(&narrow),
            "narrow must wait behind the wide head-of-line request"
        );
    }

    #[test]
    fn mid_replay_failure_requeues_and_recovers() {
        // Two 5-NC tenants serving 3 rounds each; NC 0 (inside a's run)
        // fails mid-round 0. a is evicted with its in-flight round
        // voided, re-queued at the head, re-admitted in round 1 on the
        // remaining healthy run, and still completes all 3 rounds.
        let five_nc = |seed| net(seed, &[576, 576, 576, 576, 10]);
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let a = sched.submit(&five_nc(1), "a", 3, 1).unwrap();
        let b = sched.submit(&five_nc(2), "b", 3, 1).unwrap();

        assert_eq!(sched.begin_round().len(), 2);
        let victim_nc = sched.pool().tenants()[0].first_nc();
        assert_eq!(sched.fail_nc(victim_nc), Some(a), "a occupied NC 0");
        assert_eq!(sched.queue_len(), 1);
        sched.end_round(); // only b earns credit for round 0

        let round1 = sched.begin_round();
        assert_eq!(round1.len(), 2, "a re-admitted beside b");
        let ra = round1.iter().find(|t| t.request == a).unwrap();
        assert_eq!(ra.rounds_served, 0, "the interrupted round was voided");
        let ta = sched.pool().tenant(ra.tenant).unwrap();
        assert!(ta.first_nc() > victim_nc, "remapped off the dead cell");

        while !sched.is_idle() {
            sched.begin_round();
            sched.end_round();
        }
        let rec = |id| {
            sched
                .completed()
                .iter()
                .find(|r| r.request == id)
                .unwrap()
                .clone()
        };
        let (rec_a, rec_b) = (rec(a), rec(b));
        assert_eq!(rec_b.departed_round, Some(2));
        assert_eq!((rec_b.interruptions, rec_b.recovery_rounds), (0, 0));
        assert!(!rec_b.aborted);
        assert_eq!(rec_a.rounds_served, 3, "full service despite the fault");
        assert_eq!(rec_a.departed_round, Some(3), "one round lost to recovery");
        assert_eq!(rec_a.admitted_round, 0, "first admission is kept");
        assert_eq!(rec_a.interruptions, 1);
        assert_eq!(rec_a.recovery_rounds, 1);
        assert!(!rec_a.aborted);
    }

    #[test]
    fn drain_requeues_and_restore_reopens_the_cell() {
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let a = sched.submit(&two_nc_net(1), "a", 2, 1).unwrap();
        assert_eq!(sched.begin_round().len(), 1);
        let nc = sched.pool().tenants()[0].first_nc();

        assert_eq!(sched.drain_nc(nc), Some(a));
        assert_eq!(sched.pool().quarantined_ncs(), 1);
        assert!(sched.restore_nc(nc));
        assert_eq!(sched.pool().quarantined_ncs(), 0);
        sched.end_round();

        // Fully-healthy pool again: a resumes and completes.
        assert_eq!(sched.begin_round().len(), 1);
        sched.end_round();
        sched.begin_round();
        sched.end_round();
        assert!(sched.is_idle());
        let rec = &sched.completed()[0];
        assert_eq!(rec.rounds_served, 2);
        assert_eq!(rec.interruptions, 1);

        // Faulting a free cell interrupts nobody.
        assert_eq!(sched.fail_nc(15), None);
    }

    #[test]
    fn backfill_admits_behind_a_blocked_head_within_the_window() {
        // Same shape as `head_of_line_blocking_is_strictly_fifo`, but
        // with backfilling: the 1-NC request behind the blocked 5-NC
        // head IS admitted, while the head keeps its place and admits
        // first once capacity frees.
        let pool = FabricPool::new(ResparcConfig::resparc_64());
        let mut sched = FabricScheduler::new(pool).with_backfill(4);
        assert_eq!(sched.backfill_window(), Some(4));
        for i in 0..7u64 {
            sched
                .submit(&two_nc_net(i), &format!("t{i}"), 2, 1)
                .unwrap();
        }
        let wide = sched
            .submit(&net(9, &[576, 576, 576, 576, 10]), "wide", 2, 1)
            .unwrap();
        let narrow = sched.submit(&net(10, &[96, 10]), "narrow", 1, 1).unwrap();

        // Seven 2-NC tenants leave 2 free NCs: the 5-NC head blocks,
        // the 1-NC request backfills into the hole.
        let round0: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
        assert_eq!(round0.len(), 8);
        assert!(!round0.contains(&wide));
        assert!(round0.contains(&narrow), "narrow backfills the free hole");
        sched.end_round();

        // Round 1: everyone departs at its end; round 2 admits the head.
        sched.begin_round();
        sched.end_round();
        let round2: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
        assert_eq!(round2, vec![wide], "the head admits first after the drain");
    }

    #[test]
    fn backfill_window_bounds_head_starvation() {
        // An adversarial open-loop stream: six long 2-NC residents pin
        // 12 NCs, and two fresh 2-NC, 1-round requests arrive every
        // round — enough to keep the 4 free NCs perpetually backfilled.
        // Under an *unbounded* backfill the 5-NC head would starve
        // forever (free capacity never reaches 5 at a round boundary).
        // The window of 3 closes backfilling after round 2; the long
        // residents drain by the end of round 3; the head admits in
        // round 4 = window + residual service, the documented bound.
        let pool = FabricPool::new(ResparcConfig::resparc_64());
        let mut sched = FabricScheduler::new(pool).with_backfill(3);
        for i in 0..6u64 {
            sched
                .submit(&two_nc_net(i), &format!("fill{i}"), 4, 1)
                .unwrap();
        }
        let wide = sched
            .submit(&net(99, &[576, 576, 576, 576, 10]), "wide", 1, 1)
            .unwrap();
        let mut admitted_round = None;
        let mut backfilled_rounds = 0usize;
        for round in 0..32usize {
            for k in 0..2u64 {
                sched
                    .submit(
                        &two_nc_net(100 + 2 * round as u64 + k),
                        &format!("s{round}.{k}"),
                        1,
                        1,
                    )
                    .unwrap();
            }
            let residents = sched.begin_round();
            if residents.iter().any(|t| t.request == wide) {
                admitted_round = Some(round);
                break;
            }
            if residents.iter().any(|t| t.name.starts_with('s')) {
                backfilled_rounds += 1;
            }
            sched.end_round();
        }
        let admitted = admitted_round.expect("the wide head must not starve");
        assert_eq!(
            backfilled_rounds, 3,
            "adversary requests overtake the head exactly while the window is open"
        );
        assert_eq!(
            admitted, 4,
            "head admits at window (3) + residual drain (1), not later"
        );
    }

    #[test]
    fn aborted_head_does_not_disturb_backfill() {
        // Regression for the PR-6 abort path interacting with backfill.
        // NCs 4, 9 and 14 are dead (largest healthy segment: 4 NCs), so
        // a 5-NC request is permanently unservable. While it sits
        // *behind* a blocked-but-servable head, backfill scans must
        // skip it — never abort it (aborting is a head-only decision) —
        // while still admitting servable requests around it; it aborts
        // only once it reaches the head itself.
        let pool = FabricPool::new(ResparcConfig::resparc_64());
        let mut sched = FabricScheduler::new(pool).with_backfill(4);
        for nc in [4, 9, 14] {
            assert_eq!(sched.fail_nc(nc), None);
        }
        // Five 2-NC fillers leave holes of 2+1 NCs; the 4-NC head
        // blocks; behind it queue the unservable 5-NC request and a
        // servable 2-NC one.
        let fillers: Vec<RequestId> = (0..5)
            .map(|i| {
                sched
                    .submit(&two_nc_net(i), &format!("fill{i}"), 2, 1)
                    .unwrap()
            })
            .collect();
        let blocked = sched
            .submit(&net(20, &[576, 576, 576, 10]), "blocked4", 1, 1)
            .unwrap();
        let unservable = sched
            .submit(&net(21, &[576, 576, 576, 576, 10]), "unservable5", 1, 1)
            .unwrap();
        let small = sched.submit(&two_nc_net(22), "small", 1, 1).unwrap();

        // Round 0: fillers admit, `blocked4` blocks (no 4-wide healthy
        // hole left), the backfill scan skips `unservable5` and admits
        // `small` behind it. Nothing has aborted yet.
        let round0: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
        assert!(fillers.iter().all(|f| round0.contains(f)));
        assert!(!round0.contains(&blocked));
        assert!(
            round0.contains(&small),
            "small backfills past the unservable"
        );
        assert!(
            sched.completed().is_empty(),
            "the unservable request must not be aborted from mid-queue"
        );
        sched.end_round();

        // Round 1: still blocked, nothing to backfill. Round 2: the
        // fillers drained, the head admits, and the unservable request
        // — now the head — aborts.
        sched.begin_round();
        sched.end_round();
        let round2: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
        assert_eq!(round2, vec![blocked]);
        let aborted: Vec<&ServiceRecord> = sched.completed().iter().filter(|r| r.aborted).collect();
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].request, unservable);
        assert_eq!(aborted[0].departed_round, Some(2));

        // Drain: nobody is left behind.
        while !sched.is_idle() {
            sched.begin_round();
            sched.end_round();
        }
        assert_eq!(sched.completed().len(), 8);
        assert!(sched
            .completed()
            .iter()
            .filter(|r| r.request != unservable)
            .all(|r| !r.aborted && r.rounds_served > 0));
    }

    #[test]
    fn cancel_preempts_active_and_queued_requests() {
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let a = sched.submit(&two_nc_net(1), "a", 4, 1).unwrap();
        let b = sched.submit(&two_nc_net(2), "b", 4, 1).unwrap();
        assert_eq!(sched.begin_round().len(), 2);
        sched.end_round();
        sched.begin_round();
        sched.end_round();

        // a is mid-service (2 of 4 rounds): cancel evicts it now.
        assert!(sched.cancel(a));
        assert_eq!(sched.pool().occupied_ncs(), 2, "a's NCs freed");
        let rec_a = sched
            .completed()
            .iter()
            .find(|r| r.request == a)
            .expect("cancelled requests retire immediately");
        assert!(rec_a.aborted);
        assert_eq!(rec_a.rounds_served, 2, "earned service is kept");
        assert_eq!(rec_a.departed_round, Some(2));

        // A queued request cancels without ever running.
        let c = sched.submit(&two_nc_net(3), "c", 4, 1).unwrap();
        assert!(sched.cancel(c));
        assert_eq!(sched.queue_len(), 0);
        let rec_c = sched.completed().iter().find(|r| r.request == c).unwrap();
        assert!(rec_c.aborted);
        assert_eq!(rec_c.rounds_served, 0);

        // Unknown / already-departed requests: no-op.
        assert!(!sched.cancel(a));
        while !sched.is_idle() {
            sched.begin_round();
            sched.end_round();
        }
        assert!(!sched.cancel(b), "b departed normally");
        let rec_b = sched.completed().iter().find(|r| r.request == b).unwrap();
        assert!(!rec_b.aborted);
        assert_eq!(rec_b.rounds_served, 4);
    }

    #[test]
    fn unservable_class_requests_abort_on_heterogeneous_pools() {
        // Regression for the class-blind servability probe: the two
        // 32-class cells form a contiguous healthy run of 2, but that
        // is no capacity at all for a 2-NC 64-class request — the
        // scheduler must judge servability per class and abort it
        // instead of blocking the queue forever.
        use crate::fabric::FabricPool;
        let pool = FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[32, 32, 64]);
        let probe64 = crate::map::Mapper::new(pool.class_config(64))
            .map(&Topology::mlp(144, &[576, 576, 10]))
            .unwrap();
        assert_eq!(probe64.placement.ncs_used, 2);
        assert_eq!(pool.max_admissible_run(), 2, "class-blind run says 2");
        assert_eq!(pool.max_admissible_run_for(64), 1, "but none of it is 64");
        let probe32 = crate::map::Mapper::new(pool.class_config(32))
            .map(&Topology::mlp(96, &[64, 10]))
            .unwrap();
        assert_eq!(probe32.placement.ncs_used, 1);

        let mut sched = FabricScheduler::new(pool);
        let wide = sched.submit_mapped(probe64, "wide64", 1, 1);
        let narrow = sched.submit_mapped(probe32, "narrow32", 1, 1);
        let round0 = sched.begin_round();
        assert_eq!(round0.len(), 1);
        assert_eq!(round0[0].request, narrow);
        let rec = &sched.completed()[0];
        assert_eq!(rec.request, wide);
        assert!(rec.aborted);
        sched.end_round();
        assert!(sched.is_idle());
    }

    #[test]
    fn unservable_requests_abort_instead_of_blocking() {
        // Kill NCs 4, 9 and 14: the largest healthy segment is 4 wide,
        // so a 5-NC request can never run — it must retire as aborted
        // and let the 2-NC request behind it through.
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        for nc in [4, 9, 14] {
            assert_eq!(sched.fail_nc(nc), None);
        }
        let wide = sched
            .submit(&net(1, &[576, 576, 576, 576, 10]), "wide", 1, 1)
            .unwrap();
        let narrow = sched.submit(&two_nc_net(2), "narrow", 1, 1).unwrap();

        let round0 = sched.begin_round();
        assert_eq!(round0.len(), 1);
        assert_eq!(round0[0].request, narrow);
        let rec = &sched.completed()[0];
        assert_eq!(rec.request, wide);
        assert!(rec.aborted);
        assert_eq!(rec.rounds_served, 0);
        assert_eq!(rec.departed_round, Some(0));
        sched.end_round();
        assert!(sched.is_idle());
    }
}
