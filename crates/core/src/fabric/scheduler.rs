//! Dynamic admission across replay rounds: arrivals queue, departures
//! free capacity mid-stream.
//!
//! PR 4's [`FabricPool`] realised reconfigurability *statically*: the
//! tenant set was fixed before a replay round and never changed while
//! traffic was in flight. [`FabricScheduler`] closes the loop — it owns
//! a pool and drives an arrival/departure schedule over **rounds** (one
//! round = one interleaved shared replay of the currently-resident
//! tenants):
//!
//! * [`submit`](FabricScheduler::submit) maps a request once (the probe
//!   is cached, never re-partitioned) and appends it to a FIFO queue;
//! * [`begin_round`](FabricScheduler::begin_round) admits from the
//!   queue head while the pool's [`PackingPolicy`] finds capacity —
//!   including room a [`PackingPolicy::Defragment`] compaction can
//!   create — and returns the round's residents with their
//!   bus-arbitration weights (head-of-line blocking keeps admission
//!   strictly FIFO: no request starves behind a later, smaller one);
//! * the caller replays the round (e.g.
//!   [`SharedEventSimulator::run_weighted`](crate::fabric::SharedEventSimulator::run_weighted));
//! * [`end_round`](FabricScheduler::end_round) retires one service
//!   round per resident and **evicts** tenants whose service completed,
//!   freeing their NC runs for the next round's admissions.
//!
//! Every request's life cycle is recorded as a [`ServiceRecord`]
//! (submission, admission and departure rounds), so queue-wait and
//! utilization statistics fall out of the log —
//! `resparc_workloads::sweep::churn_sweep` builds the dynamic-vs-static
//! comparison on top.
//!
//! [`PackingPolicy`]: crate::fabric::PackingPolicy
//! [`PackingPolicy::Defragment`]: crate::fabric::PackingPolicy::Defragment

use std::collections::VecDeque;
use std::fmt;

use resparc_neuro::network::Network;

use crate::fabric::{FabricPool, TenantId};
use crate::map::{MapError, Mapping};

/// Handle of one submitted service request (stable from submission
/// through departure, unlike the [`TenantId`] that only exists while
/// the request is resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u32);

impl RequestId {
    /// The raw submission index (monotone per scheduler).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request#{}", self.0)
    }
}

/// One resident tenant in the round [`FabricScheduler::begin_round`]
/// planned: what to replay and at which bus-arbitration weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTenant {
    /// The originating request.
    pub request: RequestId,
    /// The pool residency handle (valid until the request departs).
    pub tenant: TenantId,
    /// The request's label.
    pub name: String,
    /// Bus-arbitration weight for this round's shared replay.
    pub weight: u32,
    /// Service rounds already completed (0 on the admission round) —
    /// the index of the presentation this round should replay.
    pub rounds_served: usize,
}

/// The recorded life cycle of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// The request this record describes.
    pub request: RequestId,
    /// The request's label.
    pub name: String,
    /// NeuroCells the request's mapping occupies while resident.
    pub ncs: usize,
    /// Bus-arbitration weight.
    pub weight: u32,
    /// Round the request was submitted in.
    pub submitted_round: usize,
    /// Round the request was admitted in (it replayed that round).
    pub admitted_round: usize,
    /// Round the request's final service round ran in; `None` while
    /// still resident.
    pub departed_round: Option<usize>,
    /// Service rounds completed so far.
    pub rounds_served: usize,
}

impl ServiceRecord {
    /// Rounds the request waited in the queue before admission.
    pub fn wait_rounds(&self) -> usize {
        self.admitted_round - self.submitted_round
    }
}

/// A queued request: the probe mapping is computed once at submission.
#[derive(Debug, Clone)]
struct Pending {
    request: RequestId,
    name: String,
    probe: Mapping,
    service_rounds: usize,
    weight: u32,
    submitted_round: usize,
}

/// A resident request.
#[derive(Debug, Clone)]
struct Active {
    request: RequestId,
    tenant: TenantId,
    name: String,
    ncs: usize,
    weight: u32,
    submitted_round: usize,
    admitted_round: usize,
    service_rounds: usize,
    rounds_served: usize,
}

/// Drives dynamic admission/eviction of a [`FabricPool`] across replay
/// rounds; see the [module docs](self) for the round protocol.
#[derive(Debug, Clone)]
pub struct FabricScheduler {
    pool: FabricPool,
    round: usize,
    next_request: u32,
    queue: VecDeque<Pending>,
    active: Vec<Active>,
    completed: Vec<ServiceRecord>,
}

impl FabricScheduler {
    /// Creates a scheduler owning `pool`. Tenants already resident in
    /// the pool are left untouched (they occupy capacity but never
    /// depart — static residents under a dynamic workload).
    pub fn new(pool: FabricPool) -> Self {
        Self {
            pool,
            round: 0,
            next_request: 0,
            queue: VecDeque::new(),
            active: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// The scheduled pool (its policy decides how admissions pack).
    pub fn pool(&self) -> &FabricPool {
        &self.pool
    }

    /// The current round index (0 before the first
    /// [`begin_round`](Self::begin_round)).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Requests waiting for capacity, in FIFO order.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no request is queued or resident (future submissions may
    /// still arrive — the *caller* owns the arrival schedule).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Life-cycle records of departed requests, in departure order.
    pub fn completed(&self) -> &[ServiceRecord] {
        &self.completed
    }

    /// Submits a request: the network is mapped once against the pool's
    /// configuration and queued FIFO for `service_rounds` replay rounds
    /// at bus-arbitration weight `weight`. Admission happens in
    /// [`begin_round`](Self::begin_round); a request submitted before a
    /// round begins can be admitted into that same round (wait 0).
    ///
    /// # Errors
    ///
    /// [`MapError`] if the network cannot be mapped at all. A network
    /// too large for the whole pool maps fine but queues forever; size
    /// requests with [`FabricPool::physical_ncs`] in mind.
    ///
    /// # Panics
    ///
    /// Panics if `service_rounds` or `weight` is zero.
    pub fn submit(
        &mut self,
        network: &Network,
        name: &str,
        service_rounds: usize,
        weight: u32,
    ) -> Result<RequestId, MapError> {
        let probe = crate::map::Mapper::new(self.pool.config().clone()).map_network(network)?;
        Ok(self.submit_mapped(probe, name, service_rounds, weight))
    }

    /// Submits an already-mapped probe (produced against the pool's
    /// configuration) — the queueing core [`submit`](Self::submit)
    /// delegates to. Callers that already sized a request (e.g.
    /// `resparc_workloads::churn_sweep` validating footprints up front)
    /// use this to avoid partitioning the same network twice.
    ///
    /// # Panics
    ///
    /// Panics if `service_rounds` or `weight` is zero.
    pub fn submit_mapped(
        &mut self,
        probe: Mapping,
        name: &str,
        service_rounds: usize,
        weight: u32,
    ) -> RequestId {
        assert!(
            service_rounds > 0,
            "a request must serve at least one round"
        );
        assert!(weight > 0, "arbitration weights must be positive");
        let request = RequestId(self.next_request);
        self.next_request += 1;
        self.queue.push_back(Pending {
            request,
            name: name.to_string(),
            probe,
            service_rounds,
            weight,
            submitted_round: self.round,
        });
        request
    }

    /// Opens the next round: admits queued requests from the head while
    /// the pool's policy finds capacity (stopping at the first that
    /// does not fit — strict FIFO), then returns every resident tenant
    /// the caller should replay this round, in admission order.
    pub fn begin_round(&mut self) -> Vec<ScheduledTenant> {
        while let Some(head) = self.queue.front() {
            if !self.pool.can_admit(head.probe.placement.ncs_used) {
                break;
            }
            let head = self.queue.pop_front().expect("front exists");
            let ncs = head.probe.placement.ncs_used.max(1);
            let tenant = self
                .pool
                .admit_mapped(head.probe, &head.name)
                .expect("can_admit probed this admission");
            self.active.push(Active {
                request: head.request,
                tenant,
                name: head.name,
                ncs,
                weight: head.weight,
                submitted_round: head.submitted_round,
                admitted_round: self.round,
                service_rounds: head.service_rounds,
                rounds_served: 0,
            });
        }
        self.active
            .iter()
            .map(|a| ScheduledTenant {
                request: a.request,
                tenant: a.tenant,
                name: a.name.clone(),
                weight: a.weight,
                rounds_served: a.rounds_served,
            })
            .collect()
    }

    /// Closes the round: every resident retires one service round,
    /// requests whose service completed are evicted (their NC runs are
    /// free for the next round's admissions) and logged, and the round
    /// counter advances.
    pub fn end_round(&mut self) {
        let round = self.round;
        let mut i = 0;
        while i < self.active.len() {
            self.active[i].rounds_served += 1;
            if self.active[i].rounds_served == self.active[i].service_rounds {
                let done = self.active.remove(i);
                self.pool
                    .evict(done.tenant)
                    .expect("active tenant was resident");
                self.completed.push(ServiceRecord {
                    request: done.request,
                    name: done.name,
                    ncs: done.ncs,
                    weight: done.weight,
                    submitted_round: done.submitted_round,
                    admitted_round: done.admitted_round,
                    departed_round: Some(round),
                    rounds_served: done.rounds_served,
                });
            } else {
                i += 1;
            }
        }
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::fabric::PackingPolicy;
    use resparc_neuro::topology::Topology;

    fn net(seed: u64, hiddens: &[usize]) -> Network {
        Network::random(Topology::mlp(144, hiddens), seed, 1.0)
    }

    /// 2 NCs on RESPARC-64 (see `pool::tests::sized_topologies_*`).
    fn two_nc_net(seed: u64) -> Network {
        net(seed, &[576, 576, 10])
    }

    #[test]
    fn admits_immediately_when_capacity_allows() {
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let a = sched.submit(&net(1, &[96, 10]), "a", 2, 1).unwrap();
        let b = sched.submit(&net(2, &[96, 10]), "b", 1, 3).unwrap();
        assert_ne!(a, b);

        let round0 = sched.begin_round();
        assert_eq!(round0.len(), 2);
        assert_eq!(round0[0].request, a);
        assert_eq!(round0[0].weight, 1);
        assert_eq!(round0[1].weight, 3);
        assert_eq!(sched.queue_len(), 0);
        sched.end_round();

        // b's single service round is done; a serves one more.
        let round1 = sched.begin_round();
        assert_eq!(round1.len(), 1);
        assert_eq!(round1[0].request, a);
        assert_eq!(round1[0].rounds_served, 1);
        sched.end_round();
        assert!(sched.is_idle());

        let records = sched.completed();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].request, b);
        assert_eq!(records[0].departed_round, Some(0));
        assert_eq!(records[0].wait_rounds(), 0);
        assert_eq!(records[1].request, a);
        assert_eq!(records[1].departed_round, Some(1));
        assert_eq!(records[1].rounds_served, 2);
    }

    #[test]
    fn queues_fifo_and_backfills_on_departure() {
        // 16-NC pool; four 5-NC requests: three fit (15 NCs), the
        // fourth waits for the first departure.
        let five_nc = |seed| net(seed, &[576, 576, 576, 576, 10]);
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        let ids: Vec<RequestId> = (0..4)
            .map(|i| {
                sched
                    .submit(&five_nc(i), &format!("t{i}"), if i == 0 { 1 } else { 3 }, 1)
                    .unwrap()
            })
            .collect();

        let round0 = sched.begin_round();
        assert_eq!(round0.len(), 3, "three 5-NC tenants fill 15 of 16 NCs");
        assert_eq!(sched.queue_len(), 1);
        sched.end_round(); // t0 (1 service round) departs

        let round1 = sched.begin_round();
        assert_eq!(round1.len(), 3, "t3 backfills t0's freed run");
        assert!(round1.iter().any(|t| t.request == ids[3]));
        sched.end_round();

        // Drain the rest.
        while !sched.is_idle() {
            sched.begin_round();
            sched.end_round();
        }
        let t3 = sched
            .completed()
            .iter()
            .find(|r| r.request == ids[3])
            .unwrap();
        assert_eq!(t3.submitted_round, 0);
        assert_eq!(t3.admitted_round, 1);
        assert_eq!(t3.wait_rounds(), 1);
        assert_eq!(t3.ncs, 5);
    }

    #[test]
    fn defragmenting_scheduler_admits_through_fragmentation() {
        // Eight 2-NC residents fill the 16-NC pool; #0 and #2 depart
        // after round 0, leaving two 2-NC holes. A queued 4-NC request
        // needs compaction: the first-fit scheduler keeps it waiting,
        // the defragmenting one admits it in round 1.
        let run = |policy: PackingPolicy| {
            let pool = FabricPool::new(ResparcConfig::resparc_64()).with_policy(policy);
            let mut sched = FabricScheduler::new(pool);
            for i in 0..8u64 {
                let rounds = if i == 0 || i == 2 { 1 } else { 4 };
                sched
                    .submit(&two_nc_net(i), &format!("t{i}"), rounds, 1)
                    .unwrap();
            }
            let wide = net(9, &[576, 576, 576, 10]); // 4 NCs
            let wide_id = sched.submit(&wide, "wide", 1, 1).unwrap();
            assert_eq!(sched.begin_round().len(), 8);
            sched.end_round();
            let round1: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
            (round1.contains(&wide_id), sched.pool().utilization())
        };

        let (admitted, util) = run(PackingPolicy::Defragment);
        assert!(
            admitted,
            "defragmentation must make room for the wide tenant"
        );
        assert!(util > 0.8, "utilization {util}");
        let (admitted, _) = run(PackingPolicy::FirstFit);
        assert!(!admitted, "first-fit cannot admit through fragmentation");
    }

    #[test]
    fn head_of_line_blocking_is_strictly_fifo() {
        // A wide request at the queue head must not be overtaken by a
        // narrow one behind it, even though the narrow one would fit.
        let mut sched = FabricScheduler::new(FabricPool::new(ResparcConfig::resparc_64()));
        for i in 0..8u64 {
            sched
                .submit(&two_nc_net(i), &format!("t{i}"), 2, 1)
                .unwrap();
        }
        let wide = sched
            .submit(&net(9, &[576, 576, 576, 576, 10]), "wide", 1, 1)
            .unwrap();
        let narrow = sched.submit(&net(10, &[96, 10]), "narrow", 1, 1).unwrap();

        // All eight 2-NC tenants fit (16/16 NCs); the 5-NC head of the
        // remaining queue does not, and the 1-NC request behind it must
        // not jump the line.
        let round0: Vec<RequestId> = sched.begin_round().iter().map(|t| t.request).collect();
        assert_eq!(round0.len(), 8);
        assert!(!round0.contains(&wide));
        assert!(
            !round0.contains(&narrow),
            "narrow must wait behind the wide head-of-line request"
        );
    }
}
