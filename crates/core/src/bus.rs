//! The global IO bus, input SRAM front-end and global control unit
//! (paper §3.1.3, Fig. 3).
//!
//! NeuroCells share one serial bus backed by the input-memory SRAM: data
//! crossing NeuroCells is written to the SRAM by the producer and
//! broadcast to every NeuroCell whose `(x, y)` tag subscribes to the
//! producing layer — a single bus transaction regardless of subscriber
//! count. The global control unit keeps one *event flag* per NeuroCell,
//! set when that cell finishes its timestep's work. A zero-check on the
//! SRAM read path suppresses all-zero broadcasts (§3.2).

/// A NeuroCell tag `(x, y)` used for broadcast subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NcTag {
    /// Column in the NeuroCell array.
    pub x: u16,
    /// Row in the NeuroCell array.
    pub y: u16,
}

/// One broadcast transaction's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// NeuroCells that received the word.
    pub delivered_to: Vec<NcTag>,
    /// Whether the zero-check suppressed the broadcast.
    pub suppressed: bool,
}

/// The shared global bus with its SRAM zero-check and per-NC event flags.
#[derive(Debug, Clone)]
pub struct GlobalBus {
    zero_check: bool,
    subscriptions: Vec<(u32, Vec<NcTag>)>,
    event_flags: std::collections::BTreeMap<NcTag, bool>,
    /// Words actually driven onto the bus.
    pub words_broadcast: u64,
    /// Words suppressed by the SRAM zero-check.
    pub words_suppressed: u64,
}

impl GlobalBus {
    /// Creates a bus serving the given NeuroCells.
    pub fn new(cells: impl IntoIterator<Item = NcTag>, zero_check: bool) -> Self {
        Self {
            zero_check,
            subscriptions: Vec::new(),
            event_flags: cells.into_iter().map(|t| (t, false)).collect(),
            words_broadcast: 0,
            words_suppressed: 0,
        }
    }

    /// Number of NeuroCells on the bus.
    pub fn cell_count(&self) -> usize {
        self.event_flags.len()
    }

    /// Subscribes a set of NeuroCells to a layer's broadcast group (the
    /// cells that map that layer).
    ///
    /// # Panics
    ///
    /// Panics if any tag is not on this bus.
    pub fn subscribe(&mut self, layer: u32, cells: Vec<NcTag>) {
        for c in &cells {
            assert!(
                self.event_flags.contains_key(c),
                "NeuroCell {c:?} is not on this bus"
            );
        }
        self.subscriptions.retain(|(l, _)| *l != layer);
        self.subscriptions.push((layer, cells));
    }

    /// Broadcasts one word read from the SRAM to a layer's subscribers in
    /// a single bus cycle.
    pub fn broadcast(&mut self, layer: u32, word: u64) -> BroadcastOutcome {
        if self.zero_check && word == 0 {
            self.words_suppressed += 1;
            return BroadcastOutcome {
                delivered_to: Vec::new(),
                suppressed: true,
            };
        }
        let targets = self
            .subscriptions
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|(_, cells)| cells.clone())
            .unwrap_or_default();
        self.words_broadcast += 1;
        BroadcastOutcome {
            delivered_to: targets,
            suppressed: false,
        }
    }

    /// Marks a NeuroCell's computation for the current step as complete.
    ///
    /// # Panics
    ///
    /// Panics if the tag is not on this bus.
    pub fn set_event_flag(&mut self, cell: NcTag) {
        let flag = self
            .event_flags
            .get_mut(&cell)
            // resparc-lint: allow(no-panic, reason = "documented panic contract: tags come from this bus's own roster")
            .expect("NeuroCell must be on the bus");
        *flag = true;
    }

    /// Returns `true` when every NeuroCell has flagged completion (the
    /// global control unit's step barrier).
    pub fn all_complete(&self) -> bool {
        self.event_flags.values().all(|&f| f)
    }

    /// Clears all event flags for the next timestep.
    pub fn clear_event_flags(&mut self) {
        for f in self.event_flags.values_mut() {
            *f = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: u16, h: u16) -> Vec<NcTag> {
        (0..h)
            .flat_map(|y| (0..w).map(move |x| NcTag { x, y }))
            .collect()
    }

    #[test]
    fn broadcast_reaches_subscribers_in_one_transaction() {
        let mut bus = GlobalBus::new(grid(3, 1), true);
        bus.subscribe(0, vec![NcTag { x: 0, y: 0 }, NcTag { x: 2, y: 0 }]);
        let out = bus.broadcast(0, 0b1010);
        assert_eq!(out.delivered_to.len(), 2);
        assert!(!out.suppressed);
        assert_eq!(bus.words_broadcast, 1);
    }

    #[test]
    fn zero_check_suppresses_silent_words() {
        let mut bus = GlobalBus::new(grid(2, 2), true);
        bus.subscribe(0, grid(2, 2));
        let out = bus.broadcast(0, 0);
        assert!(out.suppressed);
        assert!(out.delivered_to.is_empty());
        assert_eq!(bus.words_suppressed, 1);
        assert_eq!(bus.words_broadcast, 0);
    }

    #[test]
    fn zero_check_disabled_broadcasts_zeros() {
        let mut bus = GlobalBus::new(grid(2, 1), false);
        bus.subscribe(0, grid(2, 1));
        let out = bus.broadcast(0, 0);
        assert!(!out.suppressed);
        assert_eq!(out.delivered_to.len(), 2);
    }

    #[test]
    fn event_flag_barrier() {
        let cells = grid(2, 1);
        let mut bus = GlobalBus::new(cells.clone(), true);
        assert!(!bus.all_complete());
        bus.set_event_flag(cells[0]);
        assert!(!bus.all_complete());
        bus.set_event_flag(cells[1]);
        assert!(bus.all_complete());
        bus.clear_event_flags();
        assert!(!bus.all_complete());
    }

    #[test]
    fn resubscribing_replaces_group() {
        let mut bus = GlobalBus::new(grid(3, 1), true);
        bus.subscribe(5, vec![NcTag { x: 0, y: 0 }]);
        bus.subscribe(5, vec![NcTag { x: 1, y: 0 }, NcTag { x: 2, y: 0 }]);
        let out = bus.broadcast(5, 1);
        assert_eq!(out.delivered_to.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not on this bus")]
    fn subscribing_unknown_cell_panics() {
        let mut bus = GlobalBus::new(grid(1, 1), true);
        bus.subscribe(0, vec![NcTag { x: 9, y: 9 }]);
    }
}
