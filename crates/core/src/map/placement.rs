//! Tile placement: assigning tiles to MCA slots, mPEs and NeuroCells.
//!
//! Placement follows the paper's spatial-scaling story (§3.1.3, Fig. 7):
//! tiles fill mPEs four at a time, mPEs fill NeuroCells sixteen at a
//! time, and a layer that outgrows a NeuroCell spills into the next one.
//! Layers are placed contiguously, so intra-layer and adjacent-layer
//! traffic stays on the switch network wherever the two layers share a
//! NeuroCell, and crosses the global bus (through the input SRAM)
//! otherwise.
//!
//! Placement also derives the Current-Control-Unit (CCU) traffic: an
//! output whose fan-in chunks span more mPEs than one mPE's MCA count
//! must receive analog partial currents from neighbouring mPEs over the
//! gated wires (§3.1.2, Fig. 4).

use crate::config::ResparcConfig;
use crate::map::partition::LayerPartition;

/// Where one layer's tiles landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpan {
    /// Layer index.
    pub layer: usize,
    /// First global mPE index used.
    pub first_mpe: usize,
    /// One past the last global mPE index used.
    pub end_mpe: usize,
    /// First NeuroCell index used.
    pub first_nc: usize,
    /// One past the last NeuroCell index used.
    pub end_nc: usize,
    /// Tiles (MCAs) used by this layer.
    pub tiles: usize,
    /// Expected analog CCU current transfers per timestep (outputs whose
    /// chunk tiles span multiple mPEs).
    pub ccu_transfers_per_step: u64,
}

impl LayerSpan {
    /// Number of mPEs this layer occupies.
    pub fn mpe_count(&self) -> usize {
        self.end_mpe - self.first_mpe
    }

    /// Number of NeuroCells this layer touches.
    pub fn nc_count(&self) -> usize {
        self.end_nc - self.first_nc
    }
}

/// The full placement of a network.
///
/// All mPE / NeuroCell indices are **pool coordinates**: a placement at
/// `origin_nc == 0` owns the fabric from NC 0 (the historical
/// single-tenant view), while a tenant admitted to a
/// [`FabricPool`](crate::fabric::FabricPool) is placed at the first NC of
/// its allocated run and every span carries that offset. Counts
/// (`mpes_used`, `ncs_used`, span widths) are origin-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Per-layer spans, in layer order (pool coordinates).
    pub layers: Vec<LayerSpan>,
    /// First NeuroCell this placement occupies (0 for a dedicated
    /// fabric).
    pub origin_nc: usize,
    /// Total mPEs used.
    pub mpes_used: usize,
    /// Total NeuroCells used.
    pub ncs_used: usize,
    /// Total MCA slots used.
    pub mcas_used: usize,
}

impl Placement {
    /// First mPE index this placement occupies (pool coordinates).
    pub fn origin_mpe(&self, config: &ResparcConfig) -> usize {
        self.origin_nc * config.mpes_per_nc()
    }

    /// One past the last NeuroCell this placement occupies.
    pub fn end_nc(&self) -> usize {
        self.origin_nc + self.ncs_used
    }

    /// This placement translated `delta_nc` NeuroCells to the right — a
    /// pure coordinate shift, identical to re-placing the same partitions
    /// at `origin_nc + delta_nc` (placement packs contiguously from its
    /// origin, so the whole-NC translation commutes with every span
    /// computation; property-tested in `tests/proptests.rs`). This is how
    /// a [`FabricPool`](crate::fabric::FabricPool) moves a probe mapping
    /// into its allocated run without re-partitioning the network.
    pub fn translated(&self, delta_nc: usize, config: &ResparcConfig) -> Placement {
        self.translated_to(self.origin_nc + delta_nc, config)
    }

    /// This placement re-anchored at `new_origin_nc` — the signed
    /// generalisation of [`Placement::translated`] that can also move a
    /// placement *left*. A defragmenting
    /// [`FabricPool`](crate::fabric::FabricPool) compaction slides
    /// resident tenants toward NC 0 with exactly this operation: like
    /// `translated`, it is a whole-NC coordinate shift (no
    /// re-partitioning), so every span width, tile assignment and
    /// boundary-crossing classification — and therefore every replayed
    /// energy/cycle charge — is preserved bit-for-bit.
    pub fn translated_to(&self, new_origin_nc: usize, config: &ResparcConfig) -> Placement {
        let mpes_per_nc = config.mpes_per_nc();
        let old_mpe = self.origin_nc * mpes_per_nc;
        let new_mpe = new_origin_nc * mpes_per_nc;
        let layers = self
            .layers
            .iter()
            .map(|s| LayerSpan {
                first_mpe: s.first_mpe - old_mpe + new_mpe,
                end_mpe: s.end_mpe - old_mpe + new_mpe,
                first_nc: s.first_nc - self.origin_nc + new_origin_nc,
                end_nc: s.end_nc - self.origin_nc + new_origin_nc,
                ..s.clone()
            })
            .collect();
        Placement {
            layers,
            origin_nc: new_origin_nc,
            ..self.clone()
        }
    }

    /// Whether the boundary feeding `layer` crosses NeuroCells (layer 0's
    /// boundary is the input SRAM and always uses the bus).
    pub fn boundary_crosses_nc(&self, layer: usize) -> bool {
        if layer == 0 {
            return true;
        }
        let producer = &self.layers[layer - 1];
        let consumer = &self.layers[layer];
        // The boundary stays on the switch network only when both ends
        // live entirely inside the same single NeuroCell.
        !(producer.nc_count() == 1
            && consumer.nc_count() == 1
            && producer.first_nc == consumer.first_nc)
    }
}

/// Places layer partitions onto the machine described by `config`.
///
/// Tiles are assigned in order: the chunk tiles of an output group are
/// interleaved by the partitioner in chunk-major order, so placement
/// groups an output's chunks into the same mPE where capacity allows
/// (`mcas_per_mpe` chunks locally, the paper's Fig. 5 configuration).
pub fn place(partitions: &[LayerPartition], config: &ResparcConfig) -> Placement {
    place_with_origin(partitions, config, 0)
}

/// Places layer partitions starting at NeuroCell `origin_nc` — the
/// pool-coordinate view a [`FabricPool`](crate::fabric::FabricPool)
/// tenant is expressed in. `place` is exactly `place_with_origin(.., 0)`,
/// so the dedicated-fabric path is unchanged bit-for-bit.
pub fn place_with_origin(
    partitions: &[LayerPartition],
    config: &ResparcConfig,
    origin_nc: usize,
) -> Placement {
    let mcas_per_mpe = config.mcas_per_mpe;
    let mpes_per_nc = config.mpes_per_nc();
    let origin_mpe = origin_nc * mpes_per_nc;

    let mut layers = Vec::with_capacity(partitions.len());
    let mut next_mpe = origin_mpe;

    for part in partitions {
        let tiles = part.tile_count();
        // Each layer starts on a fresh mPE (layers do not share mPEs:
        // their neurons and control are distinct).
        let first_mpe = next_mpe;
        let mpes = tiles.div_ceil(mcas_per_mpe).max(usize::from(tiles > 0));
        next_mpe += mpes;

        let first_nc = first_mpe / mpes_per_nc;
        let end_nc = (next_mpe - 1) / mpes_per_nc + 1;

        // CCU traffic: an output of degree d integrates currents from d
        // chunk tiles; one mPE hosts up to `mcas_per_mpe` of them, so
        // ceil(d / mcas_per_mpe) - 1 inter-mPE transfers per output per
        // timestep.
        let mut ccu = 0u64;
        let d = part.max_degree as usize;
        if d > mcas_per_mpe {
            let remote_mpes = d.div_ceil(mcas_per_mpe) - 1;
            ccu = part.outputs as u64 * remote_mpes as u64;
        }

        layers.push(LayerSpan {
            layer: part.layer,
            first_mpe,
            end_mpe: next_mpe,
            first_nc,
            end_nc,
            tiles,
            ccu_transfers_per_step: ccu,
        });
    }

    let ncs_used = layers
        .last()
        .map_or(0, |_| next_mpe.div_ceil(mpes_per_nc) - origin_nc);
    Placement {
        mcas_used: partitions.iter().map(|p| p.tile_count()).sum(),
        origin_nc,
        mpes_used: next_mpe - origin_mpe,
        ncs_used,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::partition::{partition_layer, PartitionOptions};
    use resparc_neuro::connectivity::ConnectivityMatrix;
    use resparc_neuro::topology::LayerSpec;

    fn dense_partition(inputs: usize, outputs: usize, n: usize, layer: usize) -> LayerPartition {
        let c = ConnectivityMatrix::from_layer(&LayerSpec::Dense { inputs, outputs });
        partition_layer(&c, layer, &PartitionOptions::new(n))
    }

    #[test]
    fn small_net_fits_one_neurocell() {
        let cfg = ResparcConfig::resparc_64();
        let parts = vec![
            dense_partition(64, 64, 64, 0),
            dense_partition(64, 10, 64, 1),
        ];
        let p = place(&parts, &cfg);
        assert_eq!(p.mcas_used, 2);
        assert_eq!(p.mpes_used, 2);
        assert_eq!(p.ncs_used, 1);
        assert!(!p.boundary_crosses_nc(1));
        assert!(p.boundary_crosses_nc(0)); // input always via SRAM/bus
    }

    #[test]
    fn big_layer_spans_neurocells() {
        let cfg = ResparcConfig::resparc_64();
        // 784×800 dense: 13 chunks × 13 col-tiles = 169 tiles → 43 mPEs
        // → 3 NCs.
        let parts = vec![dense_partition(784, 800, 64, 0)];
        let p = place(&parts, &cfg);
        assert_eq!(p.layers[0].tiles, 13 * 13);
        assert_eq!(p.mpes_used, 169usize.div_ceil(4));
        assert_eq!(p.ncs_used, p.mpes_used.div_ceil(16));
        assert!(p.layers[0].nc_count() >= 2);
    }

    #[test]
    fn ccu_transfers_appear_beyond_local_multiplexing() {
        let cfg = ResparcConfig::resparc_64();
        // Fan-in 784 on 64 ⇒ degree 13 > 4 MCAs/mPE ⇒ ceil(13/4)-1 = 3
        // remote transfers per output per step.
        let parts = vec![dense_partition(784, 100, 64, 0)];
        let p = place(&parts, &cfg);
        assert_eq!(p.layers[0].ccu_transfers_per_step, 100 * 3);

        // Fan-in 64 ⇒ degree 1 ⇒ no CCU traffic.
        let parts2 = vec![dense_partition(64, 100, 64, 0)];
        let p2 = place(&parts2, &cfg);
        assert_eq!(p2.layers[0].ccu_transfers_per_step, 0);
    }

    #[test]
    fn layers_do_not_share_mpes() {
        let cfg = ResparcConfig::resparc_64();
        let parts = vec![
            dense_partition(64, 30, 64, 0), // 1 tile
            dense_partition(30, 20, 64, 1), // 1 tile
        ];
        let p = place(&parts, &cfg);
        assert_eq!(p.layers[0].end_mpe, p.layers[1].first_mpe);
        assert_eq!(p.mpes_used, 2);
    }

    #[test]
    fn origin_shifts_coordinates_but_not_counts() {
        let cfg = ResparcConfig::resparc_64();
        let parts = vec![
            dense_partition(784, 800, 64, 0),
            dense_partition(800, 10, 64, 1),
        ];
        let base = place(&parts, &cfg);
        let shifted = place_with_origin(&parts, &cfg, 5);
        assert_eq!(shifted.origin_nc, 5);
        assert_eq!(shifted.mpes_used, base.mpes_used);
        assert_eq!(shifted.ncs_used, base.ncs_used);
        assert_eq!(shifted.mcas_used, base.mcas_used);
        assert_eq!(shifted.end_nc(), 5 + base.ncs_used);
        assert_eq!(shifted.origin_mpe(&cfg), 5 * cfg.mpes_per_nc());
        let shift = 5 * cfg.mpes_per_nc();
        for (b, s) in base.layers.iter().zip(&shifted.layers) {
            assert_eq!(s.first_mpe, b.first_mpe + shift);
            assert_eq!(s.end_mpe, b.end_mpe + shift);
            assert_eq!(s.first_nc, b.first_nc + 5);
            assert_eq!(s.end_nc, b.end_nc + 5);
            assert_eq!(s.tiles, b.tiles);
            assert_eq!(s.ccu_transfers_per_step, b.ccu_transfers_per_step);
        }
        // Connectivity classification is origin-invariant.
        for l in 0..parts.len() {
            assert_eq!(shifted.boundary_crosses_nc(l), base.boundary_crosses_nc(l));
        }
    }

    #[test]
    fn translated_equals_placing_at_the_origin() {
        let cfg = ResparcConfig::resparc_64();
        let parts = vec![
            dense_partition(784, 800, 64, 0),
            dense_partition(800, 10, 64, 1),
        ];
        let base = place(&parts, &cfg);
        assert_eq!(base.translated(5, &cfg), place_with_origin(&parts, &cfg, 5));
        assert_eq!(base.translated(0, &cfg), base);
    }

    #[test]
    fn translated_to_moves_left_as_well_as_right() {
        let cfg = ResparcConfig::resparc_64();
        let parts = vec![
            dense_partition(784, 800, 64, 0),
            dense_partition(800, 10, 64, 1),
        ];
        let at7 = place_with_origin(&parts, &cfg, 7);
        // Leftward re-anchoring (the defragmentation move) is exactly
        // re-placing at the lower origin.
        assert_eq!(
            at7.translated_to(2, &cfg),
            place_with_origin(&parts, &cfg, 2)
        );
        assert_eq!(at7.translated_to(0, &cfg), place(&parts, &cfg));
        // Round trip is the identity.
        assert_eq!(at7.translated_to(3, &cfg).translated_to(7, &cfg), at7);
        assert_eq!(at7.translated_to(7, &cfg), at7);
    }

    #[test]
    fn place_is_place_with_origin_zero() {
        let cfg = ResparcConfig::resparc_64();
        let parts = vec![
            dense_partition(64, 64, 64, 0),
            dense_partition(64, 10, 64, 1),
        ];
        assert_eq!(place(&parts, &cfg), place_with_origin(&parts, &cfg, 0));
        assert_eq!(place(&parts, &cfg).origin_nc, 0);
    }

    #[test]
    fn boundary_crossing_detection() {
        let cfg = ResparcConfig::resparc_64();
        // Layer 0 occupies >1 NC; boundary 1 must cross.
        let parts = vec![
            dense_partition(784, 800, 64, 0),
            dense_partition(800, 10, 64, 1),
        ];
        let p = place(&parts, &cfg);
        assert!(p.boundary_crosses_nc(1));
    }
}
