//! Connectivity-matrix partitioning: slicing a layer's synapses into
//! crossbar-sized tiles.
//!
//! This implements §3.1.1 of the paper:
//!
//! * a neuron whose fan-in exceeds the MCA's rows is split into *chunks*
//!   that are integrated into the neuron time-multiplexed (Fig. 5); the
//!   number of chunks is the neuron's **multiplexing degree**,
//! * for sparse (CNN) connectivity, output columns that *share inputs*
//!   are packed into the same tile so one physical row feeds many columns
//!   — the input-sharing optimisation that raises MCA utilization on
//!   small arrays,
//! * dense (MLP) matrices degenerate to the classic grid tiling, filling
//!   every row and column.
//!
//! The fundamental invariant — checked here and property-tested — is that
//! **every synapse of the layer lands in exactly one tile**.

use resparc_neuro::connectivity::ConnectivityMatrix;

/// Aggregate description of one crossbar-sized tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Index of the layer this tile belongs to.
    pub layer: usize,
    /// Multiplexing phase (fan-in chunk index) this tile serves.
    pub chunk: u32,
    /// Distinct input rows occupied.
    pub rows: u32,
    /// Columns occupied (one per output-chunk).
    pub cols: u32,
    /// Synapses programmed into the tile.
    pub synapses: u32,
}

impl Tile {
    /// Device utilization of this tile on an `n × n` array.
    pub fn utilization(&self, mca_size: usize) -> f64 {
        self.synapses as f64 / (mca_size * mca_size) as f64
    }
}

/// Full row/column assignment of one tile (for the functional hardware
/// cosimulation of small networks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileDetail {
    /// Global input-neuron id of each occupied row, in row order.
    pub row_inputs: Vec<u32>,
    /// Per-column assignments.
    pub columns: Vec<TileColumnDetail>,
}

/// One occupied column of a tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileColumnDetail {
    /// Global output-neuron id this column computes (one chunk of it).
    pub output: u32,
    /// Which fan-in chunk of the output this column carries.
    pub chunk: u32,
    /// `(row_slot, weight_id)` pairs: the devices programmed on this
    /// column, addressed by row slot within the tile.
    pub synapses: Vec<(u32, u32)>,
}

/// The partitioning of one layer into tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPartition {
    /// Layer index within the topology.
    pub layer: usize,
    /// Aggregate tile descriptions.
    pub tiles: Vec<Tile>,
    /// Global input-neuron id of each occupied row, per tile (parallel to
    /// `tiles`, `tile_rows[i].len() == tiles[i].rows`). This is what lets
    /// the trace-driven event simulator decide, per timestep, which tiles
    /// actually receive spikes — without paying for full
    /// per-synapse [`TileDetail`]s.
    pub tile_rows: Vec<Vec<u32>>,
    /// Full assignments, present only when requested.
    pub details: Option<Vec<TileDetail>>,
    /// Maximum multiplexing degree over the layer's outputs.
    pub max_degree: u32,
    /// Mean multiplexing degree over outputs.
    pub mean_degree: f64,
    /// Layer input count.
    pub inputs: u32,
    /// Layer output count.
    pub outputs: u32,
    /// Total synapses across tiles (must equal the layer's count).
    pub total_synapses: u64,
    /// Whether the layer's connectivity is sparse (conv/pool). Sparse
    /// tiles gather 2-D receptive fields, which do not enjoy the 1-D
    /// zero run-length clustering dense rows see (paper §5.3).
    pub sparse: bool,
}

impl LayerPartition {
    /// Number of tiles (crossbars) used.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Mean device utilization across tiles on `mca_size` arrays.
    pub fn mean_utilization(&self, mca_size: usize) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles
            .iter()
            .map(|t| t.utilization(mca_size))
            .sum::<f64>()
            / self.tiles.len() as f64
    }

    /// Mean fraction of rows occupied per tile.
    pub fn mean_row_occupancy(&self, mca_size: usize) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles
            .iter()
            .map(|t| t.rows as f64 / mca_size as f64)
            .sum::<f64>()
            / self.tiles.len() as f64
    }

    /// Mean fraction of columns occupied per tile.
    pub fn mean_col_occupancy(&self, mca_size: usize) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles
            .iter()
            .map(|t| t.cols as f64 / mca_size as f64)
            .sum::<f64>()
            / self.tiles.len() as f64
    }
}

/// Options controlling partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Crossbar edge length.
    pub mca_size: usize,
    /// Enable input-sharing column packing (§3.1.1). Disabling it is the
    /// ablation: each column's rows are counted privately, so sparse
    /// layers waste rows.
    pub input_sharing: bool,
    /// Record full row/column assignments (needed for hardware cosim;
    /// memory-heavy for large layers).
    pub record_details: bool,
}

impl PartitionOptions {
    /// Default options at a given MCA size (input sharing on, no
    /// details).
    pub fn new(mca_size: usize) -> Self {
        Self {
            mca_size,
            input_sharing: true,
            record_details: false,
        }
    }

    /// Enables detail recording.
    pub fn with_details(mut self) -> Self {
        self.record_details = true;
        self
    }

    /// Disables input-sharing packing (ablation).
    pub fn without_input_sharing(mut self) -> Self {
        self.input_sharing = false;
        self
    }
}

/// Mutable state of the tile currently being filled.
struct OpenTile {
    /// Map from global input id to row slot. Ordered so every walk of
    /// the tile state is deterministic by construction (tiles hold at
    /// most `mca_size` entries; the BTree cost is negligible).
    row_of: std::collections::BTreeMap<u32, u32>,
    row_inputs: Vec<u32>,
    columns: Vec<TileColumnDetail>,
    synapses: u32,
    /// Row budget consumed if input sharing is disabled.
    private_rows: u32,
}

impl OpenTile {
    fn new() -> Self {
        Self {
            row_of: std::collections::BTreeMap::new(),
            row_inputs: Vec::new(),
            columns: Vec::new(),
            synapses: 0,
            private_rows: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Rows that would be occupied after adding `inputs`, under the given
    /// sharing rule.
    fn rows_after(&self, inputs: &[u32], sharing: bool) -> u32 {
        if sharing {
            let new = inputs
                .iter()
                .filter(|i| !self.row_of.contains_key(i))
                .count() as u32;
            self.row_inputs.len() as u32 + new
        } else {
            self.private_rows + inputs.len() as u32
        }
    }

    fn push_column(
        &mut self,
        output: u32,
        chunk: u32,
        inputs: &[u32],
        weight_ids: &[u32],
        sharing: bool,
        record: bool,
    ) {
        let mut synapses = Vec::new();
        for (&i, &w) in inputs.iter().zip(weight_ids) {
            let slot = if sharing {
                *self.row_of.entry(i).or_insert_with(|| {
                    self.row_inputs.push(i);
                    (self.row_inputs.len() - 1) as u32
                })
            } else {
                self.row_inputs.push(i);
                self.private_rows += 1;
                (self.row_inputs.len() - 1) as u32
            };
            if record {
                synapses.push((slot, w));
            }
        }
        if !sharing {
            // Without sharing, row_of is unused; private_rows already
            // advanced inside the loop via push.
            self.private_rows = self.row_inputs.len() as u32;
        }
        self.synapses += inputs.len() as u32;
        self.columns.push(TileColumnDetail {
            output,
            chunk,
            synapses,
        });
    }

    fn close(
        self,
        layer: usize,
        chunk_phase: u32,
        record: bool,
    ) -> (Tile, Vec<u32>, Option<TileDetail>) {
        let tile = Tile {
            layer,
            chunk: chunk_phase,
            rows: self.row_inputs.len() as u32,
            cols: self.columns.len() as u32,
            synapses: self.synapses,
        };
        let detail = record.then(|| TileDetail {
            row_inputs: self.row_inputs.clone(),
            columns: self.columns,
        });
        (tile, self.row_inputs, detail)
    }
}

/// Partitions one layer's connectivity matrix into tiles.
///
/// # Panics
///
/// Panics if `options.mca_size` is zero. Internal invariant violations
/// (synapse under/over-coverage) also panic — they would indicate a
/// partitioning bug, never bad user input.
pub fn partition_layer(
    conn: &ConnectivityMatrix,
    layer: usize,
    options: &PartitionOptions,
) -> LayerPartition {
    let n = options.mca_size;
    assert!(n > 0, "MCA size must be non-zero");
    let outputs = conn.outputs();

    // Multiplexing degree per output.
    let mut max_degree = 0u32;
    let mut degree_sum = 0u64;
    for o in 0..outputs {
        let d = (conn.fan_in(o)).div_ceil(n).max(1) as u32;
        max_degree = max_degree.max(d);
        degree_sum += d as u64;
    }

    let mut tiles = Vec::new();
    let mut tile_rows: Vec<Vec<u32>> = Vec::new();
    let mut details: Vec<TileDetail> = Vec::new();

    // Pack outputs whose receptive fields overlap into the same tile:
    // ordering by first input id clusters the same spatial position
    // across feature maps (identical or near-identical input sets), which
    // is what makes input sharing effective for convolutions. Dense
    // layers are unaffected (every output starts at input 0).
    let mut order: Vec<u32> = (0..outputs as u32).collect();
    order.sort_by_key(|&o| (conn.inputs_of(o as usize).first().copied().unwrap_or(0), o));

    // Chunk-major sweep: phase k packs the k-th fan-in chunk of every
    // output that has one. Dense layers degenerate to grid tiling because
    // chunk k of every output covers the identical row window.
    for k in 0..max_degree as usize {
        let mut open = OpenTile::new();
        for &o in &order {
            let o = o as usize;
            let ins = conn.inputs_of(o);
            let wids = conn.weight_ids_of(o);
            let start = k * n;
            if start >= ins.len() {
                continue;
            }
            let end = (start + n).min(ins.len());
            let chunk_inputs = &ins[start..end];
            let chunk_wids = &wids[start..end];

            let fits_rows = open.rows_after(chunk_inputs, options.input_sharing) <= n as u32;
            let fits_cols = (open.columns.len() as u32) < n as u32;
            if !(open.is_empty() || (fits_rows && fits_cols)) {
                let (tile, rows, detail) = std::mem::replace(&mut open, OpenTile::new()).close(
                    layer,
                    k as u32,
                    options.record_details,
                );
                tiles.push(tile);
                tile_rows.push(rows);
                if let Some(d) = detail {
                    details.push(d);
                }
            }
            open.push_column(
                o as u32,
                k as u32,
                chunk_inputs,
                chunk_wids,
                options.input_sharing,
                options.record_details,
            );
            debug_assert!(
                open.row_inputs.len() <= n,
                "tile row overflow: {} > {n}",
                open.row_inputs.len()
            );
        }
        if !open.is_empty() {
            let (tile, rows, detail) = open.close(layer, k as u32, options.record_details);
            tiles.push(tile);
            tile_rows.push(rows);
            if let Some(d) = detail {
                details.push(d);
            }
        }
    }

    let total_synapses: u64 = tiles.iter().map(|t| t.synapses as u64).sum();
    assert_eq!(
        total_synapses,
        conn.synapse_count() as u64,
        "partition must cover every synapse exactly once"
    );

    debug_assert!(tiles
        .iter()
        .zip(&tile_rows)
        .all(|(t, r)| t.rows as usize == r.len()));
    LayerPartition {
        layer,
        tiles,
        tile_rows,
        details: options.record_details.then_some(details),
        max_degree,
        mean_degree: if outputs == 0 {
            0.0
        } else {
            degree_sum as f64 / outputs as f64
        },
        inputs: conn.inputs() as u32,
        outputs: outputs as u32,
        total_synapses,
        sparse: conn.density() < 0.999,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resparc_neuro::topology::{ChannelTable, LayerSpec, Padding, Shape};

    fn conn(spec: &LayerSpec) -> ConnectivityMatrix {
        ConnectivityMatrix::from_layer(spec)
    }

    #[test]
    fn dense_layer_grid_tiling() {
        // 100 inputs × 30 outputs on 32-wide MCAs: 4 row chunks (ceil
        // 100/32), each packing all 30 outputs in one tile.
        let c = conn(&LayerSpec::Dense {
            inputs: 100,
            outputs: 30,
        });
        let p = partition_layer(&c, 0, &PartitionOptions::new(32));
        assert_eq!(p.max_degree, 4);
        assert_eq!(p.tile_count(), 4);
        assert_eq!(p.total_synapses, 3000);
        // Chunk 0..2 tiles are full rows; chunk 3 has 100-96=4 rows.
        assert_eq!(p.tiles[0].rows, 32);
        assert_eq!(p.tiles[3].rows, 4);
        assert!(p.tiles.iter().all(|t| t.cols == 30));
    }

    #[test]
    fn dense_layer_splits_columns_too() {
        let c = conn(&LayerSpec::Dense {
            inputs: 64,
            outputs: 100,
        });
        let p = partition_layer(&c, 0, &PartitionOptions::new(64));
        // One row chunk, two column tiles (64 + 36).
        assert_eq!(p.max_degree, 1);
        assert_eq!(p.tile_count(), 2);
        assert_eq!(p.tiles[0].cols, 64);
        assert_eq!(p.tiles[1].cols, 36);
    }

    #[test]
    fn conv_input_sharing_packs_columns() {
        // conv 5×5 on one map: fan-in 25 ≪ 64 rows; neighbouring outputs
        // share 20 inputs, so tiles pack many columns.
        let spec = LayerSpec::Conv2d {
            input: Shape::new(12, 12, 1),
            maps: 4,
            kernel: 5,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        let c = conn(&spec);
        let shared = partition_layer(&c, 0, &PartitionOptions::new(64));
        let unshared = partition_layer(&c, 0, &PartitionOptions::new(64).without_input_sharing());
        assert!(shared.tile_count() < unshared.tile_count());
        assert!(shared.mean_utilization(64) > unshared.mean_utilization(64));
        assert_eq!(shared.total_synapses, unshared.total_synapses);
        assert_eq!(shared.max_degree, 1);
    }

    #[test]
    fn smaller_mcas_have_higher_sparse_utilization() {
        // The paper's §3.1.1/Fig. 12(c) mechanism.
        let spec = LayerSpec::Conv2d {
            input: Shape::new(16, 16, 1),
            maps: 8,
            kernel: 5,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        let c = conn(&spec);
        let u32_ = partition_layer(&c, 0, &PartitionOptions::new(32)).mean_utilization(32);
        let u64_ = partition_layer(&c, 0, &PartitionOptions::new(64)).mean_utilization(64);
        let u128_ = partition_layer(&c, 0, &PartitionOptions::new(128)).mean_utilization(128);
        // Utilization must not improve with array size, and must drop
        // clearly by 128 (rows/cols saturate at the sharing limit).
        assert!(u32_ + 1e-9 >= u64_, "{u32_} vs {u64_}");
        assert!(u64_ + 1e-9 >= u128_, "{u64_} vs {u128_}");
        assert!(u32_ > 1.5 * u128_, "{u32_} vs {u128_}");
    }

    #[test]
    fn dense_utilization_stays_high_at_all_sizes() {
        let c = conn(&LayerSpec::Dense {
            inputs: 512,
            outputs: 512,
        });
        for n in [32usize, 64, 128] {
            let u = partition_layer(&c, 0, &PartitionOptions::new(n)).mean_utilization(n);
            assert!(u > 0.95, "size {n}: utilization {u}");
        }
    }

    #[test]
    fn details_cover_every_synapse_with_consistent_slots() {
        let spec = LayerSpec::Conv2d {
            input: Shape::new(8, 8, 2),
            maps: 3,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        let c = conn(&spec);
        let p = partition_layer(&c, 0, &PartitionOptions::new(32).with_details());
        let details = p.details.as_ref().unwrap();
        assert_eq!(details.len(), p.tile_count());
        let mut covered = 0usize;
        for (tile, det) in p.tiles.iter().zip(details) {
            assert_eq!(det.row_inputs.len() as u32, tile.rows);
            assert_eq!(det.columns.len() as u32, tile.cols);
            for col in &det.columns {
                for &(slot, _) in &col.synapses {
                    assert!((slot as usize) < det.row_inputs.len());
                }
                covered += col.synapses.len();
            }
        }
        assert_eq!(covered, c.synapse_count());
    }

    #[test]
    fn tile_rows_recorded_for_every_tile() {
        let spec = LayerSpec::Conv2d {
            input: Shape::new(10, 10, 2),
            maps: 4,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        for (spec, inputs) in [
            (spec, 200usize),
            (
                LayerSpec::Dense {
                    inputs: 100,
                    outputs: 40,
                },
                100,
            ),
        ] {
            let c = conn(&spec);
            let p = partition_layer(&c, 0, &PartitionOptions::new(32));
            assert_eq!(p.tile_rows.len(), p.tile_count());
            for (tile, rows) in p.tiles.iter().zip(&p.tile_rows) {
                assert_eq!(rows.len() as u32, tile.rows);
                assert!(rows.iter().all(|&r| (r as usize) < inputs));
                // With input sharing on, a tile never holds duplicate rows.
                let mut sorted = rows.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), rows.len());
            }
        }
    }

    #[test]
    fn high_fan_in_sparse_outputs_are_chunked() {
        // Full-table conv over many channels: fan-in 3*3*24 = 216 > 64.
        let spec = LayerSpec::Conv2d {
            input: Shape::new(6, 6, 24),
            maps: 2,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        let c = conn(&spec);
        let p = partition_layer(&c, 0, &PartitionOptions::new(64));
        assert_eq!(p.max_degree, 4); // ceil(216/64)
        assert_eq!(p.total_synapses, c.synapse_count() as u64);
    }

    #[test]
    fn rows_never_exceed_mca_size() {
        let spec = LayerSpec::Conv2d {
            input: Shape::new(10, 10, 3),
            maps: 6,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            table: ChannelTable::Banded { fan: 2 },
        };
        let c = conn(&spec);
        for n in [16usize, 32, 64] {
            let p = partition_layer(&c, 0, &PartitionOptions::new(n));
            assert!(p
                .tiles
                .iter()
                .all(|t| t.rows <= n as u32 && t.cols <= n as u32));
        }
    }
}
