//! The SNN → RESPARC mapper.
//!
//! Maps a [`Topology`] (or weighted [`Network`]) onto the machine: each
//! layer's connectivity matrix is partitioned into crossbar tiles
//! ([`partition`]), tiles are placed onto mPEs and NeuroCells
//! ([`placement`]), and the result is summarised in a [`Mapping`] the
//! simulator and the report generators consume.
//!
//! The mapper is *technology-aware* (paper abstract): it can rank
//! candidate MCA sizes by mapped energy via
//! [`Mapper::recommend_mca_size`] and warns when the configured size
//! exceeds what the device technology supports reliably.

pub mod optimize;
pub mod partition;
pub mod placement;

use std::sync::{Arc, OnceLock};

use resparc_device::sizing::max_feasible_size;
use resparc_neuro::connectivity::ConnectivityMatrix;
use resparc_neuro::network::Network;
use resparc_neuro::topology::Topology;

use crate::config::ResparcConfig;
pub use optimize::{BatchPlacement, BatchPlacer, PlacementRequest, PlacementStrategy};
pub use partition::{LayerPartition, PartitionOptions, Tile, TileColumnDetail, TileDetail};
pub use placement::{place, place_with_origin, LayerSpan, Placement};

/// Error from mapping a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// A pool-coordinate mapping (non-zero NC origin) would run past the
    /// physical fabric. Origin-0 mappings may overflow — the simulators
    /// time-multiplex them — but an offset placement models *this* chip,
    /// so NCs beyond `physical_ncs` do not exist to place on.
    OriginOutOfBounds {
        /// Requested NeuroCell origin.
        origin_nc: usize,
        /// One past the last NC the placement would occupy.
        end_nc: usize,
        /// Physical NeuroCells on the chip.
        physical_ncs: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MapError::OriginOutOfBounds {
                origin_nc,
                end_nc,
                physical_ncs,
            } => write!(
                f,
                "placement at NC origin {origin_nc} would occupy NCs up to {end_nc}, beyond the \
                 {physical_ncs} physical NeuroCells"
            ),
        }
    }
}

impl std::error::Error for MapError {}

/// The SNN → hardware mapper.
#[derive(Debug, Clone)]
pub struct Mapper {
    config: ResparcConfig,
    input_sharing: bool,
    record_details: bool,
    /// Non-ideality error budget used for technology warnings.
    error_budget: f64,
}

impl Mapper {
    /// Creates a mapper for the given machine configuration.
    pub fn new(config: ResparcConfig) -> Self {
        Self {
            config,
            input_sharing: true,
            record_details: false,
            error_budget: 0.15,
        }
    }

    /// Disables input-sharing packing (the §3.1.1 ablation).
    pub fn without_input_sharing(mut self) -> Self {
        self.input_sharing = false;
        self
    }

    /// Records full tile assignments (for hardware cosimulation of small
    /// networks).
    pub fn with_details(mut self) -> Self {
        self.record_details = true;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &ResparcConfig {
        &self.config
    }

    /// Maps a topology with an assumed mean |weight| of 0.5 per layer.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn map(&self, topology: &Topology) -> Result<Mapping, MapError> {
        self.map_at(topology, 0)
    }

    /// Maps a topology at a NeuroCell origin (pool coordinates) — the
    /// entry a [`FabricPool`](crate::fabric::FabricPool) uses to place a
    /// tenant into its allocated NC run. `map` is `map_at(.., 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] if the configuration fails
    /// validation, or [`MapError::OriginOutOfBounds`] if a non-zero
    /// origin would place the network past the physical fabric.
    pub fn map_at(&self, topology: &Topology, origin_nc: usize) -> Result<Mapping, MapError> {
        let mags = vec![0.5f64; topology.layer_count()];
        self.map_with_weights_at(topology, &mags, origin_nc)
    }

    /// Maps a trained network, deriving per-layer mean |weight|
    /// magnitudes from its actual weights (used by the crossbar energy
    /// model).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn map_network(&self, network: &Network) -> Result<Mapping, MapError> {
        self.map_network_at(network, 0)
    }

    /// Maps a trained network at a NeuroCell origin (pool coordinates);
    /// see [`Mapper::map_at`]. `map_network` is `map_network_at(.., 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] if the configuration fails
    /// validation, or [`MapError::OriginOutOfBounds`] if a non-zero
    /// origin would place the network past the physical fabric.
    pub fn map_network_at(&self, network: &Network, origin_nc: usize) -> Result<Mapping, MapError> {
        let topology = network.topology();
        let mags: Vec<f64> = network
            .layers()
            .iter()
            .map(|l| {
                let ws = l.weights();
                if ws.is_empty() {
                    0.0
                } else {
                    let max = ws.iter().fold(0.0f32, |m, &w| m.max(w.abs())).max(1e-12);
                    // Mean magnitude of the *normalized* weights, which is
                    // what the crossbar stores.
                    (ws.iter().map(|&w| (w.abs() / max) as f64).sum::<f64>()) / ws.len() as f64
                }
            })
            .collect();
        self.map_with_weights_at(topology, &mags, origin_nc)
    }

    /// Maps a topology with explicit per-layer mean normalized-|weight|
    /// magnitudes.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] if the configuration fails
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `mean_weight_mags.len() != topology.layer_count()`.
    pub fn map_with_weights(
        &self,
        topology: &Topology,
        mean_weight_mags: &[f64],
    ) -> Result<Mapping, MapError> {
        self.map_with_weights_at(topology, mean_weight_mags, 0)
    }

    /// Maps a topology with explicit weight magnitudes at a NeuroCell
    /// origin (pool coordinates); see [`Mapper::map_at`].
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`] if the configuration fails
    /// validation, or [`MapError::OriginOutOfBounds`] if a non-zero
    /// origin would place the network past the physical fabric.
    ///
    /// # Panics
    ///
    /// Panics if `mean_weight_mags.len() != topology.layer_count()`.
    pub fn map_with_weights_at(
        &self,
        topology: &Topology,
        mean_weight_mags: &[f64],
        origin_nc: usize,
    ) -> Result<Mapping, MapError> {
        self.config.validate().map_err(MapError::InvalidConfig)?;
        assert_eq!(
            mean_weight_mags.len(),
            topology.layer_count(),
            "need one mean weight magnitude per layer"
        );

        let opts = {
            let mut o = PartitionOptions::new(self.config.mca_size);
            o.input_sharing = self.input_sharing;
            o.record_details = self.record_details;
            o
        };
        let partitions: Vec<LayerPartition> = topology
            .layers()
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let conn = ConnectivityMatrix::from_layer(spec);
                partition::partition_layer(&conn, i, &opts)
            })
            .collect();
        let placement = place_with_origin(&partitions, &self.config, origin_nc);
        if origin_nc > 0 && placement.end_nc() > self.config.physical_ncs {
            return Err(MapError::OriginOutOfBounds {
                origin_nc,
                end_nc: placement.end_nc(),
                physical_ncs: self.config.physical_ncs,
            });
        }

        let technology_warning = match max_feasible_size(&self.config.device, self.error_budget) {
            Some(max) if self.config.mca_size <= max => None,
            Some(max) => Some(format!(
                "MCA size {} exceeds the technology's reliable maximum of {max} \
                 (error budget {})",
                self.config.mca_size, self.error_budget
            )),
            None => Some(format!(
                "device technology supports no candidate MCA size at error budget {}",
                self.error_budget
            )),
        };

        Ok(Mapping {
            config: self.config.clone(),
            partitions,
            placement,
            mean_weight_mags: mean_weight_mags.to_vec(),
            technology_warning,
            replay_plan: OnceLock::new(),
        })
    }

    /// Technology-aware size recommendation: maps `topology` at every
    /// feasible candidate size and returns `(size, mapped MCA count)`
    /// pairs, smallest-footprint first. The full energy ranking lives in
    /// the simulator; this structural ranking is the mapper-level proxy
    /// (fewer, fuller crossbars).
    pub fn recommend_mca_size(
        &self,
        topology: &Topology,
        candidates: &[usize],
    ) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = candidates
            .iter()
            .filter_map(|&size| {
                let mut cfg = self.config.clone();
                cfg.mca_size = size;
                // Infeasible candidate sizes are skipped, not fatal.
                let m = Mapper::new(cfg).map(topology).ok()?;
                // Footprint proxy shared with the simulators' cost math.
                Some((size, crate::sim::cost::device_footprint(&m.placement, size)))
            })
            .collect();
        out.sort_by_key(|&(_, devices)| devices);
        out
    }
}

/// A mapped network: partitions + placement + the statistics the
/// simulator needs.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Machine configuration used.
    pub config: ResparcConfig,
    /// Per-layer tile partitions.
    pub partitions: Vec<LayerPartition>,
    /// Tile placement over mPEs/NeuroCells.
    pub placement: Placement,
    /// Per-layer mean normalized |weight| (crossbar energy input).
    pub mean_weight_mags: Vec<f64>,
    /// Advisory warning when the MCA size exceeds the technology's
    /// reliable range.
    pub technology_warning: Option<String>,
    /// Lazily-compiled word-level replay plan (see
    /// [`crate::sim::plan::ReplayPlan`]). Cloning a mapping shares the
    /// already-compiled plan; the plan reads only `partitions` and
    /// `config.packet_bits`, so placement translation (pool compaction)
    /// never invalidates it.
    replay_plan: OnceLock<Arc<crate::sim::plan::ReplayPlan>>,
}

impl Mapping {
    /// Number of layers mapped.
    pub fn layer_count(&self) -> usize {
        self.partitions.len()
    }

    /// The compiled word-level replay plan for this mapping, compiling it
    /// on first use (thread-safe, compiled at most once per mapping).
    pub fn replay_plan(&self) -> Arc<crate::sim::plan::ReplayPlan> {
        Arc::clone(
            self.replay_plan
                .get_or_init(|| Arc::new(crate::sim::plan::ReplayPlan::compile(self))),
        )
    }

    /// Summarises the mapping (the report behind Fig. 12's utilization
    /// story).
    pub fn report(&self) -> MappingReport {
        MappingReport {
            mca_size: self.config.mca_size,
            mcas_used: self.placement.mcas_used,
            mpes_used: self.placement.mpes_used,
            ncs_used: self.placement.ncs_used,
            layers: self
                .partitions
                .iter()
                .zip(&self.placement.layers)
                .map(|(p, s)| LayerReport {
                    layer: p.layer,
                    tiles: p.tile_count(),
                    max_degree: p.max_degree,
                    mean_degree: p.mean_degree,
                    mean_utilization: p.mean_utilization(self.config.mca_size),
                    mean_row_occupancy: p.mean_row_occupancy(self.config.mca_size),
                    mean_col_occupancy: p.mean_col_occupancy(self.config.mca_size),
                    mpes: s.mpe_count(),
                    ncs: s.nc_count(),
                })
                .collect(),
        }
    }

    /// Mean device utilization across every mapped tile.
    pub fn overall_utilization(&self) -> f64 {
        let total_tiles: usize = self.partitions.iter().map(|p| p.tile_count()).sum();
        if total_tiles == 0 {
            return 0.0;
        }
        let total_syn: u64 = self.partitions.iter().map(|p| p.total_synapses).sum();
        total_syn as f64 / (total_tiles * self.config.mca_capacity()) as f64
    }
}

/// Human-readable mapping summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// Crossbar edge length used.
    pub mca_size: usize,
    /// Crossbars consumed.
    pub mcas_used: usize,
    /// mPEs consumed.
    pub mpes_used: usize,
    /// NeuroCells consumed.
    pub ncs_used: usize,
    /// Per-layer details.
    pub layers: Vec<LayerReport>,
}

/// Per-layer mapping summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer index.
    pub layer: usize,
    /// Tiles used.
    pub tiles: usize,
    /// Maximum time-multiplexing degree.
    pub max_degree: u32,
    /// Mean time-multiplexing degree.
    pub mean_degree: f64,
    /// Mean device utilization.
    pub mean_utilization: f64,
    /// Mean row occupancy.
    pub mean_row_occupancy: f64,
    /// Mean column occupancy.
    pub mean_col_occupancy: f64,
    /// mPEs occupied.
    pub mpes: usize,
    /// NeuroCells touched.
    pub ncs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use resparc_neuro::topology::{ChannelTable, Padding, Shape};

    #[test]
    fn maps_small_mlp() {
        let t = Topology::mlp(784, &[800, 10]);
        let m = Mapper::new(ResparcConfig::resparc_64()).map(&t).unwrap();
        assert_eq!(m.layer_count(), 2);
        let r = m.report();
        assert_eq!(r.layers[0].tiles, 13 * 13);
        assert_eq!(r.layers[0].max_degree, 13);
        assert!(r.layers[0].mean_utilization > 0.9);
        assert!(m.technology_warning.is_none());
    }

    #[test]
    fn cnn_utilization_lower_than_mlp() {
        let cnn = Topology::builder(Shape::new(16, 16, 1))
            .conv(8, 5, Padding::Valid, ChannelTable::Full)
            .pool(2)
            .dense(10)
            .build()
            .unwrap();
        let mlp = Topology::mlp(256, &[256, 10]);
        let mapper = Mapper::new(ResparcConfig::resparc_64());
        let um = mapper.map(&mlp).unwrap().overall_utilization();
        let uc = mapper.map(&cnn).unwrap().overall_utilization();
        assert!(uc < um, "cnn {uc} vs mlp {um}");
    }

    #[test]
    fn oversize_mca_triggers_technology_warning() {
        let t = Topology::mlp(64, &[10]);
        let cfg = ResparcConfig::with_mca_size(256);
        let m = Mapper::new(cfg).map(&t).unwrap();
        assert!(m.technology_warning.is_some());
    }

    #[test]
    fn out_of_bounds_origin_is_rejected() {
        // The paper's MNIST MLP needs 6 NCs on RESPARC-64 (16 physical):
        // origin 12 would run to NC 18, which does not exist.
        let t = Topology::mlp(784, &[800, 800, 10]);
        let mapper = Mapper::new(ResparcConfig::resparc_64());
        let err = mapper.map_at(&t, 12).unwrap_err();
        assert!(matches!(
            err,
            MapError::OriginOutOfBounds {
                origin_nc: 12,
                physical_ncs: 16,
                ..
            }
        ));
        // Origin 0 may overflow freely (the simulators fold it) and
        // in-bounds origins pass.
        assert!(mapper.map_at(&t, 0).is_ok());
        assert!(mapper.map_at(&t, 10).is_ok());
    }

    #[test]
    fn network_weights_set_magnitudes() {
        let net = Network::random(Topology::mlp(32, &[16, 4]), 3, 1.0);
        let m = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        assert_eq!(m.mean_weight_mags.len(), 2);
        assert!(m.mean_weight_mags.iter().all(|&w| (0.0..=1.0).contains(&w)));
        assert!(m.mean_weight_mags[0] > 0.0);
    }

    #[test]
    fn recommendation_prefers_small_arrays_for_sparse_nets() {
        let cnn = Topology::builder(Shape::new(16, 16, 1))
            .conv(8, 5, Padding::Valid, ChannelTable::Full)
            .pool(2)
            .dense(10)
            .build()
            .unwrap();
        let mapper = Mapper::new(ResparcConfig::resparc_64());
        let ranking = mapper.recommend_mca_size(&cnn, &[32, 64, 128]);
        // Smallest device footprint first; for sparse nets that is the
        // smallest array.
        assert_eq!(ranking.first().map(|r| r.0), Some(32));
    }

    #[test]
    fn ablation_without_sharing_uses_more_mcas() {
        let cnn = Topology::builder(Shape::new(12, 12, 1))
            .conv(6, 5, Padding::Valid, ChannelTable::Full)
            .pool(2)
            .dense(10)
            .build()
            .unwrap();
        let with = Mapper::new(ResparcConfig::resparc_64())
            .map(&cnn)
            .unwrap()
            .placement
            .mcas_used;
        let without = Mapper::new(ResparcConfig::resparc_64())
            .without_input_sharing()
            .map(&cnn)
            .unwrap()
            .placement
            .mcas_used;
        assert!(without > with, "without {without} vs with {with}");
    }
}
