//! Search-based batch placement: `PlacementStrategy::{Greedy, Optimized}`.
//!
//! Greedy admission (the [`FabricPool`] entry points) places each
//! tenant the moment it arrives, in arrival order, at whatever run the
//! pool's [`PackingPolicy`](crate::fabric::PackingPolicy) picks. That
//! is the *oracle*: simple, online, and the baseline every figure
//! reports. But when a **batch** of requests is known up front, the
//! admission order and — on a heterogeneous pool — each request's MCA
//! size class are free variables, and first-fit over a fragmented pool
//! is famously sensitive to both. [`BatchPlacer`] searches that space
//! with deterministic simulated annealing over the existing
//! probe/[`can_admit_sized`](FabricPool::can_admit_sized)/
//! [`admit_mapped`](FabricPool::admit_mapped) API — no external
//! solver, no re-partitioning (every probe is mapped once per class,
//! then only *translated*), and no wall-clock or entropy inputs, so a
//! given `(pool, requests, seed)` always returns the same placement.
//!
//! # Cost model
//!
//! Candidate placements are ranked lexicographically:
//!
//! 1. **admitted tenants** (more is better) — capacity is the product;
//! 2. **bus trips** (fewer is better): the number of layer boundaries
//!    that leave the switch network and cross onto the shared C-mesh
//!    bus ([`Placement::boundary_crosses_nc`]), summed over the batch's
//!    admitted tenants. Choosing a class that maps a network into one
//!    NeuroCell keeps its traffic local;
//! 3. **fragmentation** (fewer is better): the pool's count of maximal
//!    free fragments ([`FabricPool::free_fragments`]) after the batch —
//!    fewer, larger holes keep the pool admissible for future tenants.
//!
//! # Oracle contract
//!
//! [`PlacementStrategy::Greedy`] decodes the identity schedule —
//! arrival order, preferred classes — and reproduces sequential
//! [`FabricPool::admit`] exactly (unit-tested). The
//! [`PlacementStrategy::Optimized`] search *starts* from that greedy
//! incumbent and only ever replaces it with a strictly better
//! placement, so on any batch:
//!
//! ```text
//! optimized.admitted ≥ greedy.admitted
//! ```
//!
//! and, at equal admits, bus trips and fragmentation are no worse —
//! by construction, property-tested in `tests/proptests.rs`.

use resparc_neuro::network::Network;
use resparc_neuro::topology::Topology;

use crate::fabric::{FabricPool, TenantId};
use crate::map::{MapError, Mapper, Mapping, Placement};

/// How a batch of admission requests is placed onto a [`FabricPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlacementStrategy {
    /// Sequential admission in arrival order, preferred size classes —
    /// exactly [`FabricPool::admit`] per request. The oracle the
    /// optimizer is measured against.
    #[default]
    Greedy,
    /// Deterministic simulated annealing over admission order and
    /// per-request size class, seeded with the greedy schedule and
    /// keeping the best placement found — never worse than
    /// [`Greedy`](Self::Greedy) on the cost model above.
    Optimized,
}

/// One admission request in a batch: a name plus its pre-mapped probes,
/// one per MCA size class of the target pool that can map it, in the
/// greedy preference order `(nc_footprint, mca_size)` ascending.
#[derive(Debug, Clone)]
pub struct PlacementRequest {
    /// The tenant label an admission will carry.
    pub name: String,
    probes: Vec<Mapping>,
}

impl PlacementRequest {
    /// Builds a request for a bare topology (mean |weight| 0.5 per
    /// layer, as [`Mapper::map`]), probing every size class of `pool`.
    ///
    /// # Errors
    ///
    /// The last [`MapError`] when *no* class of the pool can map the
    /// topology (classes that individually fail are skipped).
    pub fn from_topology(
        pool: &FabricPool,
        topology: &Topology,
        name: &str,
    ) -> Result<Self, MapError> {
        Self::build(pool, |mapper| mapper.map(topology), name)
    }

    /// Builds a request for a trained network (weight magnitudes from
    /// its actual weights, as [`Mapper::map_network`]), probing every
    /// size class of `pool`.
    ///
    /// # Errors
    ///
    /// The last [`MapError`] when *no* class of the pool can map the
    /// network.
    pub fn from_network(
        pool: &FabricPool,
        network: &Network,
        name: &str,
    ) -> Result<Self, MapError> {
        Self::build(pool, |mapper| mapper.map_network(network), name)
    }

    fn build<F>(pool: &FabricPool, probe_for: F, name: &str) -> Result<Self, MapError>
    where
        F: Fn(&Mapper) -> Result<Mapping, MapError>,
    {
        let mut probes: Vec<Mapping> = Vec::new();
        let mut last_err: Option<MapError> = None;
        for size in pool.size_classes() {
            match probe_for(&Mapper::new(pool.class_config(size))) {
                Ok(probe) => probes.push(probe),
                Err(e) => last_err = Some(e),
            }
        }
        // Same preference order as FabricPool's greedy class choice.
        probes.sort_by_key(|p| (p.placement.ncs_used.max(1), p.config.mca_size));
        if probes.is_empty() {
            return Err(last_err.unwrap_or_else(|| {
                MapError::InvalidConfig("pool has no size classes".to_string())
            }));
        }
        Ok(Self {
            name: name.to_string(),
            probes,
        })
    }

    /// The pre-mapped probes, preferred class first.
    pub fn probes(&self) -> &[Mapping] {
        &self.probes
    }
}

/// The result of placing a batch: the pool with the chosen admissions
/// applied, plus the cost-model metrics of the final layout.
#[derive(Debug, Clone)]
pub struct BatchPlacement {
    /// The input pool with every admitted request resident.
    pub pool: FabricPool,
    /// Per-request outcome, in the batch's arrival order: the tenant id
    /// an admitted request received, `None` for requests that did not
    /// fit under the chosen schedule.
    pub admitted: Vec<Option<TenantId>>,
    /// Layer boundaries crossing the shared bus, summed over the
    /// batch's admitted tenants (cost term 2).
    pub bus_trips: usize,
    /// Maximal free fragments left in the pool (cost term 3).
    pub fragments: usize,
    /// Candidate schedules evaluated (1 for greedy; search telemetry
    /// for the optimizer).
    pub evaluations: usize,
}

impl BatchPlacement {
    /// Requests admitted by the chosen schedule.
    pub fn admitted_count(&self) -> usize {
        self.admitted.iter().filter(|t| t.is_some()).count()
    }

    /// The lexicographic cost-model key (bigger is better).
    fn key(&self) -> PlacementKey {
        (
            self.admitted_count(),
            std::cmp::Reverse(self.bus_trips),
            std::cmp::Reverse(self.fragments),
        )
    }
}

/// Lexicographic score: admitted ↑, bus trips ↓, fragments ↓.
type PlacementKey = (usize, std::cmp::Reverse<usize>, std::cmp::Reverse<usize>);

/// Bus-boundary crossings of one placement (cost term 2).
fn bus_crossings(placement: &Placement) -> usize {
    (0..placement.layers.len())
        .filter(|&l| placement.boundary_crosses_nc(l))
        .count()
}

/// Weyl-sequence splitmix64 — the repo's deterministic RNG idiom (no
/// `thread_rng`, no time seeds; the linter enforces this).
const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX64_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, n)` (callers guarantee `n > 0`).
fn draw(state: &mut u64, n: usize) -> usize {
    (splitmix64(state) % n.max(1) as u64) as usize
}

/// A uniform draw in `[0, 1)`.
fn draw_unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Places a batch of [`PlacementRequest`]s onto a pool snapshot under a
/// [`PlacementStrategy`]; see the [module docs](self) for the cost
/// model and the oracle contract.
///
/// # Examples
///
/// Optimized batch placement is never worse than greedy, and on a
/// fragmented pool it can be strictly better:
///
/// ```
/// use resparc_core::fabric::FabricPool;
/// use resparc_core::map::{BatchPlacer, PlacementRequest, PlacementStrategy};
/// use resparc_core::ResparcConfig;
/// use resparc_neuro::topology::Topology;
///
/// let pool = FabricPool::new(ResparcConfig::resparc_64());
/// let reqs: Vec<PlacementRequest> = (0..3)
///     .map(|i| {
///         PlacementRequest::from_topology(&pool, &Topology::mlp(144, &[576, 10]), &format!("t{i}"))
///     })
///     .collect::<Result<_, _>>()?;
/// let greedy = BatchPlacer::new(PlacementStrategy::Greedy).place(&pool, &reqs);
/// let optimized = BatchPlacer::new(PlacementStrategy::Optimized).place(&pool, &reqs);
/// assert!(optimized.admitted_count() >= greedy.admitted_count());
/// # Ok::<(), resparc_core::map::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchPlacer {
    strategy: PlacementStrategy,
    seed: u64,
    iterations: usize,
}

impl BatchPlacer {
    /// Creates a placer with the default deterministic seed and search
    /// budget (400 candidate schedules).
    pub fn new(strategy: PlacementStrategy) -> Self {
        Self {
            strategy,
            seed: 0x5EED_CAB5,
            iterations: 400,
        }
    }

    /// Sets the annealing seed (the search is deterministic per seed;
    /// ignored by [`PlacementStrategy::Greedy`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the search budget in candidate schedules (ignored by
    /// [`PlacementStrategy::Greedy`]).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// The strategy this placer decodes with.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Places `requests` onto a clone of `pool` (the input pool is
    /// untouched — resident tenants and unhealthy cells are respected
    /// as fixed obstacles). Admission inside the schedule goes through
    /// [`FabricPool::admit_mapped`] under the pool's own
    /// [`PackingPolicy`](crate::fabric::PackingPolicy), so every
    /// invariant the pool enforces (capacity, disjointness, health,
    /// size classes) holds for every candidate evaluated.
    pub fn place(&self, pool: &FabricPool, requests: &[PlacementRequest]) -> BatchPlacement {
        let n = requests.len();
        let identity: Vec<usize> = (0..n).collect();
        let no_shift = vec![0usize; n];
        let mut best = decode(pool, requests, &identity, &no_shift);
        best.evaluations = 1;
        if self.strategy == PlacementStrategy::Greedy || n == 0 {
            return best;
        }

        // Simulated annealing from the greedy incumbent. The *current*
        // schedule walks (accepting some downhill moves early), but
        // `best` only ever improves — the oracle contract.
        let mut state = self.seed;
        let mut cur_order = identity;
        let mut cur_shift = no_shift;
        let mut cur_key = best.key();
        let mut best_key = cur_key;
        let mut best_order = cur_order.clone();
        let mut best_shift = cur_shift.clone();
        let total = self.iterations.max(1);
        for it in 0..total {
            let mut order = cur_order.clone();
            let mut shift = cur_shift.clone();
            mutate(&mut state, &mut order, &mut shift, requests);
            let cand = decode(pool, requests, &order, &shift);
            let cand_key = cand.key();
            if cand_key > best_key {
                best_key = cand_key;
                best_order = order.clone();
                best_shift = shift.clone();
            }
            let accept = if cand_key >= cur_key {
                true
            } else {
                // Downhill acceptance on a scalarised gap, cooling
                // linearly: early on the walk escapes local packings,
                // later it converges.
                let gap = scalar(cur_key) - scalar(cand_key);
                let temp = 2_000.0 * (1.0 - it as f64 / total as f64).max(1e-3);
                draw_unit(&mut state) < (-gap / temp).exp()
            };
            if accept {
                cur_order = order;
                cur_shift = shift;
                cur_key = cand_key;
            }
        }
        let mut final_best = decode(pool, requests, &best_order, &best_shift);
        final_best.evaluations = total + 2;
        final_best
    }
}

/// Scalarises a key for annealing acceptance (lexicographic weights).
fn scalar(key: PlacementKey) -> f64 {
    key.0 as f64 * 1e9 - key.1 .0 as f64 * 1e3 - key.2 .0 as f64
}

/// One random schedule mutation: transpose two admission positions or
/// rotate one request's class preference.
fn mutate(
    state: &mut u64,
    order: &mut [usize],
    shift: &mut [usize],
    requests: &[PlacementRequest],
) {
    let n = order.len();
    let swap_move =
        n > 1 && (splitmix64(state) & 1 == 0 || requests.iter().all(|r| r.probes.len() < 2));
    if swap_move {
        let i = draw(state, n);
        let j = draw(state, n);
        order.swap(i, j);
    } else {
        let k = draw(state, n);
        let classes = requests[order[k]].probes.len();
        if classes > 1 {
            shift[order[k]] = (shift[order[k]] + 1 + draw(state, classes - 1)) % classes;
        } else if n > 1 {
            let j = draw(state, n);
            order.swap(k, j);
        }
    }
}

/// Evaluates one schedule: sequential `admit_mapped` on a pool clone,
/// requests in `order`, each trying its classes starting from
/// `shift[r]` in preference rotation. The identity schedule *is*
/// greedy admission.
fn decode(
    pool: &FabricPool,
    requests: &[PlacementRequest],
    order: &[usize],
    shift: &[usize],
) -> BatchPlacement {
    let mut pool = pool.clone();
    let mut admitted: Vec<Option<TenantId>> = vec![None; requests.len()];
    for &r in order {
        let req = &requests[r];
        let classes = req.probes.len();
        for j in 0..classes {
            let probe = &req.probes[(j + shift[r]) % classes];
            let needed = probe.placement.ncs_used.max(1);
            if pool.can_admit_sized(needed, probe.config.mca_size) {
                admitted[r] = pool.admit_mapped(probe.clone(), &req.name).ok();
                break;
            }
        }
    }
    let bus_trips = admitted
        .iter()
        .flatten()
        .filter_map(|&id| pool.tenant(id))
        .map(|t| bus_crossings(&t.mapping.placement))
        .sum();
    let fragments = pool.free_fragments();
    BatchPlacement {
        pool,
        admitted,
        bus_trips,
        fragments,
        evaluations: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::fabric::PackingPolicy;

    /// `ncs` NeuroCells on RESPARC-64 (see `fabric::pool::tests`).
    fn sized_topology(ncs: usize) -> Topology {
        match ncs {
            1 => Topology::mlp(144, &[576, 10]),
            2 => Topology::mlp(144, &[576, 576, 10]),
            4 => Topology::mlp(144, &[576, 576, 576, 10]),
            5 => Topology::mlp(144, &[576, 576, 576, 576, 10]),
            other => panic!("no sized topology for {other} NCs"),
        }
    }

    #[test]
    fn greedy_strategy_reproduces_sequential_admission_exactly() {
        let base = FabricPool::new(ResparcConfig::resparc_64()).with_policy(PackingPolicy::BestFit);
        let widths = [2usize, 5, 1, 4, 2];
        let reqs: Vec<PlacementRequest> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                PlacementRequest::from_topology(&base, &sized_topology(w), &format!("t{i}"))
                    .unwrap()
            })
            .collect();

        let batch = BatchPlacer::new(PlacementStrategy::Greedy).place(&base, &reqs);
        assert_eq!(batch.evaluations, 1);

        let mut oracle = base.clone();
        for (i, &w) in widths.iter().enumerate() {
            let outcome = oracle.admit_topology(&sized_topology(w), &format!("t{i}"));
            assert_eq!(outcome.is_ok(), batch.admitted[i].is_some());
        }
        // Same tenants at the same origins — the batch pool IS the
        // sequential pool.
        assert_eq!(oracle.occupancy(), batch.pool.occupancy());
        assert_eq!(oracle.tenants().len(), batch.admitted_count());
    }

    #[test]
    fn optimized_beats_greedy_on_an_order_sensitive_batch() {
        // Fragment the pool first: admit five tenants back-to-back,
        // then evict two interior ones, leaving holes of 4 NCs (2..6)
        // and 2 NCs (11..13, plus the 2-NC tail 14..16). A first-fit
        // arrival order [2-NC, 4-NC] drops the 2 into the 4-hole,
        // splitting it so the 4 no longer fits anywhere — the classic
        // order sensitivity the batch optimizer exists to repair.
        let mut base = FabricPool::new(ResparcConfig::resparc_64());
        base.admit_topology(&sized_topology(2), "r0").unwrap();
        let hole = base.admit_topology(&sized_topology(4), "hole4").unwrap();
        base.admit_topology(&sized_topology(5), "r1").unwrap();
        let hole2 = base.admit_topology(&sized_topology(2), "hole2").unwrap();
        base.admit_topology(&sized_topology(1), "r2").unwrap();
        base.evict(hole);
        base.evict(hole2);
        assert_eq!(base.largest_free_run(), 4);

        let reqs: Vec<PlacementRequest> = [2usize, 4]
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                PlacementRequest::from_topology(&base, &sized_topology(w), &format!("b{i}"))
                    .unwrap()
            })
            .collect();
        let greedy = BatchPlacer::new(PlacementStrategy::Greedy).place(&base, &reqs);
        assert_eq!(greedy.admitted_count(), 1, "first-fit splits the 4-hole");
        let optimized = BatchPlacer::new(PlacementStrategy::Optimized).place(&base, &reqs);
        assert_eq!(optimized.admitted_count(), 2, "reordering packs both");
        assert!(optimized.evaluations > 1);
    }

    #[test]
    fn optimized_exploits_class_choice_on_heterogeneous_pools() {
        // Four 64-class cells and one 32-class pair. The 2-NC tenants
        // (P, R) only *fit* on the 64 class — at MCA 32 their footprint
        // exceeds the two 32-cells. The 1-NC tenant Q fits either way
        // (1 NC at 64, the whole 32-pair at 32) but greedily prefers
        // the smaller footprint, parking on a 64 cell. Arrival [P, Q,
        // R] then leaves the 64 class with no 2-run for R — greedy
        // admits two and its class fall-through cannot save R (32 is
        // infeasible for it). The optimizer diverts Q to the idle
        // 32-pair and admits all three.
        let base =
            FabricPool::heterogeneous(ResparcConfig::resparc_64(), &[64, 64, 64, 64, 32, 32]);
        let wide = sized_topology(2);
        let narrow = sized_topology(1);
        let p = PlacementRequest::from_topology(&base, &wide, "P").unwrap();
        let q = PlacementRequest::from_topology(&base, &narrow, "Q").unwrap();
        let r = PlacementRequest::from_topology(&base, &wide, "R").unwrap();
        // Preconditions the scenario rests on.
        assert_eq!(q.probes().len(), 2, "one probe per class");
        assert_eq!(q.probes()[0].config.mca_size, 64, "preferred: 1 NC at 64");
        assert_eq!(q.probes()[0].placement.ncs_used, 1);
        assert_eq!(q.probes()[1].placement.ncs_used, 2, "fits the 32-pair");
        assert_eq!(p.probes()[0].config.mca_size, 64);
        assert_eq!(p.probes()[0].placement.ncs_used, 2);
        assert!(
            p.probes()
                .iter()
                .all(|m| m.config.mca_size == 64 || m.placement.ncs_used > 2),
            "the wide tenant must be infeasible on the 32-pair"
        );
        let reqs = vec![p, q, r];

        let greedy = BatchPlacer::new(PlacementStrategy::Greedy).place(&base, &reqs);
        assert_eq!(greedy.admitted_count(), 2);
        let optimized = BatchPlacer::new(PlacementStrategy::Optimized).place(&base, &reqs);
        assert_eq!(optimized.admitted_count(), 3);
        // Every admitted tenant sits on cells of its own class.
        for id in optimized.admitted.iter().flatten() {
            let t = optimized.pool.tenant(*id).unwrap();
            for nc in t.first_nc()..t.end_nc() {
                assert_eq!(optimized.pool.nc_sizes()[nc], t.mapping.config.mca_size);
            }
        }
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let base = FabricPool::new(ResparcConfig::resparc_64());
        let reqs: Vec<PlacementRequest> = [2usize, 5, 4, 2, 1]
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                PlacementRequest::from_topology(&base, &sized_topology(w), &format!("t{i}"))
                    .unwrap()
            })
            .collect();
        let a = BatchPlacer::new(PlacementStrategy::Optimized)
            .with_seed(7)
            .place(&base, &reqs);
        let b = BatchPlacer::new(PlacementStrategy::Optimized)
            .with_seed(7)
            .place(&base, &reqs);
        assert_eq!(a.pool.occupancy(), b.pool.occupancy());
        assert_eq!(a.admitted, b.admitted);
        assert_eq!((a.bus_trips, a.fragments), (b.bus_trips, b.fragments));
    }
}
