//! Functional hardware cosimulation: a spike-accurate RESPARC built from
//! *real* crossbars.
//!
//! [`HwCore`] instantiates every mapped tile as an explicit
//! [`Crossbar`] (programmed conductances, quantization, optional device
//! variation), wires columns to IF neurons and executes a network
//! timestep-by-timestep. It exists to validate the whole mapping chain:
//! on small networks its output spikes must match the algorithm-level
//! [`resparc_neuro::network::SnnRunner`] exactly when quantization is
//! fine enough — a property the integration tests assert.
//!
//! It also counts the event-driven statistics (crossbar reads skipped
//! because their entire input window was silent) that the analytic
//! simulator models statistically.

use resparc_device::crossbar::Crossbar;
use resparc_neuro::network::Network;
use resparc_neuro::neuron::{Membrane, NeuronConfig};
use resparc_neuro::spike::{AsSpikeView, SpikeVector};

use crate::map::Mapping;

/// Error from building a hardware cosimulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwBuildError {
    /// The mapping was produced without tile details
    /// (`Mapper::with_details`).
    MissingDetails,
    /// The mapping and network disagree on layer count.
    LayerMismatch {
        /// Layers in the mapping.
        mapping: usize,
        /// Layers in the network.
        network: usize,
    },
}

impl std::fmt::Display for HwBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwBuildError::MissingDetails => {
                write!(f, "mapping lacks tile details; use Mapper::with_details()")
            }
            HwBuildError::LayerMismatch { mapping, network } => {
                write!(f, "mapping has {mapping} layers but network has {network}")
            }
        }
    }
}

impl std::error::Error for HwBuildError {}

/// One instantiated crossbar tile.
#[derive(Debug, Clone)]
struct HwTile {
    crossbar: Crossbar,
    /// Global input-neuron id per occupied row.
    row_inputs: Vec<u32>,
    /// Global output-neuron id per occupied column.
    col_outputs: Vec<u32>,
}

/// One layer of the hardware model: its tiles plus the IF neuron bank.
#[derive(Debug, Clone)]
struct HwLayer {
    tiles: Vec<HwTile>,
    membranes: Vec<Membrane>,
    neuron_cfg: NeuronConfig,
}

/// The functional hardware model of a mapped network.
#[derive(Debug, Clone)]
pub struct HwCore {
    input_count: usize,
    layers: Vec<HwLayer>,
    /// Crossbar reads performed.
    pub reads_performed: u64,
    /// Crossbar reads skipped because the input window was silent
    /// (event-driven zero-check).
    pub reads_skipped: u64,
    event_driven: bool,
}

impl HwCore {
    /// Builds the hardware model from a detailed mapping and the weighted
    /// network it maps. Weights are normalized per layer (crossbars store
    /// `w / max|w|`) and thresholds rescaled to preserve IF dynamics.
    ///
    /// # Errors
    ///
    /// Returns [`HwBuildError`] if the mapping lacks details or disagrees
    /// with the network.
    pub fn build(network: &Network, mapping: &Mapping) -> Result<Self, HwBuildError> {
        if mapping.layer_count() != network.layers().len() {
            return Err(HwBuildError::LayerMismatch {
                mapping: mapping.layer_count(),
                network: network.layers().len(),
            });
        }
        let size = mapping.config.mca_size;
        let levels = mapping.config.mca_levels;
        let mut layers = Vec::with_capacity(mapping.layer_count());

        for (part, net_layer) in mapping.partitions.iter().zip(network.layers()) {
            let details = part.details.as_ref().ok_or(HwBuildError::MissingDetails)?;
            let weights = net_layer.weights();
            let wmax = weights
                .iter()
                .fold(0.0f32, |m, &w| m.max(w.abs()))
                .max(1e-12);

            let mut tiles = Vec::with_capacity(details.len());
            for det in details {
                let mut xbar = Crossbar::new(size, mapping.config.device, levels);
                let mut synapses = Vec::new();
                let mut col_outputs = Vec::with_capacity(det.columns.len());
                for (c, col) in det.columns.iter().enumerate() {
                    col_outputs.push(col.output);
                    for &(row_slot, wid) in &col.synapses {
                        let w = weights[wid as usize] / wmax;
                        synapses.push((row_slot as usize, c, f64::from(w)));
                    }
                }
                // resparc-lint: allow(no-panic, reason = "partitioner invariant: every emitted tile fits its crossbar by construction")
                xbar.program(&synapses).expect("tile fits its crossbar");
                tiles.push(HwTile {
                    crossbar: xbar,
                    row_inputs: det.row_inputs.clone(),
                    col_outputs,
                });
            }
            layers.push(HwLayer {
                tiles,
                membranes: vec![Membrane::new(); net_layer.spec().output_count()],
                neuron_cfg: NeuronConfig::integrate_and_fire(net_layer.threshold() / wmax),
            });
        }

        Ok(Self {
            input_count: network.input_count(),
            layers,
            reads_performed: 0,
            reads_skipped: 0,
            event_driven: mapping.config.event_driven,
        })
    }

    /// Applies device variation to every crossbar (deterministic per
    /// seed), for non-ideality studies.
    pub fn apply_variation(&mut self, seed: u64) {
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (ti, tile) in layer.tiles.iter_mut().enumerate() {
                tile.crossbar
                    .apply_variation(seed ^ ((li as u64) << 32) ^ ti as u64);
            }
        }
    }

    /// Number of input neurons.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Advances one timestep; returns the output layer's spikes.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_count()`.
    pub fn step(&mut self, input: impl AsSpikeView) -> SpikeVector {
        let input = input.as_view();
        assert_eq!(input.len(), self.input_count, "input size mismatch");
        let mut current_spikes = input.to_vector();
        for layer in &mut self.layers {
            let mut currents = vec![0.0f64; layer.membranes.len()];
            for tile in &layer.tiles {
                // Gather this tile's row window.
                let mut rows = vec![false; tile.crossbar.size()];
                let mut any = false;
                for (slot, &inp) in tile.row_inputs.iter().enumerate() {
                    let s = current_spikes.get(inp as usize);
                    rows[slot] = s;
                    any |= s;
                }
                if self.event_driven && !any {
                    self.reads_skipped += 1;
                    continue;
                }
                self.reads_performed += 1;
                let cols = tile.crossbar.read(&rows);
                for (c, &out) in tile.col_outputs.iter().enumerate() {
                    currents[out as usize] += cols[c];
                }
            }
            let mut spikes = SpikeVector::new(layer.membranes.len());
            for (o, m) in layer.membranes.iter_mut().enumerate() {
                if m.step(currents[o] as f32, &layer.neuron_cfg) {
                    spikes.set(o, true);
                }
            }
            current_spikes = spikes;
        }
        current_spikes
    }

    /// Resets membranes and statistics.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            for m in &mut layer.membranes {
                m.reset();
            }
        }
        self.reads_performed = 0;
        self.reads_skipped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::map::Mapper;
    use resparc_neuro::encoding::RegularEncoder;
    use resparc_neuro::network::Network;
    use resparc_neuro::topology::Topology;

    fn high_precision_cfg() -> ResparcConfig {
        // Fine conductance quantization so the analog path matches the
        // float functional simulator tightly.
        let mut cfg = ResparcConfig::with_mca_size(16);
        cfg.mca_levels = 1 << 14;
        cfg
    }

    fn build_pair(seed: u64) -> (Network, HwCore) {
        let mut net = Network::random(Topology::mlp(24, &[18, 6]), seed, 1.0);
        // Keep activity in a healthy range for the test.
        for layer in net.layers_mut() {
            layer.set_threshold(0.8);
        }
        let mapping = Mapper::new(high_precision_cfg())
            .with_details()
            .map_network(&net)
            .unwrap();
        let hw = HwCore::build(&net, &mapping).unwrap();
        (net, hw)
    }

    #[test]
    fn hardware_matches_functional_simulator() {
        let (net, mut hw) = build_pair(11);
        let enc = RegularEncoder::new(1.0);
        let stimulus: Vec<f32> = (0..24).map(|i| (i as f32) / 24.0).collect();
        let raster = enc.encode(&stimulus, 60);

        let mut runner = net.spiking();
        for (t, step) in raster.iter().enumerate() {
            let sw = runner.step(step).clone();
            let hwout = hw.step(step);
            assert_eq!(sw, hwout, "output spikes diverged at timestep {t}");
        }
    }

    #[test]
    fn event_driven_skips_silent_windows() {
        let (_, mut hw) = build_pair(5);
        // An all-silent input step must skip every layer-0 read.
        let silent = SpikeVector::new(24);
        hw.step(&silent);
        assert_eq!(hw.reads_performed, 0);
        assert!(hw.reads_skipped > 0);
    }

    #[test]
    fn reads_resume_on_activity() {
        let (_, mut hw) = build_pair(5);
        let mut v = SpikeVector::new(24);
        v.set(3, true);
        hw.step(&v);
        assert!(hw.reads_performed > 0);
    }

    #[test]
    fn build_requires_details() {
        let net = Network::random(Topology::mlp(8, &[4]), 0, 1.0);
        let mapping = Mapper::new(high_precision_cfg()).map_network(&net).unwrap();
        assert_eq!(
            HwCore::build(&net, &mapping).unwrap_err(),
            HwBuildError::MissingDetails
        );
    }

    #[test]
    fn reset_clears_counters() {
        let (_, mut hw) = build_pair(7);
        let mut v = SpikeVector::new(24);
        v.set(0, true);
        hw.step(&v);
        hw.reset();
        assert_eq!(hw.reads_performed, 0);
        assert_eq!(hw.reads_skipped, 0);
    }

    #[test]
    fn variation_changes_behaviour_without_crashing() {
        let (_, mut hw) = build_pair(13);
        hw.apply_variation(42);
        let mut v = SpikeVector::new(24);
        for i in 0..24 {
            v.set(i, i % 2 == 0);
        }
        let _ = hw.step(&v);
    }
}
