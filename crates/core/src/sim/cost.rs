//! Per-tile activity/cost arithmetic shared by every consumer of a
//! [`Mapping`](crate::map::Mapping).
//!
//! The stationary simulator ([`super::Simulator`]), the trace-driven event
//! simulator ([`super::event::EventSimulator`]) and the mapper's
//! technology ranking ([`crate::map::Mapper::recommend_mca_size`]) all
//! need the same three pieces of math: the linearised crossbar read cost
//! of a tile, the local phase count of a layer's time-multiplexed
//! integration, and the mapped device footprint. Keeping them here makes
//! the two energy paths charge *identical* per-event costs — any
//! divergence between them is then purely a workload-statistics effect,
//! which is exactly what the agreement/divergence tests assert.

use resparc_device::energy_model::McaEnergyModel;
use resparc_energy::units::{Energy, Time};

use crate::config::ResparcConfig;
use crate::map::partition::LayerPartition;
use crate::map::{Placement, Tile};

/// Average switch hops for an intra-NeuroCell packet delivery. The
/// dedicated row/column switch links make most transfers one-hop (paper
/// §3.1.2); boundary cases add a second hop.
pub const AVG_SWITCH_HOPS: f64 = 1.5;

/// Address width of a tBUFF target entry (SW_ID + mPE_ID + MCA_ID,
/// Fig. 6).
pub const TARGET_ADDRESS_BITS: u32 = 24;

/// Analog CCU transfer: gated-wire hand-off of one partial current.
pub const CCU_TRANSFER_BITS: u32 = 8;

/// Linearised crossbar read cost of one tile at its utilization: a read
/// with `a` spiking rows costs `fixed + per_active_row · a`.
///
/// Device conduction is data-dependent (only spiking rows conduct);
/// drivers and sensing are clocked for the whole array on every read —
/// the fixed cost under-utilized tiles cannot amortise (the Fig. 12c
/// penalty at 128).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileReadCost {
    /// Cost of firing the read at all: column sensing plus every row
    /// driver clocked, regardless of activity.
    pub fixed: Energy,
    /// Marginal device-conduction cost of one spiking row.
    pub per_active_row: Energy,
}

impl TileReadCost {
    /// Energy of one read of this tile with `active_rows` spiking rows.
    pub fn read(&self, active_rows: usize) -> Energy {
        self.fixed + self.per_active_row * active_rows as f64
    }
}

/// Builds the linearised read cost of `tile` on `mca` (an
/// `mca_size`-wide array) at the layer's mean programmed |weight|.
pub fn tile_read_cost(
    mca: &McaEnergyModel,
    tile: &Tile,
    mca_size: usize,
    mean_weight_mag: f64,
) -> TileReadCost {
    let util = tile.utilization(mca_size);
    let base = mca.read_energy(0, util, mean_weight_mag);
    let per_active_row = (mca.read_energy(1, util, mean_weight_mag) - base) - mca.row_driver_energy;
    TileReadCost {
        fixed: base + mca.row_driver_energy * mca_size as f64,
        per_active_row,
    }
}

/// Classifications per second for one classification of the given
/// latency, guarded against zero / non-finite latencies (a zero-step or
/// fully-degenerate workload reports `0.0` rather than `inf`/NaN).
/// Shared by the stationary and event reports so the guard cannot
/// diverge between them.
pub fn safe_throughput(latency: Time) -> f64 {
    let s = latency.seconds();
    if s.is_finite() && s > 0.0 {
        1.0 / s
    } else {
        0.0
    }
}

/// Local compute phases of one layer's timestep: the time-multiplexed
/// integration sequences `max_degree` fan-in chunks, of which one mPE
/// hosts at most `mcas_per_mpe` locally (Fig. 5).
pub fn local_phases(part: &LayerPartition, config: &ResparcConfig) -> usize {
    (part.max_degree as usize).min(config.mcas_per_mpe).max(1)
}

/// Mapped device footprint: total memristor pairs consumed by a
/// placement at the given array size (the mapper's structural
/// energy proxy — fewer, fuller crossbars).
pub fn device_footprint(placement: &Placement, mca_size: usize) -> usize {
    placement.mcas_used * mca_size * mca_size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::map::Mapper;
    use resparc_device::memristor::MemristorSpec;
    use resparc_neuro::topology::Topology;

    #[test]
    fn read_cost_is_linear_in_active_rows() {
        let tile = Tile {
            layer: 0,
            chunk: 0,
            rows: 64,
            cols: 64,
            synapses: 4096,
        };
        let mca = McaEnergyModel::new(MemristorSpec::paper_default(), 64);
        let cost = tile_read_cost(&mca, &tile, 64, 0.5);
        assert!(cost.fixed > Energy::ZERO);
        assert!(cost.per_active_row > Energy::ZERO);
        let delta = cost.read(10) - cost.read(9);
        assert!((delta.picojoules() - cost.per_active_row.picojoules()).abs() < 1e-9);
    }

    #[test]
    fn phases_capped_by_local_mca_count() {
        let cfg = ResparcConfig::resparc_64();
        let m = Mapper::new(cfg.clone())
            .map(&Topology::mlp(784, &[100]))
            .unwrap();
        // Degree 13 on 4 MCAs/mPE → 4 local phases.
        assert_eq!(local_phases(&m.partitions[0], &cfg), 4);
        let small = Mapper::new(cfg.clone())
            .map(&Topology::mlp(64, &[10]))
            .unwrap();
        assert_eq!(local_phases(&small.partitions[0], &cfg), 1);
    }

    #[test]
    fn footprint_counts_devices() {
        let m = Mapper::new(ResparcConfig::resparc_64())
            .map(&Topology::mlp(64, &[64]))
            .unwrap();
        assert_eq!(device_footprint(&m.placement, 64), 64 * 64);
    }
}
