//! The compiled word-level replay plan: per-[`Mapping`] lowering of every
//! layer's `tile_rows` packet windows onto the bit-packed words of the
//! spike trace, so event replay counts a window's active rows with AND +
//! popcount instead of one scalar bit test per row.
//!
//! # Plan layout
//!
//! A [`ReplayPlan`] holds one `LayerPlan` per mapped layer. A layer
//! plan flattens every tile's packet windows
//! (`tile_rows[ti].chunks(packet_bits)`) into one windows array, indexed
//! per tile through `tile_ranges` (CSR-style). Each window is lowered to
//! one of two shapes:
//!
//! * `WindowPlan::Run` — the window's rows are one contiguous ascending
//!   id run of width ≤ 64 (the shape every dense layer produces): the
//!   active count is read by shifting at most two adjacent trace words
//!   and masking to the run width. No per-row data at all.
//! * `WindowPlan::Masks` — scattered rows (conv layers under
//!   input-sharing): the rows are coalesced into `(word index, bit mask)`
//!   pairs stored in the layer's shared `masks` pool; the active count is
//!   `Σ popcount(trace_word & mask)`, one term per *distinct word* the
//!   window touches instead of one test per row.
//!
//! Both shapes reproduce the scalar row walk's count exactly (rows within
//! a tile are unique, so popcounts cannot double-count) — every count the
//! replay engines derive from a plan is an integer, which is what makes
//! the plan engine's energy ledger bit-identical to the reference
//! engine's (see [`super::event`]).
//!
//! The plan depends only on the mapping's `partitions` and
//! `config.packet_bits` — not on placement — so pool-compaction placement
//! translation never invalidates it. It is compiled lazily and cached on
//! the [`Mapping`] (`OnceLock<Arc<ReplayPlan>>`), mirroring how
//! `CompiledNetwork` is cached on `Network`.

use crate::map::Mapping;

/// One lowered packet window of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WindowPlan {
    /// Contiguous ascending row run `[first, first + width)`, width ≤ 64:
    /// spans at most the two words `word` and `word + 1`.
    Run {
        /// Word index of the run's first row.
        word: u32,
        /// Bit offset of the first row within that word (0..64).
        shift: u8,
        /// Whether the run continues into `word + 1` (implies
        /// `shift != 0`, so the `64 - shift` rescue shift is in 1..64).
        spans_two: bool,
        /// Width mask: low `width` bits set.
        mask: u64,
    },
    /// Scattered rows: the coalesced `(word, mask)` pairs at
    /// `masks[start..end]` in the owning [`LayerPlan`].
    Masks {
        /// Start index into the layer's mask pool.
        start: u32,
        /// One past the last mask of this window.
        end: u32,
    },
}

impl WindowPlan {
    /// Active rows of this window in one timestep's trace words.
    #[inline]
    pub(crate) fn count(&self, words: &[u64], masks: &[(u32, u64)]) -> u64 {
        match *self {
            WindowPlan::Run {
                word,
                shift,
                spans_two,
                mask,
            } => {
                let lo = words[word as usize] >> shift;
                let bits = if spans_two {
                    lo | (words[word as usize + 1] << (64 - shift))
                } else {
                    lo
                };
                u64::from((bits & mask).count_ones())
            }
            WindowPlan::Masks { start, end } => masks[start as usize..end as usize]
                .iter()
                .map(|&(w, m)| u64::from((words[w as usize] & m).count_ones()))
                .sum(),
        }
    }
}

/// The lowered packet windows of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LayerPlan {
    /// CSR ranges: tile `ti`'s windows are
    /// `windows[tile_ranges[ti]..tile_ranges[ti + 1]]`.
    tile_ranges: Vec<u32>,
    /// All tiles' windows, flattened in tile order.
    windows: Vec<WindowPlan>,
    /// Shared `(word, mask)` pool for the [`WindowPlan::Masks`] windows.
    masks: Vec<(u32, u64)>,
}

impl LayerPlan {
    /// The windows of tile `ti`, in the scalar engine's scan order.
    #[inline]
    pub(crate) fn tile_windows(&self, ti: usize) -> &[WindowPlan] {
        &self.windows[self.tile_ranges[ti] as usize..self.tile_ranges[ti + 1] as usize]
    }

    /// The layer's shared mask pool.
    #[inline]
    pub(crate) fn masks(&self) -> &[(u32, u64)] {
        &self.masks
    }

    /// Number of tiles covered.
    pub(crate) fn tile_count(&self) -> usize {
        self.tile_ranges.len() - 1
    }
}

/// A compiled word-level replay plan for one [`Mapping`] — see the
/// module docs for the layout and the bit-identity contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayPlan {
    layers: Vec<LayerPlan>,
    packet_bits: u32,
}

impl ReplayPlan {
    /// Lowers every layer's `tile_rows` windows against the mapping's
    /// packet width. Placement-independent: only `mapping.partitions` and
    /// `mapping.config.packet_bits` are read.
    pub fn compile(mapping: &Mapping) -> Self {
        let pkt = mapping.config.packet_bits as usize;
        let layers = mapping
            .partitions
            .iter()
            .map(|part| {
                let mut tile_ranges = Vec::with_capacity(part.tile_rows.len() + 1);
                tile_ranges.push(0u32);
                let mut windows = Vec::new();
                let mut masks: Vec<(u32, u64)> = Vec::new();
                for rows in &part.tile_rows {
                    for window in rows.chunks(pkt) {
                        windows.push(lower_window(window, &mut masks));
                    }
                    tile_ranges.push(windows.len() as u32);
                }
                LayerPlan {
                    tile_ranges,
                    windows,
                    masks,
                }
            })
            .collect();
        Self {
            layers,
            packet_bits: mapping.config.packet_bits,
        }
    }

    /// The plan of layer `l`.
    #[inline]
    pub(crate) fn layer(&self, l: usize) -> &LayerPlan {
        &self.layers[l]
    }

    /// Packet width the plan was lowered against.
    pub fn packet_bits(&self) -> u32 {
        self.packet_bits
    }

    /// Number of layers covered.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total lowered windows across all layers and tiles.
    pub fn window_count(&self) -> usize {
        self.layers.iter().map(|l| l.windows.len()).sum()
    }

    /// Fraction of windows lowered to the contiguous-run fast path
    /// (`1.0` for pure dense networks; conv layers under input-sharing
    /// contribute scattered mask windows).
    pub fn run_fraction(&self) -> f64 {
        let total = self.window_count();
        if total == 0 {
            return 1.0;
        }
        let runs: usize = self
            .layers
            .iter()
            .flat_map(|l| &l.windows)
            .filter(|w| matches!(w, WindowPlan::Run { .. }))
            .count();
        runs as f64 / total as f64
    }
}

/// Lowers one packet window's rows to a [`WindowPlan`], appending to the
/// layer's mask pool when the rows are not a contiguous run.
fn lower_window(rows: &[u32], masks: &mut Vec<(u32, u64)>) -> WindowPlan {
    let width = rows.len();
    debug_assert!(width > 0, "chunks never yields an empty window");
    let contiguous = width <= 64 && rows.windows(2).all(|p| p[1] == p[0] + 1);
    if contiguous {
        let first = rows[0] as usize;
        let word = (first / 64) as u32;
        let shift = (first % 64) as u8;
        let spans_two = shift != 0 && shift as usize + width > 64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        WindowPlan::Run {
            word,
            shift,
            spans_two,
            mask,
        }
    } else {
        let start = masks.len() as u32;
        // Rows are unique within a tile (partition invariant), so OR-ing
        // them into per-word masks preserves the exact row count. Use an
        // ordered map: windows are usually nearly sorted and the engines
        // iterate the pool sequentially.
        let mut by_word: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &gi in rows {
            *by_word.entry(gi / 64).or_insert(0) |= 1u64 << (gi % 64);
        }
        masks.extend(by_word);
        let end = masks.len() as u32;
        debug_assert_eq!(
            masks[start as usize..end as usize]
                .iter()
                .map(|&(_, m)| m.count_ones() as usize)
                .sum::<usize>(),
            width,
            "duplicate rows in a tile window would break popcount identity"
        );
        WindowPlan::Masks { start, end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::map::Mapper;
    use resparc_neuro::spike::SpikeVector;
    use resparc_neuro::topology::{ChannelTable, Padding, Shape, Topology};

    /// Scalar oracle: the reference engine's per-window count.
    fn scalar_count(rows: &[u32], spikes: &SpikeVector) -> u64 {
        rows.iter().filter(|&&gi| spikes.get(gi as usize)).count() as u64
    }

    fn pseudo_random_spikes(len: usize, seed: u64) -> SpikeVector {
        let mut v = SpikeVector::new(len);
        let mut state = seed | 1;
        for i in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state & 3 == 0 {
                v.set(i, true);
            }
        }
        v
    }

    fn assert_plan_matches_scalar(mapping: &Mapping) {
        let plan = ReplayPlan::compile(mapping);
        let pkt = mapping.config.packet_bits as usize;
        for (l, part) in mapping.partitions.iter().enumerate() {
            let lp = plan.layer(l);
            assert_eq!(lp.tile_count(), part.tile_count());
            for seed in [1u64, 99, 12345] {
                let spikes = pseudo_random_spikes(part.inputs as usize, seed);
                for (ti, rows) in part.tile_rows.iter().enumerate() {
                    let planned: Vec<u64> = lp
                        .tile_windows(ti)
                        .iter()
                        .map(|w| w.count(spikes.words(), lp.masks()))
                        .collect();
                    let scalar: Vec<u64> = rows
                        .chunks(pkt)
                        .map(|win| scalar_count(win, &spikes))
                        .collect();
                    assert_eq!(planned, scalar, "layer {l} tile {ti} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn dense_layers_lower_to_runs_and_match_scalar() {
        let t = Topology::mlp(200, &[150, 10]);
        let mapping = Mapper::new(ResparcConfig::resparc_64()).map(&t).unwrap();
        let plan = ReplayPlan::compile(&mapping);
        assert!(
            plan.run_fraction() > 0.99,
            "dense tile rows are contiguous runs, got {}",
            plan.run_fraction()
        );
        assert_plan_matches_scalar(&mapping);
    }

    #[test]
    fn conv_input_sharing_lowers_scattered_windows_and_matches_scalar() {
        let t = Topology::builder(Shape::new(12, 12, 1))
            .conv(6, 3, Padding::Same, ChannelTable::Full)
            .pool(2)
            .conv(4, 3, Padding::Valid, ChannelTable::Banded { fan: 2 })
            .dense(10)
            .build()
            .unwrap();
        let mapping = Mapper::new(ResparcConfig::resparc_32()).map(&t).unwrap();
        assert_plan_matches_scalar(&mapping);
    }

    #[test]
    fn run_windows_crossing_word_boundaries_count_exactly() {
        // Hand-built runs at awkward alignments, against a dense vector.
        let mut masks = Vec::new();
        let spikes = pseudo_random_spikes(256, 7);
        for first in [0u32, 1, 31, 63, 64, 65, 100, 127, 190] {
            for width in [1usize, 7, 32, 33, 64] {
                if first as usize + width > 256 {
                    continue;
                }
                let rows: Vec<u32> = (first..first + width as u32).collect();
                let w = lower_window(&rows, &mut masks);
                assert!(matches!(w, WindowPlan::Run { .. }), "contiguous → Run");
                assert_eq!(
                    w.count(spikes.words(), &masks),
                    scalar_count(&rows, &spikes),
                    "first {first} width {width}"
                );
            }
        }
    }

    #[test]
    fn scattered_window_coalesces_per_word() {
        let mut masks = Vec::new();
        let rows = vec![3u32, 5, 64, 66, 130, 7];
        let w = lower_window(&rows, &mut masks);
        let WindowPlan::Masks { start, end } = w else {
            panic!("scattered rows must lower to Masks");
        };
        // Three distinct words → three coalesced pairs.
        assert_eq!((end - start) as usize, 3);
        let spikes = pseudo_random_spikes(192, 3);
        assert_eq!(
            w.count(spikes.words(), &masks),
            scalar_count(&rows, &spikes)
        );
    }

    #[test]
    fn plan_is_cached_on_the_mapping_and_shared() {
        let t = Topology::mlp(64, &[32, 8]);
        let mapping = Mapper::new(ResparcConfig::resparc_64()).map(&t).unwrap();
        let a = mapping.replay_plan();
        let b = mapping.replay_plan();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "plan must be compiled once");
        assert_eq!(*a, ReplayPlan::compile(&mapping));
    }
}
