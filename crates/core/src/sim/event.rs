//! Trace-driven event simulation: replaying a measured [`SpikeTrace`]
//! through a mapped RESPARC fabric, packet by packet.
//!
//! The stationary simulator ([`super::Simulator`]) charges *expected*
//! per-timestep quantities from an activity profile — correct for
//! rate-coded, statistically-stationary workloads, blind to everything
//! else. This module walks the same [`Mapping`] tile-by-tile and
//! timestep-by-timestep over the *actual* spike trains the functional SNN
//! produced, exercising the mPE digital shell per real packet:
//!
//! * **spike distribution** — each tile's occupied rows are scanned per
//!   timestep in packet windows; a window with no spike is dropped at the
//!   zero-check (§3.2) and never pays oBUFF/switch/iBUFF costs,
//! * **analog compute** — a tile whose entire input window is silent
//!   skips its crossbar read (and its columns' neuron integrations); an
//!   active tile pays the shared linearised cost of
//!   [`cost::tile_read_cost`] at its true active-row count,
//! * **bus transactions** — inter-NeuroCell boundaries move only the
//!   non-zero packets of the producing boundary through the input SRAM,
//! * **CCU handshakes** — gated-wire partial-current transfers fire only
//!   for the phases whose tiles actually read,
//! * **latency** — per-timestep switch serialisation and bus occupancy
//!   follow the step's real packet counts, and a layer's compute phases
//!   are only charged in timesteps where the layer actually fired a
//!   crossbar read — a silent step costs the clocked minimum (one
//!   cycle), so sparse/early-exit traces (TTFS tails, bursts) finish in
//!   proportion to their *active* steps, not the raw window.
//!
//! Every charge goes to the same fine-grained
//! [`Category`] ledger as the stationary path, so the two reports are
//! directly comparable: on a rate-coded stationary workload they converge
//! (see `tests/trace_event.rs` — within 15 % on MNIST-MLP), while on
//! bursty or silent stimuli the event report is the truth the stationary
//! model cannot represent.
//!
//! # The replay core and the multi-tenant contract
//!
//! The per-event walk lives in one place — the crate-private
//! `replay_trace` — which returns the dynamic ledger plus *per-timestep*
//! compute/switch/bus cycle vectors. [`EventSimulator`] folds those into
//! a dedicated-fabric timeline (`(compute + comm) × fold + bus` per
//! step, floor one cycle); the multi-tenant
//! [`SharedEventSimulator`](crate::fabric::SharedEventSimulator)
//! interleaves several tenants' vectors instead — the **maximum** of the
//! local (compute + switch) cycles across the disjoint NC runs, plus the
//! **sum** of the serialised shared-bus cycles, apportioned by weighted
//! round-robin. Because both simulators consume the identical per-event
//! charges, a pool with a single tenant is guaranteed to reproduce this
//! module's [`EventReport`] bit-for-bit — the regression contract
//! `tests/multi_tenant.rs` pins.
//!
//! # Replay engines
//!
//! The only hot decision inside the walk is *how a tile's packet windows
//! are counted against the step's input spikes*. [`ReplayEngine`] selects
//! the implementation:
//!
//! * [`ReplayEngine::Reference`] — the scalar row walk: one bit test per
//!   occupied row (`rows.chunks(packet_bits)` over `tile_rows`). Simple,
//!   obviously correct, and the oracle the fast path is checked against.
//! * [`ReplayEngine::Plan`] (default) — the compiled word-level plan
//!   ([`ReplayPlan`](crate::sim::plan::ReplayPlan), cached on the
//!   [`Mapping`]): each window is pre-lowered to word/mask operations on
//!   the trace's packed words, so counting a window is an AND + popcount
//!   (or two shifted words for contiguous runs) instead of up to
//!   `packet_bits` bit probes.
//!
//! Both engines feed the *identical* accounting body with the per-window
//! active counts they derive; since every count is an integer and the
//! charge order is unchanged, the two engines produce **bit-identical**
//! [`EventReport`]s (and, through the shared/fault/serving layers built
//! on `replay_trace`, bit-identical reports everywhere) — a contract the
//! unit tests here and `tests/trace_event.rs` proptests pin.
//!
//! [`SpikeTrace`]: resparc_neuro::trace::SpikeTrace

use resparc_device::energy_model::McaEnergyModel;
use resparc_energy::accounting::{Category, EnergyBreakdown};
use resparc_energy::sram::SramSpec;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::spike::SpikeView;
use resparc_neuro::trace::SpikeTrace;

use crate::map::Mapping;
use crate::sim::cost::{self, AVG_SWITCH_HOPS, CCU_TRANSFER_BITS, TARGET_ADDRESS_BITS};
use crate::sim::plan::WindowPlan;

/// Which window-counting implementation the replay core uses. Both
/// engines are bit-identical in every report they produce (see the
/// module docs); `Plan` is the fast default, `Reference` the scalar
/// oracle kept for differential testing and benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayEngine {
    /// Scalar row walk: one bit test per occupied row per timestep.
    Reference,
    /// Compiled word-level plan: AND + popcount over the trace's packed
    /// words, with a shifted-word fast path for contiguous row runs.
    #[default]
    Plan,
}

impl ReplayEngine {
    /// Stable lowercase name (used by the benchmark barometer's JSON
    /// rows).
    pub fn name(self) -> &'static str {
        match self {
            ReplayEngine::Reference => "reference-replay",
            ReplayEngine::Plan => "plan-replay",
        }
    }
}

impl std::fmt::Display for ReplayEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-trace execution report of the event simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct EventReport {
    /// Energy for the whole replayed trace, by fine-grained category.
    pub energy: EnergyBreakdown,
    /// Timesteps replayed.
    pub steps: usize,
    /// Timesteps in which at least one tile fired a crossbar read (the
    /// steps that pay compute latency; the rest cost the clocked
    /// minimum).
    pub active_steps: usize,
    /// Total cycles across all timesteps.
    pub total_cycles: u64,
    /// Wall-clock latency of the trace.
    pub latency: Time,
    /// Classifications per second (one trace = one classification);
    /// `0.0` for a zero-latency (zero-step) trace, never `inf`/NaN.
    pub throughput: f64,
    /// Per-layer event tallies.
    pub layers: Vec<EventLayerStats>,
}

impl EventReport {
    /// Total energy of the trace.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Energy-delay product (pJ·ns); `0.0` whenever the product would
    /// not be finite (zero-latency traces cannot poison downstream
    /// figure-of-merit aggregation with NaN/inf).
    pub fn energy_delay_product(&self) -> f64 {
        let edp = self.energy.total().picojoules() * self.latency.nanoseconds();
        if edp.is_finite() {
            edp
        } else {
            0.0
        }
    }
}

/// Event tallies of one layer over the whole trace.
///
/// Conservation invariant (property-tested): every candidate packet
/// belongs to exactly one tile, so
/// `per_tile_candidates.iter().sum() == candidate_packets` and
/// `candidate_packets == steps × Σ_tiles ceil(rows / packet_bits)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLayerStats {
    /// Layer index.
    pub layer: usize,
    /// Tiles mapped.
    pub tiles: usize,
    /// Packet windows zero-checked (delivery opportunities).
    pub candidate_packets: u64,
    /// Packet windows actually delivered (non-zero, or all of them with
    /// event-driven operation disabled).
    pub packets_delivered: u64,
    /// Candidate packet windows per tile (parallel to the partition's
    /// tiles).
    pub per_tile_candidates: Vec<u64>,
    /// Delivered packet windows per tile.
    pub per_tile_delivered: Vec<u64>,
    /// Crossbar reads performed.
    pub reads_performed: u64,
    /// Crossbar reads skipped by the zero-check (whole input window
    /// silent).
    pub reads_skipped: u64,
    /// Total spiking-row events across performed reads.
    pub active_row_events: u64,
    /// Bus packets moved across the inter-NeuroCell boundary.
    pub bus_packets: u64,
    /// Spikes emitted by the layer.
    pub spikes_out: u64,
}

/// Trace-driven event simulator over a [`Mapping`].
///
/// # Examples
///
/// Capture a functional run's spike trace and price it on the mapped
/// fabric — the sparser the trace, the less it costs:
///
/// ```
/// use resparc_core::map::Mapper;
/// use resparc_core::sim::event::EventSimulator;
/// use resparc_core::ResparcConfig;
/// use resparc_neuro::encoding::RegularEncoder;
/// use resparc_neuro::network::Network;
/// use resparc_neuro::topology::Topology;
///
/// let net = Network::random(Topology::mlp(96, &[64, 10]), 7, 1.0);
/// let stimulus: Vec<f32> = (0..96).map(|i| (i % 5) as f32 / 4.0).collect();
/// let raster = RegularEncoder::new(0.8).encode(&stimulus, 12);
/// let (_, trace) = net.spiking().run_traced(&raster);
///
/// let mapping = Mapper::new(ResparcConfig::resparc_64()).map_network(&net)?;
/// let report = EventSimulator::new(&mapping).run(&trace);
/// assert_eq!(report.steps, 12);
/// assert!(report.total_energy().picojoules() > 0.0);
/// assert!(report.active_steps <= report.steps);
/// # Ok::<(), resparc_core::map::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventSimulator<'m> {
    mapping: &'m Mapping,
    engine: ReplayEngine,
}

impl<'m> EventSimulator<'m> {
    /// Creates an event simulator for a mapped network using the default
    /// (plan) replay engine.
    pub fn new(mapping: &'m Mapping) -> Self {
        Self::with_engine(mapping, ReplayEngine::default())
    }

    /// Creates an event simulator pinned to a specific replay engine.
    pub fn with_engine(mapping: &'m Mapping, engine: ReplayEngine) -> Self {
        Self { mapping, engine }
    }

    /// Replays `trace` through the fabric and returns the report.
    ///
    /// The trace's timestep count is the classification window (the
    /// configured `timesteps` budget is ignored — the trace *is* the
    /// workload).
    ///
    /// # Panics
    ///
    /// Panics if the trace's boundary structure does not match the
    /// mapping (boundary count `layers + 1`, per-boundary neuron counts
    /// equal to the mapped layer shapes).
    pub fn run(&self, trace: &SpikeTrace) -> EventReport {
        let cfg = &self.mapping.config;
        let replay = replay_trace(self.mapping, trace, self.engine);
        let TraceReplay {
            mut energy,
            comm_cycles,
            bus_cycles,
            compute_cycles,
            layers: layer_stats,
        } = replay;
        let steps = trace.steps();
        let sram = SramSpec::new(cfg.input_sram_bytes, cfg.packet_bits).build();

        // Fabric time-multiplexing fold, identical to the stationary
        // model: mapped NeuroCells beyond the physical pool serialise
        // every timestep.
        let fold = fold_factor(self.mapping);
        let total_cycles: u64 = (0..steps)
            .map(|t| ((compute_cycles[t] + comm_cycles[t]) * fold + bus_cycles[t]).max(1))
            .sum();
        let active_steps = compute_cycles.iter().filter(|&&c| c > 0).count();
        let latency = cfg.frequency.cycles_to_time(total_cycles);

        // Leakage accrues on the physical chip over the trace's window.
        let physical_mpes =
            (cfg.physical_ncs * cfg.mpes_per_nc()).min(self.mapping.placement.mpes_used.max(1));
        let physical_switch_ncs = cfg.physical_ncs.min(self.mapping.placement.ncs_used.max(1));
        let logic_leak =
            crate::fabric::logic_leakage_power(cfg, physical_mpes, physical_switch_ncs);
        energy.charge(Category::LogicLeakage, logic_leak * latency);
        energy.charge(Category::MemoryLeakage, sram.leakage() * latency);

        EventReport {
            energy,
            steps,
            active_steps,
            total_cycles,
            latency,
            throughput: cost::safe_throughput(latency),
            layers: layer_stats,
        }
    }
}

/// Serialisation factor of a mapping that overflows the physical
/// NeuroCell pool (1 for anything that fits — every admitted
/// [`FabricPool`](crate::fabric::FabricPool) tenant does by
/// construction).
pub(crate) fn fold_factor(mapping: &Mapping) -> u64 {
    mapping
        .placement
        .ncs_used
        .div_ceil(mapping.config.physical_ncs)
        .max(1) as u64
}

/// Asserts that a trace's boundary structure matches a mapping.
pub(crate) fn validate_trace(mapping: &Mapping, trace: &SpikeTrace) {
    assert_eq!(
        trace.boundary_count(),
        mapping.layer_count() + 1,
        "trace must have layers + 1 boundaries"
    );
    for (l, part) in mapping.partitions.iter().enumerate() {
        assert_eq!(
            trace.boundary(l).neurons(),
            part.inputs as usize,
            "layer {l}: trace input boundary size mismatch"
        );
        assert_eq!(
            trace.boundary(l + 1).neurons(),
            part.outputs as usize,
            "layer {l}: trace output boundary size mismatch"
        );
    }
}

/// Dynamic (per-event) outcome of replaying one trace through one mapped
/// network: the charged ledger *before* leakage, per-timestep cycle
/// contributions, and per-layer tallies.
///
/// This is the unit of work the single-tenant [`EventSimulator`] and the
/// multi-tenant
/// [`SharedEventSimulator`](crate::fabric::SharedEventSimulator) share
/// verbatim — the two paths charge identical per-event costs by
/// construction, so a one-tenant pool reproduces the dedicated-fabric
/// report exactly.
#[derive(Debug, Clone)]
pub(crate) struct TraceReplay {
    /// Dynamic energy (no leakage yet).
    pub(crate) energy: EnergyBreakdown,
    /// Per-step switch-serialisation cycles.
    pub(crate) comm_cycles: Vec<u64>,
    /// Per-step global-bus cycles.
    pub(crate) bus_cycles: Vec<u64>,
    /// Per-step compute-phase cycles (0 on silent steps).
    pub(crate) compute_cycles: Vec<u64>,
    /// Per-layer event tallies.
    pub(crate) layers: Vec<EventLayerStats>,
}

/// One tile's packet-window scan for one timestep: the per-window counts
/// both replay engines reduce to before the shared accounting body runs.
/// Integer counts + identical reduction = bit-identical reports.
struct TileScan {
    /// Packet windows examined (zero-check opportunities).
    windows: u64,
    /// Windows delivered (non-zero, or all with event-driven off).
    delivered: u64,
    /// Total active rows across the tile's windows.
    active: u64,
}

/// Reference engine: scalar bit test per occupied row.
#[inline]
fn scan_tile_reference(
    rows: &[u32],
    pkt: usize,
    in_spikes: SpikeView<'_>,
    event_driven: bool,
) -> TileScan {
    let mut scan = TileScan {
        windows: 0,
        delivered: 0,
        active: 0,
    };
    for window in rows.chunks(pkt) {
        let window_active = window
            .iter()
            .filter(|&&gi| in_spikes.get(gi as usize))
            .count() as u64;
        scan.windows += 1;
        scan.active += window_active;
        if window_active > 0 || !event_driven {
            scan.delivered += 1;
        }
    }
    scan
}

/// Plan engine: AND + popcount per pre-lowered window.
#[inline]
fn scan_tile_plan(
    windows: &[WindowPlan],
    masks: &[(u32, u64)],
    words: &[u64],
    event_driven: bool,
) -> TileScan {
    let mut scan = TileScan {
        windows: 0,
        delivered: 0,
        active: 0,
    };
    for w in windows {
        let window_active = w.count(words, masks);
        scan.windows += 1;
        scan.active += window_active;
        if window_active > 0 || !event_driven {
            scan.delivered += 1;
        }
    }
    scan
}

/// Replays `trace` through `mapping` and returns the dynamic charges and
/// cycle contributions (the body shared by both simulators).
///
/// # Panics
///
/// Panics if the trace's boundary structure does not match the mapping.
pub(crate) fn replay_trace(
    mapping: &Mapping,
    trace: &SpikeTrace,
    engine: ReplayEngine,
) -> TraceReplay {
    let cfg = &mapping.config;
    validate_trace(mapping, trace);
    let plan = match engine {
        ReplayEngine::Plan => Some(mapping.replay_plan()),
        ReplayEngine::Reference => None,
    };

    let cat = &cfg.catalog;
    let n = cfg.mca_size;
    let pkt = cfg.packet_bits as usize;
    let steps = trace.steps();
    let mca = McaEnergyModel::new(cfg.device, n);
    let sram = SramSpec::new(cfg.input_sram_bytes, cfg.packet_bits).build();

    let mut energy = EnergyBreakdown::new();
    let mut layer_stats = Vec::with_capacity(mapping.layer_count());
    // Per-step latency contributions across layers. Compute cycles
    // are event-driven too: a layer only pays its multiplexing
    // phases in steps where it actually fired a read, so a trace's
    // silent tail (TTFS, bursts) costs the clocked minimum per step.
    let mut comm_cycles = vec![0u64; steps];
    let mut bus_cycles = vec![0u64; steps];
    let mut compute_cycles = vec![0u64; steps];

    for (l, part) in mapping.partitions.iter().enumerate() {
        let layer_plan = plan.as_deref().map(|p| p.layer(l));
        debug_assert!(
            layer_plan.is_none_or(|lp| lp.tile_count() == part.tile_count()),
            "plan/partition tile count mismatch at layer {l}"
        );
        let span = &mapping.placement.layers[l];
        let mag = mapping.mean_weight_mags[l];
        let in_raster = trace.boundary(l);
        let out_raster = trace.boundary(l + 1);
        let tile_costs: Vec<cost::TileReadCost> = part
            .tiles
            .iter()
            .map(|t| cost::tile_read_cost(&mca, t, n, mag))
            .collect();
        let switch_capacity = (cfg.switches_per_nc() * span.nc_count().max(1)) as f64;
        let crosses = mapping.placement.boundary_crosses_nc(l) && (l == 0 || part.max_degree > 1);

        let layer_compute = part.max_degree as u64 + u64::from(span.ccu_transfers_per_step > 0);
        let tiles = part.tile_count();
        let mut per_tile_candidates = vec![0u64; tiles];
        let mut per_tile_delivered = vec![0u64; tiles];
        let mut per_tile_reads = vec![0u64; tiles];
        let mut per_tile_active_rows = vec![0u64; tiles];
        let mut reads_performed = 0u64;
        let mut reads_skipped = 0u64;
        let mut bus_packets_total = 0u64;
        let mut out_packets_delivered = 0u64;

        for (t, in_spikes) in in_raster.iter().enumerate() {
            let mut deliveries_step = 0u64;
            let mut reads_step = 0u64;
            for (ti, rows) in part.tile_rows.iter().enumerate() {
                let scan = match layer_plan {
                    Some(lp) => scan_tile_plan(
                        lp.tile_windows(ti),
                        lp.masks(),
                        in_spikes.words(),
                        cfg.event_driven,
                    ),
                    None => scan_tile_reference(rows, pkt, in_spikes, cfg.event_driven),
                };
                per_tile_candidates[ti] += scan.windows;
                per_tile_delivered[ti] += scan.delivered;
                deliveries_step += scan.delivered;
                if scan.active > 0 || !cfg.event_driven {
                    per_tile_reads[ti] += 1;
                    per_tile_active_rows[ti] += scan.active;
                    reads_step += 1;
                } else {
                    reads_skipped += 1;
                }
            }
            reads_performed += reads_step;
            comm_cycles[t] =
                comm_cycles[t].max((deliveries_step as f64 / switch_capacity).ceil() as u64);
            if reads_step > 0 {
                compute_cycles[t] = compute_cycles[t].max(layer_compute);
            }

            // --- Bus + input SRAM (inter-NC boundary) ---------------
            if crosses {
                let windows = (part.inputs as usize).div_ceil(pkt) as u64;
                let moved = if cfg.event_driven {
                    (0..windows as usize)
                        .filter(|&w| !in_spikes.window_is_zero(w * pkt, pkt))
                        .count() as u64
                } else {
                    windows
                };
                let trips = if l == 0 { 1u64 } else { 2 };
                energy.charge(
                    Category::Communication,
                    cat.bus_transfer(cfg.packet_bits) * (moved * trips) as f64,
                );
                energy.charge(
                    Category::MemoryAccess,
                    sram.read_energy() * moved as f64
                        + if l == 0 {
                            Energy::ZERO
                        } else {
                            sram.write_energy() * moved as f64
                        },
                );
                if cfg.event_driven {
                    energy.charge(
                        Category::Communication,
                        cat.zero_check(cfg.packet_bits) * windows as f64,
                    );
                }
                bus_packets_total += moved;
                bus_cycles[t] += moved * trips;
            }

            // --- tBUFF target lookups for emitted spike packets -----
            out_packets_delivered += delivered_windows(out_raster.step(t), pkt);
        }

        // --- Spike distribution (switch network + buffers) ----------
        let candidates: u64 = per_tile_candidates.iter().sum();
        let delivered: u64 = per_tile_delivered.iter().sum();
        energy.charge(
            Category::Communication,
            cat.switch_hop(cfg.packet_bits) * (delivered as f64 * AVG_SWITCH_HOPS),
        );
        if cfg.event_driven {
            energy.charge(
                Category::Communication,
                cat.zero_check(cfg.packet_bits) * candidates as f64,
            );
        }
        // oBUFF read at the producer, iBUFF write + read at the
        // consuming mPE — occupancy follows delivered packets only.
        energy.charge(
            Category::Buffer,
            cat.buffer_access(cfg.packet_bits) * (3.0 * delivered as f64),
        );

        // --- Crossbar reads + neuron integration --------------------
        let mut crossbar_e = Energy::ZERO;
        let mut integrations = 0u64;
        for (ti, tile) in part.tiles.iter().enumerate() {
            crossbar_e += tile_costs[ti].fixed * per_tile_reads[ti] as f64
                + tile_costs[ti].per_active_row * per_tile_active_rows[ti] as f64;
            integrations += tile.cols as u64 * per_tile_reads[ti];
        }
        energy.charge(Category::Crossbar, crossbar_e);

        let spikes_out = out_raster.total_spikes();
        energy.charge(
            Category::Neuron,
            cat.neuron_integrate * integrations as f64 + cat.neuron_spike * spikes_out as f64,
        );
        energy.charge(
            Category::Buffer,
            cat.buffer_access(TARGET_ADDRESS_BITS) * out_packets_delivered as f64,
        );

        // --- CCU analog transfers -----------------------------------
        if tiles > 0 {
            let mean_reads = reads_performed as f64 / tiles as f64;
            energy.charge(
                Category::Communication,
                cat.switch_hop(CCU_TRANSFER_BITS)
                    * (span.ccu_transfers_per_step as f64 * mean_reads),
            );
        }

        // --- Control ------------------------------------------------
        let local_phases = cost::local_phases(part, cfg);
        energy.charge(
            Category::Control,
            cat.control_cycle * (span.mpe_count() as f64 * local_phases as f64 * steps as f64)
                + cat.control_cycle * delivered as f64,
        );

        layer_stats.push(EventLayerStats {
            layer: l,
            tiles,
            candidate_packets: candidates,
            packets_delivered: delivered,
            per_tile_candidates,
            per_tile_delivered,
            reads_performed,
            reads_skipped,
            active_row_events: per_tile_active_rows.iter().sum(),
            bus_packets: bus_packets_total,
            spikes_out,
        });
    }

    TraceReplay {
        energy,
        comm_cycles,
        bus_cycles,
        compute_cycles,
        layers: layer_stats,
    }
}

/// Number of non-zero `width`-bit windows in one spike vector — the spike
/// packets a boundary actually emits this timestep. Word-masked (one
/// zero test per touched word), identical for both replay engines.
fn delivered_windows(spikes: SpikeView<'_>, width: usize) -> u64 {
    let windows = spikes.len().div_ceil(width);
    (0..windows)
        .filter(|&w| !spikes.window_is_zero(w * width, width))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::map::Mapper;
    use resparc_neuro::encoding::RegularEncoder;
    use resparc_neuro::network::Network;
    use resparc_neuro::topology::Topology;

    fn traced_net(rate: f32, steps: usize) -> (Network, SpikeTrace) {
        let t = Topology::mlp(128, &[96, 10]);
        let net = Network::random(t, 11, 1.0);
        let enc = RegularEncoder::new(1.0);
        let stimulus: Vec<f32> = (0..128).map(|i| rate * ((i % 5) as f32 / 4.0)).collect();
        let raster = enc.encode(&stimulus, steps);
        let (_, trace) = net.spiking().run_traced(&raster);
        (net, trace)
    }

    fn traced_mlp(rate: f32, steps: usize) -> (Mapping, SpikeTrace) {
        let (net, trace) = traced_net(rate, steps);
        let mapping = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        (mapping, trace)
    }

    use crate::map::Mapping;

    #[test]
    fn report_has_positive_energy_and_latency() {
        let (mapping, trace) = traced_mlp(0.6, 20);
        let r = EventSimulator::new(&mapping).run(&trace);
        assert!(r.total_energy() > Energy::ZERO);
        assert!(r.latency.nanoseconds() > 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.steps, 20);
        assert_eq!(r.layers.len(), 2);
    }

    #[test]
    fn silent_trace_charges_no_crossbar_or_neuron_energy() {
        let (mapping, _) = traced_mlp(0.6, 4);
        let silent = SpikeTrace::silent(&[128, 96, 10], 4);
        let r = EventSimulator::new(&mapping).run(&silent);
        assert_eq!(r.energy.get(Category::Crossbar), Energy::ZERO);
        assert_eq!(r.energy.get(Category::Neuron), Energy::ZERO);
        // Zero-checks still run, so communication is non-zero.
        assert!(r.energy.get(Category::Communication) > Energy::ZERO);
        for ls in &r.layers {
            assert_eq!(ls.packets_delivered, 0);
            assert_eq!(ls.reads_performed, 0);
            assert_eq!(ls.reads_skipped as usize, ls.tiles * 4);
        }
    }

    #[test]
    fn packet_conservation_across_tiles() {
        let (mapping, trace) = traced_mlp(0.6, 12);
        let r = EventSimulator::new(&mapping).run(&trace);
        let pkt = mapping.config.packet_bits as usize;
        for (ls, part) in r.layers.iter().zip(&mapping.partitions) {
            let expected: u64 = part
                .tile_rows
                .iter()
                .map(|rows| rows.len().div_ceil(pkt) as u64)
                .sum::<u64>()
                * trace.steps() as u64;
            assert_eq!(ls.per_tile_candidates.len(), part.tile_count());
            assert_eq!(ls.per_tile_candidates.iter().sum::<u64>(), expected);
            assert_eq!(ls.candidate_packets, expected);
            assert!(ls.packets_delivered <= ls.candidate_packets);
            for (d, c) in ls.per_tile_delivered.iter().zip(&ls.per_tile_candidates) {
                assert!(d <= c);
            }
        }
    }

    #[test]
    fn event_driven_never_costs_more_than_undriven_replay() {
        let (net, trace) = traced_net(0.3, 16);
        let with = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        let without = Mapper::new(ResparcConfig::resparc_64().with_event_driven(false))
            .map_network(&net)
            .unwrap();
        let with = EventSimulator::new(&with).run(&trace);
        let without = EventSimulator::new(&without).run(&trace);
        assert!(
            with.total_energy().picojoules() <= without.total_energy().picojoules() * 1.001,
            "with {} vs without {}",
            with.total_energy(),
            without.total_energy()
        );
    }

    #[test]
    fn silent_trace_is_finite_and_costs_clocked_minimum() {
        let (mapping, _) = traced_mlp(0.6, 6);
        let silent = SpikeTrace::silent(&[128, 96, 10], 6);
        let r = EventSimulator::new(&mapping).run(&silent);
        assert_eq!(r.active_steps, 0);
        // A fully silent step costs exactly the clocked minimum cycle.
        assert_eq!(r.total_cycles, 6);
        assert!(r.throughput.is_finite());
        assert!(r.energy_delay_product().is_finite());
    }

    #[test]
    fn zero_step_trace_reports_zero_throughput_not_nan() {
        let (mapping, _) = traced_mlp(0.6, 2);
        let empty = SpikeTrace::silent(&[128, 96, 10], 0);
        let r = EventSimulator::new(&mapping).run(&empty);
        assert_eq!(r.steps, 0);
        assert_eq!(r.active_steps, 0);
        assert_eq!(r.total_cycles, 0);
        assert!(r.throughput.is_finite());
        assert_eq!(r.throughput, 0.0);
        assert!(r.energy_delay_product().is_finite());
        assert_eq!(r.energy_delay_product(), 0.0);
    }

    #[test]
    fn sparse_tail_pays_clocked_minimum_latency() {
        use resparc_neuro::spike::{SpikeRaster, SpikeVector};

        // Same network, same mean input: activity compressed into the
        // first 4 of 16 steps vs spread uniformly. The bursty trace's
        // silent tail must cost only the clocked minimum, making it
        // strictly faster than the uniform presentation.
        let t = Topology::mlp(128, &[96, 10]);
        let net = Network::random(t, 11, 1.0);
        let stimulus: Vec<f32> = (0..128).map(|i| (i % 5) as f32 / 4.0).collect();
        let dense = RegularEncoder::new(1.0).encode(&stimulus, 4);
        let mut raster = SpikeRaster::new(128);
        for s in dense.iter() {
            raster.push_view(s);
        }
        for _ in 4..16 {
            raster.push(SpikeVector::new(128));
        }
        let (_, bursty) = net.spiking().run_traced(&raster);
        // Same expected spike count spread across the whole window.
        let uniform_raster =
            resparc_neuro::encoding::PoissonEncoder::new(0.25, 5).encode(&stimulus, 16);
        let (_, uniform) = net.spiking().run_traced(&uniform_raster);

        let mapping = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        let sim = EventSimulator::new(&mapping);
        let rb = sim.run(&bursty);
        let ru = sim.run(&uniform);
        // Input stops at step 4; residual membrane potential lets deeper
        // layers coast a few more steps, but well short of the window.
        assert!(rb.active_steps < 12, "active {}", rb.active_steps);
        assert!(ru.active_steps > rb.active_steps);
        assert!(
            rb.total_cycles < ru.total_cycles,
            "bursty {} cycles vs uniform {}",
            rb.total_cycles,
            ru.total_cycles
        );
    }

    #[test]
    fn busier_trace_costs_more() {
        let (mapping, quiet) = traced_mlp(0.15, 16);
        let (_, busy) = traced_mlp(0.9, 16);
        let sim = EventSimulator::new(&mapping);
        assert!(sim.run(&busy).total_energy() > sim.run(&quiet).total_energy());
    }

    #[test]
    #[should_panic(expected = "boundaries")]
    fn wrong_trace_shape_panics() {
        let (mapping, _) = traced_mlp(0.5, 2);
        let bad = SpikeTrace::silent(&[128, 10], 2);
        let _ = EventSimulator::new(&mapping).run(&bad);
    }

    #[test]
    fn plan_engine_is_bit_identical_to_reference() {
        // The tentpole contract: the word-level plan engine must
        // reproduce the scalar reference engine's report exactly —
        // every f64 in the ledger, every cycle, every tally.
        for rate in [0.0f32, 0.15, 0.6, 1.0] {
            let (mapping, trace) = traced_mlp(rate, 16);
            let reference =
                EventSimulator::with_engine(&mapping, ReplayEngine::Reference).run(&trace);
            let plan = EventSimulator::with_engine(&mapping, ReplayEngine::Plan).run(&trace);
            assert_eq!(reference, plan, "rate {rate}");
        }
    }

    #[test]
    fn plan_engine_is_bit_identical_on_conv_and_undriven_fabrics() {
        use resparc_neuro::topology::{ChannelTable, Padding, Shape};

        // Conv layers under input-sharing produce scattered (Masks)
        // windows; event_driven=false exercises the deliver-everything
        // arm. Both must stay bit-identical.
        let t = Topology::builder(Shape::new(10, 10, 1))
            .conv(5, 3, Padding::Same, ChannelTable::Full)
            .pool(2)
            .dense(10)
            .build()
            .unwrap();
        let net = Network::random(t, 23, 1.0);
        let stimulus: Vec<f32> = (0..100).map(|i| ((i % 7) as f32) / 6.0).collect();
        let raster = RegularEncoder::new(0.7).encode(&stimulus, 12);
        let (_, trace) = net.spiking().run_traced(&raster);
        for event_driven in [true, false] {
            let cfg = ResparcConfig::resparc_32().with_event_driven(event_driven);
            let mapping = Mapper::new(cfg).map_network(&net).unwrap();
            let reference =
                EventSimulator::with_engine(&mapping, ReplayEngine::Reference).run(&trace);
            let plan = EventSimulator::with_engine(&mapping, ReplayEngine::Plan).run(&trace);
            assert_eq!(reference, plan, "event_driven {event_driven}");
        }
    }

    #[test]
    fn default_engine_is_plan() {
        assert_eq!(ReplayEngine::default(), ReplayEngine::Plan);
        assert_eq!(ReplayEngine::Plan.name(), "plan-replay");
        assert_eq!(ReplayEngine::Reference.to_string(), "reference-replay");
    }
}
