//! The RESPARC execution model: activity-driven energy and latency
//! simulation of a mapped network.
//!
//! Rate-coded SNN inference is statistically stationary across timesteps,
//! so the simulator computes *expected* per-timestep quantities from an
//! [`ActivityProfile`] (firing rates and zero-packet probabilities per
//! layer boundary) and scales by the timestep budget. Every energy event
//! is charged to a fine-grained [`Category`]; Fig. 12's groups fall out of
//! [`EnergyBreakdown::resparc_groups`].
//!
//! Modelled per timestep and layer:
//!
//! * **spike distribution** — packets travel oBUFF → switch network →
//!   iBUFF within a NeuroCell, and over the shared bus through the input
//!   SRAM across NeuroCells (paper Fig. 7); with event-driven operation
//!   (§3.2) all-zero packets are dropped at the zero-check,
//! * **analog compute** — each tile performs one crossbar read per phase
//!   unless its input window is entirely silent; device energy scales
//!   with the number of *active* rows, fixed column-sensing with the
//!   array width,
//! * **neuron integration** — one integration event per occupied column
//!   per read (time-multiplexing degree many per output), one spike event
//!   per emitted spike; analog partial currents crossing mPEs are charged
//!   to the CCU gated wires,
//! * **latency** — compute phases (multiplexing degree), switch
//!   serialisation and serial bus transactions per timestep at 200 MHz.
//!
//! This stationary model is the fast analytic path. Its per-packet
//! counterpart — replaying a measured [`SpikeTrace`] through the same
//! mapping and charging the same ledger per *actual* packet — lives in
//! [`event`]; the per-tile cost arithmetic both paths share lives in
//! [`cost`].
//!
//! [`SpikeTrace`]: resparc_neuro::trace::SpikeTrace

pub mod cost;
pub mod event;
pub mod plan;

use resparc_device::energy_model::McaEnergyModel;
use resparc_energy::accounting::{Category, EnergyBreakdown};
use resparc_energy::sram::SramSpec;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::stats::ActivityProfile;

use crate::map::Mapping;

use cost::{AVG_SWITCH_HOPS, CCU_TRANSFER_BITS, TARGET_ADDRESS_BITS};

/// Per-classification execution report for a RESPARC run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Energy per classification, by fine-grained category.
    pub energy: EnergyBreakdown,
    /// Cycles per timestep (compute + communication + bus).
    pub timestep_cycles: u64,
    /// Wall-clock latency per classification.
    pub latency: Time,
    /// Classifications per second; `0.0` for a zero-latency (zero
    /// timestep) configuration, never `inf`/NaN.
    pub throughput: f64,
    /// Per-layer expected statistics (per timestep).
    pub layers: Vec<LayerExecStats>,
}

impl ExecutionReport {
    /// Total energy per classification.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Energy-delay product (pJ·ns), a common figure of merit; `0.0`
    /// whenever the product would not be finite.
    pub fn energy_delay_product(&self) -> f64 {
        let edp = self.energy.total().picojoules() * self.latency.nanoseconds();
        if edp.is_finite() {
            edp
        } else {
            0.0
        }
    }
}

/// Expected per-timestep statistics for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerExecStats {
    /// Layer index.
    pub layer: usize,
    /// Tiles mapped.
    pub tiles: usize,
    /// Expected crossbar reads per timestep (event-driven gating
    /// applied).
    pub reads_per_step: f64,
    /// Expected active rows per read.
    pub mean_active_rows: f64,
    /// Expected packet deliveries per timestep.
    pub deliveries_per_step: f64,
    /// Expected bus packets per timestep (zero when the boundary stays
    /// inside one NeuroCell).
    pub bus_packets_per_step: f64,
}

/// Activity-driven simulator over a [`Mapping`].
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    mapping: &'m Mapping,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator for a mapped network.
    pub fn new(mapping: &'m Mapping) -> Self {
        Self { mapping }
    }

    /// Runs one classification (the configured timestep budget) under the
    /// given activity profile and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the profile's boundary count is not `layers + 1`.
    pub fn run(&self, profile: &ActivityProfile) -> ExecutionReport {
        let cfg = &self.mapping.config;
        assert_eq!(
            profile.boundary_count(),
            self.mapping.layer_count() + 1,
            "profile must have layers + 1 boundaries"
        );

        let cat = &cfg.catalog;
        let n = cfg.mca_size;
        let pkt = cfg.packet_bits;
        let mca = McaEnergyModel::new(cfg.device, n);
        // Linearise the crossbar read energy: E(active) = a·active + b at
        // fixed utilization; we re-evaluate a/b per tile utilization.
        let sram = SramSpec::new(cfg.input_sram_bytes, pkt).build();

        let mut per_step = EnergyBreakdown::new();
        let mut layer_stats = Vec::with_capacity(self.mapping.layer_count());
        let mut compute_cycles = 0u64;
        let mut comm_cycles = 0u64;
        let mut bus_cycles_total = 0f64;

        for (l, part) in self.mapping.partitions.iter().enumerate() {
            let span = &self.mapping.placement.layers[l];
            let rate_in = profile.rate(l);
            let rate_out = profile.rate(l + 1);
            // Zero-check granularity follows the crossbar's input window:
            // a RESPARC-32 machine checks 32-row windows, which are far
            // more often all-zero than 64-row ones — the Fig. 13
            // small-MCA advantage. Sparse (conv) tiles gather 2-D
            // receptive fields that straddle foreground pixels, so they
            // see the *independence* zero probability, not the measured
            // 1-D run-length clustering dense rows enjoy (§5.3).
            let check_bits = pkt.min(n as u32);
            let zero_prob = |width: u32| -> f64 {
                if part.sparse {
                    (1.0 - rate_in).powi(width as i32).clamp(0.0, 1.0)
                } else {
                    profile.zero_packet_prob(l, width)
                }
            };
            let active_packet_frac = if cfg.event_driven {
                1.0 - zero_prob(check_bits)
            } else {
                1.0
            };

            // --- Spike distribution -------------------------------------
            let packets_in = (part.inputs as u64).div_ceil(pkt as u64) as f64;
            let deliveries_total: f64 = part
                .tiles
                .iter()
                .map(|t| (t.rows as u64).div_ceil(pkt as u64) as f64)
                .sum();
            let deliveries_active = deliveries_total * active_packet_frac;

            // Switch traversal + zero checks on every candidate packet.
            per_step.charge(
                Category::Communication,
                cat.switch_hop(pkt) * (deliveries_active * AVG_SWITCH_HOPS),
            );
            if cfg.event_driven {
                per_step.charge(
                    Category::Communication,
                    cat.zero_check(pkt) * deliveries_total,
                );
            }
            // Buffering: oBUFF read at producer, iBUFF write + read at
            // the consuming mPE.
            per_step.charge(
                Category::Buffer,
                cat.buffer_access(pkt) * (3.0 * deliveries_active),
            );

            // --- Bus + input SRAM (inter-NC boundary) -------------------
            // Spatially-local boundaries (fan-in fits one crossbar window,
            // i.e. multiplexing degree 1: conv and pool layers) are kept
            // on the switch network by the reconfigurable datapath
            // (§3.1.2) — consumer tiles are co-resident with their
            // producer region. Global-fan-in boundaries (dense layers)
            // and the stimulus itself go through the SRAM-backed bus.
            let crosses =
                self.mapping.placement.boundary_crosses_nc(l) && (l == 0 || part.max_degree > 1);
            let bus_packets = if crosses {
                packets_in * active_packet_frac
            } else {
                0.0
            };
            if crosses {
                // Layer 0 reads the stimulus from SRAM; deeper boundaries
                // write producer spikes to SRAM and broadcast them back.
                let trips = if l == 0 { 1.0 } else { 2.0 };
                per_step.charge(
                    Category::Communication,
                    cat.bus_transfer(pkt) * (bus_packets * trips),
                );
                per_step.charge(
                    Category::MemoryAccess,
                    sram.read_energy() * bus_packets
                        + if l == 0 {
                            Energy::ZERO
                        } else {
                            sram.write_energy() * bus_packets
                        },
                );
                if cfg.event_driven {
                    per_step.charge(Category::Communication, cat.zero_check(pkt) * packets_in);
                }
                bus_cycles_total += bus_packets * trips;
            }

            // --- Crossbar reads -----------------------------------------
            let mag = self.mapping.mean_weight_mags[l];
            let mut reads = 0.0f64;
            let mut active_rows_sum = 0.0f64;
            let mut crossbar_e = Energy::ZERO;
            for t in &part.tiles {
                let tile_cost = cost::tile_read_cost(&mca, t, n, mag);
                let p_read = if cfg.event_driven {
                    1.0 - zero_prob(t.rows)
                } else {
                    1.0
                };
                let exp_active = t.rows as f64 * rate_in;
                crossbar_e += tile_cost.per_active_row * exp_active + tile_cost.fixed * p_read;
                reads += p_read;
                active_rows_sum += exp_active;
            }
            per_step.charge(Category::Crossbar, crossbar_e);

            // --- Neurons -------------------------------------------------
            let mut integrations = 0.0f64;
            for t in &part.tiles {
                let p_read = if cfg.event_driven {
                    1.0 - zero_prob(t.rows)
                } else {
                    1.0
                };
                integrations += t.cols as f64 * p_read;
            }
            let spikes_out = part.outputs as f64 * rate_out;
            per_step.charge(
                Category::Neuron,
                cat.neuron_integrate * integrations + cat.neuron_spike * spikes_out,
            );
            // Target-address lookups for emitted spike packets.
            let out_packets = (part.outputs as u64).div_ceil(pkt as u64) as f64;
            per_step.charge(
                Category::Buffer,
                cat.buffer_access(TARGET_ADDRESS_BITS) * out_packets,
            );

            // --- CCU analog transfers ------------------------------------
            let mean_p_read = if part.tiles.is_empty() {
                0.0
            } else {
                reads / part.tiles.len() as f64
            };
            let ccu = span.ccu_transfers_per_step as f64 * mean_p_read;
            per_step.charge(
                Category::Communication,
                cat.switch_hop(CCU_TRANSFER_BITS) * ccu,
            );

            // --- Control -------------------------------------------------
            let local_phases = cost::local_phases(part, cfg);
            per_step.charge(
                Category::Control,
                cat.control_cycle * (span.mpe_count() as f64 * local_phases as f64)
                    + cat.control_cycle * deliveries_active,
            );

            // --- Latency contributions -----------------------------------
            let layer_compute = part.max_degree as u64 + u64::from(span.ccu_transfers_per_step > 0);
            compute_cycles = compute_cycles.max(layer_compute);
            let switch_capacity = (cfg.switches_per_nc() * span.nc_count().max(1)) as f64;
            comm_cycles = comm_cycles.max((deliveries_active / switch_capacity).ceil() as u64);

            layer_stats.push(LayerExecStats {
                layer: l,
                tiles: part.tile_count(),
                reads_per_step: reads,
                mean_active_rows: if part.tiles.is_empty() {
                    0.0
                } else {
                    active_rows_sum / part.tiles.len() as f64
                },
                deliveries_per_step: deliveries_active,
                bus_packets_per_step: bus_packets,
            });
        }

        // Networks that overflow the physical NeuroCell pool
        // time-multiplex the fabric: each timestep serialises over the
        // mapped-to-physical ratio.
        let fold = self
            .mapping
            .placement
            .ncs_used
            .div_ceil(cfg.physical_ncs)
            .max(1) as u64;
        let timestep_cycles =
            ((compute_cycles + comm_cycles) * fold + bus_cycles_total.ceil() as u64).max(1);
        let latency = cfg
            .frequency
            .cycles_to_time(timestep_cycles * cfg.timesteps as u64);

        // Per-classification scaling + leakage over the latency window.
        // Leakage accrues on the *physical* chip, not the (possibly
        // larger) mapped footprint.
        let mut energy = per_step.scaled(cfg.timesteps as f64);
        let physical_mpes =
            (cfg.physical_ncs * cfg.mpes_per_nc()).min(self.mapping.placement.mpes_used.max(1));
        let physical_switch_ncs = cfg.physical_ncs.min(self.mapping.placement.ncs_used.max(1));
        let logic_leak = cat.mpe_leakage * physical_mpes as f64
            + cat.switch_leakage * (physical_switch_ncs * cfg.switches_per_nc()) as f64;
        energy.charge(Category::LogicLeakage, logic_leak * latency);
        energy.charge(Category::MemoryLeakage, sram.leakage() * latency);

        ExecutionReport {
            energy,
            timestep_cycles,
            latency,
            throughput: cost::safe_throughput(latency),
            layers: layer_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResparcConfig;
    use crate::map::Mapper;
    use resparc_energy::accounting::ResparcGroup;
    use resparc_neuro::topology::{ChannelTable, Padding, Shape, Topology};

    fn profile_for(t: &Topology, input_rate: f64, layer_rate: f64) -> ActivityProfile {
        let mut counts = vec![t.input_count()];
        counts.extend(t.layers().iter().map(|l| l.output_count()));
        ActivityProfile::uniform(&counts, input_rate, layer_rate)
    }

    fn mlp_report(mca: usize, event_driven: bool) -> ExecutionReport {
        let t = Topology::mlp(784, &[800, 10]);
        let cfg = ResparcConfig::with_mca_size(mca).with_event_driven(event_driven);
        let m = Mapper::new(cfg).map(&t).unwrap();
        let p = profile_for(&t, 0.15, 0.1);
        Simulator::new(&m).run(&p)
    }

    #[test]
    fn report_has_positive_energy_and_latency() {
        let r = mlp_report(64, true);
        assert!(r.total_energy() > Energy::ZERO);
        assert!(r.latency.nanoseconds() > 0.0);
        assert!(r.throughput > 0.0);
        assert_eq!(r.layers.len(), 2);
    }

    #[test]
    fn event_driven_saves_energy() {
        // With a sparse input the zero-check suppresses traffic and
        // reads; energy must drop (Fig. 13's headline).
        let with = mlp_report(64, true);
        let without = mlp_report(64, false);
        assert!(
            with.total_energy() < without.total_energy(),
            "with {} vs without {}",
            with.total_energy(),
            without.total_energy()
        );
    }

    #[test]
    fn groups_partition_total() {
        let r = mlp_report(64, true);
        let groups = r.energy.resparc_groups();
        let sum: Energy = groups.iter().map(|(_, e)| *e).sum();
        assert!((sum / r.total_energy() - 1.0).abs() < 1e-9);
        // All three groups are non-trivial for an MLP.
        for (g, e) in groups {
            assert!(e > Energy::ZERO, "group {g} empty");
        }
    }

    #[test]
    fn mlp_energy_decreases_with_mca_size() {
        // Fig. 12(a): dense layers amortise periphery better on larger
        // arrays.
        let e32 = mlp_report(32, true).total_energy();
        let e64 = mlp_report(64, true).total_energy();
        let e128 = mlp_report(128, true).total_energy();
        assert!(e32 > e64, "32: {e32} vs 64: {e64}");
        assert!(e64 > e128, "64: {e64} vs 128: {e128}");
    }

    #[test]
    fn cnn_pays_more_overhead_per_synapse_than_mlp() {
        // Under-utilized CNN tiles pay proportionally more fixed cost
        // (periphery + clocked crossbar drivers) per useful synapse —
        // the Fig. 11/12 narrative. Neuron energy is excluded: it scales
        // with outputs, not synapses.
        let mlp = Topology::mlp(256, &[256, 10]);
        let cnn = Topology::builder(Shape::new(16, 16, 1))
            .conv(8, 5, Padding::Valid, ChannelTable::Full)
            .pool(2)
            .dense(10)
            .build()
            .unwrap();
        let cfg = ResparcConfig::resparc_64();
        let per_synapse = |t: &Topology| {
            let m = Mapper::new(cfg.clone()).map(t).unwrap();
            let p = profile_for(t, 0.15, 0.1);
            let r = Simulator::new(&m).run(&p);
            let groups = r.energy.resparc_groups();
            let non_neuron: Energy = groups
                .iter()
                .filter(|(g, _)| *g != ResparcGroup::Neuron)
                .map(|(_, e)| *e)
                .sum();
            non_neuron.picojoules() / t.synapse_count() as f64
        };
        assert!(
            per_synapse(&cnn) > 1.5 * per_synapse(&mlp),
            "cnn {} vs mlp {}",
            per_synapse(&cnn),
            per_synapse(&mlp)
        );
    }

    #[test]
    fn higher_activity_costs_more() {
        let t = Topology::mlp(256, &[128, 10]);
        let cfg = ResparcConfig::resparc_64();
        let m = Mapper::new(cfg).map(&t).unwrap();
        let quiet = Simulator::new(&m).run(&profile_for(&t, 0.05, 0.05));
        let busy = Simulator::new(&m).run(&profile_for(&t, 0.5, 0.4));
        assert!(busy.total_energy() > quiet.total_energy());
    }

    #[test]
    fn latency_scales_with_timesteps() {
        let t = Topology::mlp(128, &[64, 10]);
        let m10 = Mapper::new(ResparcConfig::resparc_64().with_timesteps(10))
            .map(&t)
            .unwrap();
        let m100 = Mapper::new(ResparcConfig::resparc_64().with_timesteps(100))
            .map(&t)
            .unwrap();
        let p = profile_for(&t, 0.2, 0.1);
        let r10 = Simulator::new(&m10).run(&p);
        let r100 = Simulator::new(&m100).run(&p);
        assert_eq!(r10.timestep_cycles, r100.timestep_cycles);
        let ratio = r100.latency.nanoseconds() / r10.latency.nanoseconds();
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "boundaries")]
    fn wrong_profile_shape_panics() {
        let t = Topology::mlp(64, &[10]);
        let m = Mapper::new(ResparcConfig::resparc_64()).map(&t).unwrap();
        let bad = ActivityProfile::uniform(&[64, 10, 10], 0.1, 0.1);
        let _ = Simulator::new(&m).run(&bad);
    }
}
