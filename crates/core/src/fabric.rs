//! Multi-tenant fabric: several mapped networks co-resident on one
//! physical NeuroCell pool, their event traces interleaved per timestep.
//!
//! RESPARC's reconfigurability pitch is that one mPE fabric serves many
//! SNN topologies. The mapper and simulators elsewhere in this crate are
//! single-tenant — every [`Mapping`] assumes it owns NC `0..N` and every
//! replay assumes an idle fabric. This module hosts the shared view:
//!
//! * [`FabricPool`] owns the physical NC inventory of a
//!   [`ResparcConfig`] and admits mappings at NeuroCell granularity: a
//!   tenant receives a contiguous run of free NCs (first-fit), its
//!   [`Placement`](crate::map::Placement) is expressed in pool
//!   coordinates (the origin-0 probe is translated into the allocated
//!   run — identical to [`Mapper::map_network_at`] there, without
//!   re-partitioning), and admission fails with a typed [`AdmitError`]
//!   when no run fits. Evicting a tenant restores the free list exactly.
//! * [`SharedEventSimulator`] replays one [`SpikeTrace`] per tenant
//!   through the pool **concurrently**: tenants sit on disjoint NCs, so
//!   per timestep their compute phases and switch traffic overlap (the
//!   step costs the *maximum* across tenants), while the global bus and
//!   input SRAM are shared and serialise (the step *sums* every tenant's
//!   bus transactions — the contention a dedicated fabric never sees).
//!   Every per-event charge goes to the same [`Category`] ledger through
//!   the exact replay core the single-tenant
//!   [`EventSimulator`](crate::sim::event::EventSimulator) uses, so a
//!   pool with one tenant reproduces the dedicated-fabric report
//!   *bit-identically*.
//!
//! The economics of co-residency are leakage and occupancy: a pool
//! executing tenants serially bills the whole powered chip's leakage for
//! the *sum* of their latencies, while co-resident tenants amortize it
//! over one overlapped makespan. [`SharedReport`] exposes the split —
//! per-tenant dynamic energy, the occupied-fabric leakage charged to the
//! ledger, the [`idle-NC leakage`](SharedReport::idle_leakage) of the
//! pool remainder, and bus occupancy — and
//! `resparc_workloads::sweep::multi_tenant_sweep` turns it into the
//! serial-vs-co-resident comparison.

use std::fmt;

use resparc_energy::accounting::{Category, EnergyBreakdown};
use resparc_energy::sram::SramSpec;
use resparc_energy::units::{Energy, Power, Time};
use resparc_neuro::network::Network;
use resparc_neuro::topology::Topology;
use resparc_neuro::trace::SpikeTrace;

use crate::config::ResparcConfig;
use crate::map::{MapError, Mapper, Mapping};
use crate::sim::cost;
use crate::sim::event::{fold_factor, replay_trace, EventLayerStats, TraceReplay};

/// Handle of one admitted tenant (stable across evictions of others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The raw admission index (monotone per pool).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Why the pool rejected an admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The network could not be mapped at all (invalid configuration).
    Map(MapError),
    /// No contiguous run of free NeuroCells is large enough.
    CapacityExhausted {
        /// NeuroCells the tenant needs (contiguously).
        needed_ncs: usize,
        /// Free NeuroCells in the pool (any position).
        free_ncs: usize,
        /// Longest contiguous free run currently available.
        largest_free_run: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Map(e) => write!(f, "mapping failed: {e}"),
            AdmitError::CapacityExhausted {
                needed_ncs,
                free_ncs,
                largest_free_run,
            } => write!(
                f,
                "capacity exhausted: tenant needs {needed_ncs} contiguous NeuroCell(s), pool has \
                 {free_ncs} free ({largest_free_run} contiguous)"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// One network resident on the pool: its mapping is placed in pool
/// coordinates (spans carry the NC-run offset the pool allocated).
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Admission handle.
    pub id: TenantId,
    /// Caller-supplied label (reports, figures).
    pub name: String,
    /// The tenant's mapping, placed at its allocated NC origin.
    pub mapping: Mapping,
}

impl Tenant {
    /// First NeuroCell this tenant occupies.
    pub fn first_nc(&self) -> usize {
        self.mapping.placement.origin_nc
    }

    /// One past the last NeuroCell this tenant occupies.
    pub fn end_nc(&self) -> usize {
        self.mapping.placement.end_nc()
    }

    /// NeuroCells this tenant occupies.
    pub fn nc_count(&self) -> usize {
        self.mapping.placement.ncs_used
    }
}

/// The physical NC/mPE inventory of one chip, shared by many tenants.
#[derive(Debug, Clone)]
pub struct FabricPool {
    config: ResparcConfig,
    /// Per-physical-NC owner; `None` = free. This *is* the free list:
    /// eviction must restore it exactly (property-tested).
    occupancy: Vec<Option<TenantId>>,
    tenants: Vec<Tenant>,
    next_id: u32,
}

impl FabricPool {
    /// Creates an empty pool over the machine's `physical_ncs`
    /// NeuroCells.
    pub fn new(config: ResparcConfig) -> Self {
        let slots = config.physical_ncs;
        Self {
            config,
            occupancy: vec![None; slots],
            tenants: Vec::new(),
            next_id: 0,
        }
    }

    /// The machine configuration every tenant is mapped against.
    pub fn config(&self) -> &ResparcConfig {
        &self.config
    }

    /// Physical NeuroCells on the chip.
    pub fn physical_ncs(&self) -> usize {
        self.occupancy.len()
    }

    /// Per-NC ownership (`None` = free), in NC order.
    pub fn occupancy(&self) -> &[Option<TenantId>] {
        &self.occupancy
    }

    /// Free NeuroCells (any position).
    pub fn free_ncs(&self) -> usize {
        self.occupancy.iter().filter(|s| s.is_none()).count()
    }

    /// NeuroCells currently owned by tenants.
    pub fn occupied_ncs(&self) -> usize {
        self.physical_ncs() - self.free_ncs()
    }

    /// Fraction of the pool's NeuroCells owned by tenants.
    pub fn utilization(&self) -> f64 {
        if self.occupancy.is_empty() {
            return 0.0;
        }
        self.occupied_ncs() as f64 / self.physical_ncs() as f64
    }

    /// Longest contiguous free NC run (what the next admission can get).
    pub fn largest_free_run(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for slot in &self.occupancy {
            if slot.is_none() {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }

    /// Resident tenants, in admission order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Looks up a resident tenant by id.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Admits a trained network: maps it with the pool's configuration,
    /// allocates the first contiguous free NC run that fits (first-fit)
    /// and places the mapping there in pool coordinates.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Map`] if mapping fails,
    /// [`AdmitError::CapacityExhausted`] if no free run is large enough.
    pub fn admit(&mut self, network: &Network, name: &str) -> Result<TenantId, AdmitError> {
        let probe = Mapper::new(self.config.clone())
            .map_network(network)
            .map_err(AdmitError::Map)?;
        self.admit_mapping(probe, name)
    }

    /// Admits a bare topology (mean |weight| 0.5 per layer, as
    /// [`Mapper::map`]); see [`FabricPool::admit`].
    ///
    /// # Errors
    ///
    /// Same as [`FabricPool::admit`].
    pub fn admit_topology(
        &mut self,
        topology: &Topology,
        name: &str,
    ) -> Result<TenantId, AdmitError> {
        let probe = Mapper::new(self.config.clone())
            .map(topology)
            .map_err(AdmitError::Map)?;
        self.admit_mapping(probe, name)
    }

    fn admit_mapping(&mut self, probe: Mapping, name: &str) -> Result<TenantId, AdmitError> {
        // The origin-0 probe sizes the tenant; translating it into the
        // allocated run is a pure coordinate shift (identical to
        // re-placing there — property-tested), so the expensive
        // partitioning runs exactly once per admission.
        let needed = probe.placement.ncs_used.max(1);
        let origin = self
            .find_free_run(needed)
            .ok_or_else(|| AdmitError::CapacityExhausted {
                needed_ncs: needed,
                free_ncs: self.free_ncs(),
                largest_free_run: self.largest_free_run(),
            })?;
        let mut mapping = probe;
        if origin > 0 {
            mapping.placement = mapping.placement.translated(origin, &self.config);
        }
        let id = TenantId(self.next_id);
        self.next_id += 1;
        for slot in &mut self.occupancy[origin..origin + needed] {
            *slot = Some(id);
        }
        self.tenants.push(Tenant {
            id,
            name: name.to_string(),
            mapping,
        });
        Ok(id)
    }

    /// Evicts a tenant, freeing its NC run; returns it (with its
    /// pool-coordinate mapping) or `None` if the id is not resident.
    pub fn evict(&mut self, id: TenantId) -> Option<Tenant> {
        let at = self.tenants.iter().position(|t| t.id == id)?;
        let tenant = self.tenants.remove(at);
        for slot in &mut self.occupancy {
            if *slot == Some(id) {
                *slot = None;
            }
        }
        Some(tenant)
    }

    /// First-fit: the start of the leftmost contiguous free run of
    /// `len` NCs.
    fn find_free_run(&self, len: usize) -> Option<usize> {
        let mut start = 0usize;
        let mut run = 0usize;
        for (i, slot) in self.occupancy.iter().enumerate() {
            if slot.is_none() {
                if run == 0 {
                    start = i;
                }
                run += 1;
                if run == len {
                    return Some(start);
                }
            } else {
                run = 0;
            }
        }
        None
    }
}

/// Leakage power of `mpes` mPEs plus the switch fabric of `switch_ncs`
/// NeuroCells — the one composition every leakage domain (dedicated
/// chip, occupied pool, idle remainder, whole pool) is built from, so
/// the domains can never drift apart term-by-term.
pub(crate) fn logic_leakage_power(config: &ResparcConfig, mpes: usize, switch_ncs: usize) -> Power {
    config.catalog.mpe_leakage * mpes as f64
        + config.catalog.switch_leakage * (switch_ncs * config.switches_per_nc()) as f64
}

/// Leakage power of the whole powered pool: every physical mPE and
/// switch plus the shared input SRAM. This is what a serially-executed
/// tenant bills for its entire latency — and what co-residency amortizes.
pub fn pool_leakage_power(config: &ResparcConfig) -> Power {
    let sram = SramSpec::new(config.input_sram_bytes, config.packet_bits).build();
    logic_leakage_power(
        config,
        config.physical_ncs * config.mpes_per_nc(),
        config.physical_ncs,
    ) + sram.leakage()
}

/// One tenant's slice of a shared replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Which tenant.
    pub tenant: TenantId,
    /// The tenant's label at admission.
    pub name: String,
    /// Dynamic energy this tenant's trace charged (no leakage).
    pub energy: EnergyBreakdown,
    /// This tenant's amortized share of the whole pool's leakage over
    /// the shared makespan (occupied + idle NCs + SRAM), split
    /// proportionally to mapped NC count across the pool's *residents*.
    /// Shares of resident tenants absent from this replay round are not
    /// reported, so the reported shares sum to the full pool leakage
    /// only when every resident ran.
    pub leakage_share: Energy,
    /// Timesteps in the tenant's trace.
    pub steps: usize,
    /// Steps in which the tenant fired at least one crossbar read.
    pub active_steps: usize,
    /// Per-layer event tallies (identical to a dedicated-fabric replay).
    pub layers: Vec<EventLayerStats>,
}

impl TenantReport {
    /// Dynamic energy plus the amortized pool-leakage share — the
    /// tenant's all-in energy bill for this inference.
    pub fn billed_energy(&self) -> Energy {
        self.energy.total() + self.leakage_share
    }
}

/// Report of one shared replay round: every tenant's trace interleaved
/// through the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedReport {
    /// The pool-wide ledger: every tenant's dynamic charges plus the
    /// *occupied*-fabric leakage over the makespan — category-compatible
    /// with a single-tenant [`EventReport`](crate::sim::event::EventReport)
    /// (a one-tenant pool reproduces it exactly).
    pub energy: EnergyBreakdown,
    /// Leakage of the NeuroCells no resident tenant owns, over the
    /// makespan — the cost of owning a bigger chip than the resident
    /// tenants need. Ledger leakage plus this always equals
    /// [`pool_leakage_power`]` × latency`.
    pub idle_leakage: Energy,
    /// Makespan in timesteps (longest tenant trace).
    pub steps: usize,
    /// Steps in which at least one tenant fired a crossbar read.
    pub active_steps: usize,
    /// Total cycles of the shared timeline.
    pub total_cycles: u64,
    /// Cycles the shared global bus was busy (summed tenant
    /// transactions — the contention signal).
    pub bus_busy_cycles: u64,
    /// Wall-clock makespan.
    pub latency: Time,
    /// Classifications per second: every tenant finishes one inference
    /// in one makespan.
    pub throughput: f64,
    /// Per-tenant splits, in input order.
    pub tenants: Vec<TenantReport>,
}

impl SharedReport {
    /// Total ledger energy (dynamic + occupied leakage, no idle).
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Whole-powered-pool energy: ledger plus idle-NC leakage. Equals
    /// `Σ tenant dynamic + pool_leakage_power × latency`.
    pub fn pool_energy(&self) -> Energy {
        self.energy.total() + self.idle_leakage
    }

    /// Mean all-in energy per inference (pool energy over the tenant
    /// count).
    pub fn pool_energy_per_inference(&self) -> Energy {
        if self.tenants.is_empty() {
            return Energy::ZERO;
        }
        self.pool_energy() * (1.0 / self.tenants.len() as f64)
    }

    /// Pool-energy × makespan (pJ·ns); `0.0` when not finite.
    pub fn energy_delay_product(&self) -> f64 {
        let edp = self.pool_energy().picojoules() * self.latency.nanoseconds();
        if edp.is_finite() {
            edp
        } else {
            0.0
        }
    }

    /// Fraction of the makespan's cycles the shared bus was busy.
    pub fn bus_occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.bus_busy_cycles as f64 / self.total_cycles as f64
    }
}

/// Trace-driven event simulator over a [`FabricPool`]: replays one trace
/// per tenant, interleaved per timestep through the shared fabric.
#[derive(Debug, Clone)]
pub struct SharedEventSimulator<'p> {
    pool: &'p FabricPool,
}

impl<'p> SharedEventSimulator<'p> {
    /// Creates a simulator over the pool's resident tenants.
    pub fn new(pool: &'p FabricPool) -> Self {
        Self { pool }
    }

    /// Replays one trace per tenant through the shared fabric.
    ///
    /// Per timestep, tenants on their disjoint NC runs compute and
    /// switch concurrently (the step pays the maximum of their local
    /// cycles) while their global-bus transactions serialise on the
    /// shared bus/SRAM (the step sums them). Dynamic energy is charged
    /// through the same replay core as the single-tenant
    /// [`EventSimulator`](crate::sim::event::EventSimulator); leakage of
    /// the occupied fabric goes to the ledger and the idle remainder of
    /// the pool is reported separately, amortized across tenants in
    /// [`TenantReport::leakage_share`].
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty, names a tenant not resident in the
    /// pool, lists a tenant twice, or a trace's boundary structure does
    /// not match its tenant's mapping.
    pub fn run(&self, traces: &[(TenantId, &SpikeTrace)]) -> SharedReport {
        assert!(
            !traces.is_empty(),
            "shared replay needs at least one tenant trace"
        );
        let mut entries: Vec<(&Tenant, &SpikeTrace)> = Vec::with_capacity(traces.len());
        for (id, trace) in traces {
            let tenant = self
                .pool
                .tenant(*id)
                .unwrap_or_else(|| panic!("{id} is not resident in the pool"));
            assert!(
                entries.iter().all(|(t, _)| t.id != *id),
                "{id} listed twice in one shared replay"
            );
            entries.push((tenant, trace));
        }

        let cfg = &self.pool.config;
        let replays: Vec<TraceReplay> = entries
            .iter()
            .map(|(tenant, trace)| replay_trace(&tenant.mapping, trace))
            .collect();
        let folds: Vec<u64> = entries
            .iter()
            .map(|(tenant, _)| fold_factor(&tenant.mapping))
            .collect();
        let steps = replays
            .iter()
            .map(|r| r.compute_cycles.len())
            .max()
            .unwrap_or(0);

        // --- Shared timeline: max over disjoint NC runs, sum on the bus.
        let mut total_cycles = 0u64;
        let mut bus_busy_cycles = 0u64;
        let mut active_steps = 0usize;
        for t in 0..steps {
            let mut local = 0u64;
            let mut bus = 0u64;
            let mut any_active = false;
            for (replay, &fold) in replays.iter().zip(&folds) {
                if t < replay.compute_cycles.len() {
                    local = local.max((replay.compute_cycles[t] + replay.comm_cycles[t]) * fold);
                    bus += replay.bus_cycles[t];
                    any_active |= replay.compute_cycles[t] > 0;
                }
            }
            total_cycles += (local + bus).max(1);
            bus_busy_cycles += bus;
            if any_active {
                active_steps += 1;
            }
        }
        let latency = cfg.frequency.cycles_to_time(total_cycles);

        // --- Ledger: every replayed tenant's dynamic charges, then
        // leakage of the occupied fabric. "Occupied" is a property of
        // pool *residency*, not of this round's trace set: a resident
        // tenant's silicon is powered whether or not it ran this round.
        // The domain is the same min-of-physical-and-mapped one the
        // single-tenant simulator charges, so a pool whose only resident
        // is the one replayed tenant reproduces it exactly.
        let mut energy = EnergyBreakdown::new();
        for replay in &replays {
            energy.merge(&replay.energy);
        }
        let sram = SramSpec::new(cfg.input_sram_bytes, cfg.packet_bits).build();
        let physical_mpes_cap = cfg.physical_ncs * cfg.mpes_per_nc();
        let resident_mpes: usize = self
            .pool
            .tenants()
            .iter()
            .map(|tenant| tenant.mapping.placement.mpes_used)
            .sum();
        let resident_ncs: usize = self
            .pool
            .tenants()
            .iter()
            .map(|tenant| tenant.mapping.placement.ncs_used)
            .sum();
        let occupied_mpes = physical_mpes_cap.min(resident_mpes.max(1));
        let occupied_switch_ncs = cfg.physical_ncs.min(resident_ncs.max(1));
        let logic_leak = logic_leakage_power(cfg, occupied_mpes, occupied_switch_ncs);
        energy.charge(Category::LogicLeakage, logic_leak * latency);
        energy.charge(Category::MemoryLeakage, sram.leakage() * latency);

        // --- Idle remainder of the pool + per-tenant amortization. The
        // occupied and idle domains partition the physical pool, so
        // ledger leakage + idle_leakage always equals
        // `pool_leakage_power(cfg) × latency` by construction.
        let idle_mpes = physical_mpes_cap - occupied_mpes;
        let idle_switch_ncs = cfg.physical_ncs - occupied_switch_ncs;
        let idle_leakage = logic_leakage_power(cfg, idle_mpes, idle_switch_ncs) * latency;
        let pool_leakage =
            energy.get(Category::LogicLeakage) + energy.get(Category::MemoryLeakage) + idle_leakage;

        let tenants = entries
            .iter()
            .zip(replays)
            .map(|((tenant, _), replay)| {
                // NC-proportional amortization over *residents*: replaying
                // a subset of the pool bills each replayed tenant its own
                // floorplan share and leaves the absent residents' shares
                // unreported rather than shifting them onto this round.
                let nc_share =
                    tenant.mapping.placement.ncs_used as f64 / resident_ncs.max(1) as f64;
                TenantReport {
                    tenant: tenant.id,
                    name: tenant.name.clone(),
                    leakage_share: pool_leakage * nc_share,
                    steps: replay.compute_cycles.len(),
                    active_steps: replay.compute_cycles.iter().filter(|&&c| c > 0).count(),
                    energy: replay.energy,
                    layers: replay.layers,
                }
            })
            .collect();

        SharedReport {
            energy,
            idle_leakage,
            steps,
            active_steps,
            total_cycles,
            bus_busy_cycles,
            latency,
            throughput: cost::safe_throughput(latency) * traces.len() as f64,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resparc_neuro::encoding::RegularEncoder;
    use resparc_neuro::topology::Topology;

    fn small_net(seed: u64) -> Network {
        Network::random(Topology::mlp(96, &[64, 10]), seed, 1.0)
    }

    fn traced(net: &Network, rate: f32, steps: usize) -> SpikeTrace {
        let inputs = net.input_count();
        let stimulus: Vec<f32> = (0..inputs).map(|i| rate * ((i % 5) as f32 / 4.0)).collect();
        let raster = RegularEncoder::new(1.0).encode(&stimulus, steps);
        let (_, trace) = net.spiking().run_traced(&raster);
        trace
    }

    #[test]
    fn admits_tenants_on_disjoint_nc_runs() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let a = pool.admit(&small_net(1), "a").unwrap();
        let b = pool.admit(&small_net(2), "b").unwrap();
        assert_ne!(a, b);
        let ta = pool.tenant(a).unwrap();
        let tb = pool.tenant(b).unwrap();
        assert!(ta.end_nc() <= tb.first_nc() || tb.end_nc() <= ta.first_nc());
        assert_eq!(pool.occupied_ncs(), ta.nc_count() + tb.nc_count());
        assert!(pool.utilization() > 0.0);
    }

    #[test]
    fn admission_rejects_when_capacity_exhausted() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        // The paper's MNIST MLP occupies 8 NCs on RESPARC-64; a third
        // copy cannot fit the 16-NC pool.
        let big = resparc_neuro::topology::Topology::mlp(784, &[800, 800, 10]);
        pool.admit_topology(&big, "one").unwrap();
        pool.admit_topology(&big, "two").unwrap();
        let err = pool.admit_topology(&big, "three").unwrap_err();
        match err {
            AdmitError::CapacityExhausted {
                needed_ncs,
                free_ncs,
                largest_free_run,
            } => {
                assert!(needed_ncs > largest_free_run);
                assert!(largest_free_run <= free_ncs);
            }
            other => panic!("expected CapacityExhausted, got {other}"),
        }
    }

    #[test]
    fn evict_restores_free_list_exactly() {
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let a = pool.admit(&small_net(1), "a").unwrap();
        let before = pool.occupancy().to_vec();
        let b = pool.admit(&small_net(2), "b").unwrap();
        let evicted = pool.evict(b).expect("b resident");
        assert_eq!(evicted.id, b);
        assert_eq!(pool.occupancy(), &before[..]);
        assert!(pool.tenant(b).is_none());
        assert!(pool.tenant(a).is_some());
        assert!(pool.evict(b).is_none(), "double evict must be None");
    }

    #[test]
    fn single_tenant_shared_replay_is_bit_identical_to_dedicated() {
        use crate::sim::event::EventSimulator;

        let net = small_net(7);
        let trace = traced(&net, 0.8, 18);
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let id = pool.admit(&net, "solo").unwrap();

        let dedicated = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        let single = EventSimulator::new(&dedicated).run(&trace);
        let shared = SharedEventSimulator::new(&pool).run(&[(id, &trace)]);

        assert_eq!(shared.energy, single.energy, "ledger must be bit-identical");
        assert_eq!(shared.total_cycles, single.total_cycles);
        assert_eq!(shared.latency, single.latency);
        assert_eq!(shared.steps, single.steps);
        assert_eq!(shared.active_steps, single.active_steps);
        assert_eq!(shared.throughput, single.throughput);
        assert_eq!(shared.tenants[0].layers, single.layers);
    }

    #[test]
    fn shared_replay_sums_dynamic_and_overlaps_makespan() {
        use crate::sim::event::EventSimulator;

        let nets: Vec<Network> = (0..3).map(small_net).collect();
        let traces: Vec<SpikeTrace> = nets.iter().map(|n| traced(n, 0.7, 20)).collect();
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let ids: Vec<TenantId> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| pool.admit(n, &format!("t{i}")).unwrap())
            .collect();
        let pairs: Vec<(TenantId, &SpikeTrace)> = ids.iter().copied().zip(traces.iter()).collect();
        let shared = SharedEventSimulator::new(&pool).run(&pairs);

        // Per-tenant dynamic energy and tallies match a dedicated run.
        let mapper = Mapper::new(ResparcConfig::resparc_64());
        let mut serial_cycles = 0u64;
        for (net, (trace, tr)) in nets.iter().zip(traces.iter().zip(&shared.tenants)) {
            let dedicated = mapper.map_network(net).unwrap();
            let single = EventSimulator::new(&dedicated).run(trace);
            assert_eq!(tr.layers, single.layers);
            for cat in Category::ALL {
                if matches!(cat, Category::LogicLeakage | Category::MemoryLeakage) {
                    continue;
                }
                assert_eq!(tr.energy.get(cat), single.energy.get(cat), "{cat}");
            }
            serial_cycles += single.total_cycles;
        }

        // The overlapped makespan beats serial execution, even with bus
        // contention.
        assert!(
            shared.total_cycles < serial_cycles,
            "shared {} vs serial {}",
            shared.total_cycles,
            serial_cycles
        );
        assert!(shared.bus_occupancy() > 0.0 && shared.bus_occupancy() <= 1.0);
        // Leakage shares amortize the entire powered pool.
        let shares: Energy = shared.tenants.iter().map(|t| t.leakage_share).sum();
        let pool_leak = pool_leakage_power(pool.config()) * shared.latency;
        assert!(
            (shares.picojoules() / pool_leak.picojoules() - 1.0).abs() < 1e-9,
            "shares {shares} vs pool {pool_leak}"
        );
        assert!(
            (shared.pool_energy().picojoules()
                / (shared
                    .tenants
                    .iter()
                    .map(|t| t.energy.total())
                    .sum::<Energy>()
                    + pool_leak)
                    .picojoules()
                - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn subset_replay_bills_residency_not_the_trace_set() {
        // Leakage domains follow pool residency: replaying one of two
        // resident tenants must still treat the absent resident's
        // silicon as occupied (not idle), and must not shift its
        // floorplan share of the pool leakage onto the tenant that ran.
        let cfg = ResparcConfig::resparc_64();
        let a = small_net(1);
        let b = small_net(2);
        let trace = traced(&a, 0.8, 12);

        let mut solo = FabricPool::new(cfg.clone());
        let solo_id = solo.admit(&a, "a").unwrap();
        let solo_run = SharedEventSimulator::new(&solo).run(&[(solo_id, &trace)]);

        let mut pool = FabricPool::new(cfg);
        let id_a = pool.admit(&a, "a").unwrap();
        pool.admit(&b, "b").unwrap();
        let shared = SharedEventSimulator::new(&pool).run(&[(id_a, &trace)]);

        // Same trace, same timeline — but the two-resident pool's
        // occupied-leakage domain includes b's NCs.
        assert_eq!(shared.latency, solo_run.latency);
        assert!(
            shared.energy.get(Category::LogicLeakage) > solo_run.energy.get(Category::LogicLeakage)
        );
        assert!(shared.idle_leakage < solo_run.idle_leakage);
        // a pays its own NC-proportional share of the pool, strictly
        // less than the whole pool's leakage (b's share goes unreported,
        // not onto a).
        let pool_leak = pool_leakage_power(pool.config()) * shared.latency;
        assert!(shared.tenants[0].leakage_share < pool_leak);
        assert!(shared.tenants[0].leakage_share < solo_run.tenants[0].leakage_share);
        // Occupied + idle still partitions the full powered pool.
        let accounted = shared.energy.get(Category::LogicLeakage)
            + shared.energy.get(Category::MemoryLeakage)
            + shared.idle_leakage;
        assert!((accounted.picojoules() / pool_leak.picojoules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_tenant_trace_panics() {
        let net = small_net(3);
        let mut pool = FabricPool::new(ResparcConfig::resparc_64());
        let id = pool.admit(&net, "a").unwrap();
        let bad = SpikeTrace::silent(&[96, 10], 4);
        let result = std::panic::catch_unwind(|| {
            SharedEventSimulator::new(&pool).run(&[(id, &bad)]);
        });
        assert!(result.is_err());
    }
}
