//! RESPARC: the reconfigurable memristive-crossbar architecture for deep
//! spiking neural networks (DAC 2017) — architecture model, mapper and
//! simulators.
//!
//! The crate implements the paper's three-tier reconfigurable hierarchy
//! and everything needed to evaluate it:
//!
//! * [`config`] — machine parameterisation ([`ResparcConfig`], the Fig. 8
//!   presets RESPARC-32/64/128),
//! * [`map`] — the SNN → hardware mapper: connectivity-matrix
//!   partitioning into crossbar tiles with time-multiplexed fan-in and
//!   input-sharing column packing (§3.1.1), and placement over
//!   mPEs / NeuroCells (§3.1.2–3.1.3),
//! * [`sim`] — the activity-driven energy/latency simulator whose
//!   breakdowns reproduce Fig. 11–13, plus the trace-driven event
//!   simulator ([`sim::event`]) that replays measured spike traces
//!   through the fabric packet-by-packet,
//! * [`fabric`] — the multi-tenant view: a [`FabricPool`] admitting many
//!   mapped networks onto one physical NeuroCell pool (NC-granular
//!   free-list, first-fit/best-fit/defragmenting [`PackingPolicy`],
//!   typed admission errors), the [`SharedEventSimulator`] interleaving
//!   their traces per timestep through the shared switches/bus/SRAM
//!   with weighted-round-robin bus QoS, and the [`FabricScheduler`]
//!   churning tenants mid-stream (FIFO admission queue, departure-driven
//!   eviction),
//! * [`mpe`] — the macro Processing Engine's digital shell: per-MCA
//!   buffers (iBUFF/oBUFF/tBUFF), phase scheduling and the CCU
//!   request/wait handshake (Fig. 4),
//! * [`switch`] — the programmable switch with hierarchical packet
//!   addressing and zero-check (Fig. 6),
//! * [`bus`] — the global IO bus, SRAM broadcast with zero-check and
//!   per-NeuroCell event flags (Fig. 3),
//! * [`hw`] — a spike-accurate functional cosimulation built from real
//!   crossbars, validated against the algorithm-level SNN simulator.
//!
//! # Examples
//!
//! Map a small MLP onto RESPARC-64 and estimate per-classification cost:
//!
//! ```
//! use resparc_core::prelude::*;
//! use resparc_neuro::stats::ActivityProfile;
//! use resparc_neuro::topology::Topology;
//!
//! let topology = Topology::mlp(784, &[800, 10]);
//! let mapping = Mapper::new(ResparcConfig::resparc_64()).map(&topology)?;
//! let profile = ActivityProfile::uniform(&[784, 800, 10], 0.15, 0.1);
//! let report = Simulator::new(&mapping).run(&profile);
//! assert!(report.total_energy().picojoules() > 0.0);
//! # Ok::<(), resparc_core::map::MapError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod config;
pub mod fabric;
pub mod hw;
pub mod map;
pub mod mpe;
pub mod sim;
pub mod switch;

pub use bus::{BroadcastOutcome, GlobalBus, NcTag};
pub use config::ResparcConfig;
pub use fabric::{
    AdmitError, FabricPool, FabricScheduler, PackingPolicy, RequestId, ScheduledTenant,
    ServiceRecord, SharedEventSimulator, SharedReport, Tenant, TenantId, TenantReport,
};
pub use hw::{HwBuildError, HwCore};
pub use map::{
    BatchPlacement, BatchPlacer, LayerPartition, LayerReport, MapError, Mapper, Mapping,
    MappingReport, PartitionOptions, Placement, PlacementRequest, PlacementStrategy, Tile,
};
pub use mpe::{CcuLink, CurrentControlUnit, MacroProcessingEngine, McaBuffers, PhaseSchedule};
pub use sim::event::{EventLayerStats, EventReport, EventSimulator, ReplayEngine};
pub use sim::plan::ReplayPlan;
pub use sim::{ExecutionReport, LayerExecStats, Simulator};
pub use switch::{PacketAddress, ProgrammableSwitch, SpikePacket, SwitchCoord, SwitchOutput};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::bus::{BroadcastOutcome, GlobalBus, NcTag};
    pub use crate::config::ResparcConfig;
    pub use crate::fabric::{
        AdmitError, FabricPool, FabricScheduler, NcHealth, PackingPolicy, RequestId,
        ScheduledTenant, ServiceRecord, SharedEventSimulator, SharedReport, Tenant, TenantId,
        TenantReport,
    };
    pub use crate::hw::{HwBuildError, HwCore};
    pub use crate::map::{
        BatchPlacement, BatchPlacer, LayerPartition, LayerReport, MapError, Mapper, Mapping,
        MappingReport, PartitionOptions, Placement, PlacementRequest, PlacementStrategy, Tile,
    };
    pub use crate::mpe::{
        CcuLink, CurrentControlUnit, MacroProcessingEngine, McaBuffers, PhaseSchedule,
    };
    pub use crate::sim::event::{EventLayerStats, EventReport, EventSimulator, ReplayEngine};
    pub use crate::sim::plan::ReplayPlan;
    pub use crate::sim::{ExecutionReport, LayerExecStats, Simulator};
    pub use crate::switch::{
        PacketAddress, ProgrammableSwitch, SpikePacket, SwitchCoord, SwitchOutput,
    };
}
