//! The programmable switch (paper Fig. 6): buffered, address-routed
//! spike-packet transfer with zero-check suppression.
//!
//! Each NeuroCell carries a `(nc_dim-1)²` grid of switches. A switch
//! serves its four neighbouring mPEs and has dedicated links to every
//! switch in its row and column, so any intra-NeuroCell transfer takes at
//! most two hops (row then column). Packets carry a hierarchical address
//! `(SW_ID, mPE_ID, MCA_ID)`; a packet whose payload is all-zero is
//! dropped at the sender's zero-check (§3.2) — that drop is the
//! event-driven energy optimisation of Fig. 13.

use std::collections::VecDeque;

/// Hierarchical packet address (Fig. 6 input-address format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketAddress {
    /// Target switch id within the NeuroCell.
    pub switch: u8,
    /// Target mPE port on that switch (0–3).
    pub mpe: u8,
    /// Target MCA slot within the mPE.
    pub mca: u8,
}

impl PacketAddress {
    /// Packs the address into the wire format (SW_ID\[23:16\] |
    /// mPE_ID\[15:8\] | MCA_ID\[7:0\]).
    pub fn pack(self) -> u32 {
        (u32::from(self.switch) << 16) | (u32::from(self.mpe) << 8) | u32::from(self.mca)
    }

    /// Unpacks an address from the wire format.
    pub fn unpack(raw: u32) -> Self {
        Self {
            switch: ((raw >> 16) & 0xff) as u8,
            mpe: ((raw >> 8) & 0xff) as u8,
            mca: (raw & 0xff) as u8,
        }
    }
}

/// A spike packet: address plus a bit-packed spike payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpikePacket {
    /// Routing address.
    pub address: PacketAddress,
    /// Spike bits (up to 64 neurons per packet, the paper's word width).
    pub payload: u64,
}

impl SpikePacket {
    /// Returns `true` if every spike bit is zero (zero-check).
    pub fn is_zero(&self) -> bool {
        self.payload == 0
    }
}

/// Where a switch sits in its NeuroCell's `(dim-1) × (dim-1)` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchCoord {
    /// Grid column.
    pub x: u8,
    /// Grid row.
    pub y: u8,
}

impl SwitchCoord {
    /// Converts a linear switch id to grid coordinates.
    pub fn from_id(id: u8, grid_dim: u8) -> Self {
        Self {
            x: id % grid_dim,
            y: id / grid_dim,
        }
    }

    /// Converts back to a linear id.
    pub fn id(self, grid_dim: u8) -> u8 {
        self.y * grid_dim + self.x
    }

    /// The next switch on the (row-first, then column) one-hop route
    /// toward `target`; `None` if already there. Dedicated row/column
    /// links make each of the two legs a single hop regardless of
    /// distance.
    pub fn next_hop_toward(self, target: SwitchCoord) -> Option<SwitchCoord> {
        if self == target {
            None
        } else if self.x != target.x {
            Some(SwitchCoord {
                x: target.x,
                y: self.y,
            })
        } else {
            Some(target)
        }
    }

    /// Number of link traversals to reach `target` (0, 1 or 2).
    pub fn hops_to(self, target: SwitchCoord) -> u32 {
        u32::from(self.x != target.x) + u32::from(self.y != target.y)
    }
}

/// A programmable switch with input/output buffering, arbitration and
/// zero-check statistics.
#[derive(Debug, Clone)]
pub struct ProgrammableSwitch {
    coord: SwitchCoord,
    grid_dim: u8,
    zero_check: bool,
    queue: VecDeque<SpikePacket>,
    /// Packets accepted for forwarding.
    pub forwarded: u64,
    /// Packets dropped by the zero-check.
    pub dropped_zero: u64,
}

/// Outcome of servicing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchOutput {
    /// Deliver to a local mPE port.
    Local {
        /// mPE port index.
        mpe: u8,
        /// The packet.
        packet: SpikePacket,
    },
    /// Forward over a row/column link to another switch.
    Forward {
        /// Next switch on the route.
        next: SwitchCoord,
        /// The packet.
        packet: SpikePacket,
    },
}

impl ProgrammableSwitch {
    /// Creates a switch at `coord` in a `grid_dim × grid_dim` switch grid.
    pub fn new(coord: SwitchCoord, grid_dim: u8, zero_check: bool) -> Self {
        Self {
            coord,
            grid_dim,
            zero_check,
            queue: VecDeque::new(),
            forwarded: 0,
            dropped_zero: 0,
        }
    }

    /// This switch's coordinates.
    pub fn coord(&self) -> SwitchCoord {
        self.coord
    }

    /// Packets waiting for arbitration.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Offers a packet on an input line. All-zero packets are dropped
    /// when zero-check is enabled; returns whether the packet was
    /// accepted.
    pub fn offer(&mut self, packet: SpikePacket) -> bool {
        if self.zero_check && packet.is_zero() {
            self.dropped_zero += 1;
            return false;
        }
        self.queue.push_back(packet);
        true
    }

    /// Arbitrates one packet per call (one packet per cycle per switch),
    /// returning its routing decision.
    pub fn service(&mut self) -> Option<SwitchOutput> {
        let packet = self.queue.pop_front()?;
        self.forwarded += 1;
        let target = SwitchCoord::from_id(packet.address.switch, self.grid_dim);
        Some(match self.coord.next_hop_toward(target) {
            None => SwitchOutput::Local {
                mpe: packet.address.mpe,
                packet,
            },
            Some(next) => SwitchOutput::Forward { next, packet },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_pack_roundtrip() {
        let a = PacketAddress {
            switch: 7,
            mpe: 3,
            mca: 2,
        };
        assert_eq!(PacketAddress::unpack(a.pack()), a);
        assert_eq!(a.pack(), 0x07_03_02);
    }

    #[test]
    fn routing_is_at_most_two_hops() {
        let dim = 3u8;
        for from in 0..9u8 {
            for to in 0..9u8 {
                let f = SwitchCoord::from_id(from, dim);
                let t = SwitchCoord::from_id(to, dim);
                let mut cur = f;
                let mut hops = 0;
                while let Some(next) = cur.next_hop_toward(t) {
                    cur = next;
                    hops += 1;
                    assert!(hops <= 2, "route {from}->{to} exceeded 2 hops");
                }
                assert_eq!(cur, t);
                assert_eq!(hops, f.hops_to(t));
            }
        }
    }

    #[test]
    fn zero_check_drops_silent_packets() {
        let mut sw = ProgrammableSwitch::new(SwitchCoord { x: 0, y: 0 }, 3, true);
        let addr = PacketAddress {
            switch: 0,
            mpe: 1,
            mca: 0,
        };
        assert!(!sw.offer(SpikePacket {
            address: addr,
            payload: 0
        }));
        assert!(sw.offer(SpikePacket {
            address: addr,
            payload: 0b100
        }));
        assert_eq!(sw.dropped_zero, 1);
        assert_eq!(sw.pending(), 1);
    }

    #[test]
    fn zero_check_disabled_forwards_everything() {
        let mut sw = ProgrammableSwitch::new(SwitchCoord { x: 0, y: 0 }, 3, false);
        let addr = PacketAddress {
            switch: 0,
            mpe: 0,
            mca: 0,
        };
        assert!(sw.offer(SpikePacket {
            address: addr,
            payload: 0
        }));
        assert_eq!(sw.dropped_zero, 0);
    }

    #[test]
    fn service_delivers_local_and_forwards_remote() {
        let mut sw = ProgrammableSwitch::new(SwitchCoord { x: 0, y: 0 }, 3, true);
        let local = SpikePacket {
            address: PacketAddress {
                switch: 0,
                mpe: 2,
                mca: 1,
            },
            payload: 1,
        };
        let remote = SpikePacket {
            address: PacketAddress {
                switch: 8, // coord (2,2)
                mpe: 0,
                mca: 0,
            },
            payload: 1,
        };
        sw.offer(local);
        sw.offer(remote);
        match sw.service().unwrap() {
            SwitchOutput::Local { mpe, .. } => assert_eq!(mpe, 2),
            other => panic!("expected local delivery, got {other:?}"),
        }
        match sw.service().unwrap() {
            SwitchOutput::Forward { next, .. } => {
                // Row-first routing: x moves to target column 2.
                assert_eq!(next, SwitchCoord { x: 2, y: 0 });
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert!(sw.service().is_none());
        assert_eq!(sw.forwarded, 2);
    }
}
