//! The macro Processing Engine's digital shell (paper Fig. 4): per-MCA
//! buffers, the Local Control Unit's phase sequencing and the Current
//! Control Unit's inter-mPE handshake.
//!
//! Each of an mPE's four MCA slots owns three buffers:
//!
//! * **iBUFF** — buffers incoming spike packets "until the required data
//!   needed by the MCA is available" (a full input window),
//! * **oBUFF** — buffers computed output spike packets until the target
//!   neuron's data is assembled,
//! * **tBUFF** — stores the address of the target neuron(s).
//!
//! The Local Control Unit sequences the slot reads of a timestep
//! (time-multiplexed integration, Fig. 5), and the **CCU** arbitrates the
//! `request`/`wait` handshake that moves analog partial currents
//! (`C_ext`) between neighbouring mPEs when a neuron's fan-in spans mPEs.
//!
//! The analog datapath itself (crossbars + neurons) lives in
//! [`crate::hw`]; this module models the digital shell and is exercised
//! by the structural tests.

use std::collections::VecDeque;

use crate::switch::{PacketAddress, SpikePacket};

/// One MCA slot's buffer set (iBUFF / oBUFF / tBUFF).
#[derive(Debug, Clone, Default)]
pub struct McaBuffers {
    ibuff: VecDeque<SpikePacket>,
    obuff: VecDeque<SpikePacket>,
    tbuff: Vec<PacketAddress>,
}

impl McaBuffers {
    /// Creates empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an incoming spike packet.
    pub fn push_input(&mut self, packet: SpikePacket) {
        self.ibuff.push_back(packet);
    }

    /// Packets waiting to be consumed by the MCA.
    pub fn input_pending(&self) -> usize {
        self.ibuff.len()
    }

    /// Returns `true` once at least `packets_needed` input packets are
    /// buffered — the "required data is available" condition that lets
    /// the MCA fire its read.
    pub fn input_ready(&self, packets_needed: usize) -> bool {
        self.ibuff.len() >= packets_needed
    }

    /// Drains one input window of `packets_needed` packets (FIFO order).
    ///
    /// # Panics
    ///
    /// Panics if the window is not ready; callers gate on
    /// [`Self::input_ready`].
    pub fn take_input_window(&mut self, packets_needed: usize) -> Vec<SpikePacket> {
        assert!(
            self.input_ready(packets_needed),
            "input window not ready: {} of {packets_needed} packets",
            self.ibuff.len()
        );
        self.ibuff.drain(..packets_needed).collect()
    }

    /// Queues a computed output packet.
    pub fn push_output(&mut self, packet: SpikePacket) {
        self.obuff.push_back(packet);
    }

    /// Pops the next output packet for the switch network.
    pub fn pop_output(&mut self) -> Option<SpikePacket> {
        self.obuff.pop_front()
    }

    /// Programs the target-neuron addresses (datapath configuration).
    pub fn set_targets(&mut self, targets: Vec<PacketAddress>) {
        self.tbuff = targets;
    }

    /// The configured targets.
    pub fn targets(&self) -> &[PacketAddress] {
        &self.tbuff
    }
}

/// The CCU handshake state for one neighbouring-mPE gated wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcuLink {
    /// Wire idle.
    #[default]
    Idle,
    /// A transfer has been requested; the receiver has not granted yet
    /// (`wait` asserted).
    Requested,
    /// The wire is granted and carrying a partial current this phase.
    Granted,
}

/// The Current Control Unit: arbitrates analog partial-current transfers
/// between this mPE and its neighbours (one gated wire per neighbour,
/// only one may carry current per phase — analog wires cannot be
/// multiplexed).
#[derive(Debug, Clone)]
pub struct CurrentControlUnit {
    links: Vec<CcuLink>,
    /// Completed transfers (for energy/statistics accounting).
    pub transfers_completed: u64,
}

impl CurrentControlUnit {
    /// Creates a CCU with `neighbours` gated wires.
    pub fn new(neighbours: usize) -> Self {
        Self {
            links: vec![CcuLink::Idle; neighbours],
            transfers_completed: 0,
        }
    }

    /// Requests the wire to `neighbour`. Returns the resulting state:
    /// `Granted` if no other wire is active this phase, `Requested`
    /// (wait) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `neighbour` is out of range.
    pub fn request(&mut self, neighbour: usize) -> CcuLink {
        assert!(neighbour < self.links.len(), "no such neighbour");
        if self.links[neighbour] != CcuLink::Idle {
            return self.links[neighbour];
        }
        let busy = self.links.contains(&CcuLink::Granted);
        self.links[neighbour] = if busy {
            CcuLink::Requested
        } else {
            CcuLink::Granted
        };
        self.links[neighbour]
    }

    /// Ends the current phase: the granted transfer completes, and the
    /// oldest waiting request (lowest index) is promoted.
    pub fn complete_phase(&mut self) {
        if let Some(l) = self.links.iter_mut().find(|l| **l == CcuLink::Granted) {
            *l = CcuLink::Idle;
            self.transfers_completed += 1;
        }
        if let Some(l) = self.links.iter_mut().find(|l| **l == CcuLink::Requested) {
            *l = CcuLink::Granted;
        }
    }

    /// State of one link.
    pub fn link(&self, neighbour: usize) -> CcuLink {
        self.links[neighbour]
    }

    /// Whether any wire is active or pending.
    pub fn is_busy(&self) -> bool {
        self.links.iter().any(|&l| l != CcuLink::Idle)
    }
}

/// The Local Control Unit's phase schedule for one timestep: which MCA
/// slot fires in which cycle, honouring the time-multiplexed integration
/// of Fig. 5 (one integration per neuron per cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// `order[c]` is the slot read in cycle `c`.
    pub order: Vec<usize>,
}

impl PhaseSchedule {
    /// Builds the schedule for an mPE whose slots `0..active_slots` hold
    /// chunk tiles of the same output group: they must fire sequentially
    /// (their currents integrate into the same neurons).
    ///
    /// # Panics
    ///
    /// Panics if `active_slots` exceeds `total_slots`.
    pub fn sequential(active_slots: usize, total_slots: usize) -> Self {
        assert!(
            active_slots <= total_slots,
            "cannot schedule {active_slots} of {total_slots} slots"
        );
        Self {
            order: (0..active_slots).collect(),
        }
    }

    /// Number of cycles one timestep's compute takes.
    pub fn cycles(&self) -> usize {
        self.order.len()
    }
}

/// The digital shell of one macro Processing Engine.
#[derive(Debug, Clone)]
pub struct MacroProcessingEngine {
    buffers: Vec<McaBuffers>,
    ccu: CurrentControlUnit,
    schedule: PhaseSchedule,
}

impl MacroProcessingEngine {
    /// Creates an mPE shell with `mca_slots` slots and `neighbours` CCU
    /// wires (4 and 2–4 in the paper's Fig. 3/4 arrangement).
    pub fn new(mca_slots: usize, neighbours: usize) -> Self {
        Self {
            buffers: (0..mca_slots).map(|_| McaBuffers::new()).collect(),
            ccu: CurrentControlUnit::new(neighbours),
            schedule: PhaseSchedule::sequential(0, mca_slots),
        }
    }

    /// Number of MCA slots.
    pub fn slot_count(&self) -> usize {
        self.buffers.len()
    }

    /// Buffer set of one slot.
    pub fn slot(&self, idx: usize) -> &McaBuffers {
        &self.buffers[idx]
    }

    /// Mutable buffer set of one slot.
    pub fn slot_mut(&mut self, idx: usize) -> &mut McaBuffers {
        &mut self.buffers[idx]
    }

    /// The CCU.
    pub fn ccu(&self) -> &CurrentControlUnit {
        &self.ccu
    }

    /// Mutable CCU access.
    pub fn ccu_mut(&mut self) -> &mut CurrentControlUnit {
        &mut self.ccu
    }

    /// Configures the timestep schedule for `active_slots` chunk tiles.
    ///
    /// # Panics
    ///
    /// Panics if more slots are requested than exist.
    pub fn configure_phases(&mut self, active_slots: usize) {
        self.schedule = PhaseSchedule::sequential(active_slots, self.buffers.len());
    }

    /// The current phase schedule.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(payload: u64) -> SpikePacket {
        SpikePacket {
            address: PacketAddress {
                switch: 0,
                mpe: 0,
                mca: 0,
            },
            payload,
        }
    }

    #[test]
    fn ibuff_gates_on_window_completeness() {
        let mut b = McaBuffers::new();
        b.push_input(packet(1));
        assert!(!b.input_ready(2));
        b.push_input(packet(2));
        assert!(b.input_ready(2));
        let window = b.take_input_window(2);
        assert_eq!(window[0].payload, 1);
        assert_eq!(window[1].payload, 2);
        assert_eq!(b.input_pending(), 0);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn draining_incomplete_window_panics() {
        let mut b = McaBuffers::new();
        b.push_input(packet(1));
        let _ = b.take_input_window(2);
    }

    #[test]
    fn obuff_is_fifo() {
        let mut b = McaBuffers::new();
        b.push_output(packet(7));
        b.push_output(packet(8));
        assert_eq!(b.pop_output().unwrap().payload, 7);
        assert_eq!(b.pop_output().unwrap().payload, 8);
        assert!(b.pop_output().is_none());
    }

    #[test]
    fn ccu_grants_one_wire_at_a_time() {
        let mut ccu = CurrentControlUnit::new(3);
        assert_eq!(ccu.request(0), CcuLink::Granted);
        // A second simultaneous request must wait (analog wires cannot
        // share a phase).
        assert_eq!(ccu.request(2), CcuLink::Requested);
        assert!(ccu.is_busy());
        ccu.complete_phase();
        assert_eq!(ccu.transfers_completed, 1);
        // The waiter is promoted.
        assert_eq!(ccu.link(2), CcuLink::Granted);
        ccu.complete_phase();
        assert_eq!(ccu.transfers_completed, 2);
        assert!(!ccu.is_busy());
    }

    #[test]
    fn ccu_request_is_idempotent_while_pending() {
        let mut ccu = CurrentControlUnit::new(2);
        ccu.request(0);
        assert_eq!(ccu.request(0), CcuLink::Granted);
        assert_eq!(ccu.request(1), CcuLink::Requested);
        assert_eq!(ccu.request(1), CcuLink::Requested);
    }

    #[test]
    fn schedule_matches_multiplexing_degree() {
        // Fig. 5: degree-2 time multiplexing takes 2 cycles.
        let s = PhaseSchedule::sequential(2, 4);
        assert_eq!(s.cycles(), 2);
        assert_eq!(s.order, vec![0, 1]);
    }

    #[test]
    fn mpe_shell_wires_everything() {
        let mut mpe = MacroProcessingEngine::new(4, 4);
        assert_eq!(mpe.slot_count(), 4);
        mpe.configure_phases(3);
        assert_eq!(mpe.schedule().cycles(), 3);
        mpe.slot_mut(1).push_input(packet(5));
        assert_eq!(mpe.slot(1).input_pending(), 1);
        mpe.slot_mut(0).set_targets(vec![PacketAddress {
            switch: 1,
            mpe: 2,
            mca: 3,
        }]);
        assert_eq!(mpe.slot(0).targets().len(), 1);
        assert_eq!(mpe.ccu_mut().request(0), CcuLink::Granted);
        assert!(mpe.ccu().is_busy());
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn overcommitted_schedule_panics() {
        let _ = PhaseSchedule::sequential(5, 4);
    }
}
