//! RESPARC configuration: the micro-architectural parameters of Fig. 8
//! and the RESPARC-32/64/128 presets of Fig. 12.

use resparc_device::memristor::MemristorSpec;
use resparc_energy::components::{ComponentCatalog, ReportedMetrics};
use resparc_energy::units::Frequency;

/// Complete parameterisation of a RESPARC core.
///
/// Defaults follow the paper's Fig. 8: 64-bit architecture, 4×4 NeuroCells
/// (16 mPEs, 9 switches), 4 MCAs per mPE, 200 MHz at IBM 45 nm, and the
/// §4.2 device (20 kΩ–200 kΩ, 16 levels).
#[derive(Debug, Clone, PartialEq)]
pub struct ResparcConfig {
    /// Crossbar edge length (rows = columns); the paper evaluates 32, 64
    /// and 128.
    pub mca_size: usize,
    /// Conductance levels per device (16 = 4-bit weights).
    pub mca_levels: u32,
    /// MCAs per macro Processing Engine.
    pub mcas_per_mpe: usize,
    /// NeuroCell edge in mPEs (4 ⇒ 16 mPEs, 3×3 switches).
    pub nc_dim: usize,
    /// Spike-packet width in bits (the "64-bit architecture").
    pub packet_bits: u32,
    /// Core clock.
    pub frequency: Frequency,
    /// Memristive device technology.
    pub device: MemristorSpec,
    /// Digital-periphery energy catalog.
    pub catalog: ComponentCatalog,
    /// Enable the zero-check event-driven optimisations (§3.2).
    pub event_driven: bool,
    /// Input-memory SRAM capacity in bytes.
    pub input_sram_bytes: usize,
    /// Timesteps per classification (rate-coded inference window).
    pub timesteps: u32,
    /// Physical NeuroCells on the chip. Networks mapping to more NCs
    /// time-multiplex the fabric, serialising each timestep by
    /// `ceil(ncs_used / physical_ncs)` — the structural reason CNNs
    /// (which overflow the core) see smaller speedups than MLPs (which
    /// fit) in the paper's Fig. 11. The default of 16 fits the largest
    /// MLP benchmark exactly.
    pub physical_ncs: usize,
}

impl ResparcConfig {
    /// RESPARC-N preset: the Fig. 8 machine with `mca_size`-sized
    /// crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `mca_size` is zero.
    pub fn with_mca_size(mca_size: usize) -> Self {
        assert!(mca_size > 0, "MCA size must be non-zero");
        Self {
            mca_size,
            mca_levels: 16,
            mcas_per_mpe: 4,
            nc_dim: 4,
            packet_bits: 64,
            frequency: Frequency::from_megahertz(200.0),
            device: MemristorSpec::paper_default(),
            catalog: ComponentCatalog::ibm45(),
            event_driven: true,
            input_sram_bytes: 64 * 1024,
            timesteps: 100,
            physical_ncs: 16,
        }
    }

    /// The paper's default machine: RESPARC-64.
    pub fn resparc_64() -> Self {
        Self::with_mca_size(64)
    }

    /// RESPARC-32 (Fig. 12/13 sweep point).
    pub fn resparc_32() -> Self {
        Self::with_mca_size(32)
    }

    /// RESPARC-128 (Fig. 12/13 sweep point).
    pub fn resparc_128() -> Self {
        Self::with_mca_size(128)
    }

    /// Returns a copy with event-driven optimisations switched on/off
    /// (the Fig. 13 comparison).
    pub fn with_event_driven(mut self, enabled: bool) -> Self {
        self.event_driven = enabled;
        self
    }

    /// Returns a copy with a different timestep budget.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps` is zero.
    pub fn with_timesteps(mut self, timesteps: u32) -> Self {
        assert!(timesteps > 0, "need at least one timestep");
        self.timesteps = timesteps;
        self
    }

    /// mPEs per NeuroCell (`nc_dim²`, 16 in the paper).
    pub fn mpes_per_nc(&self) -> usize {
        self.nc_dim * self.nc_dim
    }

    /// Programmable switches per NeuroCell (`(nc_dim-1)²`, 9 in the
    /// paper).
    pub fn switches_per_nc(&self) -> usize {
        (self.nc_dim - 1) * (self.nc_dim - 1)
    }

    /// MCAs per NeuroCell.
    pub fn mcas_per_nc(&self) -> usize {
        self.mpes_per_nc() * self.mcas_per_mpe
    }

    /// Synapse capacity of one MCA.
    pub fn mca_capacity(&self) -> usize {
        self.mca_size * self.mca_size
    }

    /// Synapse capacity of one NeuroCell.
    pub fn nc_capacity(&self) -> usize {
        self.mcas_per_nc() * self.mca_capacity()
    }

    /// The paper's published implementation metrics for one NeuroCell
    /// (Fig. 8).
    pub fn reported_metrics(&self) -> ReportedMetrics {
        ReportedMetrics::resparc_neurocell()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.mca_size == 0 {
            return Err("MCA size must be non-zero".into());
        }
        if self.mcas_per_mpe == 0 {
            return Err("need at least one MCA per mPE".into());
        }
        if self.nc_dim < 2 {
            return Err("NeuroCell dimension must be at least 2".into());
        }
        if self.packet_bits == 0 || self.packet_bits > 512 {
            return Err(format!("packet width {} out of range", self.packet_bits));
        }
        if self.timesteps == 0 {
            return Err("need at least one timestep".into());
        }
        if self.physical_ncs == 0 {
            return Err("need at least one physical NeuroCell".into());
        }
        self.device.validate()
    }
}

impl Default for ResparcConfig {
    fn default() -> Self {
        Self::resparc_64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_parameters() {
        let cfg = ResparcConfig::resparc_64();
        assert_eq!(cfg.mca_size, 64);
        assert_eq!(cfg.mcas_per_mpe, 4);
        assert_eq!(cfg.mpes_per_nc(), 16);
        assert_eq!(cfg.switches_per_nc(), 9);
        assert_eq!(cfg.packet_bits, 64);
        assert!((cfg.frequency.megahertz() - 200.0).abs() < 1e-12);
        cfg.validate().unwrap();
    }

    #[test]
    fn capacities() {
        let cfg = ResparcConfig::resparc_64();
        assert_eq!(cfg.mca_capacity(), 4096);
        assert_eq!(cfg.mcas_per_nc(), 64);
        assert_eq!(cfg.nc_capacity(), 262_144);
    }

    #[test]
    fn presets_differ_only_in_size() {
        let a = ResparcConfig::resparc_32();
        let b = ResparcConfig::resparc_128();
        assert_eq!(a.mca_size, 32);
        assert_eq!(b.mca_size, 128);
        assert_eq!(a.nc_dim, b.nc_dim);
    }

    #[test]
    fn builders_apply() {
        let cfg = ResparcConfig::resparc_64()
            .with_event_driven(false)
            .with_timesteps(10);
        assert!(!cfg.event_driven);
        assert_eq!(cfg.timesteps, 10);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ResparcConfig::resparc_64();
        cfg.nc_dim = 1;
        assert!(cfg.validate().is_err());
        let mut cfg2 = ResparcConfig::resparc_64();
        cfg2.packet_bits = 0;
        assert!(cfg2.validate().is_err());
    }
}
