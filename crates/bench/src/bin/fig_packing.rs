//! Prints the batch packing table (greedy first-fit vs the optimizing
//! placer across fabric shapes) and writes the machine-independent
//! packing-quality counters to `$BENCH_JSON_DIR/BENCH_packing_quality.json`
//! (default `.`) for the `bench_gate` ratio gate.
use std::path::PathBuf;

fn main() {
    println!("{}", resparc_bench::fig_packing());
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(dir).join("BENCH_packing_quality.json");
    std::fs::write(&path, resparc_bench::packing_quality_json())
        .expect("write packing quality json");
    eprintln!("wrote {}", path.display());
}
