//! Prints the encoding comparison table (rate vs TTFS vs burst coding,
//! priced by the trace-driven event simulator).
fn main() {
    println!("{}", resparc_bench::fig_encoding());
}
