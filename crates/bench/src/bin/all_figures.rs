//! Regenerates every table and figure of the paper's evaluation and
//! writes them to `results/`.
use std::fs;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;
    for (name, text) in resparc_bench::all_figures() {
        println!("{text}");
        fs::write(format!("results/{name}.txt"), &text)?;
        eprintln!("wrote results/{name}.txt");
    }
    Ok(())
}
