//! Prints the data behind the paper's Fig. 08.
fn main() {
    println!("{}", resparc_bench::fig08());
}
