//! Prints the data behind the paper's Fig. 12.
fn main() {
    println!("{}", resparc_bench::fig12());
}
