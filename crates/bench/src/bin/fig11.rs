//! Prints the data behind the paper's Fig. 11.
fn main() {
    println!("{}", resparc_bench::fig11());
}
