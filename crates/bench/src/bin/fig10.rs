//! Prints the data behind the paper's Fig. 10.
fn main() {
    println!("{}", resparc_bench::fig10());
}
