//! Prints the data behind the paper's Fig. 09.
fn main() {
    println!("{}", resparc_bench::fig09());
}
