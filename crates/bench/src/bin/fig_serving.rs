//! Prints the serving figure: open-loop tail latency / goodput / SLO
//! violations per arrival trace and packing policy, the SLO-adaptive
//! QoS controller vs static weights, and the power-gating energy bill.
fn main() {
    println!("{}", resparc_bench::fig_serving());
}
