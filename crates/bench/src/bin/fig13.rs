//! Prints the data behind the paper's Fig. 13.
fn main() {
    println!("{}", resparc_bench::fig13());
}
