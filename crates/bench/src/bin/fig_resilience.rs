//! Prints the resilience figure: device-fault degradation per coding
//! scheme and the NC-failure recovery drill per packing policy.
fn main() {
    println!("{}", resparc_bench::fig_resilience());
}
