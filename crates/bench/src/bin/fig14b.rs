//! Prints the data behind the paper's Fig. 14b.
fn main() {
    println!("{}", resparc_bench::fig14b());
}
