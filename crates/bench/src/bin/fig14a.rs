//! Prints the data behind the paper's Fig. 14a.
fn main() {
    println!("{}", resparc_bench::fig14a());
}
