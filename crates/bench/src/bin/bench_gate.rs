//! CI perf-regression gate over the criterion `BENCH_*.json` reports.
//!
//! Compares every fresh `BENCH_*.json` in a directory against the
//! checked-in `bench/baseline.json` and exits non-zero when any benchmark
//! id regressed by more than the threshold (median ns/iter, default
//! +25 %) — throughput regressions fail the `perf-smoke` job. The
//! baseline is only rewritten on an explicit `--update` (wired to a
//! manual workflow input in CI, never on ordinary pushes).
//!
//! Besides absolute medians, the gate can judge **machine-independent
//! ratios**: `--ratio A=B` compares the fresh `A/B` median ratio against
//! the baseline's `A/B` ratio. Because both ids are measured on the same
//! machine in the same run, the ratio survives CI hardware changes that
//! shift every absolute median — the compiled-vs-reference speedups stay
//! gated even when the absolute baseline is stale (`--ratio-only` skips
//! the absolute comparisons entirely for exactly that situation).
//!
//! ```text
//! bench_gate [--fresh-dir DIR] [--baseline FILE] [--threshold PCT]
//!            [--min-ns NS] [--ratio A=B]... [--ratio-threshold PCT]
//!            [--ratio-only] [--update]
//! ```
//!
//! * `--fresh-dir`  directory scanned for `BENCH_*.json` (default `.`)
//! * `--baseline`   baseline path (default `bench/baseline.json`)
//! * `--threshold`  allowed slowdown in percent (default `25`)
//! * `--min-ns`     ids whose baseline median is below this are reported
//!   but never gated (default `10000` — sub-10 µs medians jitter beyond
//!   the threshold on shared CI runners without any code change)
//! * `--ratio A=B`  also gate the `A/B` median ratio against the
//!   baseline's `A/B` ratio (repeatable; ids must exist in both runs)
//! * `--ratio-threshold`  allowed ratio worsening in percent (defaults
//!   to `--threshold`)
//! * `--ratio-only` skip the absolute gate (ratios still fail the run) —
//!   for riding out a CI hardware change until the baseline is refreshed
//! * `--update`     rewrite the baseline from the fresh results and exit
//!
//! Exit codes: `0` pass / baseline updated, `1` regression, `2` usage or
//! I/O error. Benchmarks present in the baseline but missing from the
//! fresh run are reported as warnings (a partial `cargo bench` run must
//! not look like a pass for the missing ids — CI always runs the full
//! suite); fresh ids not yet in the baseline are listed as candidates for
//! `--update`.
//!
//! The JSON involved is the vendored criterion harness's flat schema
//! (`{"group": .., "results": [{"id": .., "median_ns": ..}, ..]}`), so
//! parsing is a self-contained scanner — no serde in the dependency tree.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq)]
struct GateConfig {
    threshold_pct: f64,
    /// Baseline medians below this many nanoseconds are informational
    /// only: micro-benchmarks in the sub-10 µs range move more than any
    /// sane threshold under shared-runner jitter.
    min_ns: f64,
}

/// One benchmark's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// Within threshold; ratio = fresh / baseline.
    Ok(f64),
    /// Slower than baseline by more than the threshold.
    Regressed(f64),
    /// Below the gate floor — reported, never failed.
    BelowFloor(f64),
}

impl Verdict {
    fn ratio(&self) -> f64 {
        match *self {
            Verdict::Ok(r) | Verdict::Regressed(r) | Verdict::BelowFloor(r) => r,
        }
    }
}

/// One `--ratio A=B` specification: gate `A/B` against the baseline's
/// `A/B`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RatioSpec {
    numerator: String,
    denominator: String,
}

impl RatioSpec {
    /// Parses `A=B` (ids may contain `/`, so `=` is the separator).
    fn parse(arg: &str) -> Option<Self> {
        let (num, den) = arg.split_once('=')?;
        let (num, den) = (num.trim(), den.trim());
        if num.is_empty() || den.is_empty() {
            return None;
        }
        Some(Self {
            numerator: num.to_string(),
            denominator: den.to_string(),
        })
    }

    fn label(&self) -> String {
        format!("{} / {}", self.numerator, self.denominator)
    }
}

/// Looks up both medians of a ratio spec in one run's results; `None`
/// (with a warning from the caller) when either id or its median is
/// missing/degenerate.
fn lookup_ratio(spec: &RatioSpec, results: &BTreeMap<String, f64>) -> Option<f64> {
    let num = *results.get(&spec.numerator)?;
    let den = *results.get(&spec.denominator)?;
    if num > 0.0 && den > 0.0 && num.is_finite() && den.is_finite() {
        Some(num / den)
    } else {
        None
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fresh_dir = PathBuf::from(".");
    let mut baseline_path = PathBuf::from("bench/baseline.json");
    let mut threshold_pct = 25.0f64;
    let mut min_ns = 10_000.0f64;
    let mut update = false;
    let mut ratios: Vec<RatioSpec> = Vec::new();
    let mut ratio_threshold_pct: Option<f64> = None;
    let mut ratio_only = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fresh-dir" => match it.next() {
                Some(v) => fresh_dir = PathBuf::from(v),
                None => return usage("--fresh-dir needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = PathBuf::from(v),
                None => return usage("--baseline needs a value"),
            },
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => threshold_pct = v,
                _ => return usage("--threshold needs a positive number"),
            },
            "--min-ns" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => min_ns = v,
                _ => return usage("--min-ns needs a non-negative number"),
            },
            "--ratio" => match it.next().and_then(|v| RatioSpec::parse(v)) {
                Some(spec) => ratios.push(spec),
                None => return usage("--ratio needs a NUMERATOR_ID=DENOMINATOR_ID value"),
            },
            "--ratio-threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => ratio_threshold_pct = Some(v),
                _ => return usage("--ratio-threshold needs a positive number"),
            },
            "--ratio-only" => ratio_only = true,
            "--update" => update = true,
            "--help" | "-h" => {
                eprintln!(
                    "bench_gate [--fresh-dir DIR] [--baseline FILE] [--threshold PCT] \
                     [--min-ns NS] [--ratio A=B]... [--ratio-threshold PCT] [--ratio-only] \
                     [--update]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let fresh = match collect_fresh(&fresh_dir) {
        Ok(map) => map,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    if fresh.is_empty() {
        eprintln!(
            "bench_gate: no BENCH_*.json found in {} — run `cargo bench -p resparc-bench` first",
            fresh_dir.display()
        );
        return ExitCode::from(2);
    }
    println!(
        "bench_gate: {} fresh benchmark ids from {}",
        fresh.len(),
        fresh_dir.display()
    );

    if update {
        return match std::fs::create_dir_all(baseline_path.parent().unwrap_or(Path::new(".")))
            .and_then(|()| std::fs::write(&baseline_path, render_baseline(&fresh)))
        {
            Ok(()) => {
                println!(
                    "bench_gate: baseline updated ({} ids -> {})",
                    fresh.len(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {}: {e}", baseline_path.display());
                ExitCode::from(2)
            }
        };
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_results(&text),
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read baseline {}: {e} (run with --update to create it)",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    if baseline.is_empty() {
        eprintln!(
            "bench_gate: baseline {} holds no results",
            baseline_path.display()
        );
        return ExitCode::from(2);
    }

    let cfg = GateConfig {
        threshold_pct,
        min_ns,
    };
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for (id, &base_ns) in &baseline {
        match fresh.get(id) {
            None => missing.push(id.clone()),
            Some(&fresh_ns) => {
                let verdict = judge(base_ns, fresh_ns, &cfg);
                println!(
                    "  {:<48} base {:>12.0} ns  fresh {:>12.0} ns  x{:.2}{}",
                    id,
                    base_ns,
                    fresh_ns,
                    verdict.ratio(),
                    match verdict {
                        Verdict::Regressed(_) if ratio_only => "  (slower; absolute gate off)",
                        Verdict::Regressed(_) => "  REGRESSED",
                        Verdict::BelowFloor(_) => "  (below gate floor, not gated)",
                        Verdict::Ok(_) => "",
                    }
                );
                if let Verdict::Regressed(r) = verdict {
                    if !ratio_only {
                        regressions.push((id.clone(), r));
                    }
                }
            }
        }
    }

    // --- Machine-independent ratio gate -----------------------------
    // An unresolvable --ratio spec (renamed id, partial bench run,
    // degenerate median) fails the gate rather than warning: explicitly
    // requested checks silently skipping must not look like a pass —
    // under --ratio-only nothing else would be gated at all.
    let rthr = ratio_threshold_pct.unwrap_or(threshold_pct);
    for spec in &ratios {
        let (Some(base_ratio), Some(fresh_ratio)) =
            (lookup_ratio(spec, &baseline), lookup_ratio(spec, &fresh))
        else {
            eprintln!(
                "bench_gate: ratio `{}` needs both ids with positive medians in the \
                 baseline and the fresh run",
                spec.label()
            );
            regressions.push((format!("ratio {} (unresolvable)", spec.label()), f64::NAN));
            continue;
        };
        let worsening = fresh_ratio / base_ratio;
        let regressed = worsening > 1.0 + rthr / 100.0;
        println!(
            "  ratio {:<60} base x{:>8.2}  fresh x{:>8.2}  drift x{:.2}{}",
            spec.label(),
            base_ratio,
            fresh_ratio,
            worsening,
            if regressed { "  REGRESSED" } else { "" }
        );
        if regressed {
            regressions.push((format!("ratio {}", spec.label()), worsening));
        }
    }
    for id in &missing {
        eprintln!("bench_gate: WARNING: baseline id `{id}` missing from the fresh run");
    }
    let new_ids: Vec<&String> = fresh
        .keys()
        .filter(|id| !baseline.contains_key(*id))
        .collect();
    if !new_ids.is_empty() {
        println!(
            "bench_gate: {} new id(s) not in the baseline (add via --update): {}",
            new_ids.len(),
            new_ids
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // Name the limit that actually applied in the summary: absolute ids
    // are gated at --threshold, ratio drifts at --ratio-threshold.
    let limits = match (ratio_only, ratios.is_empty()) {
        (true, _) => format!("ratio drift x{:.2} (absolute gate off)", 1.0 + rthr / 100.0),
        (false, true) => format!("baseline x{:.2}", 1.0 + cfg.threshold_pct / 100.0),
        (false, false) => format!(
            "baseline x{:.2} / ratio drift x{:.2}",
            1.0 + cfg.threshold_pct / 100.0,
            1.0 + rthr / 100.0
        ),
    };
    if regressions.is_empty() {
        println!("bench_gate: PASS — no check beyond {limits}");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAIL — {} check(s) beyond {limits}:",
            regressions.len()
        );
        for (id, ratio) in &regressions {
            eprintln!("  {id}: x{ratio:.2}");
        }
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    eprintln!(
        "usage: bench_gate [--fresh-dir DIR] [--baseline FILE] [--threshold PCT] \
         [--min-ns NS] [--ratio A=B]... [--ratio-threshold PCT] [--ratio-only] [--update]"
    );
    ExitCode::from(2)
}

/// Compares one benchmark's fresh median against the baseline.
fn judge(base_ns: f64, fresh_ns: f64, cfg: &GateConfig) -> Verdict {
    let ratio = if base_ns > 0.0 {
        fresh_ns / base_ns
    } else {
        1.0
    };
    if base_ns < cfg.min_ns {
        Verdict::BelowFloor(ratio)
    } else if ratio > 1.0 + cfg.threshold_pct / 100.0 {
        Verdict::Regressed(ratio)
    } else {
        Verdict::Ok(ratio)
    }
}

/// Reads every `BENCH_*.json` in `dir` into one id → median_ns map.
fn collect_fresh(dir: &Path) -> Result<BTreeMap<String, f64>, String> {
    let mut merged = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
        let results = parse_results(&text);
        println!("  {} -> {} ids", name, results.len());
        merged.extend(results);
    }
    Ok(merged)
}

/// Extracts `(id, median_ns)` pairs from the criterion harness's flat
/// JSON (tolerant scanner: any `"id": "..."` followed by a
/// `"median_ns": <number>`).
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\":") {
        rest = &rest[pos + 5..];
        let Some((id, after_id)) = parse_json_string(rest) else {
            break;
        };
        rest = after_id;
        let Some(mpos) = rest.find("\"median_ns\":") else {
            break;
        };
        // The median must belong to this record — bail if another id
        // starts first (malformed record).
        if let Some(next_id) = rest.find("\"id\":") {
            if next_id < mpos {
                continue;
            }
        }
        let num_text = rest[mpos + 12..].trim_start();
        let end = num_text
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(num_text.len());
        if let Ok(v) = num_text[..end].parse::<f64>() {
            out.insert(id, v);
        }
        rest = &rest[mpos + 12..];
    }
    out
}

/// Parses a JSON string literal starting at the first `"` of `text`;
/// returns the unescaped string and the remaining input.
fn parse_json_string(text: &str) -> Option<(String, &str)> {
    let start = text.find('"')?;
    let mut out = String::new();
    let mut chars = text[start + 1..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &text[start + 1 + i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => out.push(other),
                None => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Renders the merged fresh results as the checked-in baseline file.
fn render_baseline(results: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n  \"group\": \"baseline\",\n  \"results\": [\n");
    let last = results.len().saturating_sub(1);
    for (i, (id, ns)) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {ns:.1}}}{}\n",
            id.replace('\\', "\\\\").replace('"', "\\\""),
            if i < last { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "group": "trace_energy",
  "results": [
    {"id": "event_replay/event_mnist_mlp_20steps", "median_ns": 1234567.0, "min_ns": 1.0, "max_ns": 2.0, "samples": 10, "iterations": 10},
    {"id": "event_replay/stationary_mnist_mlp", "median_ns": 89.5, "min_ns": 1.0, "max_ns": 2.0, "samples": 10, "iterations": 10}
  ]
}"#;

    #[test]
    fn parses_criterion_json() {
        let r = parse_results(SAMPLE);
        assert_eq!(r.len(), 2);
        assert_eq!(r["event_replay/event_mnist_mlp_20steps"], 1234567.0);
        assert_eq!(r["event_replay/stationary_mnist_mlp"], 89.5);
    }

    #[test]
    fn baseline_roundtrips_through_parser() {
        let r = parse_results(SAMPLE);
        let rendered = render_baseline(&r);
        assert_eq!(parse_results(&rendered), r);
    }

    #[test]
    fn judge_applies_threshold() {
        let cfg = GateConfig {
            threshold_pct: 25.0,
            min_ns: 0.0,
        };
        assert!(matches!(judge(100.0, 124.0, &cfg), Verdict::Ok(_)));
        assert!(matches!(judge(100.0, 50.0, &cfg), Verdict::Ok(_)));
        assert!(matches!(judge(100.0, 126.0, &cfg), Verdict::Regressed(_)));
        // Zero baseline never divides by zero.
        assert!(matches!(judge(0.0, 10.0, &cfg), Verdict::Ok(_)));
    }

    #[test]
    fn judge_skips_ids_below_floor() {
        let cfg = GateConfig {
            threshold_pct: 25.0,
            min_ns: 10_000.0,
        };
        // A 3x slowdown on a 150 ns bench is runner noise, not a
        // regression — below the floor it never fails the gate.
        assert!(matches!(judge(150.0, 450.0, &cfg), Verdict::BelowFloor(_)));
        assert!(matches!(
            judge(20_000.0, 30_000.0, &cfg),
            Verdict::Regressed(_)
        ));
    }

    #[test]
    fn ratio_spec_parses_id_pairs() {
        let spec = RatioSpec::parse("snn_step/compiled=snn_step/reference").unwrap();
        assert_eq!(spec.numerator, "snn_step/compiled");
        assert_eq!(spec.denominator, "snn_step/reference");
        assert_eq!(spec.label(), "snn_step/compiled / snn_step/reference");
        assert!(RatioSpec::parse("no-separator").is_none());
        assert!(RatioSpec::parse("=denominator-only").is_none());
        assert!(RatioSpec::parse("numerator-only=").is_none());
    }

    #[test]
    fn ratio_lookup_requires_both_ids_positive() {
        let mut results = BTreeMap::new();
        results.insert("a".to_string(), 200.0);
        results.insert("b".to_string(), 100.0);
        results.insert("z".to_string(), 0.0);
        let ab = RatioSpec::parse("a=b").unwrap();
        assert_eq!(lookup_ratio(&ab, &results), Some(2.0));
        // Missing id or zero denominator never divides.
        assert_eq!(
            lookup_ratio(&RatioSpec::parse("a=missing").unwrap(), &results),
            None
        );
        assert_eq!(
            lookup_ratio(&RatioSpec::parse("a=z").unwrap(), &results),
            None
        );
    }

    #[test]
    fn ratio_drift_is_machine_independent() {
        // A uniform 3x machine slowdown moves every absolute median but
        // leaves the compiled/reference ratio untouched — the property
        // the ratio gate exists for.
        let base_num = 100.0f64;
        let base_den = 1000.0f64;
        let (fresh_num, fresh_den) = (base_num * 3.0, base_den * 3.0);
        let drift = (fresh_num / fresh_den) / (base_num / base_den);
        assert!((drift - 1.0).abs() < 1e-12);
        // A genuine compiled-path regression shows up as drift > 1.
        let drift = ((fresh_num * 2.0) / fresh_den) / (base_num / base_den);
        assert!((drift - 2.0).abs() < 1e-12);
    }

    #[test]
    fn string_parser_handles_escapes() {
        let (s, rest) = parse_json_string(r#""a\"b\\c" tail"#).unwrap();
        assert_eq!(s, "a\"b\\c");
        assert_eq!(rest, " tail");
    }
}
