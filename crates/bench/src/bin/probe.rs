//! Calibration probe: prints gains/speedups and group breakdowns for
//! all six benchmarks at RESPARC-64 (used while tuning the models).
use resparc_suite::compare::compare_benchmark;
use resparc_suite::prelude::*;

fn main() {
    for b in resparc_suite::resparc_workloads::all_benchmarks() {
        let cmp = compare_benchmark(
            &b,
            &ResparcConfig::resparc_64(),
            &CmosConfig::paper_baseline(),
            7,
        )
        .unwrap();
        println!(
            "{:<12} gain {:>7.1}x speedup {:>7.1}x | R {:>9.2} uJ {:>9.1} us | C {:>9.1} uJ {:>9.1} us",
            cmp.name,
            cmp.energy_gain,
            cmp.speedup,
            cmp.resparc.total_energy().microjoules(),
            cmp.resparc.latency.microseconds(),
            cmp.cmos.total_energy().microjoules(),
            cmp.cmos.latency.microseconds(),
        );
        print!("  RESPARC: ");
        for (g, e) in cmp.resparc.energy.resparc_groups() {
            print!("{g}={:.1}% ", 100.0 * (e / cmp.resparc.total_energy()));
        }
        print!("\n  CMOS:    ");
        for (g, e) in cmp.cmos.energy.cmos_groups() {
            print!("{g}={:.1}% ", 100.0 * (e / cmp.cmos.total_energy()));
        }
        println!();
    }
}
