//! Prints the multi-tenancy comparison table (serial vs co-resident
//! execution on one NeuroCell pool, priced by the shared event
//! simulator).
fn main() {
    println!("{}", resparc_bench::fig_tenancy());
}
