//! The rebar-style replay-engine barometer: every engine over a shared
//! trace corpus, one comparable JSON row per engine×workload.
//!
//! Runs the stationary analytic simulator and both trace-replay engines
//! (scalar reference, compiled word-level plan) over five MNIST-MLP
//! traces spanning the activity spectrum — dense rate, sparse Poisson,
//! bursty, TTFS, and all-silent — on one mapping, timing each pair on
//! this machine in one process so every ratio is machine-independent.
//!
//! ```text
//! cargo run --release -p resparc-bench --bin barometer
//! ```
//!
//! Stdout gets one JSON object per line (`engine`, `workload`,
//! `median_ns`, `min_ns`, `iters_per_sample`, `steps`,
//! `total_energy_pj`), pipeable into any log scraper; the human-readable
//! table and the plan-vs-reference speedup summary go to stderr. Before
//! any row is printed the barometer asserts the bit-identity contract —
//! plan and reference reports must match exactly on every corpus trace —
//! so a corrupted fast path can never publish numbers.

use std::hint::black_box;
use std::time::Instant;

use resparc_suite::prelude::*;

const STEPS: usize = 20;
/// Target wall-clock per timing sample; iterations per sample are
/// calibrated so one sample is at least this long.
const TARGET_SAMPLE_NS: u128 = 2_000_000;
const SAMPLES: usize = 15;

/// Times `f` rebar-style: calibrate iterations to fill a sample, take
/// `SAMPLES` samples, report (median ns/iter, min ns/iter, iters).
fn time_ns(mut f: impl FnMut()) -> (f64, f64, u64) {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1);
    let iters = (TARGET_SAMPLE_NS / once).clamp(1, 100_000) as u64;
    let mut per_iter = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    (per_iter[SAMPLES / 2], min, iters)
}

struct Row {
    engine: &'static str,
    workload: &'static str,
    median_ns: f64,
    min_ns: f64,
    iters: u64,
    energy_pj: f64,
}

fn main() {
    let net = Network::random(
        resparc_suite::resparc_workloads::mnist_mlp().topology,
        3,
        1.0,
    );
    let stimulus: Vec<f32> = (0..784).map(|i| (i % 9) as f32 / 9.0).collect();
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(STEPS as u32))
        .map_network(&net)
        .expect("the paper MLP maps at RESPARC-64");

    // --- Shared corpus: five traces across the activity spectrum ----
    let trace_of = |raster: &SpikeRaster| net.spiking().run_traced(raster).1;
    let dense = trace_of(&PoissonEncoder::new(0.8, 5).encode(&stimulus, STEPS));
    let sparse = trace_of(&PoissonEncoder::new(0.05, 5).encode(&stimulus, STEPS));
    let ttfs = trace_of(&TtfsEncoder::new().encode(&stimulus, STEPS));
    let bursty = {
        // All activity compressed into the first quarter of the window.
        let head = PoissonEncoder::new(0.9, 5).encode(&stimulus, STEPS / 4);
        let mut raster = SpikeRaster::new(784);
        for step in head.iter() {
            raster.push_view(step);
        }
        for _ in STEPS / 4..STEPS {
            raster.push(SpikeVector::new(784));
        }
        trace_of(&raster)
    };
    let boundary_sizes: Vec<usize> = (0..dense.boundary_count())
        .map(|b| dense.boundary(b).neurons())
        .collect();
    let silent = SpikeTrace::silent(&boundary_sizes, STEPS);
    let corpus: [(&'static str, &SpikeTrace); 5] = [
        ("dense_rate", &dense),
        ("sparse_poisson", &sparse),
        ("bursty", &bursty),
        ("ttfs", &ttfs),
        ("silent", &silent),
    ];

    // --- Bit-identity gate before anything is published -------------
    for (workload, trace) in &corpus {
        let reference = EventSimulator::with_engine(&mapping, ReplayEngine::Reference).run(trace);
        let plan = EventSimulator::with_engine(&mapping, ReplayEngine::Plan).run(trace);
        assert_eq!(
            reference, plan,
            "bit-identity violated on corpus trace {workload}"
        );
    }
    let plan = mapping.replay_plan();
    eprintln!(
        "replay plan: {} layers, {} windows, {:.1}% contiguous-run fast path",
        plan.layer_count(),
        plan.window_count(),
        100.0 * plan.run_fraction()
    );

    // --- Time every engine × workload --------------------------------
    let mut rows: Vec<Row> = Vec::new();
    for (workload, trace) in &corpus {
        let profile = trace.to_profile(&[16, 32, 64, 128]);
        let stationary_report = Simulator::new(&mapping).run(&profile);
        let (median_ns, min_ns, iters) =
            time_ns(|| drop(black_box(Simulator::new(black_box(&mapping)).run(&profile))));
        rows.push(Row {
            engine: "stationary",
            workload,
            median_ns,
            min_ns,
            iters,
            energy_pj: stationary_report.total_energy().picojoules(),
        });
        for engine in [ReplayEngine::Reference, ReplayEngine::Plan] {
            let report = EventSimulator::with_engine(&mapping, engine).run(trace);
            let (median_ns, min_ns, iters) = time_ns(|| {
                drop(black_box(
                    EventSimulator::with_engine(black_box(&mapping), engine).run(black_box(trace)),
                ))
            });
            rows.push(Row {
                engine: engine.name(),
                workload,
                median_ns,
                min_ns,
                iters,
                energy_pj: report.total_energy().picojoules(),
            });
        }
    }

    // --- One JSON row per engine×workload on stdout -------------------
    for r in &rows {
        println!(
            "{{\"engine\":\"{}\",\"workload\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\
             \"iters_per_sample\":{},\"steps\":{STEPS},\"total_energy_pj\":{:.3}}}",
            r.engine, r.workload, r.median_ns, r.min_ns, r.iters, r.energy_pj
        );
    }

    // --- Human-readable table + speedups on stderr --------------------
    eprintln!();
    eprintln!(
        "{:<18} {:<15} {:>14} {:>14} {:>16}",
        "engine", "workload", "median ns/iter", "min ns/iter", "energy (pJ)"
    );
    for r in &rows {
        eprintln!(
            "{:<18} {:<15} {:>14.1} {:>14.1} {:>16.3}",
            r.engine, r.workload, r.median_ns, r.min_ns, r.energy_pj
        );
    }
    eprintln!();
    for (workload, _) in &corpus {
        let median = |engine: &str| {
            rows.iter()
                .find(|r| r.engine == engine && r.workload == *workload)
                .map(|r| r.median_ns)
                .unwrap_or(f64::NAN)
        };
        eprintln!(
            "{workload:<15} plan speedup over reference: {:>6.2}x",
            median("reference-replay") / median("plan-replay")
        );
    }
}
