//! Benchmark harness regenerating every table and figure of the RESPARC
//! paper's evaluation (Figs. 8–14).
//!
//! Each `figNN` function renders one figure's data as text; the matching
//! binaries (`cargo run -p resparc-bench --release --bin fig11`, or
//! `--bin all_figures` for the lot) print them and `all_figures` also
//! writes `results/figNN.txt`. Absolute joules and seconds come from our
//! calibrated analytic models, not the authors' Synopsys flow — the
//! reproduction targets the *shape* of each result (who wins, by what
//! order, where the crossovers fall). EXPERIMENTS.md records
//! paper-vs-measured for every figure.
//!
//! Wall-clock performance of the simulators themselves is tracked by the
//! criterion benches in `benches/simulator.rs` (`cargo bench -p
//! resparc-bench`), including the compiled-kernel vs closure-walk
//! `snn_step` / `forward_batch` / `accuracy_sweep` groups; see the
//! repository's `BENCHMARKS.md` for how to run them and read the emitted
//! `BENCH_*.json`.

use std::fmt::Write as _;

use resparc_suite::compare::{compare_benchmark, compare_many, Comparison};
use resparc_suite::prelude::*;
use resparc_suite::resparc_workloads::{all_benchmarks, cnn_benchmarks, mlp_benchmarks};

/// Packet widths measured into every activity profile.
pub const WIDTHS: [u32; 4] = [16, 32, 64, 128];
/// Seed used by every generator (full determinism).
pub const SEED: u64 = 7;

fn fmt_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "| {:<w$} ", c, w = widths[i]);
        }
        out.push_str("|\n");
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let mut sep = String::new();
    for w in &widths {
        let _ = write!(sep, "|{}", "-".repeat(w + 2));
    }
    sep.push_str("|\n");
    out.push_str(&sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Runs one benchmark on both machines at the given MCA size.
///
/// # Panics
///
/// Panics only on an invalid internal configuration (a bug, not input).
pub fn run_pair(bench: &Benchmark, mca: usize, event_driven: bool) -> Comparison {
    compare_benchmark(
        bench,
        &ResparcConfig::with_mca_size(mca).with_event_driven(event_driven),
        &CmosConfig::paper_baseline(),
        SEED,
    )
    .expect("benchmark configs are valid")
}

/// Fig. 8: RESPARC micro-architectural parameters and implementation
/// metrics.
pub fn fig08() -> String {
    let cfg = ResparcConfig::resparc_64();
    let m = cfg.reported_metrics();
    let rows = vec![
        vec!["Architecture".into(), format!("{} bit", cfg.packet_bits)],
        vec![
            "NC Dimension".into(),
            format!("{}x{}", cfg.nc_dim, cfg.nc_dim),
        ],
        vec![
            "No. of mPE (Switches)".into(),
            format!("{} ({})", cfg.mpes_per_nc(), cfg.switches_per_nc()),
        ],
        vec![
            "No. of MCAs per mPE".into(),
            format!("{}", cfg.mcas_per_mpe),
        ],
        vec!["Feature Size".into(), "45nm".into()],
        vec![
            "Area".into(),
            format!("{:.2} mm^2", m.area.square_millimeters()),
        ],
        vec!["Power".into(), format!("{:.1} mW", m.power.milliwatts())],
        vec!["Gate Count".into(), format!("{}", m.gate_count)],
        vec!["Frequency".into(), format!("{}", m.frequency)],
    ];
    format!(
        "Fig. 8 — RESPARC parameters and metrics (one NeuroCell)\n{}",
        fmt_table(&["Parameter", "Value"], &rows)
    )
}

/// Fig. 9: CMOS baseline parameters and implementation metrics.
pub fn fig09() -> String {
    let cfg = CmosConfig::paper_baseline();
    let m = cfg.reported_metrics();
    let rows = vec![
        vec!["NU count".into(), format!("{}", cfg.nu_count)],
        vec![
            "FIFO(s): Input (Weight)".into(),
            format!("{} (1)", cfg.input_fifos),
        ],
        vec!["FIFO depth".into(), format!("{}", cfg.fifo_depth)],
        vec![
            "Width: FIFO (NU)".into(),
            format!("{0} ({0})", cfg.datapath_bits),
        ],
        vec!["Feature Size".into(), "45nm".into()],
        vec![
            "Area".into(),
            format!("{:.2} mm^2", m.area.square_millimeters()),
        ],
        vec!["Power".into(), format!("{:.1} mW", m.power.milliwatts())],
        vec!["Gate Count".into(), format!("{}", m.gate_count)],
        vec!["Frequency".into(), format!("{}", m.frequency)],
    ];
    format!(
        "Fig. 9 — CMOS baseline parameters and metrics\n{}",
        fmt_table(&["Parameter", "Value"], &rows)
    )
}

/// Fig. 10: the six SNN benchmarks (paper numbers next to our concrete
/// topologies).
pub fn fig10() -> String {
    let rows: Vec<Vec<String>> = all_benchmarks()
        .iter()
        .map(|b| {
            vec![
                b.dataset.name().into(),
                b.style.name().into(),
                format!("{}", b.paper.layers),
                format!("{}", b.topology.layer_count()),
                format!("{}", b.paper.neurons),
                format!("{}", b.topology.neuron_count()),
                format!("{}", b.paper.synapses),
                format!("{}", b.topology.synapse_count()),
                format!("{:+.1}%", 100.0 * b.synapse_delta()),
            ]
        })
        .collect();
    format!(
        "Fig. 10 — SNN benchmarks (paper vs this reproduction)\n{}",
        fmt_table(
            &[
                "Dataset",
                "Net",
                "Layers(p)",
                "Layers",
                "Neurons(p)",
                "Neurons",
                "Synapses(p)",
                "Synapses",
                "dSyn"
            ],
            &rows
        )
    )
}

/// Fig. 11: per-classification energy benefits and speedups of RESPARC-64
/// over the CMOS baseline, for the CNN and MLP benchmark groups.
pub fn fig11() -> String {
    let mut out = String::new();
    for (tag, group, paper_gain, paper_speedup) in [
        (
            "CNN (Fig. 11 a/c)",
            cnn_benchmarks(),
            [11.0, 15.0, 10.0],
            [33.0, 52.0, 95.0],
        ),
        (
            "MLP (Fig. 11 b/d)",
            mlp_benchmarks(),
            [331.0, 659.0, 549.0],
            [360.0, 371.0, 415.0],
        ),
    ] {
        let mut rows = Vec::new();
        let cmps = compare_many(
            &group,
            &ResparcConfig::with_mca_size(64).with_event_driven(true),
            &CmosConfig::paper_baseline(),
            SEED,
        )
        .expect("benchmark configs are valid");
        for (i, (b, cmp)) in group.iter().zip(&cmps).enumerate() {
            rows.push(vec![
                b.name.clone(),
                format!("{:.1}x", cmp.energy_gain),
                format!("{:.0}x", paper_gain[i]),
                format!("{:.1}x", cmp.speedup),
                format!("{:.0}x", paper_speedup[i]),
                format!("{:.2} uJ", cmp.resparc.total_energy().microjoules()),
                format!("{:.1} uJ", cmp.cmos.total_energy().microjoules()),
            ]);
        }
        let _ = write!(
            out,
            "{tag}\n{}\n",
            fmt_table(
                &[
                    "Benchmark",
                    "Energy gain",
                    "(paper)",
                    "Speedup",
                    "(paper)",
                    "RESPARC E",
                    "CMOS E"
                ],
                &rows
            )
        );
    }
    format!("Fig. 11 — RESPARC-64 vs CMOS baseline, per classification\n{out}")
}

/// Fig. 12: energy breakdowns across MCA sizes (RESPARC) and the CMOS
/// baseline's core/memory split, for both benchmark groups.
pub fn fig12() -> String {
    let mut out = String::new();
    for (tag, group) in [
        ("MLP (Fig. 12 a/b)", mlp_benchmarks()),
        ("CNN (Fig. 12 c/d)", cnn_benchmarks()),
    ] {
        let mut rows = Vec::new();
        for b in &group {
            for mca in [32usize, 64, 128] {
                let cmp = run_pair(b, mca, true);
                let groups = cmp.resparc.energy.resparc_groups();
                let total = cmp.resparc.total_energy();
                rows.push(vec![
                    format!("{} @ {mca}", b.name),
                    format!("{:.2} uJ", total.microjoules()),
                    format!("{:.1}%", 100.0 * (groups[0].1 / total)),
                    format!("{:.1}%", 100.0 * (groups[1].1 / total)),
                    format!("{:.1}%", 100.0 * (groups[2].1 / total)),
                ]);
            }
        }
        let _ = write!(
            out,
            "RESPARC breakdown — {tag}\n{}\n",
            fmt_table(
                &[
                    "Benchmark @ MCA",
                    "Total",
                    "Neuron",
                    "Crossbar",
                    "Peripherals"
                ],
                &rows
            )
        );

        let mut rows = Vec::new();
        for b in &group {
            let cmp = run_pair(b, 64, true);
            let groups = cmp.cmos.energy.cmos_groups();
            let total = cmp.cmos.total_energy();
            rows.push(vec![
                b.name.clone(),
                format!("{:.1} uJ", total.microjoules()),
                format!("{:.1}%", 100.0 * (groups[0].1 / total)),
                format!("{:.1}%", 100.0 * (groups[1].1 / total)),
                format!("{:.1}%", 100.0 * (groups[2].1 / total)),
            ]);
        }
        let _ = write!(
            out,
            "CMOS breakdown — {tag}\n{}\n",
            fmt_table(
                &["Benchmark", "Total", "Core", "Mem Access", "Mem Leakage"],
                &rows
            )
        );
    }
    format!("Fig. 12 — energy breakdowns vs MCA size\n{out}")
}

/// Fig. 13: effect of event-drivenness (MNIST, MLP and CNN, MCA sizes
/// 32/64/128, with vs without zero-check).
pub fn fig13() -> String {
    let mut out = String::new();
    for b in [
        resparc_suite::resparc_workloads::mnist_mlp(),
        resparc_suite::resparc_workloads::mnist_cnn(),
    ] {
        let mut rows = Vec::new();
        for mca in [128usize, 64, 32] {
            let with = run_pair(&b, mca, true);
            let without = run_pair(&b, mca, false);
            let saving = 1.0
                - with.resparc.total_energy().picojoules()
                    / without.resparc.total_energy().picojoules();
            rows.push(vec![
                format!("RESPARC-{mca}"),
                format!("{:.2} uJ", without.resparc.total_energy().microjoules()),
                format!("{:.2} uJ", with.resparc.total_energy().microjoules()),
                format!("{:.1}%", 100.0 * saving),
            ]);
        }
        let _ = write!(
            out,
            "{} (w/o vs w/ event-drivenness)\n{}\n",
            b.name,
            fmt_table(&["Machine", "w/o", "w/", "Saving"], &rows)
        );
    }
    format!("Fig. 13 — event-driven energy savings on MNIST\n{out}")
}

/// Fig. 14(a): classification accuracy vs weight bit-discretization on
/// scaled-down trained SNNs for the three datasets.
pub fn fig14a() -> String {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Mnist, DatasetKind::Svhn, DatasetKind::Cifar10] {
        let side = 16usize;
        let gen = SyntheticImages::new(kind, side, SEED);
        let train = gen.labelled_set(400, 0);
        let test = gen.labelled_set(100, 50_000);
        let mut cfg = TrainConfig::quick_test();
        cfg.epochs = 30;
        let mut net = train_mlp(side * side, &[64, 10], &train, &cfg);
        let calib: Vec<Vec<f32>> = train.iter().take(32).map(|(x, _)| x.clone()).collect();
        normalize_for_snn(&mut net, &calib, 0.99);

        let mut cells = vec![kind.name().to_string()];
        for bits in [1u8, 2, 4, 8] {
            let (qnet, _) = quantize_network(&net, Precision::new(bits));
            // Batched sweep on the quantized net's compiled kernels:
            // identical per-sample seeds/steps to the original serial
            // loop (SweepConfig::fig14a() == 80 steps, 0.8 peak, seed 7).
            let report = spiking_accuracy_sweep(&qnet, &test, &SweepConfig::fig14a());
            cells.push(format!("{:.1}%", 100.0 * report.accuracy()));
        }
        rows.push(cells);
    }
    format!(
        "Fig. 14(a) — spiking accuracy vs weight bit-discretization\n\
         (scaled-down 16x16 synthetic sets, trained MLP 256-64-10; the paper's\n\
         observation is that 4-bit accuracy ~= 8-bit accuracy)\n{}",
        fmt_table(&["Dataset", "1 bit", "2 bit", "4 bit", "8 bit"], &rows)
    )
}

/// Fig. 14(b): energy vs weight bit-discretization — RESPARC is
/// insensitive, the CMOS baseline grows with precision.
pub fn fig14b() -> String {
    let b = resparc_suite::resparc_workloads::mnist_mlp();
    let profile = b.activity_profile(&WIDTHS, SEED);
    let mut rows = Vec::new();
    let base_resparc = {
        let mapping = Mapper::new(ResparcConfig::resparc_64())
            .map(&b.topology)
            .expect("valid config");
        Simulator::new(&mapping).run(&profile).total_energy()
    };
    let base_cmos = CmosSimulator::new(CmosConfig::paper_baseline().with_weight_bits(4))
        .run(&b.topology, &profile)
        .total_energy();
    for bits in [1u32, 2, 4, 8] {
        // RESPARC: conductance levels change, the analog read does not.
        let mut rcfg = ResparcConfig::resparc_64();
        rcfg.mca_levels = 1 << bits;
        let mapping = Mapper::new(rcfg).map(&b.topology).expect("valid config");
        let r = Simulator::new(&mapping).run(&profile).total_energy();
        let c = CmosSimulator::new(CmosConfig::paper_baseline().with_weight_bits(bits))
            .run(&b.topology, &profile)
            .total_energy();
        rows.push(vec![
            format!("{bits}"),
            format!("{:.3}", r / base_resparc),
            format!("{:.3}", c / base_cmos),
        ]);
    }
    format!(
        "Fig. 14(b) — normalized energy vs bit-discretization (MNIST MLP;\n\
         RESPARC normalized to itself, CMOS to its 4-bit point)\n{}",
        fmt_table(&["Bits", "RESPARC (norm)", "CMOS (norm)"], &rows)
    )
}

/// Extension figure (beyond the paper's evaluation): accuracy vs
/// energy-per-inference across spike codings — Poisson rate, regular
/// rate, TTFS and burst — on a trained MNIST-style MLP, priced by the
/// trace-driven event simulator at a matched timestep budget. The
/// stationary simulator structurally cannot run this comparison: a TTFS
/// train's single-spike sparsity and a burst's silent tail violate its
/// rate-stationarity assumption, so every number here comes from
/// replaying each stimulus's actual spike trace.
pub fn fig_encoding() -> String {
    let steps = 30usize;
    let gen = SyntheticImages::new(DatasetKind::Mnist, 16, SEED);
    let train = gen.labelled_set(400, 0);
    let test = gen.labelled_set(60, 50_000);
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 30;
    let mut net = train_mlp(256, &[64, 10], &train, &cfg);
    let calib: Vec<Vec<f32>> = train.iter().take(32).map(|(x, _)| x.clone()).collect();
    normalize_for_snn(&mut net, &calib, 0.99);
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(steps as u32))
        .map_network(&net)
        .expect("valid config");

    let sweep = SweepConfig::rate(steps, 0.8, SEED);
    let encodings = [
        Encoding::Rate,
        Encoding::RegularRate,
        Encoding::Ttfs,
        Encoding::Burst {
            max_burst: 6,
            gap: 2,
        },
    ];
    let reports = encoding_energy_sweep(&net, &mapping, &test, &sweep, &encodings);
    let base = reports[0].1.mean_total_energy();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|(enc, r)| {
            vec![
                enc.to_string(),
                format!("{:.1}%", 100.0 * r.accuracy()),
                format!("{:.1}", r.mean_total_energy().nanojoules()),
                format!("{:.1}", r.mean_comm_crossbar_energy().nanojoules()),
                format!("{:.2}", r.mean_latency.microseconds()),
                format!("{:.2}x", base / r.mean_total_energy()),
            ]
        })
        .collect();
    format!(
        "Encoding comparison — accuracy vs energy per inference across spike codes\n\
         (trained 256-64-10 MLP on the 16x16 synthetic MNIST set, RESPARC-64,\n\
         {steps} timesteps per presentation, trace-driven event simulation)\n{}",
        fmt_table(
            &[
                "Encoding",
                "Accuracy",
                "E/inf (nJ)",
                "comm+xbar (nJ)",
                "Latency (us)",
                "Gain vs rate"
            ],
            &rows
        )
    )
}

/// Multi-tenancy comparison (beyond the paper): N networks sharing one
/// NeuroCell pool vs taking turns on it — identical spike traces,
/// identical per-event charges, so the whole difference is how long the
/// powered pool leaks and how its shared bus serialises. This is the
/// reconfigurability story of §3 priced end-to-end: co-residency
/// amortizes idle-NC leakage across tenants and overlaps their
/// makespans, at the cost of measurable bus contention. The follow-up
/// sections price the *dynamic* half: weighted bus QoS (who absorbs the
/// contention) and mid-replay tenant churn under the three packing
/// policies vs static batch provisioning.
pub fn fig_tenancy() -> String {
    use resparc_suite::resparc_workloads::multi_tenant_sweep;

    let pool_cfg = ResparcConfig::resparc_64();
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, SEED);
    let samples = gen.labelled_set(4, 900);
    let sweep = SweepConfig::rate(25, 0.7, SEED);

    let mut rows = Vec::new();
    for tenants in [2usize, 3, 4] {
        let nets: Vec<Network> = (0..tenants as u64)
            .map(|s| Network::random(Topology::mlp(144, &[96, 10]), 60 + s, 1.0))
            .collect();
        let r = multi_tenant_sweep(&nets, &samples, &sweep, &pool_cfg).expect("tenants fit");
        rows.push(vec![
            format!("{tenants}"),
            format!("{:.0}%", 100.0 * r.pool_utilization),
            format!(
                "{:.2} / {:.2}",
                r.serial.latency.microseconds(),
                r.shared.latency.microseconds()
            ),
            format!(
                "{:.1} / {:.1}",
                r.serial.energy_per_inference().nanojoules(),
                r.shared.energy_per_inference().nanojoules()
            ),
            format!("{:.2}x", r.energy_per_inference_gain()),
            format!("{:.2}x", r.edp_gain()),
            format!("{:.0}%", 100.0 * r.mean_bus_occupancy),
        ]);
    }
    format!(
        "Multi-tenant fabric — serial vs co-resident execution on one RESPARC-64 pool\n\
         (random 144-96-10 MLP tenants, 4 rounds x 25 steps, trace-driven shared replay;\n\
         E/inference bills the whole powered pool's leakage to its resident tenants)\n{}\n\
         {}\n{}",
        fmt_table(
            &[
                "Tenants",
                "NC util",
                "Wall-clock us (ser/co)",
                "E/inf nJ (ser/co)",
                "E/inf gain",
                "EDP gain",
                "Bus busy"
            ],
            &rows
        ),
        fig_tenancy_qos(),
        fig_tenancy_churn()
    )
}

/// Weighted bus QoS: the same three-tenant shared replay under fair and
/// under 4:2:1 weighted round-robin arbitration. The bus is
/// work-conserving — makespan, ledger and bus occupancy are
/// bit-identical in both runs — so the table isolates what the weights
/// actually move: which tenant's packets wait, and what each tenant's
/// perceived inference latency becomes.
fn fig_tenancy_qos() -> String {
    let pool_cfg = ResparcConfig::resparc_64();
    let nets: Vec<Network> = (0..3u64)
        .map(|s| Network::random(Topology::mlp(144, &[96, 10]), 60 + s, 1.0))
        .collect();
    let traces: Vec<SpikeTrace> = nets
        .iter()
        .map(|net| {
            let stimulus: Vec<f32> = (0..144).map(|i| (i % 7) as f32 / 7.0).collect();
            let raster = RegularEncoder::new(0.8).encode(&stimulus, 25);
            net.spiking().run_traced(&raster).1
        })
        .collect();
    let mut pool = FabricPool::new(pool_cfg);
    let ids: Vec<TenantId> = nets
        .iter()
        .enumerate()
        .map(|(i, n)| pool.admit(n, &format!("tenant{i}")).expect("fits"))
        .collect();
    let pairs: Vec<(TenantId, &SpikeTrace)> = ids.iter().copied().zip(traces.iter()).collect();
    let sim = SharedEventSimulator::new(&pool);
    let fair = sim.run(&pairs);
    let weighted = sim.run_weighted(&pairs, &[4, 2, 1]);
    assert_eq!(weighted.latency, fair.latency, "the bus is work-conserving");

    let rows: Vec<Vec<String>> = fair
        .tenants
        .iter()
        .zip(&weighted.tenants)
        .map(|(f, w)| {
            vec![
                f.name.clone(),
                format!("{}", w.weight),
                format!("{}", f.bus_stall_cycles),
                format!("{}", w.bus_stall_cycles),
                format!("{:.3}", f.latency.microseconds()),
                format!("{:.3}", w.latency.microseconds()),
            ]
        })
        .collect();
    format!(
        "Weighted bus QoS — fair vs 4:2:1 weighted round-robin, same traces\n\
         (3 co-resident 144-96-10 tenants, 25 steps; makespan {:.2} us and ledger are\n\
         weight-independent — the weights only choose who absorbs the bus contention)\n{}",
        fair.latency.microseconds(),
        fmt_table(
            &[
                "Tenant",
                "Weight",
                "Stall cyc (fair)",
                "Stall cyc (wrr)",
                "Latency us (fair)",
                "Latency us (wrr)"
            ],
            &rows
        )
    )
}

/// Mid-replay churn: an arrival/departure schedule through the
/// `FabricScheduler` under each packing policy, against the static
/// co-resident batching baseline — same networks, same traces, same
/// per-event charges, so every delta is scheduling.
fn fig_tenancy_churn() -> String {
    use resparc_suite::resparc_workloads::{churn_sweep, ChurnSpec};

    let pool_cfg = ResparcConfig::resparc_64();
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, SEED);
    let samples = gen.labelled_set(3, 900);
    let sweep = SweepConfig::rate(20, 0.7, SEED);

    // Eight 2-NC tenants fill the 16-NC pool at round 0; two depart
    // after one round, fragmenting the free list. A 4-NC tenant and a
    // late 2-NC arrival must be scheduled into the churn.
    let mut nets: Vec<Network> = (0..8u64)
        .map(|s| Network::random(Topology::mlp(144, &[576, 576, 10]), 70 + s, 1.0))
        .collect();
    nets.push(Network::random(
        Topology::mlp(144, &[576, 576, 576, 10]),
        80,
        1.0,
    ));
    nets.push(Network::random(
        Topology::mlp(144, &[576, 576, 10]),
        81,
        1.0,
    ));
    let mut specs: Vec<ChurnSpec> = (0..8)
        .map(|i| ChurnSpec::new(0, if i == 0 || i == 2 { 1 } else { 5 }))
        .collect();
    specs.push(ChurnSpec::new(0, 3)); // the 4-NC request
    specs.push(ChurnSpec::new(2, 2)); // late arrival

    let mut rows = Vec::new();
    for policy in [
        PackingPolicy::FirstFit,
        PackingPolicy::BestFit,
        PackingPolicy::Defragment,
    ] {
        let r = churn_sweep(&nets, &specs, &samples, &sweep, &pool_cfg, policy)
            .expect("every request fits the pool alone");
        rows.push(vec![
            format!("{policy:?}"),
            format!("{} / {}", r.churned.rounds, r.static_baseline.rounds),
            format!(
                "{:.0}% / {:.0}%",
                100.0 * r.churned.mean_active_utilization,
                100.0 * r.static_baseline.mean_active_utilization
            ),
            format!(
                "{:.1} ({})",
                r.churned.mean_queue_wait, r.churned.max_queue_wait
            ),
            format!(
                "{:.1} / {:.1}",
                r.churned.tenancy.energy_per_inference().nanojoules(),
                r.static_baseline
                    .tenancy
                    .energy_per_inference()
                    .nanojoules()
            ),
            format!("{:.2}x", r.energy_per_inference_gain()),
            format!("{:.2}x", r.makespan_gain()),
        ]);
    }
    format!(
        "Mid-replay churn — dynamic scheduling vs static co-resident batches\n\
         (10 requests: 8x 2-NC + 1x 4-NC + 1 late 2-NC on RESPARC-64, 20 steps/round;\n\
         two early departures fragment the pool, so the 4-NC request needs compaction)\n{}",
        fmt_table(
            &[
                "Policy",
                "Rounds (dyn/static)",
                "Active util",
                "Wait mean (max)",
                "E/inf nJ (dyn/static)",
                "E/inf gain",
                "Makespan gain"
            ],
            &rows
        )
    )
}

/// The packing scenario behind `fig_packing` and the CI packing-quality
/// gate: the default `packing_scenario` shapes swept at the harness
/// seed. Fully deterministic — every count in the report is
/// machine-independent.
fn packing_report() -> resparc_suite::resparc_workloads::PackingReport {
    use resparc_suite::resparc_workloads::{packing_scenario, packing_sweep};

    let (nets, shapes) = packing_scenario();
    let samples: Vec<Vec<f32>> = (0..2)
        .map(|s| (0..144).map(|i| ((s * 5 + i) % 9) as f32 / 9.0).collect())
        .collect();
    packing_sweep(
        &nets,
        &shapes,
        &samples,
        &SweepConfig::rate(20, 0.7, SEED),
        &ResparcConfig::resparc_64(),
        SEED,
    )
    .expect("the default scenario maps on every shape")
}

/// Packing figure (beyond the paper): the same admission batch placed
/// by greedy first-fit and by the annealing `BatchPlacer`, across a
/// fragmented homogeneous pool, a heterogeneous 64/32 inventory and an
/// uncontended control. Greedy is the oracle — the optimizer is never
/// worse on admits by construction — and the fragmented/heterogeneous
/// rows are where the search buys real capacity back.
pub fn fig_packing() -> String {
    let report = packing_report();
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                format!("{}", r.requests),
                format!("{} / {}", r.greedy.admitted, r.optimized.admitted),
                format!(
                    "{:.0}% / {:.0}%",
                    100.0 * r.greedy.utilization,
                    100.0 * r.optimized.utilization
                ),
                format!("{} / {}", r.greedy.bus_trips, r.optimized.bus_trips),
                format!("{} / {}", r.greedy.fragments, r.optimized.fragments),
                format!(
                    "{:.1} / {:.1}",
                    r.greedy.tenancy.energy_per_inference().nanojoules(),
                    r.optimized.tenancy.energy_per_inference().nanojoules()
                ),
                format!("{:+}", r.admit_gain()),
            ]
        })
        .collect();
    format!(
        "Batch packing — greedy first-fit vs optimizing placer, per fabric shape\n\
         (1/2/4/5-NC MLP tenants on RESPARC-64 inventories; the optimizer anneals\n\
         admission order and MCA size class over the same probe/admit API, seeded\n\
         with the greedy schedule, so it is never worse on admits; one shared\n\
         replay round meters each layout)\n{}",
        fmt_table(
            &[
                "Shape",
                "Reqs",
                "Admit (g/o)",
                "NC util (g/o)",
                "Bus trips (g/o)",
                "Frags (g/o)",
                "E/inf nJ (g/o)",
                "Gain"
            ],
            &rows
        )
    )
}

/// The packing-quality counters in the `BENCH_*.json` shape
/// `bench_gate` consumes — admitted-tenant counts, not timings, so the
/// `packing_quality/greedy_admitted=packing_quality/optimized_admitted`
/// ratio gate is exact on any machine.
pub fn packing_quality_json() -> String {
    let report = packing_report();
    format!(
        "{{\"group\":\"packing_quality\",\"results\":[\
         {{\"id\":\"packing_quality/greedy_admitted\",\"median_ns\":{}.0}},\
         {{\"id\":\"packing_quality/optimized_admitted\",\"median_ns\":{}.0}}]}}\n",
        report.greedy_admitted(),
        report.optimized_admitted()
    )
}

/// Resilience figure (beyond the paper): what silicon damage costs and
/// what the self-healing fabric gets back. The first table is the
/// device-fault degradation surface — stuck-at rate, conductance drift
/// and log-normal variation applied to a trained MLP's kernels via
/// [`FaultPlan`], swept per coding scheme, because rate coding's
/// redundancy and TTFS's single-spike code absorb the same damage very
/// differently. The second table injects permanent NeuroCell failures
/// mid-replay into a dynamically scheduled pool and measures the
/// evict-requeue-readmit recovery loop under each packing policy.
pub fn fig_resilience() -> String {
    let steps = 30usize;
    let gen = SyntheticImages::new(DatasetKind::Mnist, 16, SEED);
    let train = gen.labelled_set(400, 0);
    let test = gen.labelled_set(40, 50_000);
    let mut cfg = TrainConfig::quick_test();
    cfg.epochs = 30;
    let mut net = train_mlp(256, &[64, 10], &train, &cfg);
    let calib: Vec<Vec<f32>> = train.iter().take(32).map(|(x, _)| x.clone()).collect();
    normalize_for_snn(&mut net, &calib, 0.99);
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(steps as u32))
        .map_network(&net)
        .expect("valid config");
    let sweep = SweepConfig::rate(steps, 0.8, SEED);

    let plans = [
        ("clean", FaultPlan::none()),
        ("stuck 2%", FaultPlan::stuck_at(SEED, 0.02)),
        ("stuck 5%", FaultPlan::stuck_at(SEED, 0.05)),
        ("stuck 10%", FaultPlan::stuck_at(SEED, 0.10)),
        ("drift 20%", FaultPlan::none().with_drift(0.2)),
        (
            "stuck 5% + var 0.3",
            FaultPlan::stuck_at(SEED, 0.05).with_variation(0.3),
        ),
    ];
    let encodings = [
        Encoding::Rate,
        Encoding::Ttfs,
        Encoding::Burst {
            max_burst: 6,
            gap: 2,
        },
    ];
    let only_plans: Vec<FaultPlan> = plans.iter().map(|(_, p)| *p).collect();
    let points = fault_sweep(&net, &mapping, &test, &sweep, &only_plans, &encodings);
    let rows: Vec<Vec<String>> = plans
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            let cell = |e: usize| &points[i * encodings.len() + e].report;
            vec![
                (*label).to_string(),
                format!("{:.1}%", 100.0 * cell(0).accuracy()),
                format!("{:.1}%", 100.0 * cell(1).accuracy()),
                format!("{:.1}%", 100.0 * cell(2).accuracy()),
                format!("{:.1}", cell(0).mean_total_energy().nanojoules()),
                format!("{:.1}", cell(2).mean_total_energy().nanojoules()),
            ]
        })
        .collect();
    format!(
        "Device-fault degradation — accuracy per coding scheme vs injected damage\n\
         (trained 256-64-10 MLP on the 16x16 synthetic MNIST set, RESPARC-64,\n\
         {steps} timesteps, trace-driven replay of the faulted kernels; the clean\n\
         plan is bit-identical to the fault-free path)\n{}\n{}",
        fmt_table(
            &[
                "Fault plan",
                "Rate acc",
                "TTFS acc",
                "Burst acc",
                "Rate E/inf (nJ)",
                "Burst E/inf (nJ)"
            ],
            &rows
        ),
        fig_resilience_drill()
    )
}

/// NC-failure recovery drill: five tenants churn through a RESPARC-64
/// pool while two NeuroCells die mid-replay; the scheduler evicts each
/// victim, re-queues it at the head and re-admits it on surviving
/// cells. Rows compare the packing policies on the same schedule and
/// fault sequence.
fn fig_resilience_drill() -> String {
    use resparc_suite::resparc_workloads::{fault_recovery_drill, ChurnSpec, FaultEvent};

    let pool_cfg = ResparcConfig::resparc_64();
    let gen = SyntheticImages::new(DatasetKind::Mnist, 12, SEED);
    let samples = gen.labelled_set(4, 900);
    let sweep = SweepConfig::rate(15, 0.7, SEED);

    // Four 2-NC tenants and one 5-NC tenant (13 of 16 cells busy);
    // NC 0 dies in round 1 (a 2-NC victim) and NC 10 in round 2 (the
    // wide tenant's territory under first-fit placement).
    let mut nets: Vec<Network> = (0..4u64)
        .map(|s| Network::random(Topology::mlp(144, &[576, 576, 10]), 50 + s, 1.0))
        .collect();
    nets.push(Network::random(
        Topology::mlp(144, &[576, 576, 576, 576, 10]),
        60,
        1.0,
    ));
    let specs: Vec<ChurnSpec> = (0..nets.len()).map(|_| ChurnSpec::new(0, 4)).collect();
    let faults = [FaultEvent::new(1, 0), FaultEvent::new(2, 10)];

    let mut rows = Vec::new();
    for policy in [
        PackingPolicy::FirstFit,
        PackingPolicy::BestFit,
        PackingPolicy::Defragment,
    ] {
        let r = fault_recovery_drill(&nets, &specs, &samples, &sweep, &pool_cfg, policy, &faults)
            .expect("every request fits the pre-fault pool");
        rows.push(vec![
            format!("{policy:?}"),
            format!("{}", r.rounds),
            format!("{} / {}", r.completed, r.aborted),
            format!("{}", r.total_interruptions),
            format!("{:.1}", r.mean_recovery_rounds),
            format!("{}", r.lost_replays),
            format!(
                "{:.0}% / {:.0}%",
                100.0 * r.utilization_before,
                100.0 * r.utilization_after
            ),
            format!(
                "{:.1}",
                r.dynamic_energy.nanojoules() / r.inferences.max(1) as f64
            ),
        ]);
    }
    format!(
        "NC-failure recovery — mid-replay faults into a scheduled pool, per policy\n\
         (4x 2-NC + 1x 5-NC tenants, 4 service rounds each on RESPARC-64; NC 0 dies\n\
         in round 1 and NC 10 in round 2; victims lose the in-flight round, re-queue\n\
         at the head and re-admit wherever healthy capacity remains)\n{}",
        fmt_table(
            &[
                "Policy",
                "Rounds",
                "Done/abort",
                "Interrupts",
                "Recovery (rds)",
                "Lost replays",
                "Util pre/post",
                "E/inf (nJ)"
            ],
            &rows
        )
    )
}

/// The serving workload shared by every `fig_serving` table: three
/// 1-NC classes with a 4:2:1 weight split and SLOs spanning tight
/// (premium) to indifferent (bulk), offered at ~3x the fabric's
/// round rate so queues form and the tail is real.
fn serving_workload() -> (Vec<Network>, Vec<ServiceClass>) {
    let nets = vec![
        Network::random(Topology::mlp(144, &[576, 576, 10]), 90, 1.0), // 2 NCs
        Network::random(Topology::mlp(144, &[96, 10]), 91, 1.0),       // 1 NC
        Network::random(Topology::mlp(144, &[576, 576, 576, 10]), 92, 1.0), // 4 NCs
    ];
    let classes = vec![
        ServiceClass::new("premium", 2, 35_000.0).with_weight(4),
        ServiceClass::new("standard", 3, 250_000.0).with_weight(2),
        ServiceClass::new("bulk", 4, 1_000_000.0).with_weight(1),
    ];
    (nets, classes)
}

/// The three arrival traces the serving tables sweep.
fn serving_traces() -> [ArrivalProcess; 3] {
    [
        ArrivalProcess::Poisson,
        ArrivalProcess::Bursty { burst: 6 },
        ArrivalProcess::Diurnal {
            period_ns: 60_000.0,
            amplitude: 0.9,
        },
    ]
}

/// Serving figure (beyond the paper): the fabric priced as an online
/// SNN inference *service* — open-loop Poisson/bursty/diurnal arrival
/// traces through the event-clock serving loop (admission control,
/// bounded-window backfilling, preemption), reporting the latency
/// distribution, goodput and SLO violations per packing policy; then
/// the SLO-adaptive bus-weight controller against the static 4:2:1
/// split on the same trace; then the partial-pool power-gating bill
/// against the always-powered baseline.
pub fn fig_serving() -> String {
    let (nets, classes) = serving_workload();
    let pool_cfg = ResparcConfig::resparc_64();
    let sweep = SweepConfig::rate(20, 0.7, SEED);
    let spec = |arrivals| ServingSpec::new(18, 3_000.0, arrivals, SEED);
    let run = |spec: &ServingSpec, policy| {
        serving_sweep(&nets, &classes, spec, &sweep, &pool_cfg, policy)
            .expect("every class fits the pool")
    };

    // --- Table 1: tail latency / goodput / SLO violations per trace
    // and packing policy.
    let mut rows = Vec::new();
    for arrivals in serving_traces() {
        for policy in [
            PackingPolicy::FirstFit,
            PackingPolicy::BestFit,
            PackingPolicy::Defragment,
        ] {
            let r = run(&spec(arrivals), policy);
            rows.push(vec![
                r.trace.into(),
                format!("{policy:?}"),
                format!("{:.2}", r.p50.microseconds()),
                format!("{:.2}", r.p95.microseconds()),
                format!("{:.2}", r.p99.microseconds()),
                format!("{:.0}", 1e-3 * r.goodput),
                format!("{:.0}%", 100.0 * r.violation_rate()),
                format!("{}", r.rounds),
            ]);
        }
    }
    let slos = fmt_table(
        &[
            "Trace", "Policy", "p50 us", "p95 us", "p99 us", "Good/ms", "Viol", "Rounds",
        ],
        &rows,
    );

    // --- Table 2: the SLO-adaptive controller vs the static 4:2:1
    // weights on the identical bursty trace. The bus is
    // work-conserving, so rounds/energy match bit for bit and the
    // controller can only redistribute waiting toward the SLO.
    let bursty = spec(ArrivalProcess::Bursty { burst: 6 });
    let static_run = run(&bursty, PackingPolicy::FirstFit);
    let adaptive_run = run(
        &bursty
            .clone()
            .with_qos(QosPolicy::Adaptive { max_weight: 64 }),
        PackingPolicy::FirstFit,
    );
    let rows: Vec<Vec<String>> = static_run
        .classes
        .iter()
        .zip(&adaptive_run.classes)
        .map(|(s, a)| {
            vec![
                s.name.clone(),
                format!("{} -> {}", s.final_weight, a.final_weight),
                format!("{:.2}", s.p99.microseconds()),
                format!("{:.2}", a.p99.microseconds()),
                format!("{}", s.slo_violations),
                format!("{}", a.slo_violations),
            ]
        })
        .collect();
    let controller = format!(
        "SLO-adaptive QoS — static 4:2:1 weights vs the feedback controller, same\n\
         bursty trace (work-conserving bus: both runs take {} rounds and the same\n\
         energy; the controller only moves who waits)\n{}",
        static_run.rounds,
        fmt_table(
            &[
                "Class",
                "Weight (static -> adaptive)",
                "p99 us (static)",
                "p99 us (adaptive)",
                "Viol (static)",
                "Viol (adaptive)"
            ],
            &rows
        )
    );

    // --- Table 3: partial-pool power gating vs the always-powered
    // pool, per trace (deeper idle troughs -> bigger saving).
    let mut rows = Vec::new();
    for arrivals in serving_traces() {
        let gated = run(&spec(arrivals), PackingPolicy::FirstFit);
        rows.push(vec![
            gated.trace.into(),
            format!(
                "{:.0}%",
                100.0 * gated.busy_time.nanoseconds() / gated.makespan.nanoseconds()
            ),
            format!("{:.1}", gated.gated_idle_leakage.nanojoules()),
            format!("{:.1}", gated.ungated_idle_leakage.nanojoules()),
            format!("{:.1}", gated.pool_energy().nanojoules()),
            format!("{:.1}", gated.ungated_pool_energy().nanojoules()),
            format!("{:.0}%", 100.0 * gated.gating_saving()),
        ]);
    }
    let gating = format!(
        "Partial-pool power gating — idle NCs billed at 10% leakage vs always-on\n\
         (identical schedules and dynamic energy; the ungated column is the same\n\
         run's counterfactual always-powered bill, and a gating factor of 1.0\n\
         reproduces it bit-identically)\n{}",
        fmt_table(
            &[
                "Trace",
                "Busy",
                "Idle leak nJ (gated)",
                "Idle leak nJ (ungated)",
                "Bill nJ (gated)",
                "Bill nJ (ungated)",
                "Saving"
            ],
            &rows
        )
    );

    format!(
        "Online serving — open-loop traffic on one RESPARC-64 pool\n\
         (premium/standard/bulk classes of 2/1/4-NC MLPs at 4:2:1 weights, SLOs\n\
         35/250/1000 us, 18 requests at a ~3 us mean gap, 20-step rounds,\n\
         event-clock loop with a 4-round backfill window; seeds fixed,\n\
         bit-reproducible)\n{slos}\n{controller}\n{gating}"
    )
}

/// Every figure in order, as `(name, text)` pairs.
pub fn all_figures() -> Vec<(&'static str, String)> {
    vec![
        ("fig08", fig08()),
        ("fig09", fig09()),
        ("fig10", fig10()),
        ("fig11", fig11()),
        ("fig12", fig12()),
        ("fig13", fig13()),
        ("fig14a", fig14a()),
        ("fig14b", fig14b()),
        ("fig_encoding", fig_encoding()),
        ("fig_tenancy", fig_tenancy()),
        ("fig_packing", fig_packing()),
        ("fig_resilience", fig_resilience()),
        ("fig_serving", fig_serving()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_reports_paper_metrics() {
        let s = fig08();
        assert!(s.contains("0.29 mm^2"));
        assert!(s.contains("53.2 mW"));
        assert!(s.contains("200 MHz"));
        assert!(s.contains("16 (9)"));
    }

    #[test]
    fn fig09_reports_paper_metrics() {
        let s = fig09();
        assert!(s.contains("0.19 mm^2"));
        assert!(s.contains("35.1 mW"));
        assert!(s.contains("1 GHz"));
    }

    #[test]
    fn fig10_has_all_six_benchmarks() {
        let s = fig10();
        for name in ["MNIST", "SVHN", "CIFAR-10"] {
            assert!(s.contains(name), "{name} missing");
        }
        assert!(s.contains("66778"));
        assert!(s.contains("231066"));
    }

    #[test]
    fn fig11_shape_mlp_beats_cnn() {
        // The headline result: MLP gains far exceed CNN gains on both
        // axes.
        let mlp = run_pair(&resparc_suite::resparc_workloads::mnist_mlp(), 64, true);
        let cnn = run_pair(&resparc_suite::resparc_workloads::mnist_cnn(), 64, true);
        assert!(mlp.energy_gain > 100.0, "MLP gain {}", mlp.energy_gain);
        assert!(
            (3.0..60.0).contains(&cnn.energy_gain),
            "CNN gain {}",
            cnn.energy_gain
        );
        assert!(mlp.energy_gain > 5.0 * cnn.energy_gain);
        assert!(mlp.speedup > cnn.speedup);
        assert!(cnn.speedup > 10.0);
    }

    #[test]
    fn fig12_shape_mlp_monotone_cnn_flattens_past_64() {
        // Fig. 12(a): MLP energy falls monotonically with MCA size, with
        // a substantial gain at every step. Fig. 12(c): CNNs gain a lot
        // from 32->64 but "an increase in MCA size from 64 to 128 does
        // not result in a corresponding decrease" -- under-utilization
        // eats the benefit (our activity-gated device model flattens
        // rather than upticks at 128; see EXPERIMENTS.md).
        let b = resparc_suite::resparc_workloads::mnist_mlp();
        let e: Vec<f64> = [32usize, 64, 128]
            .iter()
            .map(|&m| run_pair(&b, m, true).resparc.total_energy().picojoules())
            .collect();
        assert!(e[0] > e[1] && e[1] > e[2], "MLP energies {e:?}");
        let mlp_step2_gain = 1.0 - e[2] / e[1];
        assert!(mlp_step2_gain > 0.3, "MLP 64->128 gain {mlp_step2_gain}");

        let c = resparc_suite::resparc_workloads::mnist_cnn();
        let e: Vec<f64> = [32usize, 64, 128]
            .iter()
            .map(|&m| run_pair(&c, m, true).resparc.total_energy().picojoules())
            .collect();
        assert!(e[1] < 0.6 * e[0], "CNN 64 must strongly beat 32: {e:?}");
        let cnn_step2_gain = 1.0 - e[2] / e[1];
        assert!(
            cnn_step2_gain < mlp_step2_gain,
            "CNN 64->128 gain {cnn_step2_gain} must flatten vs MLP {mlp_step2_gain}"
        );
    }

    #[test]
    fn fig13_shape_event_driven_saves_more_on_small_mcas_and_mlp() {
        let saving = |b: &Benchmark, mca: usize| {
            let w = run_pair(b, mca, true).resparc.total_energy().picojoules();
            let wo = run_pair(b, mca, false).resparc.total_energy().picojoules();
            1.0 - w / wo
        };
        let mlp = resparc_suite::resparc_workloads::mnist_mlp();
        let cnn = resparc_suite::resparc_workloads::mnist_cnn();
        let s32 = saving(&mlp, 32);
        let s128 = saving(&mlp, 128);
        assert!(s32 > s128, "MLP: 32 saves {s32}, 128 saves {s128}");
        assert!(
            saving(&mlp, 64) > saving(&cnn, 64),
            "MLP should save more than CNN"
        );
        assert!(s32 > 0.0);
    }

    #[test]
    fn fig_serving_controller_beats_static_for_premium() {
        // The acceptance bar for the SLO controller: on the identical
        // bursty trace it must demonstrably reduce p99 or the violation
        // count for the prioritized class vs the static 4:2:1 weights,
        // while the work-conserving bus keeps the schedule and energy
        // bit-identical.
        let (nets, classes) = serving_workload();
        let pool_cfg = ResparcConfig::resparc_64();
        let sweep = SweepConfig::rate(20, 0.7, SEED);
        let spec = ServingSpec::new(18, 3_000.0, ArrivalProcess::Bursty { burst: 6 }, SEED);
        let run = |spec: &ServingSpec| {
            serving_sweep(
                &nets,
                &classes,
                spec,
                &sweep,
                &pool_cfg,
                PackingPolicy::FirstFit,
            )
            .expect("classes fit")
        };
        let static_run = run(&spec);
        let adaptive = run(&spec
            .clone()
            .with_qos(QosPolicy::Adaptive { max_weight: 64 }));

        assert_eq!(adaptive.rounds, static_run.rounds);
        assert_eq!(adaptive.dynamic_energy, static_run.dynamic_energy);
        assert_eq!(adaptive.makespan, static_run.makespan);
        let s = &static_run.classes[0];
        let a = &adaptive.classes[0];
        assert!(a.p99 <= s.p99 && a.slo_violations <= s.slo_violations);
        assert!(
            a.p99 < s.p99 || a.slo_violations < s.slo_violations,
            "controller must improve premium: static p99 {:?} viol {} vs adaptive p99 {:?} viol {}",
            s.p99,
            s.slo_violations,
            a.p99,
            a.slo_violations
        );
    }

    #[test]
    fn fig_packing_optimizer_strictly_wins_and_gates_cleanly() {
        // The acceptance bar: at least one fragmented/heterogeneous
        // shape where Optimized strictly beats Greedy on admits or
        // utilization, surfaced as exact machine-independent counters
        // for the CI ratio gate.
        let report = packing_report();
        assert!(report.has_strict_win());
        assert!(report.optimized_admitted() > report.greedy_admitted());
        for row in &report.rows {
            assert!(
                row.optimized.admitted >= row.greedy.admitted,
                "{}",
                row.shape
            );
        }
        let json = packing_quality_json();
        assert!(json.contains("packing_quality/greedy_admitted"));
        assert!(json.contains("packing_quality/optimized_admitted"));
        let rendered = fig_packing();
        assert!(rendered.contains("16x64 fragmented"));
        assert!(rendered.contains("4x64+2x32 mixed"));
    }

    #[test]
    fn fig14b_shape_resparc_flat_cmos_growing() {
        let b = resparc_suite::resparc_workloads::mnist_mlp();
        let profile = b.activity_profile(&WIDTHS, SEED);
        let cmos = |bits: u32| {
            CmosSimulator::new(CmosConfig::paper_baseline().with_weight_bits(bits))
                .run(&b.topology, &profile)
                .total_energy()
                .picojoules()
        };
        assert!(cmos(8) > cmos(4) && cmos(4) > cmos(2) && cmos(2) > cmos(1));
        // RESPARC: level count does not change analog read energy.
        let resparc = |bits: u32| {
            let mut cfg = ResparcConfig::resparc_64();
            cfg.mca_levels = 1 << bits;
            let m = Mapper::new(cfg).map(&b.topology).unwrap();
            Simulator::new(&m).run(&profile).total_energy().picojoules()
        };
        let r1 = resparc(1);
        let r8 = resparc(8);
        assert!(
            (r1 / r8 - 1.0).abs() < 0.01,
            "RESPARC not flat: {r1} vs {r8}"
        );
    }
}
