//! Criterion benches over the hot paths of the reproduction: crossbar
//! analog reads, mapping, both architecture simulators, the functional
//! SNN and the spike-accurate hardware cosim — plus the compiled-kernel
//! vs closure-walk groups (`snn_step`, `forward_batch`, `accuracy_sweep`)
//! that track the batched-inference speedup. See the repository's
//! `BENCHMARKS.md` for how to run them and read the emitted
//! `BENCH_*.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use resparc_suite::prelude::*;
use resparc_suite::resparc_neuro::network::reference;

fn bench_crossbar_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_mvm");
    for size in [32usize, 64, 128] {
        let mut xbar = Crossbar::new(size, MemristorSpec::paper_default(), 16);
        let synapses: Vec<(usize, usize, f64)> = (0..size * size)
            .map(|i| (i / size, i % size, ((i % 13) as f64 / 13.0) - 0.5))
            .collect();
        xbar.program(&synapses).unwrap();
        let spikes: Vec<bool> = (0..size).map(|i| i % 3 == 0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(xbar.read(black_box(&spikes))))
        });
    }
    group.finish();
}

fn bench_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper");
    group.sample_size(10);
    let mlp = resparc_suite::resparc_workloads::mnist_mlp().topology;
    group.bench_function("mnist_mlp_64", |b| {
        b.iter(|| {
            Mapper::new(ResparcConfig::resparc_64())
                .map(black_box(&mlp))
                .unwrap()
        })
    });
    let cnn = resparc_suite::resparc_workloads::mnist_cnn().topology;
    group.bench_function("mnist_cnn_64", |b| {
        b.iter(|| {
            Mapper::new(ResparcConfig::resparc_64())
                .map(black_box(&cnn))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_resparc_sim(c: &mut Criterion) {
    let bench = resparc_suite::resparc_workloads::mnist_mlp();
    let mapping = Mapper::new(ResparcConfig::resparc_64())
        .map(&bench.topology)
        .unwrap();
    let profile = bench.activity_profile(&[16, 32, 64, 128], 7);
    c.bench_function("resparc_sim_mnist_mlp", |b| {
        b.iter(|| Simulator::new(black_box(&mapping)).run(black_box(&profile)))
    });
}

fn bench_cmos_sim(c: &mut Criterion) {
    let bench = resparc_suite::resparc_workloads::mnist_mlp();
    let profile = bench.activity_profile(&[16, 32, 64, 128], 7);
    let sim = CmosSimulator::new(CmosConfig::paper_baseline());
    c.bench_function("cmos_sim_mnist_mlp", |b| {
        b.iter(|| sim.run(black_box(&bench.topology), black_box(&profile)))
    });
}

fn bench_functional_snn(c: &mut Criterion) {
    let net = Network::random(Topology::mlp(256, &[128, 10]), 3, 1.0);
    let enc = RegularEncoder::new(0.5);
    let stimulus: Vec<f32> = (0..256).map(|i| (i % 11) as f32 / 11.0).collect();
    let raster = enc.encode(&stimulus, 20);
    c.bench_function("functional_snn_20steps", |b| {
        b.iter(|| {
            let mut runner = net.spiking();
            black_box(runner.run(black_box(&raster)))
        })
    });
}

fn bench_hw_cosim(c: &mut Criterion) {
    let net = Network::random(Topology::mlp(64, &[32, 8]), 5, 1.0);
    let mut cfg = ResparcConfig::with_mca_size(32);
    cfg.mca_levels = 1 << 12;
    let mapping = Mapper::new(cfg).with_details().map_network(&net).unwrap();
    let mut enc = PoissonEncoder::new(0.3, 1);
    let stimulus: Vec<f32> = (0..64).map(|i| (i % 5) as f32 / 5.0).collect();
    let raster = enc.encode(&stimulus, 10);
    c.bench_function("hw_cosim_10steps", |b| {
        b.iter(|| {
            let mut hw = HwCore::build(&net, &mapping).unwrap();
            for step in raster.iter() {
                black_box(hw.step(step));
            }
        })
    });
}

/// The paper's MNIST MLP (784-800-800-768-10) with random weights: the
/// workload of the compiled-kernel vs closure-walk groups below.
fn mnist_mlp_net() -> Network {
    Network::random(
        resparc_suite::resparc_workloads::mnist_mlp().topology,
        3,
        1.0,
    )
}

/// One spiking timestep on the full MNIST MLP: compiled kernels (dense
/// transposed weight rows) vs the seed's closure-walk CSR with weight-id
/// indirection.
fn bench_snn_step(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let stimulus: Vec<f32> = (0..784).map(|i| (i % 9) as f32 / 9.0).collect();
    let mut enc = PoissonEncoder::new(0.3, 5);
    let raster = enc.encode(&stimulus, 1);
    let step = raster.step(0);

    let mut group = c.benchmark_group("snn_step");
    group.sample_size(10);
    let mut compiled = net.spiking();
    group.bench_function("compiled", |b| {
        b.iter(|| black_box(compiled.step(black_box(step)).count_ones()))
    });
    let mut oracle = reference::RefSnnRunner::new(&net);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(oracle.step(black_box(step)).count_ones()))
    });
    group.finish();
}

/// 64-stimulus analog forward on the MNIST MLP: one batched call on the
/// shared compiled kernels vs looping the closure-walk single-stimulus
/// path.
fn bench_forward_batch(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let stimuli: Vec<Vec<f32>> = (0..64)
        .map(|s| {
            (0..784)
                .map(|i| ((s * 13 + i) % 11) as f32 / 11.0)
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("forward_batch");
    group.sample_size(10);
    group.bench_function("batched_compiled_64", |b| {
        b.iter(|| black_box(net.forward_analog_batch(black_box(&stimuli))))
    });
    group.bench_function("looped_reference_64", |b| {
        b.iter(|| {
            for x in &stimuli {
                black_box(reference::forward_analog(&net, black_box(x)));
            }
        })
    });
    group.finish();
}

/// The acceptance workload: a 64-stimulus MNIST-MLP spiking accuracy
/// sweep. `batched_compiled` runs `Network::spiking_batch` (one synapse
/// enumeration shared by every stimulus); `looped_reference` re-creates
/// the seed's runner — re-enumerating the whole synapse structure — per
/// stimulus, exactly as the pre-compiled-kernel code had to.
fn bench_accuracy_sweep(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let mut enc = PoissonEncoder::new(0.4, 11);
    let rasters: Vec<SpikeRaster> = (0..64)
        .map(|s| {
            let x: Vec<f32> = (0..784).map(|i| ((s * 7 + i) % 13) as f32 / 13.0).collect();
            enc.encode(&x, 20)
        })
        .collect();

    let mut group = c.benchmark_group("accuracy_sweep");
    group.sample_size(10);
    group.bench_function("batched_compiled_64x20", |b| {
        b.iter(|| black_box(net.spiking_batch(black_box(&rasters))))
    });
    group.bench_function("looped_reference_64x20", |b| {
        b.iter(|| {
            for raster in &rasters {
                let mut runner = reference::RefSnnRunner::new(&net);
                black_box(runner.run(black_box(raster)));
            }
        })
    });
    group.finish();
}

/// Batch placement on the fragmented fig_packing shape: the greedy
/// decode (one sequential admit pass) vs the annealing search at a
/// 64-schedule budget. Probes are pre-mapped — this times placement,
/// not partitioning.
fn bench_packing(c: &mut Criterion) {
    let sized = |layers: usize| {
        let mut hidden = vec![576usize; layers];
        hidden.push(10);
        Topology::mlp(144, &hidden)
    };
    // Residents pin runs so evicting two leaves holes of 4 and 2 NCs.
    let mut pool = FabricPool::new(ResparcConfig::resparc_64());
    let plan = [(2usize, true), (3, false), (4, true), (2, false), (1, true)];
    let mut evictions = Vec::new();
    for (k, &(layers, keep)) in plan.iter().enumerate() {
        let id = pool
            .admit_topology(&sized(layers), &format!("r{k}"))
            .unwrap();
        if !keep {
            evictions.push(id);
        }
    }
    for id in evictions {
        pool.evict(id);
    }
    let requests: Vec<PlacementRequest> = [2usize, 3]
        .iter()
        .enumerate()
        .map(|(k, &layers)| {
            PlacementRequest::from_topology(&pool, &sized(layers), &format!("b{k}")).unwrap()
        })
        .collect();

    let mut group = c.benchmark_group("packing");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(
                BatchPlacer::new(PlacementStrategy::Greedy)
                    .place(black_box(&pool), black_box(&requests)),
            )
        })
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            black_box(
                BatchPlacer::new(PlacementStrategy::Optimized)
                    .with_iterations(64)
                    .place(black_box(&pool), black_box(&requests)),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crossbar_mvm, bench_mapper, bench_resparc_sim, bench_cmos_sim, bench_functional_snn, bench_hw_cosim, bench_snn_step, bench_forward_batch, bench_accuracy_sweep, bench_packing
}
criterion_main!(benches);
