//! Criterion benches of the trace-driven energy path: capturing a
//! [`SpikeTrace`] from the functional SNN, replaying it through the
//! mapped fabric's event simulator, and the combined
//! accuracy-plus-energy sweep — with the stationary analytic simulator
//! alongside as the fast-path reference. Emits `BENCH_trace_energy.json`
//! (see `BENCHMARKS.md`), which the `bench_gate` binary compares against
//! `bench/baseline.json` in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use resparc_suite::prelude::*;

const STEPS: usize = 20;

/// The paper's MNIST MLP (784-800-800-768-10) with random weights — the
/// same workload as the `snn_step`/`accuracy_sweep` groups.
fn mnist_mlp_net() -> Network {
    Network::random(
        resparc_suite::resparc_workloads::mnist_mlp().topology,
        3,
        1.0,
    )
}

fn mnist_stimulus() -> Vec<f32> {
    (0..784).map(|i| (i % 9) as f32 / 9.0).collect()
}

/// Capturing a 20-step trace on the compiled kernels (the recorder's
/// overhead on top of a plain spiking run).
fn bench_capture_trace(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let mut enc = PoissonEncoder::new(0.4, 5);
    let raster = enc.encode(&mnist_stimulus(), STEPS);
    let mut group = c.benchmark_group("trace_capture");
    group.sample_size(10);
    group.bench_function("mnist_mlp_20steps", |b| {
        b.iter(|| {
            let mut runner = net.spiking();
            black_box(runner.run_traced(black_box(&raster)))
        })
    });
    group.finish();
}

/// Replaying a captured trace through the event simulator vs one
/// stationary analytic run on the same mapping — the cost of per-packet
/// fidelity over the closed-form expectation.
///
/// `event_mnist_mlp_20steps` is pinned to the scalar **reference**
/// engine: it is the denominator of the machine-independent
/// `event_replay_plan/... = event_replay/...` CI ratio gate, so it must
/// keep measuring the row-walk whatever the library default is.
fn bench_event_replay(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let mut enc = PoissonEncoder::new(0.4, 5);
    let raster = enc.encode(&mnist_stimulus(), STEPS);
    let (_, trace) = net.spiking().run_traced(&raster);
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(STEPS as u32))
        .map_network(&net)
        .unwrap();
    let profile = trace.to_profile(&[16, 32, 64, 128]);

    let mut group = c.benchmark_group("event_replay");
    group.sample_size(10);
    group.bench_function("event_mnist_mlp_20steps", |b| {
        b.iter(|| {
            black_box(
                EventSimulator::with_engine(black_box(&mapping), ReplayEngine::Reference)
                    .run(black_box(&trace)),
            )
        })
    });
    group.bench_function("stationary_mnist_mlp", |b| {
        b.iter(|| black_box(Simulator::new(black_box(&mapping)).run(black_box(&profile))))
    });
    group.finish();

    // The compiled word-level plan engine on the identical trace and
    // mapping. The plan is compiled (and cached on the mapping) before
    // timing starts, mirroring how a long-lived mapping amortises it.
    let _ = mapping.replay_plan();
    let mut group = c.benchmark_group("event_replay_plan");
    group.sample_size(10);
    group.bench_function("event_mnist_mlp_20steps", |b| {
        b.iter(|| {
            black_box(
                EventSimulator::with_engine(black_box(&mapping), ReplayEngine::Plan)
                    .run(black_box(&trace)),
            )
        })
    });
    group.finish();
}

/// The rebar-style engine barometer's criterion face: every replay
/// engine (stationary analytic, scalar reference, word-level plan) over
/// two poles of the shared corpus — the dense rate trace and the sparse
/// TTFS trace. One comparable id per engine×workload; the full
/// five-trace corpus with JSON rows lives in the `barometer` binary
/// (`cargo run --release -p resparc-bench --bin barometer`).
fn bench_barometer(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(STEPS as u32))
        .map_network(&net)
        .unwrap();
    let _ = mapping.replay_plan();
    let stimulus = mnist_stimulus();
    let dense_raster = PoissonEncoder::new(0.8, 5).encode(&stimulus, STEPS);
    let ttfs_raster = TtfsEncoder::new().encode(&stimulus, STEPS);
    let corpus = [
        ("dense_rate", net.spiking().run_traced(&dense_raster).1),
        ("ttfs", net.spiking().run_traced(&ttfs_raster).1),
    ];

    let mut group = c.benchmark_group("barometer");
    group.sample_size(10);
    for (workload, trace) in &corpus {
        let profile = trace.to_profile(&[16, 32, 64, 128]);
        group.bench_function(format!("stationary_{workload}").as_str(), |b| {
            b.iter(|| black_box(Simulator::new(black_box(&mapping)).run(black_box(&profile))))
        });
        for engine in [ReplayEngine::Reference, ReplayEngine::Plan] {
            group.bench_function(format!("{}_{workload}", engine.name()).as_str(), |b| {
                b.iter(|| {
                    black_box(
                        EventSimulator::with_engine(black_box(&mapping), engine)
                            .run(black_box(trace)),
                    )
                })
            });
        }
    }
    group.finish();
}

/// The full workloads-API sweep: 8 stimuli encoded, traced and replayed
/// in one batched rayon-parallel call (accuracy + energy per inference).
fn bench_trace_energy_sweep(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(STEPS as u32))
        .map_network(&net)
        .unwrap();
    let samples: Vec<(Vec<f32>, usize)> = (0..8)
        .map(|s| {
            let x: Vec<f32> = (0..784).map(|i| ((s * 7 + i) % 13) as f32 / 13.0).collect();
            (x, s % 10)
        })
        .collect();
    let cfg = SweepConfig::rate(STEPS, 0.4, 11);
    let mut group = c.benchmark_group("energy_sweep");
    group.sample_size(10);
    group.bench_function("mnist_mlp_8x20", |b| {
        b.iter(|| {
            black_box(trace_energy_sweep(
                black_box(&net),
                black_box(&mapping),
                black_box(&samples),
                &cfg,
            ))
        })
    });
    group.finish();
}

/// The encoding comparison sweep: the same 4 labelled stimuli encoded,
/// traced and replayed under rate, TTFS and burst coding — one id per
/// scheme, so the per-code event-replay cost (TTFS traces are far
/// sparser than rate traces) is tracked individually.
fn bench_encoding_sweep(c: &mut Criterion) {
    let net = mnist_mlp_net();
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(STEPS as u32))
        .map_network(&net)
        .unwrap();
    let samples: Vec<(Vec<f32>, usize)> = (0..4)
        .map(|s| {
            let x: Vec<f32> = (0..784).map(|i| ((s * 7 + i) % 13) as f32 / 13.0).collect();
            (x, s % 10)
        })
        .collect();
    let cfg = SweepConfig::rate(STEPS, 0.4, 11);
    let mut group = c.benchmark_group("encoding_sweep");
    group.sample_size(10);
    for encoding in [
        Encoding::Rate,
        Encoding::Ttfs,
        Encoding::Burst {
            max_burst: 5,
            gap: 2,
        },
    ] {
        group.bench_function(format!("{}_4x{STEPS}", encoding.label()).as_str(), |b| {
            b.iter(|| {
                black_box(trace_energy_sweep(
                    black_box(&net),
                    black_box(&mapping),
                    black_box(&samples),
                    &cfg.with_encoding(encoding),
                ))
            })
        });
    }
    group.finish();
}

/// Multi-tenant replay: three small MLP tenants' traces through one
/// shared pool (`shared_replay`, one `SharedEventSimulator::run`) vs the
/// same three traces replayed one-by-one on dedicated mappings
/// (`serial_replay`). The pair feeds the machine-independent
/// `shared_replay=serial_replay` ratio gate in CI: shared replay does
/// strictly more bookkeeping per call (per-tenant splits, contention
/// interleave), so its cost must stay a bounded multiple of the serial
/// walk whatever the runner hardware.
fn bench_multi_tenant(c: &mut Criterion) {
    let nets: Vec<Network> = (0..3)
        .map(|s| Network::random(Topology::mlp(144, &[96, 10]), 70 + s, 1.0))
        .collect();
    let stimulus: Vec<f32> = (0..144).map(|i| (i % 9) as f32 / 9.0).collect();
    let traces: Vec<SpikeTrace> = nets
        .iter()
        .map(|net| {
            let mut enc = PoissonEncoder::new(0.5, 7);
            let raster = enc.encode(&stimulus, STEPS);
            net.spiking().run_traced(&raster).1
        })
        .collect();

    let cfg = ResparcConfig::resparc_64().with_timesteps(STEPS as u32);
    let mut pool = FabricPool::new(cfg.clone());
    let ids: Vec<TenantId> = nets
        .iter()
        .enumerate()
        .map(|(i, net)| pool.admit(net, &format!("t{i}")).expect("fits"))
        .collect();
    let pairs: Vec<(TenantId, &SpikeTrace)> = ids.iter().copied().zip(traces.iter()).collect();
    let mappings: Vec<Mapping> = nets
        .iter()
        .map(|net| Mapper::new(cfg.clone()).map_network(net).expect("valid"))
        .collect();

    let mut group = c.benchmark_group("multi_tenant");
    group.sample_size(10);
    group.bench_function("shared_replay", |b| {
        b.iter(|| black_box(SharedEventSimulator::new(black_box(&pool)).run(black_box(&pairs))))
    });
    // The weighted-QoS path: same pool and traces, 3:2:1 arbitration.
    // Gated against shared_replay as a ratio in CI — the per-tenant
    // stall/latency bookkeeping must stay a bounded multiple of the
    // fair replay whatever the runner hardware.
    group.bench_function("weighted_replay", |b| {
        b.iter(|| {
            black_box(
                SharedEventSimulator::new(black_box(&pool))
                    .run_weighted(black_box(&pairs), &[3, 2, 1]),
            )
        })
    });
    group.bench_function("serial_replay", |b| {
        b.iter(|| {
            for (mapping, trace) in mappings.iter().zip(&traces) {
                black_box(EventSimulator::new(black_box(mapping)).run(black_box(trace)));
            }
        })
    });
    // Scheduler-driven churn: the same three tenants submitted to a
    // FabricScheduler and drained over two service rounds each —
    // admission (placement translation), weighted replay, and
    // departure-driven eviction per round. The base scheduler is built
    // once (probes mapped at submit); each iteration clones it so the
    // measured loop is the churn machinery, not the mapper.
    let mut base = FabricScheduler::new(FabricPool::new(cfg.clone()));
    for (i, net) in nets.iter().enumerate() {
        base.submit(net, &format!("t{i}"), 2, (i + 1) as u32)
            .expect("maps");
    }
    group.bench_function("churn_replay", |b| {
        b.iter(|| {
            let mut sched = base.clone();
            while !sched.is_idle() {
                let residents = sched.begin_round();
                let round_pairs: Vec<(TenantId, &SpikeTrace)> = residents
                    .iter()
                    .map(|st| (st.tenant, &traces[st.request.index() as usize]))
                    .collect();
                let weights: Vec<u32> = residents.iter().map(|st| st.weight).collect();
                black_box(
                    SharedEventSimulator::new(sched.pool()).run_weighted(&round_pairs, &weights),
                );
                sched.end_round();
            }
            black_box(sched.completed().len())
        })
    });
    group.finish();
}

/// The online serving loop end to end: open-loop arrivals through the
/// event-clock scheduler (admission, backfill, weighted replay, gated
/// idle billing). `poisson_light` is three 1-NC classes under a steady
/// trace — CI gates its cost as a ratio against
/// `multi_tenant/churn_replay`, the raw round-driven replay it wraps,
/// so the serving layer's bookkeeping stays a bounded multiple of the
/// scheduling core. `bursty_heavy` is the mixed 1/2/4-NC workload under
/// an 6-deep burst trace with the adaptive controller and preemption
/// enabled — the worst-case path, tracked without a tight gate.
fn bench_serving(c: &mut Criterion) {
    let pool_cfg = ResparcConfig::resparc_64();
    let sweep = SweepConfig::rate(STEPS, 0.7, 7);

    let light_nets: Vec<Network> = (0..3)
        .map(|s| Network::random(Topology::mlp(144, &[96, 10]), 70 + s, 1.0))
        .collect();
    let light_classes = vec![
        ServiceClass::new("a", 2, 50_000.0).with_weight(4),
        ServiceClass::new("b", 2, 100_000.0).with_weight(2),
        ServiceClass::new("c", 2, 200_000.0),
    ];
    let light_spec = ServingSpec::new(9, 3_000.0, ArrivalProcess::Poisson, 7);

    let heavy_nets = vec![
        Network::random(Topology::mlp(144, &[576, 576, 10]), 90, 1.0),
        Network::random(Topology::mlp(144, &[96, 10]), 91, 1.0),
        Network::random(Topology::mlp(144, &[576, 576, 576, 10]), 92, 1.0),
    ];
    let heavy_classes = vec![
        ServiceClass::new("premium", 2, 35_000.0).with_weight(4),
        ServiceClass::new("standard", 3, 250_000.0).with_weight(2),
        ServiceClass::new("bulk", 4, 1_000_000.0),
    ];
    let heavy_spec = ServingSpec::new(18, 3_000.0, ArrivalProcess::Bursty { burst: 6 }, 7)
        .with_qos(QosPolicy::Adaptive { max_weight: 64 })
        .with_preemption(8.0);

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("poisson_light", |b| {
        b.iter(|| {
            black_box(serving_sweep(
                black_box(&light_nets),
                &light_classes,
                &light_spec,
                &sweep,
                &pool_cfg,
                PackingPolicy::FirstFit,
            ))
        })
    });
    group.bench_function("bursty_heavy", |b| {
        b.iter(|| {
            black_box(serving_sweep(
                black_box(&heavy_nets),
                &heavy_classes,
                &heavy_spec,
                &sweep,
                &pool_cfg,
                PackingPolicy::BestFit,
            ))
        })
    });
    group.finish();
}

/// Fault-injected replay: `clean_plan` replays the trace captured from
/// kernels passed through an *empty* [`FaultPlan`] — by the bit-identity
/// contract that trace equals the plain one, so CI gates
/// `fault_replay/clean_plan = event_replay/event_mnist_mlp_20steps`
/// at a tight (<5%) ratio threshold: the fault path must cost nothing
/// when no fault is configured. `stuck_at_2pct` replays the trace from a
/// 2% stuck-at plan — damaged weights change spike traffic, so this id
/// tracks the faulted replay's cost without a tight gate.
fn bench_fault_replay(c: &mut Criterion) {
    use std::sync::Arc;

    let net = mnist_mlp_net();
    let mut enc = PoissonEncoder::new(0.4, 5);
    let raster = enc.encode(&mnist_stimulus(), STEPS);
    let mapping = Mapper::new(ResparcConfig::resparc_64().with_timesteps(STEPS as u32))
        .map_network(&net)
        .unwrap();
    let clean = Arc::new(net.compiled().with_faults(&FaultPlan::none()));
    let (_, clean_trace) = SnnRunner::from_compiled(clean).run_traced(&raster);
    let damaged = Arc::new(net.compiled().with_faults(&FaultPlan::stuck_at(13, 0.02)));
    let (_, damaged_trace) = SnnRunner::from_compiled(damaged).run_traced(&raster);

    let mut group = c.benchmark_group("fault_replay");
    group.sample_size(10);
    group.bench_function("clean_plan", |b| {
        b.iter(|| black_box(EventSimulator::new(black_box(&mapping)).run(black_box(&clean_trace))))
    });
    group.bench_function("stuck_at_2pct", |b| {
        b.iter(|| {
            black_box(EventSimulator::new(black_box(&mapping)).run(black_box(&damaged_trace)))
        })
    });
    group.finish();
}

criterion_group! {
    name = trace_energy;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_capture_trace, bench_event_replay, bench_barometer, bench_trace_energy_sweep, bench_encoding_sweep, bench_multi_tenant, bench_serving, bench_fault_replay
}
criterion_main!(trace_energy);
