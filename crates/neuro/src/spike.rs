//! Bit-packed spike vectors, spike rasters and the packet statistics that
//! drive RESPARC's event-driven optimisations.
//!
//! Spikes are binary (paper §2.1), so a population's activity in one
//! timestep is a bit vector ([`SpikeVector`]) and a full stimulus is a
//! raster of those over time ([`SpikeRaster`]). RESPARC moves spikes in
//! fixed-width *packets*; a packet whose bits are all zero is suppressed by
//! the zero-check logic (§3.2), so the fraction of all-zero windows at a
//! given width ([`SpikeRaster::zero_packet_fraction`]) is exactly the
//! statistic the architecture exploits in Fig. 13.
//!
//! The raster stores every timestep in **one contiguous word arena**
//! (`steps × stride` u64 words, `stride = neurons.div_ceil(64)`), so
//! capturing a step is a word copy, truncation is a slice copy, and a
//! timestep is read through a borrowed [`SpikeView`] without allocating.
//! Window tests (`window_is_zero`, `window_count_ones`) are word-masked:
//! mask the head and tail words, popcount the middle.

use std::fmt;

/// Invariant shared by [`SpikeVector`] and [`SpikeView`]: `words` holds
/// `len.div_ceil(64)` little-endian words and every bit at index ≥ `len`
/// is zero. All helpers below rely on that tail-zero invariant.
#[inline]
fn word_get(words: &[u64], len: usize, i: usize) -> bool {
    assert!(i < len, "spike index {i} out of bounds ({len})");
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Word-masked popcount of bits `[start, start+width)`, clamped to `len`.
#[inline]
fn word_window_count(words: &[u64], len: usize, start: usize, width: usize) -> u64 {
    let end = (start + width).min(len);
    if start >= end {
        return 0;
    }
    let first = start / 64;
    let last = (end - 1) / 64;
    let head = u64::MAX << (start % 64);
    let tail = u64::MAX >> (63 - (end - 1) % 64);
    if first == last {
        (words[first] & head & tail).count_ones() as u64
    } else {
        let mut total = (words[first] & head).count_ones() as u64;
        for &w in &words[first + 1..last] {
            total += w.count_ones() as u64;
        }
        total + (words[last] & tail).count_ones() as u64
    }
}

/// Word-masked zero test of bits `[start, start+width)`, clamped to `len`.
#[inline]
fn word_window_is_zero(words: &[u64], len: usize, start: usize, width: usize) -> bool {
    let end = (start + width).min(len);
    if start >= end {
        return true;
    }
    let first = start / 64;
    let last = (end - 1) / 64;
    let head = u64::MAX << (start % 64);
    let tail = u64::MAX >> (63 - (end - 1) % 64);
    if first == last {
        words[first] & head & tail == 0
    } else {
        words[first] & head == 0
            && words[last] & tail == 0
            && words[first + 1..last].iter().all(|&w| w == 0)
    }
}

/// A fixed-length, bit-packed vector of spikes (one bit per neuron).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SpikeVector {
    words: Vec<u64>,
    len: usize,
}

impl SpikeVector {
    /// Creates an all-silent vector for `len` neurons.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a vector from boolean spike flags.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::new(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of neurons (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector covers zero neurons.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the spike flag of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        word_get(&self.words, self.len, i)
    }

    /// Sets the spike flag of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, spike: bool) {
        assert!(i < self.len, "spike index {i} out of bounds ({})", self.len);
        let w = &mut self.words[i / 64];
        if spike {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of spiking neurons.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no neuron spikes.
    pub fn is_silent(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Fraction of neurons spiking.
    pub fn activity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Returns `true` if all bits in `[start, start+width)` are zero
    /// (the zero-check a RESPARC switch applies to a packet). Bits past
    /// `len` count as zero. Word-masked: at most two masked words plus a
    /// zero test of the words between them.
    #[inline]
    pub fn window_is_zero(&self, start: usize, width: usize) -> bool {
        word_window_is_zero(&self.words, self.len, start, width)
    }

    /// Number of set bits in `[start, start+width)` — the active-spike
    /// count of one packet window, via masked popcount. Bits past `len`
    /// count as zero.
    #[inline]
    pub fn window_count_ones(&self, start: usize, width: usize) -> u64 {
        word_window_count(&self.words, self.len, start, width)
    }

    /// Iterates the indices of spiking neurons in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes::new(&self.words, self.len)
    }

    /// Clears every spike.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The underlying 64-bit words (little-endian bit order within words).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// A borrowed view of this vector (same read API, no ownership).
    #[inline]
    pub fn view(&self) -> SpikeView<'_> {
        SpikeView {
            words: &self.words,
            len: self.len,
        }
    }
}

impl fmt::Display for SpikeVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpikeVector[{}/{} firing]", self.count_ones(), self.len)
    }
}

/// A borrowed, bit-packed view of one timestep of spikes.
///
/// Same read API as [`SpikeVector`] but backed by a word slice — rasters
/// hand these out per step without allocating. Tail bits past `len` are
/// zero, exactly as in `SpikeVector`.
#[derive(Debug, Clone, Copy)]
pub struct SpikeView<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> SpikeView<'a> {
    #[inline]
    fn new(words: &'a [u64], len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Self { words, len }
    }

    /// Number of neurons (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view covers zero neurons.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the spike flag of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        word_get(self.words, self.len, i)
    }

    /// Number of spiking neurons.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no neuron spikes.
    pub fn is_silent(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Fraction of neurons spiking.
    pub fn activity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Word-masked zero test of the packet window `[start, start+width)`.
    /// Bits past `len` count as zero.
    #[inline]
    pub fn window_is_zero(&self, start: usize, width: usize) -> bool {
        word_window_is_zero(self.words, self.len, start, width)
    }

    /// Masked popcount of the packet window `[start, start+width)`. Bits
    /// past `len` count as zero.
    #[inline]
    pub fn window_count_ones(&self, start: usize, width: usize) -> u64 {
        word_window_count(self.words, self.len, start, width)
    }

    /// Iterates the indices of spiking neurons in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'a> {
        IterOnes::new(self.words, self.len)
    }

    /// The underlying 64-bit words (little-endian bit order within words).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Copies the view into an owned [`SpikeVector`].
    pub fn to_vector(&self) -> SpikeVector {
        SpikeVector {
            words: self.words.to_vec(),
            len: self.len,
        }
    }
}

impl PartialEq for SpikeView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for SpikeView<'_> {}

impl PartialEq<SpikeVector> for SpikeView<'_> {
    fn eq(&self, other: &SpikeVector) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl PartialEq<SpikeView<'_>> for SpikeVector {
    fn eq(&self, other: &SpikeView<'_>) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl fmt::Display for SpikeView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpikeView[{}/{} firing]", self.count_ones(), self.len)
    }
}

/// Borrow anything spike-shaped as a [`SpikeView`]. Lets APIs such as
/// `SnnRunner::step` accept `&SpikeVector` (owned state) and `SpikeView`
/// (a raster step) interchangeably.
pub trait AsSpikeView {
    /// The bit-packed view of these spikes.
    fn as_view(&self) -> SpikeView<'_>;
}

impl AsSpikeView for SpikeVector {
    fn as_view(&self) -> SpikeView<'_> {
        self.view()
    }
}

impl AsSpikeView for SpikeView<'_> {
    fn as_view(&self) -> SpikeView<'_> {
        *self
    }
}

impl<T: AsSpikeView + ?Sized> AsSpikeView for &T {
    fn as_view(&self) -> SpikeView<'_> {
        (**self).as_view()
    }
}

/// Iterator over set-bit indices of a [`SpikeVector`] or [`SpikeView`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    len: usize,
    word_idx: usize,
    current: u64,
}

impl<'a> IterOnes<'a> {
    fn new(words: &'a [u64], len: usize) -> Self {
        Self {
            words,
            len,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                return (idx < self.len).then_some(idx);
            }
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
    }
}

/// A population's spikes over a window of timesteps, stored as one
/// contiguous word arena (`steps × stride` words, step-major).
///
/// Appending a step copies its words to the end of the arena; reading a
/// step borrows a [`SpikeView`] into it. This keeps trace capture,
/// truncation and replay free of per-step `Vec` allocations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpikeRaster {
    words: Vec<u64>,
    /// Words per step: `neurons.div_ceil(64)`.
    stride: usize,
    neurons: usize,
    steps: usize,
}

impl SpikeRaster {
    /// Creates an empty raster for `neurons` neurons.
    pub fn new(neurons: usize) -> Self {
        Self {
            words: Vec::new(),
            stride: neurons.div_ceil(64),
            neurons,
            steps: 0,
        }
    }

    /// Creates an all-silent raster covering `steps` timesteps.
    pub fn zeroed(neurons: usize, steps: usize) -> Self {
        let stride = neurons.div_ceil(64);
        Self {
            words: vec![0; stride * steps],
            stride,
            neurons,
            steps,
        }
    }

    /// Number of neurons covered.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of recorded timesteps.
    pub fn len(&self) -> usize {
        self.steps
    }

    /// Returns `true` if no timesteps are recorded.
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// Appends one timestep of spikes.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the raster's neuron count.
    pub fn push(&mut self, step: SpikeVector) {
        self.push_view(step.view());
    }

    /// Appends one timestep of spikes from a borrowed view — a word copy
    /// into the arena, no intermediate allocation.
    ///
    /// # Panics
    ///
    /// Panics if the view length differs from the raster's neuron count.
    pub fn push_view(&mut self, step: SpikeView<'_>) {
        assert_eq!(step.len(), self.neurons, "spike vector length mismatch");
        self.words.extend_from_slice(step.words());
        self.steps += 1;
    }

    /// The spike vector at timestep `t`, as a borrowed view.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    #[inline]
    pub fn step(&self, t: usize) -> SpikeView<'_> {
        assert!(t < self.steps, "step {t} out of bounds ({})", self.steps);
        SpikeView::new(
            &self.words[t * self.stride..(t + 1) * self.stride],
            self.neurons,
        )
    }

    /// The raw words of timestep `t` (length [`Self::stride`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    #[inline]
    pub fn step_words(&self, t: usize) -> &[u64] {
        assert!(t < self.steps, "step {t} out of bounds ({})", self.steps);
        &self.words[t * self.stride..(t + 1) * self.stride]
    }

    /// Sets the spike flag of neuron `i` at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, t: usize, i: usize, spike: bool) {
        assert!(t < self.steps, "step {t} out of bounds ({})", self.steps);
        assert!(
            i < self.neurons,
            "spike index {i} out of bounds ({})",
            self.neurons
        );
        let w = &mut self.words[t * self.stride + i / 64];
        if spike {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Words per timestep in the arena (`neurons.div_ceil(64)`).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The whole arena: `len() * stride()` words, step-major.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The first `steps` timesteps, copied as one arena slice.
    ///
    /// # Panics
    ///
    /// Panics if `steps` exceeds the recorded length.
    pub fn truncated(&self, steps: usize) -> Self {
        assert!(
            steps <= self.steps,
            "cannot truncate {} steps to {steps}",
            self.steps
        );
        Self {
            words: self.words[..steps * self.stride].to_vec(),
            stride: self.stride,
            neurons: self.neurons,
            steps,
        }
    }

    /// Iterates timesteps in order as borrowed views.
    pub fn iter(&self) -> Steps<'_> {
        Steps { raster: self, t: 0 }
    }

    /// Total spike count across all timesteps (one popcount pass over the
    /// arena — tail bits are always zero).
    pub fn total_spikes(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Mean per-neuron, per-timestep firing probability.
    pub fn mean_rate(&self) -> f64 {
        if self.steps == 0 || self.neurons == 0 {
            return 0.0;
        }
        self.total_spikes() as f64 / (self.steps as f64 * self.neurons as f64)
    }

    /// Per-neuron spike counts over the raster.
    pub fn spike_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.neurons];
        for s in self.iter() {
            for i in s.iter_ones() {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Fraction of `width`-bit packets that are entirely zero, over all
    /// timesteps and all aligned windows — the statistic RESPARC's
    /// zero-check logic exploits (Fig. 13: "zeros with run length of 32
    /// refers to a 32-bit spike-packet with all bits being zero").
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zero_packet_fraction(&self, width: usize) -> f64 {
        assert!(width > 0, "packet width must be non-zero");
        if self.steps == 0 || self.neurons == 0 {
            return 1.0;
        }
        let windows_per_step = self.neurons.div_ceil(width);
        let mut zero = 0u64;
        for s in self.iter() {
            for w in 0..windows_per_step {
                if s.window_is_zero(w * width, width) {
                    zero += 1;
                }
            }
        }
        zero as f64 / (windows_per_step as u64 * self.steps as u64) as f64
    }
}

/// Iterator over the timesteps of a [`SpikeRaster`], yielding borrowed
/// [`SpikeView`]s.
#[derive(Debug)]
pub struct Steps<'a> {
    raster: &'a SpikeRaster,
    t: usize,
}

impl<'a> Iterator for Steps<'a> {
    type Item = SpikeView<'a>;

    fn next(&mut self) -> Option<SpikeView<'a>> {
        if self.t >= self.raster.steps {
            return None;
        }
        let v = self.raster.step(self.t);
        self.t += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.raster.steps - self.t;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Steps<'_> {}

impl<'a> IntoIterator for &'a SpikeRaster {
    type Item = SpikeView<'a>;
    type IntoIter = Steps<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = SpikeVector::new(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn from_bools_matches() {
        let flags = [true, false, true, true];
        let v = SpikeVector::from_bools(&flags);
        for (i, &b) in flags.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut v = SpikeVector::new(200);
        for &i in &[3usize, 70, 64, 199] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 70, 199]);
    }

    #[test]
    fn silence_and_activity() {
        let mut v = SpikeVector::new(10);
        assert!(v.is_silent());
        v.set(5, true);
        assert!(!v.is_silent());
        assert!((v.activity() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn window_zero_check() {
        let mut v = SpikeVector::new(100);
        v.set(40, true);
        assert!(v.window_is_zero(0, 32));
        assert!(!v.window_is_zero(32, 32));
        assert!(v.window_is_zero(64, 64)); // tail padding counts as zero
    }

    /// Scalar-bit oracles for the word-masked window ops.
    fn window_is_zero_scalar(v: &SpikeVector, start: usize, width: usize) -> bool {
        (start..(start + width).min(v.len())).all(|i| !v.get(i))
    }

    fn window_count_scalar(v: &SpikeVector, start: usize, width: usize) -> u64 {
        (start..(start + width).min(v.len()))
            .filter(|&i| v.get(i))
            .count() as u64
    }

    #[test]
    fn window_ops_match_scalar_reference() {
        // Deterministic pseudo-random vector crossing several word
        // boundaries, then every (start, width) over a grid of
        // alignments including unaligned and clamped windows.
        let mut v = SpikeVector::new(200);
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state >> 61 == 0 {
                continue;
            }
            if state & 3 == 0 {
                v.set(i, true);
            }
        }
        for start in (0..220).step_by(7) {
            for width in [1, 3, 16, 31, 32, 33, 63, 64, 65, 100, 128, 250] {
                assert_eq!(
                    v.window_is_zero(start, width),
                    window_is_zero_scalar(&v, start, width),
                    "window_is_zero({start}, {width})"
                );
                assert_eq!(
                    v.window_count_ones(start, width),
                    window_count_scalar(&v, start, width),
                    "window_count_ones({start}, {width})"
                );
            }
        }
    }

    #[test]
    fn window_count_counts_partial_words() {
        let mut v = SpikeVector::new(130);
        for i in [0usize, 31, 32, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
        }
        assert_eq!(v.window_count_ones(0, 32), 2); // 0, 31
        assert_eq!(v.window_count_ones(32, 32), 2); // 32, 63
        assert_eq!(v.window_count_ones(0, 130), 9);
        assert_eq!(v.window_count_ones(64, 64), 3); // 64, 65, 127
        assert_eq!(v.window_count_ones(128, 32), 2); // clamped to len
        assert_eq!(v.window_count_ones(129, 1), 1);
        assert_eq!(v.window_count_ones(130, 64), 0); // fully past len
    }

    #[test]
    fn view_matches_vector() {
        let mut v = SpikeVector::new(150);
        for i in [2usize, 64, 99, 149] {
            v.set(i, true);
        }
        let view = v.view();
        assert_eq!(view.len(), v.len());
        assert_eq!(view.count_ones(), v.count_ones());
        assert_eq!(
            view.iter_ones().collect::<Vec<_>>(),
            v.iter_ones().collect::<Vec<_>>()
        );
        assert!(view == v);
        assert_eq!(view.to_vector(), v);
    }

    #[test]
    fn raster_statistics() {
        let mut r = SpikeRaster::new(64);
        let mut a = SpikeVector::new(64);
        a.set(0, true);
        a.set(33, true);
        r.push(a);
        r.push(SpikeVector::new(64)); // silent step
        assert_eq!(r.total_spikes(), 2);
        assert!((r.mean_rate() - 2.0 / 128.0).abs() < 1e-12);
        // width 32: 2 windows/step, 4 windows total, 3 zero (1st step has
        // one spike in each window).
        assert!((r.zero_packet_fraction(32) - 0.5).abs() < 1e-12);
        // width 64: 1 window/step, 2 windows, step 2 zero.
        assert!((r.zero_packet_fraction(64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_packet_fraction_decreases_with_width() {
        // A raster with scattered spikes: wider packets are less likely to
        // be all-zero.
        let mut r = SpikeRaster::new(256);
        for t in 0..8 {
            let mut v = SpikeVector::new(256);
            v.set((t * 37) % 256, true);
            v.set((t * 91 + 13) % 256, true);
            r.push(v);
        }
        let f16 = r.zero_packet_fraction(16);
        let f64w = r.zero_packet_fraction(64);
        assert!(f16 > f64w, "16-bit {f16} should exceed 64-bit {f64w}");
    }

    #[test]
    fn spike_counts_accumulate() {
        let mut r = SpikeRaster::new(4);
        r.push(SpikeVector::from_bools(&[true, false, false, true]));
        r.push(SpikeVector::from_bools(&[true, true, false, false]));
        assert_eq!(r.spike_counts(), vec![2, 1, 0, 1]);
    }

    #[test]
    fn arena_layout_and_views() {
        let mut r = SpikeRaster::new(70); // stride 2
        assert_eq!(r.stride(), 2);
        let mut a = SpikeVector::new(70);
        a.set(0, true);
        a.set(69, true);
        r.push_view(a.view());
        r.push(SpikeVector::new(70));
        assert_eq!(r.words().len(), 4);
        assert_eq!(r.step(0), a);
        assert!(r.step(1).is_silent());
        assert_eq!(r.step_words(0), a.words());
        let steps: Vec<usize> = r.iter().map(|s| s.count_ones()).collect();
        assert_eq!(steps, vec![2, 0]);
    }

    #[test]
    fn zeroed_set_and_truncated() {
        let mut r = SpikeRaster::zeroed(40, 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_spikes(), 0);
        r.set(1, 7, true);
        r.set(2, 39, true);
        assert!(r.step(1).get(7));
        assert!(!r.step(0).get(7));
        let t = r.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_spikes(), 1);
        assert_eq!(t.step(1), r.step(1));
        let empty = r.truncated(0);
        assert!(empty.is_empty());
        assert_eq!(empty.neurons(), 40);
    }

    #[test]
    fn zero_neuron_raster_iterates() {
        let mut r = SpikeRaster::new(0);
        r.push(SpikeVector::new(0));
        r.push(SpikeVector::new(0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.iter().count(), 2);
        assert!(r.step(0).is_silent());
        assert_eq!(r.mean_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn raster_rejects_mismatched_vector() {
        let mut r = SpikeRaster::new(8);
        r.push(SpikeVector::new(9));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn raster_step_bounds_checked() {
        let r = SpikeRaster::zeroed(8, 2);
        let _ = r.step(2);
    }
}
