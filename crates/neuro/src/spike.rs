//! Bit-packed spike vectors, spike rasters and the packet statistics that
//! drive RESPARC's event-driven optimisations.
//!
//! Spikes are binary (paper §2.1), so a population's activity in one
//! timestep is a bit vector ([`SpikeVector`]) and a full stimulus is a
//! raster of those over time ([`SpikeRaster`]). RESPARC moves spikes in
//! fixed-width *packets*; a packet whose bits are all zero is suppressed by
//! the zero-check logic (§3.2), so the fraction of all-zero windows at a
//! given width ([`SpikeRaster::zero_packet_fraction`]) is exactly the
//! statistic the architecture exploits in Fig. 13.

use std::fmt;

/// A fixed-length, bit-packed vector of spikes (one bit per neuron).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SpikeVector {
    words: Vec<u64>,
    len: usize,
}

impl SpikeVector {
    /// Creates an all-silent vector for `len` neurons.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a vector from boolean spike flags.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::new(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of neurons (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector covers zero neurons.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the spike flag of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "spike index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the spike flag of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, spike: bool) {
        assert!(i < self.len, "spike index {i} out of bounds ({})", self.len);
        let w = &mut self.words[i / 64];
        if spike {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of spiking neurons.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no neuron spikes.
    pub fn is_silent(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Fraction of neurons spiking.
    pub fn activity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Returns `true` if all bits in `[start, start+width)` are zero
    /// (the zero-check a RESPARC switch applies to a packet). Bits past
    /// `len` count as zero.
    pub fn window_is_zero(&self, start: usize, width: usize) -> bool {
        (start..(start + width).min(self.len)).all(|i| !self.get(i))
    }

    /// Iterates the indices of spiking neurons in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Clears every spike.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The underlying 64-bit words (little-endian bit order within words).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Display for SpikeVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpikeVector[{}/{} firing]", self.count_ones(), self.len)
    }
}

/// Iterator over set-bit indices of a [`SpikeVector`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    vec: &'a SpikeVector,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                return (idx < self.vec.len).then_some(idx);
            }
            self.word_idx += 1;
            self.current = *self.vec.words.get(self.word_idx)?;
        }
    }
}

/// A population's spikes over a window of timesteps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpikeRaster {
    steps: Vec<SpikeVector>,
    neurons: usize,
}

impl SpikeRaster {
    /// Creates an empty raster for `neurons` neurons.
    pub fn new(neurons: usize) -> Self {
        Self {
            steps: Vec::new(),
            neurons,
        }
    }

    /// Number of neurons covered.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of recorded timesteps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if no timesteps are recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends one timestep of spikes.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the raster's neuron count.
    pub fn push(&mut self, step: SpikeVector) {
        assert_eq!(step.len(), self.neurons, "spike vector length mismatch");
        self.steps.push(step);
    }

    /// The spike vector at timestep `t`.
    pub fn step(&self, t: usize) -> &SpikeVector {
        &self.steps[t]
    }

    /// Iterates timesteps in order.
    pub fn iter(&self) -> std::slice::Iter<'_, SpikeVector> {
        self.steps.iter()
    }

    /// Total spike count across all timesteps.
    pub fn total_spikes(&self) -> u64 {
        self.steps.iter().map(|s| s.count_ones() as u64).sum()
    }

    /// Mean per-neuron, per-timestep firing probability.
    pub fn mean_rate(&self) -> f64 {
        if self.steps.is_empty() || self.neurons == 0 {
            return 0.0;
        }
        self.total_spikes() as f64 / (self.steps.len() as f64 * self.neurons as f64)
    }

    /// Per-neuron spike counts over the raster.
    pub fn spike_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.neurons];
        for s in &self.steps {
            for i in s.iter_ones() {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Fraction of `width`-bit packets that are entirely zero, over all
    /// timesteps and all aligned windows — the statistic RESPARC's
    /// zero-check logic exploits (Fig. 13: "zeros with run length of 32
    /// refers to a 32-bit spike-packet with all bits being zero").
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zero_packet_fraction(&self, width: usize) -> f64 {
        assert!(width > 0, "packet width must be non-zero");
        if self.steps.is_empty() || self.neurons == 0 {
            return 1.0;
        }
        let windows_per_step = self.neurons.div_ceil(width);
        let mut zero = 0u64;
        for s in &self.steps {
            for w in 0..windows_per_step {
                if s.window_is_zero(w * width, width) {
                    zero += 1;
                }
            }
        }
        zero as f64 / (windows_per_step as u64 * self.steps.len() as u64) as f64
    }
}

impl<'a> IntoIterator for &'a SpikeRaster {
    type Item = &'a SpikeVector;
    type IntoIter = std::slice::Iter<'a, SpikeVector>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = SpikeVector::new(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn from_bools_matches() {
        let flags = [true, false, true, true];
        let v = SpikeVector::from_bools(&flags);
        for (i, &b) in flags.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut v = SpikeVector::new(200);
        for &i in &[3usize, 70, 64, 199] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 70, 199]);
    }

    #[test]
    fn silence_and_activity() {
        let mut v = SpikeVector::new(10);
        assert!(v.is_silent());
        v.set(5, true);
        assert!(!v.is_silent());
        assert!((v.activity() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn window_zero_check() {
        let mut v = SpikeVector::new(100);
        v.set(40, true);
        assert!(v.window_is_zero(0, 32));
        assert!(!v.window_is_zero(32, 32));
        assert!(v.window_is_zero(64, 64)); // tail padding counts as zero
    }

    #[test]
    fn raster_statistics() {
        let mut r = SpikeRaster::new(64);
        let mut a = SpikeVector::new(64);
        a.set(0, true);
        a.set(33, true);
        r.push(a);
        r.push(SpikeVector::new(64)); // silent step
        assert_eq!(r.total_spikes(), 2);
        assert!((r.mean_rate() - 2.0 / 128.0).abs() < 1e-12);
        // width 32: 2 windows/step, 4 windows total, 3 zero (1st step has
        // one spike in each window).
        assert!((r.zero_packet_fraction(32) - 0.5).abs() < 1e-12);
        // width 64: 1 window/step, 2 windows, step 2 zero.
        assert!((r.zero_packet_fraction(64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_packet_fraction_decreases_with_width() {
        // A raster with scattered spikes: wider packets are less likely to
        // be all-zero.
        let mut r = SpikeRaster::new(256);
        for t in 0..8 {
            let mut v = SpikeVector::new(256);
            v.set((t * 37) % 256, true);
            v.set((t * 91 + 13) % 256, true);
            r.push(v);
        }
        let f16 = r.zero_packet_fraction(16);
        let f64w = r.zero_packet_fraction(64);
        assert!(f16 > f64w, "16-bit {f16} should exceed 64-bit {f64w}");
    }

    #[test]
    fn spike_counts_accumulate() {
        let mut r = SpikeRaster::new(4);
        r.push(SpikeVector::from_bools(&[true, false, false, true]));
        r.push(SpikeVector::from_bools(&[true, true, false, false]));
        assert_eq!(r.spike_counts(), vec![2, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn raster_rejects_mismatched_vector() {
        let mut r = SpikeRaster::new(8);
        r.push(SpikeVector::new(9));
    }
}
