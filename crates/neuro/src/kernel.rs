//! Compiled synapse kernels: per-layer execution planes with resolved
//! `f32` weights.
//!
//! [`LayerSpec::for_each_synapse`] is the structural source of truth, but
//! walking it is expensive: convolution layers re-derive their 2-D
//! receptive-field geometry on every call and every synapse pays a
//! closure call plus a `weight_ids` indirection into the unique-weight
//! array (for dense layers that gather strides the whole weight matrix and
//! misses cache on nearly every event). A [`CompiledNetwork`] walks the
//! enumeration **once** per network and materializes, per layer, two
//! planes with weights resolved to flat `f32`:
//!
//! * an **output-major** plane — contiguous weight rows per output neuron,
//!   driving the dense analog forward pass,
//! * an **input-major** plane — the transposed view, driving the
//!   event-driven spiking simulator (active input → contiguous fan-out
//!   row).
//!
//! Dense (MLP) layers skip index arrays entirely and store the weight
//! matrix plus its transpose, so a spiking event is a straight-line
//! vectorizable row addition. Conv/pool layers store CSR planes.
//!
//! The compiled form is cached on the [`Network`] (`OnceLock<Arc<..>>`),
//! so the spiking runner, the analog forward pass, conversion
//! normalisation and activity sweeps all share one enumeration;
//! [`Network::layers_mut`] invalidates the cache. Numerical contract:
//! every kernel accumulates in exactly the enumeration order of
//! [`LayerSpec::for_each_synapse`], so results are **bit-identical** to
//! the closure-walk reference path (see
//! [`crate::network::reference`]).

use rayon::prelude::*;
use resparc_device::fault::FaultPlan;

use crate::network::{Layer, Network};
use crate::spike::SpikeView;
use crate::topology::LayerSpec;

/// Past this many weights, a dense layer's analog forward pass fans out
/// across threads (per-output parallelism is safe: outputs are
/// independent, so chunking cannot change results).
const PAR_DENSE_WEIGHTS: usize = 1 << 20;

/// The resolved weight planes of one layer.
#[derive(Debug, Clone, PartialEq)]
enum Plane {
    /// Fully-connected layer: no index arrays at all.
    Dense {
        /// `fwd[o * inputs + i]` — output-major weight matrix.
        fwd: Vec<f32>,
        /// `bwd[i * outputs + o]` — input-major (transposed) matrix.
        bwd: Vec<f32>,
    },
    /// Conv/pool layer: CSR planes with resolved weights.
    Sparse {
        /// Output-major row pointers (`outputs + 1` entries).
        out_indptr: Vec<u32>,
        /// Input index of each synapse, grouped by output.
        out_inputs: Vec<u32>,
        /// Resolved weight of each synapse, parallel to `out_inputs`.
        out_weights: Vec<f32>,
        /// Input-major row pointers (`inputs + 1` entries).
        in_indptr: Vec<u32>,
        /// Target output of each synapse, grouped by input.
        in_targets: Vec<u32>,
        /// Resolved weight of each synapse, parallel to `in_targets`.
        in_weights: Vec<f32>,
    },
}

/// One layer compiled to resolved-weight execution planes.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLayer {
    inputs: usize,
    outputs: usize,
    threshold: f32,
    is_pool: bool,
    plane: Plane,
}

impl CompiledLayer {
    /// Compiles a weighted layer by walking its synapse enumeration once
    /// (twice for sparse layers: a counting and a filling pass).
    pub fn compile(layer: &Layer) -> Self {
        let spec = *layer.spec();
        let w = layer.weights();
        let plane = match spec {
            LayerSpec::Dense { inputs, outputs } => {
                let fwd = w.to_vec();
                let mut bwd = vec![0.0f32; inputs * outputs];
                for o in 0..outputs {
                    for (i, &wv) in w[o * inputs..(o + 1) * inputs].iter().enumerate() {
                        bwd[i * outputs + o] = wv;
                    }
                }
                Plane::Dense { fwd, bwd }
            }
            _ => compile_sparse(&spec, w),
        };
        Self {
            inputs: spec.input_count(),
            outputs: spec.output_count(),
            threshold: layer.threshold(),
            is_pool: matches!(spec, LayerSpec::AvgPool { .. }),
            plane,
        }
    }

    /// Number of input neurons.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output neurons.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The layer's spiking threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Whether this is an average-pooling layer (stays linear in analog
    /// mode).
    pub fn is_pool(&self) -> bool {
        self.is_pool
    }

    /// Number of materialized synapses (dense layers count every matrix
    /// cell).
    pub fn synapse_count(&self) -> usize {
        match &self.plane {
            Plane::Dense { fwd, .. } => fwd.len(),
            Plane::Sparse { out_inputs, .. } => out_inputs.len(),
        }
    }

    /// Analog accumulation: writes `out[o] = Σ_i w[o][i] · input[i]` (no
    /// activation function applied). Accumulates in synapse-enumeration
    /// order, so results are bit-identical to the closure-walk reference.
    ///
    /// # Panics
    ///
    /// Panics if `input`/`out` lengths disagree with the layer shape.
    pub fn forward_into(&self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.inputs, "input size mismatch");
        assert_eq!(out.len(), self.outputs, "output size mismatch");
        match &self.plane {
            Plane::Dense { fwd, .. } => {
                if fwd.len() >= PAR_DENSE_WEIGHTS && rayon::current_num_threads() > 1 {
                    self.forward_dense_parallel(fwd, input, out);
                } else {
                    for (row, out_v) in fwd.chunks_exact(self.inputs).zip(out.iter_mut()) {
                        *out_v = dot(row, input);
                    }
                }
            }
            Plane::Sparse {
                out_indptr,
                out_inputs,
                out_weights,
                ..
            } => {
                for (o, out_v) in out.iter_mut().enumerate() {
                    let s = out_indptr[o] as usize;
                    let e = out_indptr[o + 1] as usize;
                    let mut acc = 0.0f32;
                    for (&i, &wv) in out_inputs[s..e].iter().zip(&out_weights[s..e]) {
                        acc += wv * input[i as usize];
                    }
                    *out_v = acc;
                }
            }
        }
    }

    /// Per-output-chunk parallel dense forward, writing each chunk's dot
    /// products directly into `out` (values identical to the serial path:
    /// each output's dot product is unchanged).
    fn forward_dense_parallel(&self, fwd: &[f32], input: &[f32], out: &mut [f32]) {
        let threads = rayon::current_num_threads();
        let chunk = self.outputs.div_ceil(threads).max(1);
        let inputs = self.inputs;
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, part)| {
                let base = ci * chunk;
                for (k, out_v) in part.iter_mut().enumerate() {
                    let row = &fwd[(base + k) * inputs..(base + k + 1) * inputs];
                    *out_v = dot(row, input);
                }
            });
    }

    /// The layer re-compiled under a device [`FaultPlan`]: every
    /// materialized synapse's weight is replaced by
    /// [`FaultPlan::cell_weight`] keyed on the synapse's physical
    /// cross-point coordinate (`output · inputs + input`), so the
    /// forward and transposed planes receive the **same** fault for the
    /// same synapse regardless of traversal order. The layer's
    /// conductance window (`full_scale`) is its largest |weight|.
    fn with_faults(&self, plan: &FaultPlan, layer_seed: u64) -> Self {
        let full_scale = match &self.plane {
            Plane::Dense { fwd, .. } => fwd.iter().fold(0.0f32, |m, &w| m.max(w.abs())),
            Plane::Sparse { out_weights, .. } => {
                out_weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()))
            }
        };
        let inputs = self.inputs;
        let plane = match &self.plane {
            Plane::Dense { fwd, .. } => {
                let outputs = self.outputs;
                let new_fwd: Vec<f32> = fwd
                    .iter()
                    .enumerate()
                    .map(|(cell, &w)| plan.cell_weight(layer_seed, cell as u64, w, full_scale))
                    .collect();
                let mut bwd = vec![0.0f32; inputs * outputs];
                for o in 0..outputs {
                    for (i, &wv) in new_fwd[o * inputs..(o + 1) * inputs].iter().enumerate() {
                        bwd[i * outputs + o] = wv;
                    }
                }
                Plane::Dense { fwd: new_fwd, bwd }
            }
            Plane::Sparse {
                out_indptr,
                out_inputs,
                out_weights,
                in_indptr,
                in_targets,
                in_weights,
            } => {
                let mut new_out = out_weights.clone();
                for o in 0..self.outputs {
                    let (s, e) = (out_indptr[o] as usize, out_indptr[o + 1] as usize);
                    for (k, &i) in out_inputs[s..e].iter().enumerate() {
                        let cell = (o * inputs + i as usize) as u64;
                        new_out[s + k] =
                            plan.cell_weight(layer_seed, cell, out_weights[s + k], full_scale);
                    }
                }
                let mut new_in = in_weights.clone();
                for i in 0..inputs {
                    let (s, e) = (in_indptr[i] as usize, in_indptr[i + 1] as usize);
                    for (k, &o) in in_targets[s..e].iter().enumerate() {
                        let cell = (o as usize * inputs + i) as u64;
                        new_in[s + k] =
                            plan.cell_weight(layer_seed, cell, in_weights[s + k], full_scale);
                    }
                }
                Plane::Sparse {
                    out_indptr: out_indptr.clone(),
                    out_inputs: out_inputs.clone(),
                    out_weights: new_out,
                    in_indptr: in_indptr.clone(),
                    in_targets: in_targets.clone(),
                    in_weights: new_in,
                }
            }
        };
        Self {
            inputs: self.inputs,
            outputs: self.outputs,
            threshold: self.threshold,
            is_pool: self.is_pool,
            plane,
        }
    }

    /// Event-driven accumulation: adds every active input's fan-out into
    /// `currents` and returns the number of synaptic events. Accumulation
    /// order equals the reference input-major walk, so sums are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `spikes`/`currents` lengths disagree with the layer
    /// shape.
    pub fn accumulate_spikes(&self, spikes: SpikeView<'_>, currents: &mut [f32]) -> u64 {
        assert_eq!(spikes.len(), self.inputs, "input size mismatch");
        assert_eq!(currents.len(), self.outputs, "output size mismatch");
        let mut events = 0u64;
        match &self.plane {
            Plane::Dense { bwd, .. } => {
                let n = self.outputs;
                for i in spikes.iter_ones() {
                    let row = &bwd[i * n..(i + 1) * n];
                    for (c, &wv) in currents.iter_mut().zip(row) {
                        *c += wv;
                    }
                    events += n as u64;
                }
            }
            Plane::Sparse {
                in_indptr,
                in_targets,
                in_weights,
                ..
            } => {
                for i in spikes.iter_ones() {
                    let s = in_indptr[i] as usize;
                    let e = in_indptr[i + 1] as usize;
                    events += (e - s) as u64;
                    for (&t, &wv) in in_targets[s..e].iter().zip(&in_weights[s..e]) {
                        currents[t as usize] += wv;
                    }
                }
            }
        }
        events
    }
}

/// Sequential dot product (deliberately not reassociated: float order must
/// match the reference accumulation exactly).
#[inline]
fn dot(row: &[f32], input: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&a, &b) in row.iter().zip(input) {
        acc += a * b;
    }
    acc
}

fn compile_sparse(spec: &LayerSpec, w: &[f32]) -> Plane {
    let inputs = spec.input_count();
    let outputs = spec.output_count();
    // Counting pass.
    let mut out_counts = vec![0u32; outputs];
    let mut in_counts = vec![0u32; inputs];
    spec.for_each_synapse(|o, i, _| {
        out_counts[o] += 1;
        in_counts[i] += 1;
    });
    let out_indptr = prefix_sum(&out_counts);
    let in_indptr = prefix_sum(&in_counts);
    let total = *out_indptr.last().expect("non-empty indptr") as usize;
    // Filling pass, preserving enumeration order within each row of both
    // planes (the numerical-equivalence contract depends on this).
    let mut out_inputs = vec![0u32; total];
    let mut out_weights = vec![0.0f32; total];
    let mut in_targets = vec![0u32; total];
    let mut in_weights = vec![0.0f32; total];
    let mut out_cursor: Vec<u32> = out_indptr[..outputs].to_vec();
    let mut in_cursor: Vec<u32> = in_indptr[..inputs].to_vec();
    spec.for_each_synapse(|o, i, wid| {
        let wv = w[wid];
        let ko = out_cursor[o] as usize;
        out_inputs[ko] = i as u32;
        out_weights[ko] = wv;
        out_cursor[o] += 1;
        let ki = in_cursor[i] as usize;
        in_targets[ki] = o as u32;
        in_weights[ki] = wv;
        in_cursor[i] += 1;
    });
    Plane::Sparse {
        out_indptr,
        out_inputs,
        out_weights,
        in_indptr,
        in_targets,
        in_weights,
    }
}

fn prefix_sum(counts: &[u32]) -> Vec<u32> {
    let mut indptr = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    indptr.push(0);
    for &c in counts {
        acc += c;
        indptr.push(acc);
    }
    indptr
}

/// A whole network compiled to execution planes.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetwork {
    input_count: usize,
    layers: Vec<CompiledLayer>,
}

impl CompiledNetwork {
    /// Compiles every layer of `net`.
    pub fn compile(net: &Network) -> Self {
        Self {
            input_count: net.input_count(),
            layers: net.layers().iter().map(CompiledLayer::compile).collect(),
        }
    }

    /// Number of input neurons.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The compiled layers.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// The compiled layer at `li`.
    pub fn layer(&self, li: usize) -> &CompiledLayer {
        &self.layers[li]
    }

    /// Output neuron count of the final layer.
    pub fn output_count(&self) -> usize {
        self.layers.last().expect("non-empty").outputs()
    }

    /// ANN-mode forward pass returning every layer's post-activation
    /// output (ReLU after every layer except the last; pooling layers stay
    /// linear) — the compiled equivalent of
    /// [`Network::forward_analog_all`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_count()`.
    pub fn forward_all(&self, input: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(input.len(), self.input_count, "input size mismatch");
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        let mut current: &[f32] = input;
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = vec![0.0f32; layer.outputs()];
            layer.forward_into(current, &mut out);
            if li + 1 != self.layers.len() && !layer.is_pool() {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            acts.push(out);
            current = acts.last().expect("just pushed");
        }
        acts
    }

    /// ANN-mode forward pass returning only the final layer's activations.
    /// Double-buffered: two ping-pong scratch buffers are reused across
    /// layers, so a call performs O(1) allocations regardless of depth.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_count()`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_count, "input size mismatch");
        let mut current: Vec<f32> = Vec::new();
        let mut next: Vec<f32> = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            next.clear();
            next.resize(layer.outputs(), 0.0);
            layer.forward_into(if li == 0 { input } else { &current }, &mut next);
            if li + 1 != self.layers.len() && !layer.is_pool() {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// Argmax classification over [`Self::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_count()`.
    pub fn classify(&self, input: &[f32]) -> usize {
        crate::network::argmax(&self.forward(input))
    }

    /// Total materialized synapses across layers.
    pub fn synapse_count(&self) -> usize {
        self.layers.iter().map(|l| l.synapse_count()).sum()
    }

    /// The network re-compiled under a device [`FaultPlan`] — a **pure
    /// transform**: `self` is untouched, and an
    /// [empty](FaultPlan::is_empty) plan returns a bit-identical copy
    /// (the transform is skipped outright, not applied with neutral
    /// parameters), so the fault-free path costs and computes exactly
    /// what today's unfaulted kernels do.
    ///
    /// Layer `li` draws from the decorrelated stream
    /// [`FaultPlan::layer_seed`]`(li)`; within a layer every synapse's
    /// fault is keyed on its physical cross-point coordinate, so the
    /// output-major and input-major planes stay exact transposes of
    /// each other (asserted in tests).
    ///
    /// # Examples
    ///
    /// ```
    /// use resparc_device::FaultPlan;
    /// use resparc_neuro::kernel::CompiledNetwork;
    /// use resparc_neuro::network::Network;
    /// use resparc_neuro::topology::Topology;
    ///
    /// let net = Network::random(Topology::mlp(16, &[8, 4]), 1, 1.0);
    /// let clean = CompiledNetwork::compile(&net);
    /// assert_eq!(clean.with_faults(&FaultPlan::none()), clean);
    /// let faulted = clean.with_faults(&FaultPlan::stuck_at(7, 0.3));
    /// assert_ne!(faulted, clean);
    /// ```
    pub fn with_faults(&self, plan: &FaultPlan) -> Self {
        if plan.is_empty() {
            return self.clone();
        }
        Self {
            input_count: self.input_count,
            layers: self
                .layers
                .iter()
                .enumerate()
                .map(|(li, layer)| layer.with_faults(plan, plan.layer_seed(li)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::topology::{ChannelTable, Padding, Shape, Topology};

    fn conv_net(seed: u64) -> Network {
        let t = Topology::builder(Shape::new(10, 10, 1))
            .conv(4, 3, Padding::Same, ChannelTable::Full)
            .pool(2)
            .conv(6, 3, Padding::Valid, ChannelTable::Banded { fan: 2 })
            .dense(5)
            .build()
            .expect("consistent");
        Network::random(t, seed, 1.0)
    }

    #[test]
    fn compiled_shapes_match_network() {
        let net = conv_net(3);
        let k = CompiledNetwork::compile(&net);
        assert_eq!(k.layer_count(), 4);
        assert_eq!(k.input_count(), 100);
        assert_eq!(k.output_count(), 5);
        for (cl, l) in k.layers().iter().zip(net.layers()) {
            assert_eq!(cl.inputs(), l.spec().input_count());
            assert_eq!(cl.outputs(), l.spec().output_count());
            assert_eq!(cl.synapse_count(), l.spec().synapse_count());
            assert_eq!(cl.threshold(), l.threshold());
        }
    }

    #[test]
    fn dense_planes_are_transposes() {
        let net = Network::random(Topology::mlp(7, &[5]), 1, 1.0);
        let k = CompiledNetwork::compile(&net);
        let Plane::Dense { fwd, bwd } = &k.layer(0).plane else {
            panic!("dense layer must compile to a dense plane");
        };
        for o in 0..5 {
            for i in 0..7 {
                assert_eq!(fwd[o * 7 + i], bwd[i * 5 + o]);
            }
        }
    }

    #[test]
    fn sparse_rows_cover_all_synapses() {
        let net = conv_net(5);
        let k = CompiledNetwork::compile(&net);
        assert_eq!(k.synapse_count(), net.topology().synapse_count());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        for net in [
            conv_net(11),
            Network::random(Topology::mlp(20, &[12, 5]), 11, 1.0),
        ] {
            let clean = CompiledNetwork::compile(&net);
            let replanned = clean.with_faults(&FaultPlan::none());
            assert_eq!(clean, replanned);
            // PartialEq on f32 treats -0.0 == 0.0; check raw bits too.
            for (a, b) in clean.layers().iter().zip(replanned.layers()) {
                match (&a.plane, &b.plane) {
                    (Plane::Dense { fwd: fa, bwd: ba }, Plane::Dense { fwd: fb, bwd: bb }) => {
                        assert!(fa.iter().zip(fb).all(|(x, y)| x.to_bits() == y.to_bits()));
                        assert!(ba.iter().zip(bb).all(|(x, y)| x.to_bits() == y.to_bits()));
                    }
                    (
                        Plane::Sparse {
                            out_weights: oa,
                            in_weights: ia,
                            ..
                        },
                        Plane::Sparse {
                            out_weights: ob,
                            in_weights: ib,
                            ..
                        },
                    ) => {
                        assert!(oa.iter().zip(ob).all(|(x, y)| x.to_bits() == y.to_bits()));
                        assert!(ia.iter().zip(ib).all(|(x, y)| x.to_bits() == y.to_bits()));
                    }
                    _ => panic!("plane kinds diverged"),
                }
            }
        }
    }

    #[test]
    fn faulted_planes_stay_transposes_of_each_other() {
        let plan = FaultPlan::stuck_at(13, 0.2)
            .with_drift(0.1)
            .with_variation(0.15);
        // Dense: fwd/bwd stay exact transposes.
        let net = Network::random(Topology::mlp(9, &[7]), 2, 1.0);
        let faulted = CompiledNetwork::compile(&net).with_faults(&plan);
        let Plane::Dense { fwd, bwd } = &faulted.layer(0).plane else {
            panic!("dense layer must compile dense");
        };
        for o in 0..7 {
            for i in 0..9 {
                assert_eq!(fwd[o * 9 + i].to_bits(), bwd[i * 7 + o].to_bits());
            }
        }
        // Sparse: the same synapse carries the same faulted weight in
        // both CSR planes.
        let conv = CompiledNetwork::compile(&conv_net(4)).with_faults(&plan);
        for layer in conv.layers() {
            let Plane::Sparse {
                out_indptr,
                out_inputs,
                out_weights,
                in_indptr,
                in_targets,
                in_weights,
            } = &layer.plane
            else {
                continue;
            };
            let mut by_cell = std::collections::BTreeMap::new();
            for o in 0..layer.outputs() {
                let (s, e) = (out_indptr[o] as usize, out_indptr[o + 1] as usize);
                for (k, &i) in out_inputs[s..e].iter().enumerate() {
                    by_cell.insert((o as u32, i), out_weights[s + k].to_bits());
                }
            }
            for i in 0..layer.inputs() {
                let (s, e) = (in_indptr[i] as usize, in_indptr[i + 1] as usize);
                for (k, &o) in in_targets[s..e].iter().enumerate() {
                    assert_eq!(
                        by_cell.get(&(o, i as u32)),
                        Some(&in_weights[s + k].to_bits()),
                        "synapse ({o}, {i}) diverged between planes"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_transform_is_pure_and_deterministic() {
        let net = conv_net(9);
        let clean = CompiledNetwork::compile(&net);
        let reference = clean.clone();
        let plan = FaultPlan::stuck_at(21, 0.4).with_variation(0.2);
        let a = clean.with_faults(&plan);
        let b = clean.with_faults(&plan);
        assert_eq!(a, b, "same plan twice must be bit-identical");
        assert_eq!(clean, reference, "with_faults must not mutate its input");
        assert_ne!(a, clean);
        // Shapes and structure are untouched — only weights change.
        assert_eq!(a.synapse_count(), clean.synapse_count());
        assert_eq!(a.input_count(), clean.input_count());
        for (fa, cl) in a.layers().iter().zip(clean.layers()) {
            assert_eq!(fa.inputs(), cl.inputs());
            assert_eq!(fa.outputs(), cl.outputs());
            assert_eq!(fa.threshold(), cl.threshold());
        }
    }

    #[test]
    fn forward_and_forward_all_agree() {
        let net = conv_net(7);
        let k = CompiledNetwork::compile(&net);
        let x: Vec<f32> = (0..100).map(|i| (i % 9) as f32 / 9.0).collect();
        let all = k.forward_all(&x);
        assert_eq!(all.last().expect("layers"), &k.forward(&x));
    }
}
