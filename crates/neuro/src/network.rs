//! Weighted networks and the functional (algorithm-level) SNN simulator.
//!
//! A [`Network`] couples a [`Topology`] with per-layer unique-weight arrays
//! and firing thresholds. It supports two execution modes:
//!
//! * **analog forward** ([`Network::forward_analog`]) — the ANN view
//!   (ReLU between layers), used for training and for the Diehl-style
//!   ANN→SNN normalisation,
//! * **spiking** ([`SnnRunner`]) — timestep-by-timestep IF dynamics on
//!   binary spikes, used to measure accuracy (paper Fig. 14a) and to
//!   extract the spike-activity statistics that drive the architectural
//!   simulators.
//!
//! Both modes execute on [compiled synapse kernels](crate::kernel):
//! resolved-weight planes materialized once per network, cached on the
//! [`Network`] and shared by every runner, batch call and sweep.
//! Mutating weights or thresholds through [`Network::layers_mut`]
//! invalidates the cache; the next execution recompiles. The original
//! closure-walk implementation is preserved in [`reference`](mod@reference) as the
//! equivalence oracle and benchmark baseline — compiled results are
//! bit-identical to it.
//!
//! Batched entry points ([`Network::forward_analog_batch`],
//! [`Network::spiking_batch`], ..) evaluate many stimuli per call with
//! data-parallelism across the batch.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::network::Network;
//! use resparc_neuro::topology::Topology;
//!
//! let net = Network::random(Topology::mlp(16, &[8, 4]), 42, 0.5);
//! let out = net.forward_analog(&vec![0.5; 16]);
//! assert_eq!(out.len(), 4);
//!
//! // Batched: one call, shared compiled kernels, parallel across stimuli.
//! let batch: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32 / 8.0; 16]).collect();
//! let outs = net.forward_analog_batch(&batch);
//! assert_eq!(outs.len(), 8);
//! assert_eq!(outs[3], net.forward_analog(&batch[3]));
//! ```

use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

use crate::encoding::Readout;
use crate::kernel::CompiledNetwork;
use crate::neuron::{Membrane, NeuronConfig};
use crate::spike::{AsSpikeView, SpikeRaster, SpikeVector};
use crate::topology::{LayerSpec, Topology};
use crate::trace::SpikeTrace;

/// One weighted layer: spec + unique weights + firing threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    spec: LayerSpec,
    /// Unique weights, indexed by the weight ids that
    /// [`LayerSpec::for_each_synapse`] yields.
    weights: Vec<f32>,
    /// IF firing threshold used in spiking mode.
    threshold: f32,
}

impl Layer {
    /// Creates a layer; `weights.len()` must equal
    /// [`LayerSpec::unique_weight_count`].
    ///
    /// # Panics
    ///
    /// Panics on a weight-count mismatch or non-positive threshold.
    pub fn new(spec: LayerSpec, weights: Vec<f32>, threshold: f32) -> Self {
        assert_eq!(
            weights.len(),
            spec.unique_weight_count(),
            "weight count mismatch for {} layer",
            spec.kind()
        );
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            spec,
            weights,
            threshold,
        }
    }

    /// The layer's structural spec.
    pub fn spec(&self) -> &LayerSpec {
        &self.spec
    }

    /// The unique-weight array.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable access to the unique-weight array (training, quantization).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// The spiking threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Sets the spiking threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn set_threshold(&mut self, threshold: f32) {
        assert!(threshold > 0.0, "threshold must be positive");
        self.threshold = threshold;
    }
}

/// A complete weighted network.
///
/// Holds its validated [`Topology`] (built once at construction) and
/// lazily caches its [`CompiledNetwork`] execution kernels; cloning a
/// network shares the cached kernels, and [`Network::layers_mut`]
/// invalidates them.
#[derive(Clone)]
pub struct Network {
    input_count: usize,
    layers: Vec<Layer>,
    topology: Topology,
    kernels: OnceLock<Arc<CompiledNetwork>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("input_count", &self.input_count)
            .field("layers", &self.layers)
            .field("kernels_cached", &self.kernels.get().is_some())
            .finish()
    }
}

impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        // The topology is derived from the layers and the kernel cache is
        // derived state; neither participates in equality.
        self.input_count == other.input_count && self.layers == other.layers
    }
}

impl Network {
    /// Assembles a network from weighted layers.
    ///
    /// # Panics
    ///
    /// Panics if the layer stack fails [`Topology`] validation.
    pub fn new(input_count: usize, layers: Vec<Layer>) -> Self {
        let specs: Vec<LayerSpec> = layers.iter().map(|l| *l.spec()).collect();
        let topology =
            Topology::new(input_count, specs).expect("layer stack must be size-consistent");
        Self {
            input_count,
            layers,
            topology,
            kernels: OnceLock::new(),
        }
    }

    /// Builds a network over `topology` with Gaussian random weights of
    /// standard deviation `scale / sqrt(fan_in)` (He-style), thresholds 1.
    ///
    /// Used for architectural experiments that need realistic weight
    /// *distributions* but not trained accuracy.
    pub fn random(topology: Topology, seed: u64, scale: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = topology
            .layers()
            .iter()
            .map(|&spec| {
                let n = spec.unique_weight_count();
                let std = scale / (spec.max_fan_in().max(1) as f32).sqrt();
                let weights = match spec {
                    LayerSpec::AvgPool { window, .. } => {
                        vec![1.0 / (window * window) as f32]
                    }
                    _ => (0..n).map(|_| gaussian(&mut rng) * std).collect(),
                };
                Layer::new(spec, weights, 1.0)
            })
            .collect();
        Self {
            input_count: topology.input_count(),
            layers,
            topology,
            kernels: OnceLock::new(),
        }
    }

    /// Number of input neurons.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// The weighted layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers. Invalidates the compiled-kernel
    /// cache: the next execution recompiles against the new weights /
    /// thresholds.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        self.kernels.take();
        &mut self.layers
    }

    /// The structural topology of this network (validated once at
    /// construction; borrowing it is free).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The compiled execution kernels, materializing them on first use.
    /// The `Arc` is shared: runners and batch calls all execute the same
    /// planes.
    pub fn compiled(&self) -> Arc<CompiledNetwork> {
        Arc::clone(self.kernels_ref())
    }

    fn kernels_ref(&self) -> &Arc<CompiledNetwork> {
        self.kernels
            .get_or_init(|| Arc::new(CompiledNetwork::compile(self)))
    }

    /// Output class count (size of the last layer).
    pub fn output_count(&self) -> usize {
        self.layers.last().expect("non-empty").spec().output_count()
    }

    /// ANN-mode forward pass: ReLU after every layer except the last;
    /// pooling layers stay linear. Returns the final-layer activations.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_count()`.
    pub fn forward_analog(&self, input: &[f32]) -> Vec<f32> {
        self.kernels_ref().forward(input)
    }

    /// ANN-mode forward pass returning every layer's post-activation
    /// output (used by the conversion normaliser).
    pub fn forward_analog_all(&self, input: &[f32]) -> Vec<Vec<f32>> {
        self.kernels_ref().forward_all(input)
    }

    /// Batched ANN-mode forward pass: evaluates every stimulus on the
    /// shared compiled kernels, in parallel across the batch. Results are
    /// identical to calling [`Self::forward_analog`] per stimulus.
    pub fn forward_analog_batch(&self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let kernels = self.kernels_ref();
        inputs.par_iter().map(|x| kernels.forward(x)).collect()
    }

    /// Batched variant of [`Self::forward_analog_all`]: per-stimulus,
    /// per-layer post-activation outputs.
    pub fn forward_analog_all_batch(&self, inputs: &[Vec<f32>]) -> Vec<Vec<Vec<f32>>> {
        let kernels = self.kernels_ref();
        inputs.par_iter().map(|x| kernels.forward_all(x)).collect()
    }

    /// Argmax classification in ANN mode.
    pub fn classify_analog(&self, input: &[f32]) -> usize {
        argmax(&self.forward_analog(input))
    }

    /// Batched argmax classification in ANN mode.
    pub fn classify_analog_batch(&self, inputs: &[Vec<f32>]) -> Vec<usize> {
        let kernels = self.kernels_ref();
        inputs
            .par_iter()
            .map(|x| argmax(&kernels.forward(x)))
            .collect()
    }

    /// Creates a spiking runner with fresh membranes (sharing the compiled
    /// kernels).
    pub fn spiking(&self) -> SnnRunner {
        SnnRunner::new(self)
    }

    /// Runs one spiking classification per raster, in parallel across the
    /// batch. Every runner shares the compiled kernels, so the synapse
    /// structure is enumerated once for the whole sweep. Results are
    /// identical to running each raster on a fresh [`SnnRunner`].
    pub fn spiking_batch(&self, rasters: &[SpikeRaster]) -> Vec<Classification> {
        let kernels = self.kernels_ref();
        rasters
            .par_iter()
            .map(|raster| {
                let mut runner = SnnRunner::from_compiled(Arc::clone(kernels));
                runner.run(raster)
            })
            .collect()
    }

    /// Batched variant of [`SnnRunner::run_traced`]: one classification
    /// *and* one full [`SpikeTrace`] per raster, in parallel across the
    /// batch on the shared compiled kernels. Results are identical to
    /// running each raster on a fresh runner.
    pub fn spiking_batch_traced(
        &self,
        rasters: &[SpikeRaster],
    ) -> Vec<(Classification, SpikeTrace)> {
        let kernels = self.kernels_ref();
        rasters
            .par_iter()
            .map(|raster| {
                let mut runner = SnnRunner::from_compiled(Arc::clone(kernels));
                runner.run_traced(raster)
            })
            .collect()
    }
}

/// Index of the maximum activation (shared by every classification path
/// so tie-breaking and NaN semantics cannot diverge between them).
pub(crate) fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite activations"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Event-driven functional SNN simulator over a [`Network`]'s compiled
/// kernels.
///
/// Each [`SnnRunner::step`] consumes one timestep of input spikes,
/// propagates them through every layer (all layers update concurrently on
/// the previous step's spikes is *not* assumed — the standard feed-forward
/// per-step sweep of the Diehl conversion flow is used) and returns the
/// output layer's spikes.
///
/// The runner owns an `Arc` of the compiled planes, so constructing one is
/// cheap (no synapse enumeration) and runners are freely movable across
/// threads — [`Network::spiking_batch`] builds one per stimulus.
#[derive(Debug, Clone)]
pub struct SnnRunner {
    kernels: Arc<CompiledNetwork>,
    membranes: Vec<Vec<Membrane>>,
    /// Per-layer input-current scratch, reused across steps.
    currents: Vec<Vec<f32>>,
    spikes: Vec<SpikeVector>,
    /// Cumulative spike counts per layer (for activity statistics).
    layer_spikes: Vec<u64>,
    /// Cumulative synaptic events (active-input fan-out sum) per layer.
    synaptic_events: Vec<u64>,
    steps_run: u64,
    output_counts: Vec<u32>,
    /// Timestep of each output neuron's first spike (`u32::MAX` =
    /// never fired), for first-spike-latency readouts.
    first_spikes: Vec<u32>,
}

impl SnnRunner {
    /// Creates a runner with silent membranes, compiling (or reusing) the
    /// network's kernels.
    pub fn new(net: &Network) -> Self {
        Self::from_compiled(net.compiled())
    }

    /// Creates a runner directly over compiled kernels.
    pub fn from_compiled(kernels: Arc<CompiledNetwork>) -> Self {
        let membranes = kernels
            .layers()
            .iter()
            .map(|l| vec![Membrane::new(); l.outputs()])
            .collect();
        let currents = kernels
            .layers()
            .iter()
            .map(|l| vec![0.0f32; l.outputs()])
            .collect();
        let spikes = kernels
            .layers()
            .iter()
            .map(|l| SpikeVector::new(l.outputs()))
            .collect();
        let n_layers = kernels.layer_count();
        let output_counts = vec![0; kernels.output_count()];
        let first_spikes = vec![u32::MAX; kernels.output_count()];
        Self {
            kernels,
            membranes,
            currents,
            spikes,
            layer_spikes: vec![0; n_layers],
            synaptic_events: vec![0; n_layers],
            steps_run: 0,
            output_counts,
            first_spikes,
        }
    }

    /// Advances one timestep; returns the output layer's spike vector.
    ///
    /// Accepts anything spike-shaped — `&SpikeVector` or a borrowed
    /// raster step ([`SpikeView`](crate::spike::SpikeView)).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != network.input_count()`.
    pub fn step(&mut self, input: impl AsSpikeView) -> &SpikeVector {
        let input = input.as_view();
        assert_eq!(
            input.len(),
            self.kernels.input_count(),
            "input size mismatch"
        );
        let n_layers = self.kernels.layer_count();
        for li in 0..n_layers {
            let layer = self.kernels.layer(li);
            let events = {
                let in_spikes = if li == 0 {
                    input
                } else {
                    self.spikes[li - 1].view()
                };
                let currents = &mut self.currents[li];
                currents.fill(0.0);
                layer.accumulate_spikes(in_spikes, currents)
            };
            self.synaptic_events[li] += events;
            let cfg = NeuronConfig::integrate_and_fire(layer.threshold());
            let out = &mut self.spikes[li];
            out.clear();
            for (o, m) in self.membranes[li].iter_mut().enumerate() {
                if m.step(self.currents[li][o], &cfg) {
                    out.set(o, true);
                    self.layer_spikes[li] += 1;
                }
            }
        }
        self.steps_run += 1;
        let out = &self.spikes[n_layers - 1];
        for o in out.iter_ones() {
            self.output_counts[o] += 1;
            if self.first_spikes[o] == u32::MAX {
                self.first_spikes[o] = (self.steps_run - 1) as u32;
            }
        }
        out
    }

    /// Runs an entire input raster; returns the classification outcome.
    pub fn run(&mut self, input: &SpikeRaster) -> Classification {
        for step in input.iter() {
            self.step(step);
        }
        self.outcome()
    }

    /// Runs a raster while recording every layer's spikes, for activity
    /// profiling. Returns the outcome and one raster per layer.
    pub fn run_recording(&mut self, input: &SpikeRaster) -> (Classification, Vec<SpikeRaster>) {
        let mut rasters: Vec<SpikeRaster> = self
            .kernels
            .layers()
            .iter()
            .map(|l| SpikeRaster::new(l.outputs()))
            .collect();
        for step in input.iter() {
            self.step(step);
            for (li, r) in rasters.iter_mut().enumerate() {
                r.push_view(self.spikes[li].view());
            }
        }
        (self.outcome(), rasters)
    }

    /// Runs a raster while capturing the full [`SpikeTrace`] — the input
    /// raster plus every layer's output raster on a shared timestep axis,
    /// the workload record the trace-driven architectural simulator
    /// replays. Recording costs one word copy of each layer's spike
    /// vector into the raster arena per step on top of [`Self::run`].
    pub fn run_traced(&mut self, input: &SpikeRaster) -> (Classification, SpikeTrace) {
        let (outcome, layer_rasters) = self.run_recording(input);
        let mut boundaries = Vec::with_capacity(layer_rasters.len() + 1);
        boundaries.push(input.clone());
        boundaries.extend(layer_rasters);
        (outcome, SpikeTrace::new(boundaries))
    }

    /// Runs a raster, stopping at the end of the first timestep in which
    /// any output neuron spikes — the temporal-coding early exit: under
    /// TTFS the earliest output spike *is* the answer, so the rest of the
    /// presentation only burns energy. The outcome covers exactly the
    /// steps consumed ([`Classification::steps`] tells how many); decode
    /// it with [`Readout::FirstSpike`].
    pub fn run_early_exit(&mut self, input: &SpikeRaster) -> Classification {
        for step in input.iter() {
            let fired = {
                let out = self.step(step);
                out.iter_ones().next().is_some()
            };
            if fired {
                break;
            }
        }
        self.outcome()
    }

    /// Early-exit variant of [`Self::run_traced`]: stops after the first
    /// timestep with an output spike and returns the outcome plus the
    /// *truncated* [`SpikeTrace`] — identical to the full trace cut at
    /// [`Classification::steps`], so replaying it through the event
    /// simulator prices exactly the steps the fabric really ran.
    pub fn run_traced_early_exit(&mut self, input: &SpikeRaster) -> (Classification, SpikeTrace) {
        let mut in_raster = SpikeRaster::new(self.kernels.input_count());
        let mut rasters: Vec<SpikeRaster> = self
            .kernels
            .layers()
            .iter()
            .map(|l| SpikeRaster::new(l.outputs()))
            .collect();
        for step in input.iter() {
            let fired = {
                let out = self.step(step);
                out.iter_ones().next().is_some()
            };
            in_raster.push_view(step);
            for (li, r) in rasters.iter_mut().enumerate() {
                r.push_view(self.spikes[li].view());
            }
            if fired {
                break;
            }
        }
        let mut boundaries = Vec::with_capacity(rasters.len() + 1);
        boundaries.push(in_raster);
        boundaries.extend(rasters);
        (self.outcome(), SpikeTrace::new(boundaries))
    }

    /// The outcome accumulated so far.
    pub fn outcome(&self) -> Classification {
        Classification {
            predicted: self
                .output_counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0),
            output_counts: self.output_counts.clone(),
            layer_rates: self
                .kernels
                .layers()
                .iter()
                .enumerate()
                .map(|(li, l)| {
                    if self.steps_run == 0 {
                        0.0
                    } else {
                        self.layer_spikes[li] as f64 / (self.steps_run as f64 * l.outputs() as f64)
                    }
                })
                .collect(),
            synaptic_events: self.synaptic_events.clone(),
            steps: self.steps_run,
            first_spike_steps: first_spike_options(&self.first_spikes),
        }
    }

    /// Resets membranes and statistics for a fresh stimulus.
    pub fn reset(&mut self) {
        for bank in &mut self.membranes {
            for m in bank {
                m.reset();
            }
        }
        for s in &mut self.spikes {
            s.clear();
        }
        self.layer_spikes.fill(0);
        self.synaptic_events.fill(0);
        self.output_counts.fill(0);
        self.first_spikes.fill(u32::MAX);
        self.steps_run = 0;
    }
}

/// Converts sentinel-encoded first-spike steps (`u32::MAX` = never) into
/// the outcome's `Option` representation (shared by both runner flavours).
fn first_spike_options(first_spikes: &[u32]) -> Vec<Option<u32>> {
    first_spikes
        .iter()
        .map(|&t| (t != u32::MAX).then_some(t))
        .collect()
}

/// Result of running a spiking classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Class with the highest output spike count (the rate readout).
    pub predicted: usize,
    /// Spike count per output neuron.
    pub output_counts: Vec<u32>,
    /// Mean per-neuron per-step firing rate of each layer.
    pub layer_rates: Vec<f64>,
    /// Total synaptic events (fan-out of active inputs) per layer.
    pub synaptic_events: Vec<u64>,
    /// Timesteps executed.
    pub steps: u64,
    /// Timestep of each output neuron's first spike (`None` = it never
    /// fired) — the first-spike-latency readout for temporal codes.
    pub first_spike_steps: Vec<Option<u32>>,
}

impl Classification {
    /// Reads out the predicted class under the given decoding rule —
    /// pick the rule matching the input code
    /// ([`Encoding::readout`](crate::encoding::Encoding::readout)).
    pub fn decode(&self, readout: Readout) -> usize {
        match readout {
            Readout::Rate => self.predicted,
            Readout::FirstSpike => self.predicted_by_first_spike(),
        }
    }

    /// First-spike-latency readout: the output neuron that fired
    /// earliest wins (ties broken by higher total spike count, then
    /// lower index). Falls back to the rate readout when no output
    /// spiked at all.
    pub fn predicted_by_first_spike(&self) -> usize {
        self.first_spike_steps
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (t, std::cmp::Reverse(self.output_counts[i]), i)))
            .min()
            .map(|(_, _, i)| i)
            .unwrap_or(self.predicted)
    }
}

pub mod reference {
    //! The original closure-walk execution path.
    //!
    //! Every call re-enumerates the synapse structure through
    //! [`LayerSpec::for_each_synapse`] and resolves weights through the
    //! `weight_ids` indirection — exactly the seed implementation this
    //! crate's compiled kernels replaced. It is kept as
    //!
    //! * the **equivalence oracle**: compiled kernels must reproduce these
    //!   results bit-for-bit (see `tests/compiled_equivalence.rs` and the
    //!   property tests), and
    //! * the **benchmark baseline**: the `snn_step` / `forward_batch` /
    //!   `accuracy_sweep` criterion groups in `resparc-bench` measure the
    //!   compiled speedup against this path.

    use super::{argmax, first_spike_options, Classification, Membrane, Network, NeuronConfig};
    use crate::spike::{AsSpikeView, SpikeRaster, SpikeVector};
    use crate::topology::LayerSpec;

    /// ANN-mode forward pass over the closure walk, returning every
    /// layer's post-activation output.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != net.input_count()`.
    pub fn forward_analog_all(net: &Network, input: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(input.len(), net.input_count(), "input size mismatch");
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(net.layers().len());
        let mut current: &[f32] = input;
        for (li, layer) in net.layers().iter().enumerate() {
            let mut out = vec![0.0f32; layer.spec().output_count()];
            let w = layer.weights();
            layer.spec().for_each_synapse(|o, i, wid| {
                out[o] += w[wid] * current[i];
            });
            let last = li + 1 == net.layers().len();
            if !last && !matches!(layer.spec(), LayerSpec::AvgPool { .. }) {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            acts.push(out);
            current = acts.last().expect("just pushed");
        }
        acts
    }

    /// ANN-mode forward pass over the closure walk (final layer only).
    pub fn forward_analog(net: &Network, input: &[f32]) -> Vec<f32> {
        forward_analog_all(net, input)
            .pop()
            .expect("at least one layer")
    }

    /// Argmax classification over [`forward_analog`].
    pub fn classify_analog(net: &Network, input: &[f32]) -> usize {
        argmax(&forward_analog(net, input))
    }

    /// Input-major adjacency with `weight_ids` indirection (the seed
    /// representation).
    #[derive(Debug, Clone)]
    struct InputMajor {
        indptr: Vec<u32>,
        targets: Vec<u32>,
        weight_ids: Vec<u32>,
    }

    impl InputMajor {
        fn from_spec(spec: &LayerSpec) -> Self {
            let inputs = spec.input_count();
            let mut counts = vec![0u32; inputs];
            spec.for_each_synapse(|_, i, _| counts[i] += 1);
            let mut indptr = Vec::with_capacity(inputs + 1);
            indptr.push(0u32);
            for &c in &counts {
                indptr.push(indptr.last().expect("non-empty") + c);
            }
            let total = *indptr.last().expect("non-empty") as usize;
            let mut targets = vec![0u32; total];
            let mut weight_ids = vec![0u32; total];
            let mut cursor: Vec<u32> = indptr[..inputs].to_vec();
            spec.for_each_synapse(|o, i, w| {
                let at = cursor[i] as usize;
                targets[at] = o as u32;
                weight_ids[at] = w as u32;
                cursor[i] += 1;
            });
            Self {
                indptr,
                targets,
                weight_ids,
            }
        }
    }

    /// The seed's event-driven spiking simulator: per-runner adjacency
    /// rebuilt from the closure walk, weight lookups through
    /// `weight_ids`.
    #[derive(Debug, Clone)]
    pub struct RefSnnRunner<'net> {
        net: &'net Network,
        adjacency: Vec<InputMajor>,
        membranes: Vec<Vec<Membrane>>,
        spikes: Vec<SpikeVector>,
        layer_spikes: Vec<u64>,
        synaptic_events: Vec<u64>,
        steps_run: u64,
        output_counts: Vec<u32>,
        first_spikes: Vec<u32>,
    }

    impl<'net> RefSnnRunner<'net> {
        /// Creates a runner, re-enumerating the whole synapse structure.
        pub fn new(net: &'net Network) -> Self {
            let adjacency = net
                .layers()
                .iter()
                .map(|l| InputMajor::from_spec(l.spec()))
                .collect();
            let membranes = net
                .layers()
                .iter()
                .map(|l| vec![Membrane::new(); l.spec().output_count()])
                .collect();
            let spikes = net
                .layers()
                .iter()
                .map(|l| SpikeVector::new(l.spec().output_count()))
                .collect();
            let n_layers = net.layers().len();
            Self {
                net,
                adjacency,
                membranes,
                spikes,
                layer_spikes: vec![0; n_layers],
                synaptic_events: vec![0; n_layers],
                steps_run: 0,
                output_counts: vec![0; net.output_count()],
                first_spikes: vec![u32::MAX; net.output_count()],
            }
        }

        /// Advances one timestep; returns the output layer's spikes.
        ///
        /// # Panics
        ///
        /// Panics if `input.len() != network.input_count()`.
        pub fn step(&mut self, input: impl AsSpikeView) -> &SpikeVector {
            let input = input.as_view();
            assert_eq!(input.len(), self.net.input_count(), "input size mismatch");
            let n_layers = self.net.layers().len();
            for li in 0..n_layers {
                let layer = &self.net.layers()[li];
                let adj = &self.adjacency[li];
                let w = layer.weights();
                let mut currents = vec![0.0f32; layer.spec().output_count()];
                {
                    let in_spikes = if li == 0 {
                        input
                    } else {
                        self.spikes[li - 1].view()
                    };
                    for i in in_spikes.iter_ones() {
                        let s = adj.indptr[i] as usize;
                        let e = adj.indptr[i + 1] as usize;
                        self.synaptic_events[li] += (e - s) as u64;
                        for k in s..e {
                            currents[adj.targets[k] as usize] += w[adj.weight_ids[k] as usize];
                        }
                    }
                }
                let cfg = NeuronConfig::integrate_and_fire(layer.threshold());
                let out = &mut self.spikes[li];
                out.clear();
                for (o, m) in self.membranes[li].iter_mut().enumerate() {
                    if m.step(currents[o], &cfg) {
                        out.set(o, true);
                        self.layer_spikes[li] += 1;
                    }
                }
            }
            self.steps_run += 1;
            let out = &self.spikes[n_layers - 1];
            for o in out.iter_ones() {
                self.output_counts[o] += 1;
                if self.first_spikes[o] == u32::MAX {
                    self.first_spikes[o] = (self.steps_run - 1) as u32;
                }
            }
            out
        }

        /// Runs an entire raster; returns the classification outcome.
        pub fn run(&mut self, input: &SpikeRaster) -> Classification {
            for step in input.iter() {
                self.step(step);
            }
            self.outcome()
        }

        /// The outcome accumulated so far.
        pub fn outcome(&self) -> Classification {
            Classification {
                predicted: self
                    .output_counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, c)| c)
                    .map(|(i, _)| i)
                    .unwrap_or(0),
                output_counts: self.output_counts.clone(),
                layer_rates: self
                    .net
                    .layers()
                    .iter()
                    .enumerate()
                    .map(|(li, l)| {
                        if self.steps_run == 0 {
                            0.0
                        } else {
                            self.layer_spikes[li] as f64
                                / (self.steps_run as f64 * l.spec().output_count() as f64)
                        }
                    })
                    .collect(),
                synaptic_events: self.synaptic_events.clone(),
                steps: self.steps_run,
                first_spike_steps: first_spike_options(&self.first_spikes),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::RegularEncoder;

    fn tiny_net() -> Network {
        // 2 -> 2 -> 2 identity chain: with unit weights and unit
        // thresholds, each layer relays its input's firing rate exactly.
        let l0 = Layer::new(
            LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            },
            vec![1.0, 0.0, 0.0, 1.0],
            1.0,
        );
        let l1 = Layer::new(
            LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            },
            vec![1.0, 0.0, 0.0, 1.0],
            1.0,
        );
        Network::new(2, vec![l0, l1])
    }

    #[test]
    fn analog_forward_computes_matvec() {
        let net = tiny_net();
        let out = net.forward_analog(&[1.0, 0.25]);
        assert_eq!(out, vec![1.0, 0.25]);
    }

    #[test]
    fn spiking_identity_net_relays_rate() {
        let net = tiny_net();
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.8, 0.1], 100);
        let mut runner = net.spiking();
        let outcome = runner.run(&raster);
        assert_eq!(outcome.predicted, 0);
        // Input 0 spikes 80 times; each spike adds 1.0 ≥ threshold twice
        // through the chain, so output 0 should fire ≈ 80 times.
        assert!(outcome.output_counts[0] >= 75);
        assert!(outcome.output_counts[1] <= 15);
    }

    #[test]
    fn spiking_rates_match_analog_for_linear_chain() {
        // Diehl conversion property: IF + subtract reset approximates the
        // analog activation ratio.
        let net = tiny_net();
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.6, 0.3], 200);
        let mut runner = net.spiking();
        let outcome = runner.run(&raster);
        let r0 = outcome.output_counts[0] as f64 / 200.0;
        let r1 = outcome.output_counts[1] as f64 / 200.0;
        assert!((r0 - 0.6).abs() < 0.05, "r0 {r0}");
        assert!((r1 - 0.3).abs() < 0.05, "r1 {r1}");
    }

    #[test]
    fn reset_clears_state() {
        let net = tiny_net();
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[1.0, 1.0], 10);
        let mut runner = net.spiking();
        runner.run(&raster);
        runner.reset();
        let outcome = runner.outcome();
        assert_eq!(outcome.steps, 0);
        assert!(outcome.output_counts.iter().all(|&c| c == 0));
        assert!(outcome.first_spike_steps.iter().all(|t| t.is_none()));
    }

    #[test]
    fn first_spike_readout_tracks_ttfs_latency() {
        use crate::encoding::TtfsEncoder;

        // Identity chain: the input with higher intensity spikes earlier
        // (TTFS) and relays straight to its output neuron.
        let net = tiny_net();
        let raster = TtfsEncoder::new().encode(&[0.2, 0.9], 20);
        let mut runner = net.spiking();
        let outcome = runner.run(&raster);
        assert_eq!(outcome.decode(Readout::FirstSpike), 1);
        let t0 = outcome.first_spike_steps[0].expect("input 0 spikes once");
        let t1 = outcome.first_spike_steps[1].expect("input 1 spikes once");
        assert!(t1 < t0, "higher intensity must fire first ({t1} vs {t0})");
        // The rate readout is unchanged by the new bookkeeping.
        assert_eq!(outcome.decode(Readout::Rate), outcome.predicted);
    }

    #[test]
    fn first_spike_readout_falls_back_on_silence() {
        let c = Classification {
            predicted: 2,
            output_counts: vec![0, 0, 0],
            layer_rates: vec![0.0],
            synaptic_events: vec![0],
            steps: 10,
            first_spike_steps: vec![None, None, None],
        };
        assert_eq!(c.predicted_by_first_spike(), 2);
        // Ties on latency break by spike count, then index.
        let c = Classification {
            predicted: 0,
            output_counts: vec![5, 2, 5],
            layer_rates: vec![0.0],
            synaptic_events: vec![0],
            steps: 10,
            first_spike_steps: vec![Some(3), Some(3), Some(1)],
        };
        assert_eq!(c.predicted_by_first_spike(), 2);
        let c = Classification {
            predicted: 0,
            output_counts: vec![5, 7, 5],
            layer_rates: vec![0.0],
            synaptic_events: vec![0],
            steps: 10,
            first_spike_steps: vec![Some(3), Some(3), Some(3)],
        };
        assert_eq!(c.predicted_by_first_spike(), 1);
    }

    #[test]
    fn early_exit_stops_at_first_output_spike_with_matching_trace() {
        use crate::encoding::TtfsEncoder;

        // Identity chain + TTFS input: the brighter input's single spike
        // relays through in order, so the run must stop well before the
        // window ends and the trace must be the full trace truncated at
        // that step.
        let net = tiny_net();
        let raster = TtfsEncoder::new().encode(&[0.3, 0.9], 24);
        let (full, full_trace) = net.spiking().run_traced(&raster);
        let (early, early_trace) = net.spiking().run_traced_early_exit(&raster);

        assert!(early.steps < full.steps, "early {} steps", early.steps);
        assert_eq!(early_trace.steps(), early.steps as usize);
        assert_eq!(early_trace, full_trace.truncated(early.steps as usize));
        // The first-spike decode is decided at the exit step.
        assert_eq!(early.decode(Readout::FirstSpike), 1);
        assert_eq!(
            early.decode(Readout::FirstSpike),
            full.decode(Readout::FirstSpike)
        );
        // The non-traced variant sees the identical outcome.
        assert_eq!(net.spiking().run_early_exit(&raster), early);
    }

    #[test]
    fn early_exit_on_silent_input_runs_the_whole_window() {
        let net = tiny_net();
        let mut raster = SpikeRaster::new(2);
        for _ in 0..5 {
            raster.push(SpikeVector::new(2));
        }
        let (outcome, trace) = net.spiking().run_traced_early_exit(&raster);
        assert_eq!(outcome.steps, 5, "nothing fires, nothing to exit on");
        assert_eq!(trace.steps(), 5);
        assert!(trace.is_silent());
    }

    #[test]
    fn random_network_has_right_shapes() {
        let t = Topology::mlp(10, &[7, 3]);
        let net = Network::random(t, 1, 1.0);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.layers()[0].weights().len(), 70);
        assert_eq!(net.output_count(), 3);
        // Deterministic per seed.
        let net2 = Network::random(Topology::mlp(10, &[7, 3]), 1, 1.0);
        assert_eq!(net, net2);
    }

    #[test]
    fn run_recording_returns_layer_rasters() {
        let net = tiny_net();
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[1.0, 0.0], 5);
        let mut runner = net.spiking();
        let (_, rasters) = runner.run_recording(&raster);
        assert_eq!(rasters.len(), 2);
        assert_eq!(rasters[0].len(), 5);
        assert_eq!(rasters[0].neurons(), 2);
        assert!(rasters[1].total_spikes() > 0);
    }

    #[test]
    fn run_traced_captures_all_boundaries() {
        let net = tiny_net();
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[1.0, 0.0], 6);
        let mut runner = net.spiking();
        let (outcome, trace) = runner.run_traced(&raster);
        assert_eq!(trace.boundary_count(), 3);
        assert_eq!(trace.steps(), 6);
        assert_eq!(trace.input(), &raster);
        // The recorded output boundary matches the outcome's counts.
        let out_counts = trace.layer_output(1).spike_counts();
        assert_eq!(out_counts, outcome.output_counts);

        // Batched traced run matches the serial one.
        let rasters = vec![raster.clone(), enc.encode(&[0.5, 1.0], 6)];
        let batched = net.spiking_batch_traced(&rasters);
        let mut serial = net.spiking();
        assert_eq!(batched[0], (outcome, trace));
        assert_eq!(batched[1], serial.run_traced(&rasters[1]));
    }

    #[test]
    fn synaptic_events_counted() {
        let net = tiny_net();
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[1.0, 1.0], 4);
        let mut runner = net.spiking();
        let outcome = runner.run(&raster);
        // Layer 0: 2 active inputs × fan-out 2 × 4 steps = 16 events.
        assert_eq!(outcome.synaptic_events[0], 16);
    }

    #[test]
    fn kernel_cache_is_shared_and_invalidated() {
        let mut net = Network::random(Topology::mlp(6, &[4, 2]), 2, 1.0);
        let a = net.compiled();
        let b = net.compiled();
        assert!(Arc::ptr_eq(&a, &b), "cache must be shared");
        let before = net.forward_analog(&[0.5; 6]);
        for w in net.layers_mut()[0].weights_mut() {
            *w = 0.0;
        }
        let c = net.compiled();
        assert!(!Arc::ptr_eq(&a, &c), "layers_mut must invalidate the cache");
        let after = net.forward_analog(&[0.5; 6]);
        assert_ne!(before, after, "stale kernels would keep old weights");
        assert!(after.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn batch_apis_match_single_calls() {
        let net = Network::random(Topology::mlp(12, &[9, 4]), 8, 1.0);
        let batch: Vec<Vec<f32>> = (0..10)
            .map(|s| (0..12).map(|i| ((s * 5 + i) % 7) as f32 / 7.0).collect())
            .collect();
        let batched = net.forward_analog_batch(&batch);
        let classes = net.classify_analog_batch(&batch);
        for (k, x) in batch.iter().enumerate() {
            assert_eq!(batched[k], net.forward_analog(x));
            assert_eq!(classes[k], net.classify_analog(x));
        }

        let enc = RegularEncoder::new(0.9);
        let rasters: Vec<SpikeRaster> = batch.iter().map(|x| enc.encode(x, 12)).collect();
        let outcomes = net.spiking_batch(&rasters);
        for (k, raster) in rasters.iter().enumerate() {
            let mut runner = net.spiking();
            assert_eq!(outcomes[k], runner.run(raster));
        }
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn layer_weight_mismatch_panics() {
        let _ = Layer::new(
            LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            },
            vec![1.0; 3],
            1.0,
        );
    }
}
