//! ANN → SNN conversion by data-based weight/threshold balancing.
//!
//! The paper's benchmarks are "trained using the supervised learning
//! algorithm proposed in \[4\]" (Diehl et al., IJCNN 2015): train a ReLU ANN,
//! then rescale each layer so that an Integrate-and-Fire network with unit
//! thresholds reproduces the ANN's activation ratios as firing rates. The
//! balancing used here is the data-based variant: for each layer, find the
//! `percentile`-th largest activation over a calibration set and scale
//! weights by the ratio of consecutive layer percentiles.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::convert::{normalize_for_snn, NormalizationReport};
//! use resparc_neuro::network::Network;
//! use resparc_neuro::topology::Topology;
//!
//! let mut net = Network::random(Topology::mlp(8, &[6, 3]), 5, 1.0);
//! let calib: Vec<Vec<f32>> = (0..16).map(|i| vec![(i as f32) / 16.0; 8]).collect();
//! let report: NormalizationReport = normalize_for_snn(&mut net, &calib, 0.99);
//! assert_eq!(report.scale_factors.len(), 2);
//! ```

use crate::network::Network;

/// Outcome of a normalisation pass: the per-layer activation percentiles
/// observed and the scale factor applied to each layer's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationReport {
    /// Observed per-layer activation percentile before scaling.
    pub activation_percentiles: Vec<f32>,
    /// Multiplicative factor applied to each layer's weights.
    pub scale_factors: Vec<f32>,
}

/// Rescales `net`'s weights in place (Diehl-style data-based
/// normalisation) so spiking inference with unit thresholds tracks the
/// analog activations. Returns what was measured and applied.
///
/// `percentile` selects the activation quantile used as "max" (`0.99` in
/// the original paper; `1.0` = strict max).
///
/// # Panics
///
/// Panics if `calibration` is empty or `percentile` is outside `(0, 1]`.
pub fn normalize_for_snn(
    net: &mut Network,
    calibration: &[Vec<f32>],
    percentile: f64,
) -> NormalizationReport {
    assert!(!calibration.is_empty(), "calibration set must be non-empty");
    assert!(
        percentile > 0.0 && percentile <= 1.0,
        "percentile must be in (0, 1], got {percentile}"
    );

    let n_layers = net.layers().len();
    // Gather all activations per layer across the calibration set. The
    // batched forward runs every stimulus on the shared compiled kernels
    // (one synapse enumeration for the whole pass), in parallel across the
    // batch; per-stimulus results are identical to the serial loop.
    // Chunking bounds transient memory: only one chunk's full per-layer
    // activations are live at a time, whatever the calibration size.
    const CALIBRATION_CHUNK: usize = 64;
    let mut per_layer: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
    for chunk in calibration.chunks(CALIBRATION_CHUNK) {
        for acts in net.forward_analog_all_batch(chunk) {
            for (li, a) in acts.into_iter().enumerate() {
                per_layer[li].extend(a.into_iter().filter(|v| *v > 0.0));
            }
        }
    }

    let percentiles: Vec<f32> = per_layer
        .iter()
        .map(|acts| quantile(acts, percentile))
        .collect();

    // Scale layer l by prev_p / p_l, where prev_p is the previous layer's
    // percentile (1.0 for the input, which is already in [0, 1]).
    let mut scale_factors = Vec::with_capacity(n_layers);
    let mut prev_p = 1.0f32;
    for (li, &p) in percentiles.iter().enumerate() {
        let p = if p <= 0.0 { 1.0 } else { p };
        let factor = prev_p / p;
        for w in net.layers_mut()[li].weights_mut() {
            *w *= factor;
        }
        scale_factors.push(factor);
        // After scaling, this layer's activations peak near 1.0.
        prev_p = 1.0;
    }

    NormalizationReport {
        activation_percentiles: percentiles,
        scale_factors,
    }
}

/// Outcome of a TTFS threshold re-balance: the per-layer cumulative-drive
/// percentiles observed and the thresholds installed.
#[derive(Debug, Clone, PartialEq)]
pub struct TtfsRebalanceReport {
    /// Observed per-layer positive-activation percentile (the total
    /// charge a one-spike-per-input presentation deposits).
    pub drive_percentiles: Vec<f32>,
    /// Threshold installed on each layer.
    pub thresholds: Vec<f32>,
}

/// Re-balances a rate-normalized network's **thresholds** for
/// time-to-first-spike input.
///
/// [`normalize_for_snn`] balances weights so per-*timestep* drive tracks
/// analog activations — correct for rate codes, where a neuron of
/// activation `a` is driven `≈ a` every step. A TTFS presentation
/// delivers each input's weight exactly **once** over the whole window,
/// so the *total* charge a neuron ever integrates is its analog
/// pre-activation (`≤ 1` after normalisation) and unit thresholds leave
/// the network almost silent — the accuracy collapse ROADMAP.md records.
///
/// The fix is latency-targeting: keep the weights (they encode the
/// function) and lower each layer's threshold to the fraction of the
/// layer's typical single-presentation drive that must accumulate before
/// the neuron fires. With threshold
/// `τ_l = latency_target × percentile(positive activations of layer l)`,
/// a strongly-driven neuron crosses `τ_l` after seeing roughly
/// `latency_target` of its input charge — early in the window, because
/// TTFS delivers high-intensity spikes first — while weakly-driven
/// neurons cross late or never: first-spike *order* carries the analog
/// ordering, which is exactly what [`Readout::FirstSpike`] decodes.
///
/// Smaller `latency_target` fires earlier (better latency/energy under
/// [early exit](crate::network::SnnRunner::run_early_exit), noisier
/// ordering); larger waits for more evidence. `0.25`–`0.5` is a good
/// range for Diehl-normalized MLPs.
///
/// Returns what was measured and installed. The weights are untouched,
/// so rate-coded behaviour can be restored by re-setting unit
/// thresholds.
///
/// [`Readout::FirstSpike`]: crate::encoding::Readout::FirstSpike
///
/// # Panics
///
/// Panics if `calibration` is empty, `percentile` is outside `(0, 1]` or
/// `latency_target` is outside `(0, 1]`.
pub fn rebalance_thresholds_for_ttfs(
    net: &mut Network,
    calibration: &[Vec<f32>],
    percentile: f64,
    latency_target: f32,
) -> TtfsRebalanceReport {
    assert!(!calibration.is_empty(), "calibration set must be non-empty");
    assert!(
        percentile > 0.0 && percentile <= 1.0,
        "percentile must be in (0, 1], got {percentile}"
    );
    assert!(
        latency_target > 0.0 && latency_target <= 1.0,
        "latency_target must be in (0, 1], got {latency_target}"
    );

    let n_layers = net.layers().len();
    const CALIBRATION_CHUNK: usize = 64;
    let mut per_layer: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
    for chunk in calibration.chunks(CALIBRATION_CHUNK) {
        for acts in net.forward_analog_all_batch(chunk) {
            for (li, a) in acts.into_iter().enumerate() {
                per_layer[li].extend(a.into_iter().filter(|v| *v > 0.0));
            }
        }
    }

    let drive_percentiles: Vec<f32> = per_layer
        .iter()
        .map(|acts| quantile(acts, percentile))
        .collect();
    let mut thresholds = Vec::with_capacity(n_layers);
    for (li, &p) in drive_percentiles.iter().enumerate() {
        // A layer whose calibration drive is degenerate keeps a sane
        // positive threshold rather than a zero one.
        let p = if p <= 0.0 { 1.0 } else { p };
        let tau = (p * latency_target).max(f32::MIN_POSITIVE);
        net.layers_mut()[li].set_threshold(tau);
        thresholds.push(tau);
    }

    TtfsRebalanceReport {
        drive_percentiles,
        thresholds,
    }
}

/// The `q`-th quantile of a sample (0 < q ≤ 1); 0 if the sample is empty.
fn quantile(xs: &[f32], q: f64) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite activations"));
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::RegularEncoder;
    use crate::network::{Layer, Network};
    use crate::topology::{LayerSpec, Topology};

    #[test]
    fn quantile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn normalization_caps_activations_near_one() {
        let mut net = Network::random(Topology::mlp(16, &[12, 4]), 11, 3.0);
        let calib: Vec<Vec<f32>> = (0..32)
            .map(|i| {
                (0..16)
                    .map(|j| ((i * 7 + j * 3) % 10) as f32 / 10.0)
                    .collect()
            })
            .collect();
        normalize_for_snn(&mut net, &calib, 1.0);
        // After normalisation, re-measured max activations are ≤ ~1.
        let mut max_act = 0.0f32;
        for x in &calib {
            for a in net.forward_analog_all(x) {
                for v in a {
                    max_act = max_act.max(v);
                }
            }
        }
        assert!(max_act <= 1.0 + 1e-4, "max activation {max_act}");
    }

    #[test]
    fn normalized_snn_tracks_analog_ratios() {
        // A hand-built net with large weights; after normalisation the
        // spiking rates should reproduce the analog output ordering.
        let l0 = Layer::new(
            LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            },
            vec![4.0, 0.0, 0.0, 2.0],
            1.0,
        );
        let mut net = Network::new(2, vec![l0]);
        let calib = vec![vec![1.0, 1.0], vec![0.5, 0.8]];
        normalize_for_snn(&mut net, &calib, 1.0);

        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.9, 0.9], 300);
        let mut runner = net.spiking();
        let out = runner.run(&raster);
        // Analog outputs are (4·0.9, 2·0.9): neuron 0 should fire about
        // twice as often as neuron 1.
        let ratio = out.output_counts[0] as f64 / out.output_counts[1].max(1) as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn report_shapes_match_layers() {
        let mut net = Network::random(Topology::mlp(4, &[3, 2]), 0, 1.0);
        let report = normalize_for_snn(&mut net, &[vec![0.5; 4]], 0.99);
        assert_eq!(report.scale_factors.len(), 2);
        assert_eq!(report.activation_percentiles.len(), 2);
        assert!(report
            .scale_factors
            .iter()
            .all(|f| f.is_finite() && *f > 0.0));
    }

    #[test]
    #[should_panic(expected = "calibration set must be non-empty")]
    fn empty_calibration_panics() {
        let mut net = Network::random(Topology::mlp(4, &[2]), 0, 1.0);
        normalize_for_snn(&mut net, &[], 0.99);
    }

    #[test]
    fn ttfs_rebalance_revives_a_silent_ttfs_net() {
        use crate::encoding::{Readout, TtfsEncoder};

        // A half-gain identity pair: rate-normalized thresholds of 1.0
        // can never be reached by a single TTFS spike (0.5 < 1), so the
        // net is silent under TTFS — the collapse the rebalance fixes.
        let l0 = Layer::new(
            LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            },
            vec![0.5, 0.0, 0.0, 0.5],
            1.0,
        );
        let mut net = Network::new(2, vec![l0]);
        let raster = TtfsEncoder::new().encode(&[0.4, 0.9], 16);
        let before = net.spiking().run(&raster);
        assert!(
            before.output_counts.iter().all(|&c| c == 0),
            "unit thresholds must stay silent under TTFS"
        );

        let calib = vec![vec![1.0, 1.0], vec![0.6, 0.9]];
        let report = rebalance_thresholds_for_ttfs(&mut net, &calib, 1.0, 0.5);
        assert_eq!(report.thresholds.len(), 1);
        assert!(report.thresholds[0] <= 0.5 * report.drive_percentiles[0] + 1e-6);
        assert_eq!(net.layers()[0].threshold(), report.thresholds[0]);

        let after = net.spiking().run(&raster);
        assert!(after.output_counts.iter().sum::<u32>() > 0);
        // The brighter input spikes earlier and wins the first-spike
        // readout.
        assert_eq!(after.decode(Readout::FirstSpike), 1);
        let t0 = after.first_spike_steps[0].expect("fires after rebalance");
        let t1 = after.first_spike_steps[1].expect("fires after rebalance");
        assert!(t1 < t0, "brighter input must fire first ({t1} vs {t0})");
    }

    #[test]
    fn ttfs_rebalance_keeps_weights_untouched() {
        let mut net = Network::random(Topology::mlp(12, &[8, 4]), 3, 1.0);
        let weights_before: Vec<Vec<f32>> =
            net.layers().iter().map(|l| l.weights().to_vec()).collect();
        let calib: Vec<Vec<f32>> = (0..8).map(|i| vec![(i as f32) / 8.0; 12]).collect();
        let report = rebalance_thresholds_for_ttfs(&mut net, &calib, 0.99, 0.3);
        assert_eq!(report.thresholds.len(), 2);
        assert!(report.thresholds.iter().all(|t| *t > 0.0));
        for (l, before) in net.layers().iter().zip(&weights_before) {
            assert_eq!(l.weights(), &before[..]);
        }
    }

    #[test]
    #[should_panic(expected = "latency_target")]
    fn ttfs_rebalance_rejects_bad_latency_target() {
        let mut net = Network::random(Topology::mlp(4, &[2]), 0, 1.0);
        rebalance_thresholds_for_ttfs(&mut net, &[vec![0.5; 4]], 0.99, 0.0);
    }
}
