//! ANN → SNN conversion by data-based weight/threshold balancing.
//!
//! The paper's benchmarks are "trained using the supervised learning
//! algorithm proposed in [4]" (Diehl et al., IJCNN 2015): train a ReLU ANN,
//! then rescale each layer so that an Integrate-and-Fire network with unit
//! thresholds reproduces the ANN's activation ratios as firing rates. The
//! balancing used here is the data-based variant: for each layer, find the
//! `percentile`-th largest activation over a calibration set and scale
//! weights by the ratio of consecutive layer percentiles.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::convert::{normalize_for_snn, NormalizationReport};
//! use resparc_neuro::network::Network;
//! use resparc_neuro::topology::Topology;
//!
//! let mut net = Network::random(Topology::mlp(8, &[6, 3]), 5, 1.0);
//! let calib: Vec<Vec<f32>> = (0..16).map(|i| vec![(i as f32) / 16.0; 8]).collect();
//! let report: NormalizationReport = normalize_for_snn(&mut net, &calib, 0.99);
//! assert_eq!(report.scale_factors.len(), 2);
//! ```

use crate::network::Network;

/// Outcome of a normalisation pass: the per-layer activation percentiles
/// observed and the scale factor applied to each layer's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationReport {
    /// Observed per-layer activation percentile before scaling.
    pub activation_percentiles: Vec<f32>,
    /// Multiplicative factor applied to each layer's weights.
    pub scale_factors: Vec<f32>,
}

/// Rescales `net`'s weights in place (Diehl-style data-based
/// normalisation) so spiking inference with unit thresholds tracks the
/// analog activations. Returns what was measured and applied.
///
/// `percentile` selects the activation quantile used as "max" (`0.99` in
/// the original paper; `1.0` = strict max).
///
/// # Panics
///
/// Panics if `calibration` is empty or `percentile` is outside `(0, 1]`.
pub fn normalize_for_snn(
    net: &mut Network,
    calibration: &[Vec<f32>],
    percentile: f64,
) -> NormalizationReport {
    assert!(!calibration.is_empty(), "calibration set must be non-empty");
    assert!(
        percentile > 0.0 && percentile <= 1.0,
        "percentile must be in (0, 1], got {percentile}"
    );

    let n_layers = net.layers().len();
    // Gather all activations per layer across the calibration set. The
    // batched forward runs every stimulus on the shared compiled kernels
    // (one synapse enumeration for the whole pass), in parallel across the
    // batch; per-stimulus results are identical to the serial loop.
    // Chunking bounds transient memory: only one chunk's full per-layer
    // activations are live at a time, whatever the calibration size.
    const CALIBRATION_CHUNK: usize = 64;
    let mut per_layer: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
    for chunk in calibration.chunks(CALIBRATION_CHUNK) {
        for acts in net.forward_analog_all_batch(chunk) {
            for (li, a) in acts.into_iter().enumerate() {
                per_layer[li].extend(a.into_iter().filter(|v| *v > 0.0));
            }
        }
    }

    let percentiles: Vec<f32> = per_layer
        .iter()
        .map(|acts| quantile(acts, percentile))
        .collect();

    // Scale layer l by prev_p / p_l, where prev_p is the previous layer's
    // percentile (1.0 for the input, which is already in [0, 1]).
    let mut scale_factors = Vec::with_capacity(n_layers);
    let mut prev_p = 1.0f32;
    for (li, &p) in percentiles.iter().enumerate() {
        let p = if p <= 0.0 { 1.0 } else { p };
        let factor = prev_p / p;
        for w in net.layers_mut()[li].weights_mut() {
            *w *= factor;
        }
        scale_factors.push(factor);
        // After scaling, this layer's activations peak near 1.0.
        prev_p = 1.0;
    }

    NormalizationReport {
        activation_percentiles: percentiles,
        scale_factors,
    }
}

/// The `q`-th quantile of a sample (0 < q ≤ 1); 0 if the sample is empty.
fn quantile(xs: &[f32], q: f64) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite activations"));
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::RegularEncoder;
    use crate::network::{Layer, Network};
    use crate::topology::{LayerSpec, Topology};

    #[test]
    fn quantile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn normalization_caps_activations_near_one() {
        let mut net = Network::random(Topology::mlp(16, &[12, 4]), 11, 3.0);
        let calib: Vec<Vec<f32>> = (0..32)
            .map(|i| {
                (0..16)
                    .map(|j| ((i * 7 + j * 3) % 10) as f32 / 10.0)
                    .collect()
            })
            .collect();
        normalize_for_snn(&mut net, &calib, 1.0);
        // After normalisation, re-measured max activations are ≤ ~1.
        let mut max_act = 0.0f32;
        for x in &calib {
            for a in net.forward_analog_all(x) {
                for v in a {
                    max_act = max_act.max(v);
                }
            }
        }
        assert!(max_act <= 1.0 + 1e-4, "max activation {max_act}");
    }

    #[test]
    fn normalized_snn_tracks_analog_ratios() {
        // A hand-built net with large weights; after normalisation the
        // spiking rates should reproduce the analog output ordering.
        let l0 = Layer::new(
            LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            },
            vec![4.0, 0.0, 0.0, 2.0],
            1.0,
        );
        let mut net = Network::new(2, vec![l0]);
        let calib = vec![vec![1.0, 1.0], vec![0.5, 0.8]];
        normalize_for_snn(&mut net, &calib, 1.0);

        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.9, 0.9], 300);
        let mut runner = net.spiking();
        let out = runner.run(&raster);
        // Analog outputs are (4·0.9, 2·0.9): neuron 0 should fire about
        // twice as often as neuron 1.
        let ratio = out.output_counts[0] as f64 / out.output_counts[1].max(1) as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn report_shapes_match_layers() {
        let mut net = Network::random(Topology::mlp(4, &[3, 2]), 0, 1.0);
        let report = normalize_for_snn(&mut net, &[vec![0.5; 4]], 0.99);
        assert_eq!(report.scale_factors.len(), 2);
        assert_eq!(report.activation_percentiles.len(), 2);
        assert!(report
            .scale_factors
            .iter()
            .all(|f| f.is_finite() && *f > 0.0));
    }

    #[test]
    #[should_panic(expected = "calibration set must be non-empty")]
    fn empty_calibration_panics() {
        let mut net = Network::random(Topology::mlp(4, &[2]), 0, 1.0);
        normalize_for_snn(&mut net, &[], 0.99);
    }
}
