//! Spike-activity statistics consumed by the architectural simulators.
//!
//! The RESPARC and CMOS-baseline simulators are *activity-driven*: given a
//! network topology and how often each layer spikes, they compute cycles
//! and energy. An [`ActivityProfile`] carries exactly that — per-boundary
//! firing rates plus (optionally) measured zero-packet probabilities, the
//! statistic the event-driven zero-check hardware exploits (paper §3.2,
//! Fig. 13).
//!
//! "Boundary" indexing: boundary `0` is the network input, boundary `l`
//! (1-based) is the output of layer `l-1`. A network with `L` layers has
//! `L + 1` boundaries.
//!
//! Profiles can be *measured* from functional-simulation rasters
//! ([`ActivityProfile::measure`]) or built analytically from assumed rates
//! ([`ActivityProfile::uniform`]); measured profiles capture the spatial
//! clustering of activity (e.g. MNIST's black background) that makes real
//! zero-packet fractions much higher than the independence assumption
//! predicts.

use std::collections::BTreeMap;

use crate::spike::SpikeRaster;

/// Spike statistics at one layer boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryStats {
    /// Number of neurons at this boundary.
    pub neurons: usize,
    /// Mean per-neuron, per-timestep firing probability.
    pub rate: f64,
    /// Measured P(all-zero) for specific packet widths; if absent, the
    /// independence estimate `(1 - rate)^width` is used.
    pub measured_zero: BTreeMap<u32, f64>,
}

impl BoundaryStats {
    /// Creates analytic stats with no measurements.
    pub fn analytic(neurons: usize, rate: f64) -> Self {
        Self {
            neurons,
            rate: rate.clamp(0.0, 1.0),
            measured_zero: BTreeMap::new(),
        }
    }

    /// Probability that a `width`-bit spike packet at this boundary is
    /// all-zero. Uses the measurement for `width` if present, otherwise
    /// the nearest measured width rescaled, otherwise `(1-rate)^width`.
    pub fn zero_packet_prob(&self, width: u32) -> f64 {
        if let Some(&p) = self.measured_zero.get(&width) {
            return p;
        }
        if let Some((&w0, &p0)) = self
            .measured_zero
            .iter()
            .min_by_key(|(&w, _)| w.abs_diff(width))
        {
            // Rescale assuming per-window independence: a width-w packet is
            // w/w0 windows of width w0.
            if p0 <= 0.0 {
                return 0.0;
            }
            return p0.powf(width as f64 / w0 as f64).clamp(0.0, 1.0);
        }
        (1.0 - self.rate).powi(width as i32).clamp(0.0, 1.0)
    }
}

/// Per-boundary activity statistics for a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    boundaries: Vec<BoundaryStats>,
}

impl ActivityProfile {
    /// Builds a profile from explicit boundary stats.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is empty (a profile needs at least the input
    /// boundary).
    pub fn new(boundaries: Vec<BoundaryStats>) -> Self {
        assert!(
            !boundaries.is_empty(),
            "profile needs at least one boundary"
        );
        Self { boundaries }
    }

    /// Builds an analytic profile: the input boundary at `input_rate`,
    /// every layer boundary at `layer_rate`.
    pub fn uniform(neuron_counts: &[usize], input_rate: f64, layer_rate: f64) -> Self {
        assert!(
            !neuron_counts.is_empty(),
            "need at least the input boundary"
        );
        let boundaries = neuron_counts
            .iter()
            .enumerate()
            .map(|(i, &n)| BoundaryStats::analytic(n, if i == 0 { input_rate } else { layer_rate }))
            .collect();
        Self { boundaries }
    }

    /// Measures a profile from rasters: `input` plus one raster per layer
    /// (as produced by `SnnRunner::run_recording`). Zero-packet fractions
    /// are measured at the given packet widths.
    pub fn measure(input: &SpikeRaster, layers: &[SpikeRaster], widths: &[u32]) -> Self {
        let mut boundaries = Vec::with_capacity(layers.len() + 1);
        for raster in std::iter::once(input).chain(layers.iter()) {
            let mut measured_zero = BTreeMap::new();
            for &w in widths {
                measured_zero.insert(w, raster.zero_packet_fraction(w as usize));
            }
            boundaries.push(BoundaryStats {
                neurons: raster.neurons(),
                rate: raster.mean_rate(),
                measured_zero,
            });
        }
        Self { boundaries }
    }

    /// Number of boundaries (`layers + 1`).
    pub fn boundary_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Stats at boundary `b` (0 = network input).
    pub fn boundary(&self, b: usize) -> &BoundaryStats {
        &self.boundaries[b]
    }

    /// Mean firing rate at boundary `b`.
    pub fn rate(&self, b: usize) -> f64 {
        self.boundaries[b].rate
    }

    /// Zero-packet probability at boundary `b` for packets of `width`
    /// bits.
    pub fn zero_packet_prob(&self, b: usize, width: u32) -> f64 {
        self.boundaries[b].zero_packet_prob(width)
    }

    /// Merges another profile measured on a different stimulus by
    /// averaging rates and measured zero fractions (boundary-wise).
    ///
    /// # Panics
    ///
    /// Panics if the profiles' boundary structures differ.
    pub fn average_with(&mut self, other: &ActivityProfile) {
        assert_eq!(
            self.boundaries.len(),
            other.boundaries.len(),
            "profile shapes differ"
        );
        for (a, b) in self.boundaries.iter_mut().zip(&other.boundaries) {
            assert_eq!(a.neurons, b.neurons, "boundary sizes differ");
            a.rate = (a.rate + b.rate) / 2.0;
            for (&w, &p) in &b.measured_zero {
                let entry = a.measured_zero.entry(w).or_insert(p);
                *entry = (*entry + p) / 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spike::SpikeVector;

    #[test]
    fn analytic_zero_prob_is_independence_power() {
        let b = BoundaryStats::analytic(100, 0.1);
        let p = b.zero_packet_prob(32);
        assert!((p - 0.9f64.powi(32)).abs() < 1e-12);
    }

    #[test]
    fn measured_zero_prob_overrides_analytic() {
        let mut b = BoundaryStats::analytic(100, 0.1);
        b.measured_zero.insert(32, 0.5);
        assert_eq!(b.zero_packet_prob(32), 0.5);
        // Width 64 rescales from the width-32 measurement: 0.5^2.
        assert!((b.zero_packet_prob(64) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uniform_profile_shapes() {
        let p = ActivityProfile::uniform(&[784, 800, 10], 0.3, 0.1);
        assert_eq!(p.boundary_count(), 3);
        assert_eq!(p.rate(0), 0.3);
        assert_eq!(p.rate(2), 0.1);
        assert_eq!(p.boundary(1).neurons, 800);
    }

    #[test]
    fn measured_profile_from_rasters() {
        let mut input = SpikeRaster::new(64);
        let mut v = SpikeVector::new(64);
        v.set(3, true);
        input.push(v);
        input.push(SpikeVector::new(64));

        let mut l0 = SpikeRaster::new(32);
        l0.push(SpikeVector::new(32));
        l0.push(SpikeVector::from_bools(&[true; 32]));

        let p = ActivityProfile::measure(&input, &[l0], &[16, 32]);
        assert_eq!(p.boundary_count(), 2);
        assert!((p.rate(0) - 1.0 / 128.0).abs() < 1e-12);
        assert_eq!(p.rate(1), 0.5);
        // Input: 8 windows of 16 bits, 1 non-zero.
        assert!((p.zero_packet_prob(0, 16) - 7.0 / 8.0).abs() < 1e-12);
        // Layer 0 at width 32: half the windows all-zero... step 1 is all
        // ones, step 0 all zero → 1/2.
        assert!((p.zero_packet_prob(1, 32) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn averaging_combines_profiles() {
        let mut a = ActivityProfile::uniform(&[10, 5], 0.2, 0.4);
        let b = ActivityProfile::uniform(&[10, 5], 0.4, 0.2);
        a.average_with(&b);
        assert!((a.rate(0) - 0.3).abs() < 1e-12);
        assert!((a.rate(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "profile shapes differ")]
    fn averaging_rejects_mismatched_shapes() {
        let mut a = ActivityProfile::uniform(&[10, 5], 0.2, 0.4);
        let b = ActivityProfile::uniform(&[10, 5, 2], 0.4, 0.2);
        a.average_with(&b);
    }
}
