//! Offline supervised training.
//!
//! The paper assumes its SNNs "have been trained offline using supervised
//! training algorithms" (Diehl et al. \[4\]: train a conventional ANN, then
//! convert). This module provides the offline side: a small but complete
//! mini-batch SGD trainer for MLPs (ReLU hidden layers, softmax
//! cross-entropy output) plus a fixed-random convolutional frontend for
//! CNN-shaped experiments, where only the dense head is trained — a
//! standard random-features substitution documented in DESIGN.md.
//!
//! Networks are trained **without bias terms**, exactly as the Diehl
//! conversion flow requires (biases have no natural crossbar realisation
//! and break rate-based conversion). Consequently classes must be
//! *direction*-separable in input space — true for images, and for the
//! synthetic datasets in `resparc-workloads`.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::train::{train_mlp, TrainConfig};
//!
//! // Learn the "is the first input bigger?" task.
//! let samples: Vec<(Vec<f32>, usize)> = (0..64)
//!     .map(|i| {
//!         let a = (i % 8) as f32 / 8.0;
//!         let b = ((i / 8) % 8) as f32 / 8.0;
//!         (vec![a, b], usize::from(a > b))
//!     })
//!     .collect();
//! let net = train_mlp(2, &[8, 2], &samples, &TrainConfig::quick_test());
//! let acc = samples
//!     .iter()
//!     .filter(|(x, y)| net.classify_analog(x) == *y)
//!     .count() as f64
//!     / samples.len() as f64;
//! assert!(acc > 0.8, "accuracy {acc}");
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

use crate::network::{Layer, Network};
use crate::topology::{ChannelTable, LayerSpec, Padding, Shape, Topology};

/// Hyper-parameters for [`train_mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl TrainConfig {
    /// A fast configuration for unit tests and doc examples.
    pub fn quick_test() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 60,
            batch_size: 16,
            weight_decay: 0.0,
            seed: 7,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            epochs: 25,
            batch_size: 32,
            weight_decay: 1e-5,
            seed: 42,
        }
    }
}

/// Trains an MLP (`input -> hidden... -> classes`, all dense) with
/// mini-batch SGD, ReLU hidden activations and softmax cross-entropy loss.
///
/// Returns a [`Network`] with thresholds 1.0 (normalise with
/// [`crate::convert::normalize_for_snn`] before spiking use).
///
/// # Panics
///
/// Panics if `samples` is empty, `layer_sizes` is empty, or any sample's
/// input length differs from `input_dim`.
pub fn train_mlp(
    input_dim: usize,
    layer_sizes: &[usize],
    samples: &[(Vec<f32>, usize)],
    cfg: &TrainConfig,
) -> Network {
    assert!(!samples.is_empty(), "training set must be non-empty");
    assert!(!layer_sizes.is_empty(), "need at least an output layer");
    for (x, _) in samples {
        assert_eq!(x.len(), input_dim, "sample input size mismatch");
    }
    let classes = *layer_sizes.last().expect("non-empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // He-initialised dense weight matrices, stored output-major
    // (w[o * inputs + i]) to match LayerSpec::Dense weight ids.
    let mut dims = Vec::with_capacity(layer_sizes.len() + 1);
    dims.push(input_dim);
    dims.extend_from_slice(layer_sizes);
    let mut weights: Vec<Vec<f32>> = dims
        .windows(2)
        .map(|d| {
            let (fan_in, fan_out) = (d[0], d[1]);
            let std = (2.0 / fan_in as f32).sqrt();
            (0..fan_in * fan_out)
                .map(|_| gaussian(&mut rng) * std)
                .collect()
        })
        .collect();

    let n_layers = weights.len();
    let mut order: Vec<usize> = (0..samples.len()).collect();

    for _epoch in 0..cfg.epochs {
        shuffle(&mut order, &mut rng);
        for batch in order.chunks(cfg.batch_size) {
            let mut grads: Vec<Vec<f32>> = weights.iter().map(|w| vec![0.0f32; w.len()]).collect();
            for &si in batch {
                let (x, y) = &samples[si];
                // Forward, keeping activations.
                let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n_layers + 1);
                acts.push(x.clone());
                for (li, w) in weights.iter().enumerate() {
                    let (fan_in, fan_out) = (dims[li], dims[li + 1]);
                    let prev = &acts[li];
                    let mut out = vec![0.0f32; fan_out];
                    for o in 0..fan_out {
                        let row = &w[o * fan_in..(o + 1) * fan_in];
                        out[o] = row.iter().zip(prev).map(|(a, b)| a * b).sum();
                    }
                    if li + 1 < n_layers {
                        for v in &mut out {
                            *v = v.max(0.0);
                        }
                    }
                    acts.push(out);
                }
                // Softmax cross-entropy gradient at the output.
                let logits = acts.last().expect("output");
                let mut delta = softmax(logits);
                delta[*y] -= 1.0;
                // Backward.
                let mut deltas = delta;
                for li in (0..n_layers).rev() {
                    let (fan_in, fan_out) = (dims[li], dims[li + 1]);
                    let prev = &acts[li];
                    let g = &mut grads[li];
                    for o in 0..fan_out {
                        let d = deltas[o];
                        if d == 0.0 {
                            continue;
                        }
                        let row = &mut g[o * fan_in..(o + 1) * fan_in];
                        for (gi, &p) in row.iter_mut().zip(prev) {
                            *gi += d * p;
                        }
                    }
                    if li > 0 {
                        let w = &weights[li];
                        let mut next = vec![0.0f32; fan_in];
                        for o in 0..fan_out {
                            let d = deltas[o];
                            if d == 0.0 {
                                continue;
                            }
                            let row = &w[o * fan_in..(o + 1) * fan_in];
                            for (n, &wv) in next.iter_mut().zip(row) {
                                *n += d * wv;
                            }
                        }
                        // ReLU derivative gate.
                        for (n, &a) in next.iter_mut().zip(&acts[li]) {
                            if a <= 0.0 {
                                *n = 0.0;
                            }
                        }
                        deltas = next;
                    }
                }
            }
            let scale = cfg.learning_rate / batch.len() as f32;
            for (w, g) in weights.iter_mut().zip(&grads) {
                for (wv, &gv) in w.iter_mut().zip(g) {
                    *wv -= scale * gv + cfg.weight_decay * *wv;
                }
            }
        }
    }

    let layers = dims
        .windows(2)
        .zip(weights)
        .map(|(d, w)| {
            Layer::new(
                LayerSpec::Dense {
                    inputs: d[0],
                    outputs: d[1],
                },
                w,
                1.0,
            )
        })
        .collect();
    let net = Network::new(input_dim, layers);
    debug_assert_eq!(net.output_count(), classes);
    net
}

/// Builds a CNN-shaped network whose convolutional frontend uses *fixed
/// random* filters (He-scaled) and whose dense head is trained on the
/// frontend's features.
///
/// This is the documented substitution for full CNN backprop: the paper
/// only needs trained-looking weight distributions and an
/// accuracy-vs-precision trend, which random convolutional features plus a
/// trained head deliver.
///
/// # Panics
///
/// Panics if `head_sizes` is empty or `samples` is empty.
pub fn train_cnn_with_random_frontend(
    input: Shape,
    frontend: &[FrontendLayer],
    head_sizes: &[usize],
    samples: &[(Vec<f32>, usize)],
    cfg: &TrainConfig,
) -> Network {
    assert!(!head_sizes.is_empty(), "need at least an output layer");
    // Build the frontend topology.
    let mut builder = Topology::builder(input);
    for fl in frontend {
        builder = match *fl {
            FrontendLayer::Conv { maps, kernel, fan } => builder.conv(
                maps,
                kernel,
                Padding::Valid,
                match fan {
                    0 => ChannelTable::Full,
                    f => ChannelTable::Banded { fan: f },
                },
            ),
            FrontendLayer::Pool { window } => builder.pool(window),
        };
    }
    let front_topology = builder
        .clone()
        .dense(*head_sizes.last().expect("non-empty"))
        .build()
        .expect("builder output is consistent");
    let front_layer_count = front_topology.layer_count() - 1;
    let front_net = Network::random(
        Topology::new(
            input.count(),
            front_topology.layers()[..front_layer_count].to_vec(),
        )
        .expect("frontend prefix is consistent"),
        cfg.seed ^ 0x5eed,
        1.2,
    );

    // Extract features for every sample on the frontend's compiled
    // kernels (one enumeration of the conv geometry for the whole set),
    // in parallel across samples.
    let feat_dim = front_net
        .layers()
        .last()
        .expect("frontend")
        .spec()
        .output_count();
    let kernels = front_net.compiled();
    let feats: Vec<(Vec<f32>, usize)> = samples
        .par_iter()
        .map(|(x, y)| {
            let f = kernels.forward(x);
            // Frontend outputs feed the head post-ReLU.
            (f.iter().map(|v| v.max(0.0)).collect(), *y)
        })
        .collect();
    let head = train_mlp(feat_dim, head_sizes, &feats, cfg);

    // Stitch frontend + head into one network.
    let mut layers: Vec<Layer> = front_net.layers().to_vec();
    layers.extend(head.layers().iter().cloned());
    Network::new(input.count(), layers)
}

/// One frontend layer description for
/// [`train_cnn_with_random_frontend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendLayer {
    /// Valid-padded convolution; `fan == 0` means a full channel table.
    Conv {
        /// Output feature maps.
        maps: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Banded channel-table fan (0 = full).
        fan: usize,
    },
    /// Non-overlapping average pooling.
    Pool {
        /// Window edge.
        window: usize,
    },
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two direction-separable Gaussian blobs in 4-D. Note the networks
    /// (like Diehl-converted SNNs) have no bias terms, so classes must
    /// differ in *direction*, not just magnitude.
    fn blob_samples(n: usize, seed: u64) -> Vec<(Vec<f32>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let class = i % 2;
                let x = (0..4)
                    .map(|d| {
                        let center = if d % 2 == class { 0.8 } else { 0.2 };
                        (center + 0.08 * gaussian(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                (x, class)
            })
            .collect()
    }

    #[test]
    fn mlp_learns_separable_blobs() {
        let train = blob_samples(200, 1);
        let test = blob_samples(60, 2);
        let net = train_mlp(4, &[16, 2], &train, &TrainConfig::quick_test());
        let acc = test
            .iter()
            .filter(|(x, y)| net.classify_analog(x) == *y)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let train = blob_samples(50, 3);
        let cfg = TrainConfig::quick_test();
        let a = train_mlp(4, &[8, 2], &train, &cfg);
        let b = train_mlp(4, &[8, 2], &train, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn cnn_random_frontend_trains_head() {
        // 8x8 inputs, 2 classes: left-half bright vs right-half bright.
        let mut samples = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..120 {
            let class = i % 2;
            let mut img = vec![0.0f32; 64];
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if class == 0 { x < 4 } else { x >= 4 };
                    img[y * 8 + x] = if bright {
                        0.7 + 0.3 * rng.random::<f32>()
                    } else {
                        0.1 * rng.random::<f32>()
                    };
                }
            }
            samples.push((img, class));
        }
        let net = train_cnn_with_random_frontend(
            Shape::new(8, 8, 1),
            &[
                FrontendLayer::Conv {
                    maps: 4,
                    kernel: 3,
                    fan: 0,
                },
                FrontendLayer::Pool { window: 2 },
            ],
            &[8, 2],
            &samples,
            &TrainConfig::quick_test(),
        );
        // Network shape: conv, pool, dense, dense.
        assert_eq!(net.layers().len(), 4);
        let acc = samples
            .iter()
            .filter(|(x, y)| net.classify_analog(x) == *y)
            .count() as f64
            / samples.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let _ = train_mlp(4, &[2], &[], &TrainConfig::quick_test());
    }
}
