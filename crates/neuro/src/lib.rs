//! Spiking-neural-network substrate for the RESPARC reproduction.
//!
//! RESPARC (DAC 2017) accelerates *deep spiking neural networks*; this
//! crate is the complete algorithm-level substrate the architecture runs:
//!
//! * [`neuron`] — Integrate-and-Fire (and leaky) neuron dynamics,
//! * [`spike`] — bit-packed spike vectors/rasters and the zero-packet
//!   statistics behind the paper's event-driven optimisation,
//! * [`encoding`] — spike coding schemes behind the [`encoding::SpikeEncoder`]
//!   trait: Poisson/regular rate codes plus temporal TTFS and burst codes,
//!   with matching [`encoding::Readout`] rules,
//! * [`topology`] — MLP/CNN layer structures with a single synapse
//!   enumeration shared by simulator and hardware mapper,
//! * [`connectivity`] — per-layer sparse connectivity matrices,
//! * [`network`] — weighted networks, analog (ANN) forward pass and the
//!   event-driven functional SNN simulator (single-stimulus and batched),
//! * [`kernel`] — compiled synapse kernels: resolved-weight execution
//!   planes materialized once per network and shared by every path,
//! * [`train`] — offline SGD training (MLPs; random-feature frontends for
//!   CNNs),
//! * [`convert`] — Diehl-style ANN→SNN weight/threshold balancing,
//! * [`quantize`] — `2^bits`-level weight discretization (paper Fig. 14),
//! * [`stats`] — activity profiles consumed by the architecture and
//!   baseline simulators.
//!
//! # Examples
//!
//! End-to-end: train, convert, quantize, run spiking inference.
//!
//! ```
//! use resparc_neuro::prelude::*;
//!
//! // 1. Offline training on a toy task.
//! let samples: Vec<(Vec<f32>, usize)> = (0..60)
//!     .map(|i| {
//!         let v = (i % 10) as f32 / 10.0;
//!         (vec![v, 1.0 - v], usize::from(v > 0.5))
//!     })
//!     .collect();
//! let mut net = train_mlp(2, &[8, 2], &samples, &TrainConfig::quick_test());
//!
//! // 2. Balance for spiking operation and quantize to the paper's 4 bits.
//! let calib: Vec<Vec<f32>> = samples.iter().take(16).map(|(x, _)| x.clone()).collect();
//! normalize_for_snn(&mut net, &calib, 0.99);
//! let (net, _) = quantize_network(&net, Precision::paper_default());
//!
//! // 3. Rate-encode an input and classify with spikes.
//! let mut enc = PoissonEncoder::new(0.9, 1);
//! let raster = enc.encode(&[0.9, 0.1], 100);
//! let outcome = net.spiking().run(&raster);
//! assert_eq!(outcome.predicted, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod connectivity;
pub mod convert;
pub mod encoding;
pub mod kernel;
pub mod network;
pub mod neuron;
pub mod quantize;
pub mod spike;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod train;

pub use connectivity::ConnectivityMatrix;
pub use convert::{
    normalize_for_snn, rebalance_thresholds_for_ttfs, NormalizationReport, TtfsRebalanceReport,
};
pub use encoding::{
    BurstEncoder, Encoding, PoissonEncoder, Readout, RegularEncoder, SpikeEncoder, TtfsEncoder,
};
pub use kernel::{CompiledLayer, CompiledNetwork};
pub use network::{Classification, Layer, Network, SnnRunner};
pub use neuron::{Membrane, NeuronConfig, NeuronPool, ResetMode};
pub use quantize::{quantize_network, Precision};
pub use spike::{SpikeRaster, SpikeVector};
pub use stats::{ActivityProfile, BoundaryStats};
pub use topology::{ChannelTable, LayerSpec, Padding, Shape, Topology, TopologyError};
pub use trace::SpikeTrace;
pub use train::{train_cnn_with_random_frontend, train_mlp, FrontendLayer, TrainConfig};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::connectivity::ConnectivityMatrix;
    pub use crate::convert::{
        normalize_for_snn, rebalance_thresholds_for_ttfs, NormalizationReport, TtfsRebalanceReport,
    };
    pub use crate::encoding::{
        BurstEncoder, Encoding, PoissonEncoder, Readout, RegularEncoder, SpikeEncoder, TtfsEncoder,
    };
    pub use crate::kernel::{CompiledLayer, CompiledNetwork};
    pub use crate::network::{Classification, Layer, Network, SnnRunner};
    pub use crate::neuron::{Membrane, NeuronConfig, NeuronPool, ResetMode};
    pub use crate::quantize::{quantize_network, Precision};
    pub use crate::spike::{SpikeRaster, SpikeVector};
    pub use crate::stats::{ActivityProfile, BoundaryStats};
    pub use crate::topology::{ChannelTable, LayerSpec, Padding, Shape, Topology, TopologyError};
    pub use crate::trace::SpikeTrace;
    pub use crate::train::{train_cnn_with_random_frontend, train_mlp, FrontendLayer, TrainConfig};
}
