//! Spiking neuron models.
//!
//! RESPARC interfaces its crossbar columns with Integrate-and-Fire (IF)
//! neurons (paper §2.1): the column current accumulates onto a membrane
//! potential and the neuron emits a spike (and resets) when the potential
//! crosses a threshold. A leaky variant (LIF) is provided for completeness —
//! the paper notes "any spiking neuron can be interfaced with the MCA".
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::neuron::{Membrane, NeuronConfig};
//!
//! let cfg = NeuronConfig::integrate_and_fire(1.0);
//! let mut m = Membrane::new();
//! assert!(!m.step(0.6, &cfg)); // 0.6 < threshold
//! assert!(m.step(0.6, &cfg));  // 1.2 ≥ threshold → spike
//! ```

/// What happens to the membrane potential when a neuron fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetMode {
    /// Reset the potential to zero (classic IF reset).
    #[default]
    ToZero,
    /// Subtract the threshold, preserving the residue. This is the reset
    /// used for rate-faithful ANN→SNN conversion (Diehl et al. \[4\]).
    Subtract,
}

/// Parameters of a spiking neuron.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuronConfig {
    /// Firing threshold.
    pub threshold: f32,
    /// Reset behaviour on firing.
    pub reset: ResetMode,
    /// Multiplicative membrane leak per timestep (`1.0` = no leak / pure
    /// IF; `0.95` decays 5 % per step).
    pub leak: f32,
    /// Refractory period in timesteps after a spike during which input is
    /// ignored.
    pub refractory: u32,
}

impl NeuronConfig {
    /// A pure Integrate-and-Fire neuron with the given threshold
    /// (subtractive reset, no leak, no refractory period).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive and finite.
    pub fn integrate_and_fire(threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be positive and finite, got {threshold}"
        );
        Self {
            threshold,
            reset: ResetMode::Subtract,
            leak: 1.0,
            refractory: 0,
        }
    }

    /// A leaky Integrate-and-Fire neuron.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive or `leak` is outside `(0, 1]`.
    pub fn leaky_integrate_and_fire(threshold: f32, leak: f32) -> Self {
        assert!(
            leak > 0.0 && leak <= 1.0,
            "leak must be in (0, 1], got {leak}"
        );
        let mut cfg = Self::integrate_and_fire(threshold);
        cfg.leak = leak;
        cfg
    }

    /// Returns a copy with the given reset mode.
    pub fn with_reset(mut self, reset: ResetMode) -> Self {
        self.reset = reset;
        self
    }

    /// Returns a copy with the given refractory period.
    pub fn with_refractory(mut self, steps: u32) -> Self {
        self.refractory = steps;
        self
    }
}

impl Default for NeuronConfig {
    fn default() -> Self {
        Self::integrate_and_fire(1.0)
    }
}

/// The state of one spiking neuron.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Membrane {
    potential: f32,
    refractory_left: u32,
}

impl Membrane {
    /// A fresh membrane at resting potential.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current membrane potential.
    pub fn potential(&self) -> f32 {
        self.potential
    }

    /// Advances one timestep with the given input current; returns `true`
    /// if the neuron fires.
    pub fn step(&mut self, input: f32, cfg: &NeuronConfig) -> bool {
        if self.refractory_left > 0 {
            self.refractory_left -= 1;
            return false;
        }
        self.potential = self.potential * cfg.leak + input;
        if self.potential >= cfg.threshold {
            match cfg.reset {
                ResetMode::ToZero => self.potential = 0.0,
                ResetMode::Subtract => self.potential -= cfg.threshold,
            }
            self.refractory_left = cfg.refractory;
            true
        } else {
            false
        }
    }

    /// Resets the membrane to the resting state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A bank of identically-configured neurons stepped together, as the
/// neurons attached to one crossbar's columns are.
#[derive(Debug, Clone)]
pub struct NeuronPool {
    config: NeuronConfig,
    membranes: Vec<Membrane>,
}

impl NeuronPool {
    /// Creates `n` neurons sharing `config`.
    pub fn new(n: usize, config: NeuronConfig) -> Self {
        Self {
            config,
            membranes: vec![Membrane::new(); n],
        }
    }

    /// Number of neurons in the pool.
    pub fn len(&self) -> usize {
        self.membranes.len()
    }

    /// Returns `true` if the pool has no neurons.
    pub fn is_empty(&self) -> bool {
        self.membranes.is_empty()
    }

    /// The shared neuron configuration.
    pub fn config(&self) -> &NeuronConfig {
        &self.config
    }

    /// Membrane potentials, one per neuron.
    pub fn potentials(&self) -> impl Iterator<Item = f32> + '_ {
        self.membranes.iter().map(|m| m.potential)
    }

    /// Steps every neuron with its input current; writes spike flags into
    /// `spikes_out`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `spikes_out` length differs from the pool size.
    pub fn step(&mut self, inputs: &[f32], spikes_out: &mut [bool]) {
        assert_eq!(inputs.len(), self.membranes.len(), "input length mismatch");
        assert_eq!(
            spikes_out.len(),
            self.membranes.len(),
            "output length mismatch"
        );
        for ((m, &i), s) in self
            .membranes
            .iter_mut()
            .zip(inputs)
            .zip(spikes_out.iter_mut())
        {
            *s = m.step(i, &self.config);
        }
    }

    /// Resets every membrane to rest.
    pub fn reset(&mut self) {
        for m in &mut self.membranes {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_neuron_fires_at_threshold() {
        let cfg = NeuronConfig::integrate_and_fire(1.0);
        let mut m = Membrane::new();
        assert!(!m.step(0.5, &cfg));
        assert!(m.step(0.5, &cfg)); // exactly at threshold fires
    }

    #[test]
    fn subtract_reset_preserves_residue() {
        let cfg = NeuronConfig::integrate_and_fire(1.0);
        let mut m = Membrane::new();
        assert!(m.step(1.3, &cfg));
        assert!((m.potential() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn zero_reset_discards_residue() {
        let cfg = NeuronConfig::integrate_and_fire(1.0).with_reset(ResetMode::ToZero);
        let mut m = Membrane::new();
        assert!(m.step(1.3, &cfg));
        assert_eq!(m.potential(), 0.0);
    }

    #[test]
    fn subtract_reset_rate_tracks_input() {
        // With subtractive reset and constant drive I < threshold, the
        // long-run firing rate approaches I / threshold.
        let cfg = NeuronConfig::integrate_and_fire(1.0);
        let mut m = Membrane::new();
        let drive = 0.24;
        let steps = 10_000;
        let mut fired = 0u32;
        for _ in 0..steps {
            if m.step(drive, &cfg) {
                fired += 1;
            }
        }
        let rate = fired as f64 / steps as f64;
        assert!((rate - 0.24).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn leak_decays_potential() {
        let cfg = NeuronConfig::leaky_integrate_and_fire(10.0, 0.5);
        let mut m = Membrane::new();
        m.step(1.0, &cfg);
        m.step(0.0, &cfg);
        assert!((m.potential() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn refractory_blocks_input() {
        let cfg = NeuronConfig::integrate_and_fire(1.0).with_refractory(2);
        let mut m = Membrane::new();
        assert!(m.step(1.5, &cfg));
        // Two refractory steps: large inputs ignored.
        assert!(!m.step(5.0, &cfg));
        assert!(!m.step(5.0, &cfg));
        assert!(m.step(1.0, &cfg));
    }

    #[test]
    fn negative_input_inhibits() {
        let cfg = NeuronConfig::integrate_and_fire(1.0);
        let mut m = Membrane::new();
        m.step(0.8, &cfg);
        m.step(-0.5, &cfg);
        assert!((m.potential() - 0.3).abs() < 1e-6);
        assert!(!m.step(0.6, &cfg));
    }

    #[test]
    fn pool_steps_all_neurons() {
        let cfg = NeuronConfig::integrate_and_fire(1.0);
        let mut pool = NeuronPool::new(3, cfg);
        let mut spikes = [false; 3];
        pool.step(&[1.0, 0.4, 2.0], &mut spikes);
        assert_eq!(spikes, [true, false, true]);
        assert_eq!(pool.len(), 3);
        pool.reset();
        assert!(pool.potentials().all(|p| p == 0.0));
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn pool_rejects_wrong_input_length() {
        let mut pool = NeuronPool::new(2, NeuronConfig::default());
        let mut spikes = [false; 2];
        pool.step(&[1.0], &mut spikes);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn invalid_threshold_panics() {
        let _ = NeuronConfig::integrate_and_fire(0.0);
    }
}
