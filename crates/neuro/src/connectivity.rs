//! Per-layer connectivity matrices in compressed sparse form.
//!
//! The hardware mapper partitions each layer's *connectivity matrix*
//! (paper Fig. 2) across crossbars. [`ConnectivityMatrix`] stores, for each
//! output neuron (a crossbar column), the sorted list of its input neurons
//! (crossbar rows) and the id of the unique weight on each connection.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::topology::LayerSpec;
//! use resparc_neuro::connectivity::ConnectivityMatrix;
//!
//! let layer = LayerSpec::Dense { inputs: 4, outputs: 2 };
//! let m = ConnectivityMatrix::from_layer(&layer);
//! assert_eq!(m.fan_in(0), 4);
//! assert_eq!(m.synapse_count(), 8);
//! ```

use crate::topology::LayerSpec;

/// Sparse (CSR-like, output-major) connectivity of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityMatrix {
    inputs: usize,
    outputs: usize,
    /// `indptr[o]..indptr[o+1]` delimits output `o`'s connections.
    indptr: Vec<u32>,
    /// Input-neuron index of each connection, sorted within an output.
    indices: Vec<u32>,
    /// Unique-weight id of each connection.
    weight_ids: Vec<u32>,
    unique_weights: usize,
}

impl ConnectivityMatrix {
    /// Extracts the connectivity matrix of a layer.
    pub fn from_layer(layer: &LayerSpec) -> Self {
        let outputs = layer.output_count();
        let mut counts = vec![0u32; outputs];
        layer.for_each_synapse(|o, _, _| counts[o] += 1);
        let mut indptr = Vec::with_capacity(outputs + 1);
        indptr.push(0u32);
        for &c in &counts {
            indptr.push(indptr.last().unwrap() + c);
        }
        let total = *indptr.last().unwrap() as usize;
        let mut indices = vec![0u32; total];
        let mut weight_ids = vec![0u32; total];
        let mut cursor: Vec<u32> = indptr[..outputs].to_vec();
        layer.for_each_synapse(|o, i, w| {
            let at = cursor[o] as usize;
            indices[at] = i as u32;
            weight_ids[at] = w as u32;
            cursor[o] += 1;
        });
        // Banded channel tables wrap around the input maps, so rows can
        // arrive out of order; sort each output's (input, weight) pairs by
        // input index so the mapper sees canonical rows.
        for o in 0..outputs {
            let s = indptr[o] as usize;
            let e = indptr[o + 1] as usize;
            if !indices[s..e].windows(2).all(|w| w[0] < w[1]) {
                let mut pairs: Vec<(u32, u32)> = indices[s..e]
                    .iter()
                    .copied()
                    .zip(weight_ids[s..e].iter().copied())
                    .collect();
                pairs.sort_unstable();
                for (k, (i, w)) in pairs.into_iter().enumerate() {
                    indices[s + k] = i;
                    weight_ids[s + k] = w;
                }
            }
        }
        Self {
            inputs: layer.input_count(),
            outputs,
            indptr,
            indices,
            weight_ids,
            unique_weights: layer.unique_weight_count(),
        }
    }

    /// Number of input neurons (matrix rows).
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output neurons (matrix columns).
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Total connection count.
    pub fn synapse_count(&self) -> usize {
        self.indices.len()
    }

    /// Number of unique weights referenced.
    pub fn unique_weight_count(&self) -> usize {
        self.unique_weights
    }

    /// Fan-in of output neuron `o`.
    pub fn fan_in(&self, o: usize) -> usize {
        (self.indptr[o + 1] - self.indptr[o]) as usize
    }

    /// Maximum fan-in over all outputs.
    pub fn max_fan_in(&self) -> usize {
        (0..self.outputs).map(|o| self.fan_in(o)).max().unwrap_or(0)
    }

    /// The sorted input indices of output `o`.
    pub fn inputs_of(&self, o: usize) -> &[u32] {
        &self.indices[self.indptr[o] as usize..self.indptr[o + 1] as usize]
    }

    /// The weight ids of output `o`, parallel to [`Self::inputs_of`].
    pub fn weight_ids_of(&self, o: usize) -> &[u32] {
        &self.weight_ids[self.indptr[o] as usize..self.indptr[o + 1] as usize]
    }

    /// Density of the matrix: connections / (inputs × outputs).
    pub fn density(&self) -> f64 {
        if self.inputs == 0 || self.outputs == 0 {
            return 0.0;
        }
        self.synapse_count() as f64 / (self.inputs as f64 * self.outputs as f64)
    }

    /// Iterates `(output, inputs, weight_ids)` for every output neuron.
    pub fn iter_outputs(&self) -> impl Iterator<Item = (usize, &[u32], &[u32])> + '_ {
        (0..self.outputs).map(move |o| (o, self.inputs_of(o), self.weight_ids_of(o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ChannelTable, Padding, Shape};

    #[test]
    fn dense_matrix_is_fully_dense() {
        let l = LayerSpec::Dense {
            inputs: 5,
            outputs: 3,
        };
        let m = ConnectivityMatrix::from_layer(&l);
        assert_eq!(m.density(), 1.0);
        assert_eq!(m.max_fan_in(), 5);
        assert_eq!(m.inputs_of(2), &[0, 1, 2, 3, 4]);
        assert_eq!(m.weight_ids_of(1), &[5, 6, 7, 8, 9]);
    }

    #[test]
    fn conv_matrix_is_sparse() {
        let l = LayerSpec::Conv2d {
            input: Shape::new(8, 8, 2),
            maps: 4,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        let m = ConnectivityMatrix::from_layer(&l);
        assert!(m.density() < 0.2, "density {}", m.density());
        assert_eq!(m.synapse_count(), l.synapse_count());
        assert_eq!(m.max_fan_in(), 18);
        // Every output's inputs are sorted and unique.
        for (_, ins, _) in m.iter_outputs() {
            assert!(ins.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn counts_agree_with_layer() {
        let l = LayerSpec::AvgPool {
            input: Shape::new(12, 12, 6),
            window: 2,
        };
        let m = ConnectivityMatrix::from_layer(&l);
        assert_eq!(m.synapse_count(), l.synapse_count());
        assert_eq!(m.outputs(), l.output_count());
        assert_eq!(m.inputs(), l.input_count());
        assert_eq!(m.unique_weight_count(), 1);
        assert!((0..m.outputs()).all(|o| m.fan_in(o) == 4));
    }

    #[test]
    fn weight_ids_stay_in_range() {
        let l = LayerSpec::Conv2d {
            input: Shape::new(6, 6, 3),
            maps: 5,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            table: ChannelTable::Banded { fan: 2 },
        };
        let m = ConnectivityMatrix::from_layer(&l);
        let maxw = m
            .iter_outputs()
            .flat_map(|(_, _, w)| w.iter().copied())
            .max()
            .unwrap();
        assert!((maxw as usize) < m.unique_weight_count());
    }
}
