//! Network topology descriptions: the MLP and CNN layer structures that
//! RESPARC maps onto crossbars.
//!
//! A [`Topology`] is a validated stack of [`LayerSpec`]s. Every layer can
//! enumerate its synapses as `(output, input, weight-id)` triples via
//! [`LayerSpec::for_each_synapse`]; that single enumeration is the source
//! of truth shared by the functional simulator, the connectivity-matrix
//! builder and the hardware mapper, so counts can never disagree between
//! them.
//!
//! Convolution layers support LeNet-style *channel tables*
//! ([`ChannelTable::Banded`]) in which each output map connects to only a
//! few input maps — the sparse connectivity the paper's §3.1.1 discussion
//! of CNN crossbar utilization hinges on.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::topology::Topology;
//!
//! // The paper's MNIST MLP (Fig. 10): 4 weight layers, 2 378 neurons.
//! let t = Topology::mlp(784, &[800, 800, 768, 10]);
//! assert_eq!(t.neuron_count(), 2_378);
//! assert_eq!(t.layer_count(), 4);
//! ```

use std::fmt;

/// A 3-D activation shape (height × width × channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Rows.
    pub height: usize,
    /// Columns.
    pub width: usize,
    /// Feature maps / channels.
    pub channels: usize,
}

impl Shape {
    /// Creates a shape.
    pub fn new(height: usize, width: usize, channels: usize) -> Self {
        Self {
            height,
            width,
            channels,
        }
    }

    /// Total element count.
    pub fn count(&self) -> usize {
        self.height * self.width * self.channels
    }

    /// Linear index of `(channel, y, x)` in channel-major layout.
    #[inline]
    pub fn index(&self, channel: usize, y: usize, x: usize) -> usize {
        channel * self.height * self.width + y * self.width + x
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.height, self.width, self.channels)
    }
}

/// Spatial padding mode for convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Padding {
    /// No padding; output shrinks by `kernel - 1`.
    #[default]
    Valid,
    /// Zero padding so the output keeps the input's spatial size
    /// (stride 1) or `ceil(size/stride)`.
    Same,
}

/// Which input feature maps each output map of a convolution sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelTable {
    /// Every output map connects to every input map (dense across
    /// channels).
    #[default]
    Full,
    /// LeNet-style sparse table: output map `m` connects to `fan`
    /// consecutive input maps starting at `m mod c_in` (wrapping). This is
    /// the sparse inter-map connectivity that lowers crossbar utilization
    /// for CNNs in the paper.
    Banded {
        /// Number of input maps each output map connects to.
        fan: usize,
    },
}

/// One layer of an SNN topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// Fully-connected layer.
    Dense {
        /// Input neuron count.
        inputs: usize,
        /// Output neuron count.
        outputs: usize,
    },
    /// 2-D convolution.
    Conv2d {
        /// Input activation shape.
        input: Shape,
        /// Number of output feature maps.
        maps: usize,
        /// Square kernel size.
        kernel: usize,
        /// Spatial stride.
        stride: usize,
        /// Padding mode.
        padding: Padding,
        /// Channel connectivity table.
        table: ChannelTable,
    },
    /// Non-overlapping average pooling (window == stride).
    AvgPool {
        /// Input activation shape.
        input: Shape,
        /// Pooling window edge (and stride).
        window: usize,
    },
}

impl LayerSpec {
    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerSpec::Dense { .. } => "dense",
            LayerSpec::Conv2d { .. } => "conv",
            LayerSpec::AvgPool { .. } => "pool",
        }
    }

    /// Number of input neurons the layer consumes.
    pub fn input_count(&self) -> usize {
        match self {
            LayerSpec::Dense { inputs, .. } => *inputs,
            LayerSpec::Conv2d { input, .. } => input.count(),
            LayerSpec::AvgPool { input, .. } => input.count(),
        }
    }

    /// The layer's output shape, if it is spatial.
    pub fn output_shape(&self) -> Option<Shape> {
        match *self {
            LayerSpec::Dense { .. } => None,
            LayerSpec::Conv2d {
                input,
                maps,
                kernel,
                stride,
                padding,
                ..
            } => {
                let (h, w) = conv_out_dims(input.height, input.width, kernel, stride, padding);
                Some(Shape::new(h, w, maps))
            }
            LayerSpec::AvgPool { input, window } => Some(Shape::new(
                input.height / window,
                input.width / window,
                input.channels,
            )),
        }
    }

    /// Number of output neurons the layer produces.
    pub fn output_count(&self) -> usize {
        match self {
            LayerSpec::Dense { outputs, .. } => *outputs,
            _ => self.output_shape().expect("spatial layer").count(),
        }
    }

    /// Number of *connections* (physical synapses when mapped onto
    /// crossbars — weight sharing does not reduce this).
    pub fn synapse_count(&self) -> usize {
        let mut n = 0usize;
        self.for_each_synapse(|_, _, _| n += 1);
        n
    }

    /// Number of *unique* weight values (weight sharing collapses the
    /// kernel reuse of convolutions).
    pub fn unique_weight_count(&self) -> usize {
        match *self {
            LayerSpec::Dense { inputs, outputs } => inputs * outputs,
            LayerSpec::Conv2d {
                input,
                maps,
                kernel,
                table,
                ..
            } => {
                let fan_maps = match table {
                    ChannelTable::Full => input.channels,
                    ChannelTable::Banded { fan } => fan.min(input.channels),
                };
                maps * fan_maps * kernel * kernel
            }
            LayerSpec::AvgPool { .. } => 1,
        }
    }

    /// Maximum fan-in over the layer's output neurons.
    pub fn max_fan_in(&self) -> usize {
        match *self {
            LayerSpec::Dense { inputs, .. } => inputs,
            LayerSpec::Conv2d {
                input,
                kernel,
                table,
                ..
            } => {
                let fan_maps = match table {
                    ChannelTable::Full => input.channels,
                    ChannelTable::Banded { fan } => fan.min(input.channels),
                };
                kernel * kernel * fan_maps
            }
            LayerSpec::AvgPool { window, .. } => window * window,
        }
    }

    /// Whether the layer's connectivity matrix is sparse (CNN-style) as
    /// opposed to dense (MLP-style).
    pub fn is_sparse(&self) -> bool {
        !matches!(self, LayerSpec::Dense { .. })
    }

    /// Enumerates every synapse as `(output_index, input_index,
    /// weight_id)`, in output-major order. Weight ids index into the
    /// layer's unique-weight array (see [`Self::unique_weight_count`]).
    pub fn for_each_synapse<F: FnMut(usize, usize, usize)>(&self, mut f: F) {
        match *self {
            LayerSpec::Dense { inputs, outputs } => {
                for o in 0..outputs {
                    for i in 0..inputs {
                        f(o, i, o * inputs + i);
                    }
                }
            }
            LayerSpec::Conv2d {
                input,
                maps,
                kernel,
                stride,
                padding,
                table,
            } => {
                let out = self.output_shape().expect("conv output");
                let pad = match padding {
                    Padding::Valid => 0isize,
                    Padding::Same => {
                        (((out.height - 1) * stride + kernel).saturating_sub(input.height) / 2)
                            as isize
                    }
                };
                let fan_maps = match table {
                    ChannelTable::Full => input.channels,
                    ChannelTable::Banded { fan } => fan.min(input.channels),
                };
                for m in 0..maps {
                    for oy in 0..out.height {
                        for ox in 0..out.width {
                            let o = out.index(m, oy, ox);
                            for j in 0..fan_maps {
                                let c = match table {
                                    ChannelTable::Full => j,
                                    ChannelTable::Banded { .. } => (m + j) % input.channels,
                                };
                                for ky in 0..kernel {
                                    for kx in 0..kernel {
                                        let iy = (oy * stride) as isize - pad + ky as isize;
                                        let ix = (ox * stride) as isize - pad + kx as isize;
                                        if iy < 0
                                            || ix < 0
                                            || iy >= input.height as isize
                                            || ix >= input.width as isize
                                        {
                                            continue;
                                        }
                                        let i = input.index(c, iy as usize, ix as usize);
                                        let wid = ((m * fan_maps + j) * kernel + ky) * kernel + kx;
                                        f(o, i, wid);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            LayerSpec::AvgPool { input, window } => {
                let out = self.output_shape().expect("pool output");
                for c in 0..input.channels {
                    for oy in 0..out.height {
                        for ox in 0..out.width {
                            let o = out.index(c, oy, ox);
                            for dy in 0..window {
                                for dx in 0..window {
                                    let i = input.index(c, oy * window + dy, ox * window + dx);
                                    f(o, i, 0);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn conv_out_dims(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: Padding,
) -> (usize, usize) {
    match padding {
        Padding::Valid => ((h - kernel) / stride + 1, (w - kernel) / stride + 1),
        Padding::Same => (h.div_ceil(stride), w.div_ceil(stride)),
    }
}

/// A validated stack of layers.
///
/// Constructed with [`Topology::new`] or the [`Topology::mlp`] /
/// [`TopologyBuilder`] conveniences; construction checks that adjacent
/// layer sizes agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    input_count: usize,
    layers: Vec<LayerSpec>,
}

impl Topology {
    /// Builds a topology from an explicit layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the stack is empty, the first layer
    /// does not consume `input_count` neurons, or adjacent layers disagree
    /// on size.
    pub fn new(input_count: usize, layers: Vec<LayerSpec>) -> Result<Self, TopologyError> {
        if layers.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut expected = input_count;
        for (i, layer) in layers.iter().enumerate() {
            if layer.input_count() != expected {
                return Err(TopologyError::SizeMismatch {
                    layer: i,
                    expected,
                    found: layer.input_count(),
                });
            }
            expected = layer.output_count();
        }
        Ok(Self {
            input_count,
            layers,
        })
    }

    /// Builds an MLP topology: `input -> hidden... -> output`, all dense.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty (an MLP needs at least an output layer).
    pub fn mlp(input: usize, sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "MLP needs at least one layer");
        let mut layers = Vec::with_capacity(sizes.len());
        let mut prev = input;
        for &s in sizes {
            layers.push(LayerSpec::Dense {
                inputs: prev,
                outputs: s,
            });
            prev = s;
        }
        Self::new(input, layers).expect("mlp construction is size-consistent")
    }

    /// Starts a builder for convolutional topologies.
    pub fn builder(input: Shape) -> TopologyBuilder {
        TopologyBuilder {
            input,
            current: input,
            layers: Vec::new(),
        }
    }

    /// Number of input neurons (not counted in [`Self::neuron_count`]).
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// The layer stack.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total neurons across all layers (excluding the input; the paper's
    /// Fig. 10 counts match this convention).
    pub fn neuron_count(&self) -> usize {
        self.layers.iter().map(|l| l.output_count()).sum()
    }

    /// Total connections (physical synapses when crossbar-mapped).
    pub fn synapse_count(&self) -> usize {
        self.layers.iter().map(|l| l.synapse_count()).sum()
    }

    /// Total unique weights (with convolutional weight sharing).
    pub fn unique_weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.unique_weight_count()).sum()
    }

    /// Output neuron count of the final layer.
    pub fn output_count(&self) -> usize {
        self.layers.last().expect("non-empty").output_count()
    }

    /// Whether any layer uses sparse (conv/pool) connectivity.
    pub fn has_sparse_layers(&self) -> bool {
        self.layers.iter().any(|l| l.is_sparse())
    }
}

/// Builder for spatial (CNN) topologies.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    input: Shape,
    current: Shape,
    layers: Vec<LayerSpec>,
}

impl TopologyBuilder {
    /// Appends a convolution layer.
    pub fn conv(
        mut self,
        maps: usize,
        kernel: usize,
        padding: Padding,
        table: ChannelTable,
    ) -> Self {
        let spec = LayerSpec::Conv2d {
            input: self.current,
            maps,
            kernel,
            stride: 1,
            padding,
            table,
        };
        self.current = spec.output_shape().expect("conv output");
        self.layers.push(spec);
        self
    }

    /// Appends a non-overlapping average-pool layer.
    pub fn pool(mut self, window: usize) -> Self {
        let spec = LayerSpec::AvgPool {
            input: self.current,
            window,
        };
        self.current = spec.output_shape().expect("pool output");
        self.layers.push(spec);
        self
    }

    /// Appends a dense layer consuming the flattened current shape.
    pub fn dense(mut self, outputs: usize) -> Self {
        self.layers.push(LayerSpec::Dense {
            inputs: self.current.count(),
            outputs,
        });
        self.current = Shape::new(1, 1, outputs);
        self
    }

    /// Finalises the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Empty`] if no layer was added.
    pub fn build(self) -> Result<Topology, TopologyError> {
        Topology::new(self.input.count(), self.layers)
    }
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The layer stack was empty.
    Empty,
    /// Adjacent layers disagree on activation size.
    SizeMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Size produced by the previous layer.
        expected: usize,
        /// Size the offending layer consumes.
        found: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no layers"),
            TopologyError::SizeMismatch {
                layer,
                expected,
                found,
            } => write!(
                f,
                "layer {layer} consumes {found} inputs but previous layer produces {expected}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_counts() {
        let t = Topology::mlp(784, &[800, 800, 768, 10]);
        assert_eq!(t.neuron_count(), 2_378);
        assert_eq!(
            t.synapse_count(),
            784 * 800 + 800 * 800 + 800 * 768 + 768 * 10
        );
        assert_eq!(t.unique_weight_count(), t.synapse_count());
        assert_eq!(t.output_count(), 10);
        assert!(!t.has_sparse_layers());
    }

    #[test]
    fn dense_synapse_enumeration_is_exhaustive() {
        let l = LayerSpec::Dense {
            inputs: 3,
            outputs: 2,
        };
        let mut triples = Vec::new();
        l.for_each_synapse(|o, i, w| triples.push((o, i, w)));
        assert_eq!(triples.len(), 6);
        assert!(triples.contains(&(1, 2, 5)));
    }

    #[test]
    fn conv_valid_output_shape() {
        let l = LayerSpec::Conv2d {
            input: Shape::new(28, 28, 1),
            maps: 12,
            kernel: 5,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        assert_eq!(l.output_shape(), Some(Shape::new(24, 24, 12)));
        assert_eq!(l.output_count(), 12 * 24 * 24);
        // Every output neuron has full 5x5 fan-in under Valid padding.
        assert_eq!(l.synapse_count(), 12 * 24 * 24 * 25);
        assert_eq!(l.unique_weight_count(), 12 * 25);
        assert_eq!(l.max_fan_in(), 25);
    }

    #[test]
    fn conv_same_padding_trims_border_synapses() {
        let l = LayerSpec::Conv2d {
            input: Shape::new(8, 8, 1),
            maps: 1,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            table: ChannelTable::Full,
        };
        assert_eq!(l.output_shape(), Some(Shape::new(8, 8, 1)));
        // Interior neurons have fan-in 9; border ones fewer.
        assert!(l.synapse_count() < 8 * 8 * 9);
        assert_eq!(l.max_fan_in(), 9);
    }

    #[test]
    fn banded_table_reduces_fan_in() {
        let full = LayerSpec::Conv2d {
            input: Shape::new(12, 12, 8),
            maps: 16,
            kernel: 5,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Full,
        };
        let banded = LayerSpec::Conv2d {
            input: Shape::new(12, 12, 8),
            maps: 16,
            kernel: 5,
            stride: 1,
            padding: Padding::Valid,
            table: ChannelTable::Banded { fan: 2 },
        };
        assert_eq!(banded.synapse_count() * 4, full.synapse_count());
        assert_eq!(banded.max_fan_in(), 50);
    }

    #[test]
    fn pool_counts() {
        let l = LayerSpec::AvgPool {
            input: Shape::new(24, 24, 12),
            window: 2,
        };
        assert_eq!(l.output_shape(), Some(Shape::new(12, 12, 12)));
        assert_eq!(l.synapse_count(), 24 * 24 * 12);
        assert_eq!(l.unique_weight_count(), 1);
    }

    #[test]
    fn builder_chains_shapes() {
        let t = Topology::builder(Shape::new(28, 28, 1))
            .conv(12, 5, Padding::Valid, ChannelTable::Full)
            .pool(2)
            .conv(64, 5, Padding::Valid, ChannelTable::Banded { fan: 4 })
            .pool(2)
            .dense(10)
            .build()
            .unwrap();
        assert_eq!(t.layer_count(), 5);
        // Diehl-style CNN: 24²·12 + 12²·12 + 8²·64 + 4²·64 + 10
        assert_eq!(
            t.neuron_count(),
            24 * 24 * 12 + 12 * 12 * 12 + 8 * 8 * 64 + 4 * 4 * 64 + 10
        );
        assert!(t.has_sparse_layers());
    }

    #[test]
    fn mismatched_layers_rejected() {
        let err = Topology::new(
            10,
            vec![LayerSpec::Dense {
                inputs: 9,
                outputs: 5,
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TopologyError::SizeMismatch {
                layer: 0,
                expected: 10,
                found: 9
            }
        );
        assert!(err.to_string().contains("layer 0"));
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(Topology::new(10, vec![]).unwrap_err(), TopologyError::Empty);
    }

    #[test]
    fn synapse_enumeration_matches_count_for_conv() {
        let l = LayerSpec::Conv2d {
            input: Shape::new(10, 10, 3),
            maps: 4,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            table: ChannelTable::Banded { fan: 2 },
        };
        let mut n = 0usize;
        let mut max_wid = 0usize;
        l.for_each_synapse(|_, _, w| {
            n += 1;
            max_wid = max_wid.max(w);
        });
        assert_eq!(n, l.synapse_count());
        assert!(max_wid < l.unique_weight_count());
    }
}
