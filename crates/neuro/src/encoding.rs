//! Input spike coding: converting analog stimulus intensities into spike
//! trains, and the matching readout rules for classifying the output.
//!
//! SNNs "require the input to be encoded as spike trains" (paper §2.1).
//! This module provides every coding scheme the suite knows, unified
//! behind the [`SpikeEncoder`] trait, plus the [`Encoding`] value type the
//! workload sweeps thread through their configurations:
//!
//! * [`PoissonEncoder`] — stochastic Bernoulli/Poisson **rate coding**: a
//!   pixel of intensity `p ∈ [0, 1]` spikes with probability
//!   `p · max_rate` in each timestep. The scheme the Diehl et al.
//!   conversion flow the paper trains with assumes; accuracy degrades
//!   gracefully, spike traffic scales with `steps`.
//! * [`RegularEncoder`] — deterministic evenly-spaced spikes at the same
//!   mean rate (noise-free rate coding for exact tests).
//! * [`TtfsEncoder`] — **time-to-first-spike** coding: each input emits at
//!   most one spike over the whole window, earlier for higher intensity.
//!   The sparsest code possible (≤ 1 spike/input/inference); the natural
//!   readout is first-spike latency, not rate.
//! * [`BurstEncoder`] — **burst coding**: intensity-proportional burst
//!   length at a configurable inter-spike gap, all bursts onset-aligned
//!   at `t = 0`. Mean traffic is bounded by `max_burst`, independent of
//!   the timestep budget.
//!
//! ## When each code applies
//!
//! Rate coding is the robust default — it is what ANN→SNN conversion
//! preserves — but its spike count (and therefore RESPARC's event-driven
//! energy) grows linearly with the presentation window. TTFS and burst
//! codes decouple traffic from the window: a TTFS presentation moves at
//! most one spike per input, a burst presentation at most `max_burst`.
//! On the event-driven fabric (paper §3.2) that translates directly into
//! fewer packets past the zero-check, fewer crossbar reads, and silent
//! tail steps that cost only the clocked minimum — trade-offs only the
//! trace-driven [`EventSimulator`] can price, which is exactly what
//! [`encoding_energy_sweep`] measures.
//!
//! The decoder side lives in [`Readout`]: rate codes are read out by
//! max-spike-count, TTFS by earliest first spike
//! ([`Classification::decode`]).
//!
//! [`EventSimulator`]: ../../resparc_core/sim/event/struct.EventSimulator.html
//! [`encoding_energy_sweep`]: ../../resparc_workloads/sweep/fn.encoding_energy_sweep.html
//! [`Classification::decode`]: crate::network::Classification::decode

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::spike::{SpikeRaster, SpikeVector};

/// How a spiking classification outcome should be read out — the decoder
/// half of a coding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Readout {
    /// Max-spike-count over the window (rate and burst codes).
    Rate,
    /// Earliest first output spike wins (TTFS; ties broken by spike
    /// count, then index; falls back to the rate readout when no output
    /// spiked at all).
    FirstSpike,
}

/// A scheme for turning analog intensities into a spike raster.
///
/// Implementations must be **deterministic per `seed`**: the same
/// `(intensities, steps, seed)` triple always yields the same raster,
/// which is what lets batched sweeps reproduce serial encode-then-run
/// loops exactly. Deterministic encoders simply ignore the seed. A silent
/// stimulus (all intensities `<= 0`) must produce a silent raster.
pub trait SpikeEncoder {
    /// Encodes intensities (`[0, 1]`, clamped) into a raster of `steps`
    /// timesteps, using `seed` for any stochasticity.
    fn encode_seeded(&self, intensities: &[f32], steps: usize, seed: u64) -> SpikeRaster;

    /// The readout rule that matches this code on the output side.
    fn readout(&self) -> Readout {
        Readout::Rate
    }

    /// Human-readable scheme name.
    fn name(&self) -> &'static str;
}

/// Stochastic rate encoder: intensity `p` spikes with probability
/// `p × max_rate` per timestep, independently across steps and neurons.
#[derive(Debug)]
pub struct PoissonEncoder {
    max_rate: f64,
    rng: StdRng,
}

impl PoissonEncoder {
    /// Creates an encoder with the given peak per-step spike probability
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 1]`.
    pub fn new(max_rate: f64, seed: u64) -> Self {
        assert!(
            max_rate > 0.0 && max_rate <= 1.0,
            "max_rate must be in (0, 1], got {max_rate}"
        );
        Self {
            max_rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Peak per-step spike probability.
    pub fn max_rate(&self) -> f64 {
        self.max_rate
    }

    /// Encodes intensities (`[0, 1]`, clamped) into a raster of `steps`
    /// timesteps, advancing the encoder's own RNG.
    pub fn encode(&mut self, intensities: &[f32], steps: usize) -> SpikeRaster {
        let mut raster = SpikeRaster::new(intensities.len());
        for _ in 0..steps {
            let mut v = SpikeVector::new(intensities.len());
            for (i, &p) in intensities.iter().enumerate() {
                let prob = (p.clamp(0.0, 1.0) as f64) * self.max_rate;
                if prob > 0.0 && self.rng.random_bool(prob) {
                    v.set(i, true);
                }
            }
            raster.push(v);
        }
        raster
    }
}

impl SpikeEncoder for PoissonEncoder {
    /// Encodes with a fresh RNG seeded from `seed` (the encoder's own
    /// construction seed is not consumed), so trait-level encoding is a
    /// pure function of `(intensities, steps, seed)`.
    fn encode_seeded(&self, intensities: &[f32], steps: usize, seed: u64) -> SpikeRaster {
        PoissonEncoder::new(self.max_rate, seed).encode(intensities, steps)
    }

    fn name(&self) -> &'static str {
        "poisson-rate"
    }
}

/// Deterministic rate encoder: intensity `p` produces evenly spaced spikes
/// with mean rate `p × max_rate` using per-neuron phase accumulators.
#[derive(Debug, Clone)]
pub struct RegularEncoder {
    max_rate: f64,
}

impl RegularEncoder {
    /// Creates an encoder with the given peak per-step rate.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 1]`.
    pub fn new(max_rate: f64) -> Self {
        assert!(
            max_rate > 0.0 && max_rate <= 1.0,
            "max_rate must be in (0, 1], got {max_rate}"
        );
        Self { max_rate }
    }

    /// Encodes intensities into a deterministic raster of `steps`
    /// timesteps.
    pub fn encode(&self, intensities: &[f32], steps: usize) -> SpikeRaster {
        let mut raster = SpikeRaster::new(intensities.len());
        let mut phase = vec![0.0f64; intensities.len()];
        for _ in 0..steps {
            let mut v = SpikeVector::new(intensities.len());
            for (i, &p) in intensities.iter().enumerate() {
                phase[i] += (p.clamp(0.0, 1.0) as f64) * self.max_rate;
                if phase[i] >= 1.0 {
                    phase[i] -= 1.0;
                    v.set(i, true);
                }
            }
            raster.push(v);
        }
        raster
    }
}

impl SpikeEncoder for RegularEncoder {
    fn encode_seeded(&self, intensities: &[f32], steps: usize, _seed: u64) -> SpikeRaster {
        self.encode(intensities, steps)
    }

    fn name(&self) -> &'static str {
        "regular-rate"
    }
}

/// Time-to-first-spike encoder: each input emits **exactly one spike** if
/// its intensity is positive (none otherwise), at a latency that decreases
/// with intensity — intensity `1` fires at step `0`, intensity `→ 0⁺`
/// fires at the end of the coding window.
///
/// Latency is `round((1 − p) · (window − 1))` with `p` clamped to
/// `[0, 1]` and `window` defaulting to the full presentation; latencies
/// are therefore monotone non-increasing in intensity, and the whole
/// raster carries at most one spike per input regardless of `steps`.
#[derive(Debug, Clone, Default)]
pub struct TtfsEncoder {
    window: Option<usize>,
}

impl TtfsEncoder {
    /// Creates a TTFS encoder whose coding window is the full
    /// presentation.
    pub fn new() -> Self {
        Self { window: None }
    }

    /// Creates a TTFS encoder that compresses all first-spike latencies
    /// into the first `window` timesteps (the tail of the presentation
    /// stays silent — the early-exit-friendly shape).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0, "TTFS window must be non-zero");
        Self {
            window: Some(window),
        }
    }

    /// Encodes intensities into a raster of `steps` timesteps
    /// (deterministic).
    pub fn encode(&self, intensities: &[f32], steps: usize) -> SpikeRaster {
        let window = self.window.unwrap_or(steps).min(steps);
        let mut raster = SpikeRaster::zeroed(intensities.len(), steps);
        if window > 0 {
            for (i, &p) in intensities.iter().enumerate() {
                let p = p.clamp(0.0, 1.0);
                if p > 0.0 {
                    let t = ((1.0 - p as f64) * (window - 1) as f64).round() as usize;
                    raster.set(t, i, true);
                }
            }
        }
        raster
    }
}

impl SpikeEncoder for TtfsEncoder {
    fn encode_seeded(&self, intensities: &[f32], steps: usize, _seed: u64) -> SpikeRaster {
        self.encode(intensities, steps)
    }

    fn readout(&self) -> Readout {
        Readout::FirstSpike
    }

    fn name(&self) -> &'static str {
        "ttfs"
    }
}

/// Burst encoder: each input emits a burst of `round(p · max_burst)`
/// spikes starting at step `0`, spaced `gap` timesteps apart (and
/// truncated by the presentation window) — intensity is carried by burst
/// *length*, so total traffic is bounded by `max_burst` per input however
/// long the presentation runs.
#[derive(Debug, Clone)]
pub struct BurstEncoder {
    max_burst: usize,
    gap: usize,
}

impl BurstEncoder {
    /// Creates a burst encoder with the given peak burst length and
    /// inter-spike gap (in timesteps; `1` means consecutive steps).
    ///
    /// # Panics
    ///
    /// Panics if `max_burst` or `gap` is zero.
    pub fn new(max_burst: usize, gap: usize) -> Self {
        assert!(max_burst > 0, "max_burst must be non-zero");
        assert!(gap > 0, "inter-spike gap must be non-zero");
        Self { max_burst, gap }
    }

    /// Peak burst length (spike count at intensity 1).
    pub fn max_burst(&self) -> usize {
        self.max_burst
    }

    /// Inter-spike gap in timesteps.
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// Encodes intensities into a raster of `steps` timesteps
    /// (deterministic).
    pub fn encode(&self, intensities: &[f32], steps: usize) -> SpikeRaster {
        let mut raster = SpikeRaster::zeroed(intensities.len(), steps);
        for (i, &p) in intensities.iter().enumerate() {
            let p = p.clamp(0.0, 1.0);
            let burst = ((p as f64) * self.max_burst as f64).round() as usize;
            for k in 0..burst {
                let t = k * self.gap;
                if t >= steps {
                    break;
                }
                raster.set(t, i, true);
            }
        }
        raster
    }
}

impl SpikeEncoder for BurstEncoder {
    fn encode_seeded(&self, intensities: &[f32], steps: usize, _seed: u64) -> SpikeRaster {
        self.encode(intensities, steps)
    }

    fn name(&self) -> &'static str {
        "burst"
    }
}

/// Value-level selection of a coding scheme — the form workload
/// configurations carry (it is `Copy`, hashable and threadable through
/// parallel sweeps, unlike a boxed encoder).
///
/// Rate variants take their peak rate from the caller at encode time
/// (sweeps hold it as `SweepConfig::peak_rate`); temporal variants carry
/// their own parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Stochastic Poisson rate coding ([`PoissonEncoder`]).
    Rate,
    /// Deterministic evenly-spaced rate coding ([`RegularEncoder`]).
    RegularRate,
    /// Time-to-first-spike coding ([`TtfsEncoder`], full-window latency).
    Ttfs,
    /// Burst coding ([`BurstEncoder`]).
    Burst {
        /// Spike count at intensity 1.
        max_burst: usize,
        /// Inter-spike gap in timesteps.
        gap: usize,
    },
}

impl Encoding {
    /// Encodes a stimulus under this scheme: rate variants run at
    /// `peak_rate`, temporal variants ignore it. Deterministic per
    /// `(stimulus, steps, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if a rate variant is selected with `peak_rate` outside
    /// `(0, 1]`, or a burst variant carries a zero `max_burst`/`gap`.
    pub fn encode(
        &self,
        peak_rate: f64,
        intensities: &[f32],
        steps: usize,
        seed: u64,
    ) -> SpikeRaster {
        match *self {
            Encoding::Rate => PoissonEncoder::new(peak_rate, seed).encode(intensities, steps),
            Encoding::RegularRate => {
                RegularEncoder::new(peak_rate).encode_seeded(intensities, steps, seed)
            }
            Encoding::Ttfs => TtfsEncoder::new().encode_seeded(intensities, steps, seed),
            Encoding::Burst { max_burst, gap } => {
                BurstEncoder::new(max_burst, gap).encode_seeded(intensities, steps, seed)
            }
        }
    }

    /// The readout rule matching this code.
    pub fn readout(&self) -> Readout {
        match self {
            Encoding::Rate | Encoding::RegularRate | Encoding::Burst { .. } => Readout::Rate,
            Encoding::Ttfs => Readout::FirstSpike,
        }
    }

    /// Short scheme label (stable across parameter choices).
    pub fn label(&self) -> &'static str {
        match self {
            Encoding::Rate => "rate",
            Encoding::RegularRate => "regular-rate",
            Encoding::Ttfs => "ttfs",
            Encoding::Burst { .. } => "burst",
        }
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Encoding::Burst { max_burst, gap } => write!(f, "burst(max {max_burst}, gap {gap})"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_tracks_intensity() {
        let mut enc = PoissonEncoder::new(1.0, 7);
        let raster = enc.encode(&[0.5; 64], 2_000);
        let rate = raster.mean_rate();
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = PoissonEncoder::new(0.8, 42).encode(&[0.3; 32], 50);
        let b = PoissonEncoder::new(0.8, 42).encode(&[0.3; 32], 50);
        assert_eq!(a, b);
        let c = PoissonEncoder::new(0.8, 43).encode(&[0.3; 32], 50);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_intensity_is_silent() {
        let mut enc = PoissonEncoder::new(1.0, 1);
        let raster = enc.encode(&[0.0; 16], 100);
        assert_eq!(raster.total_spikes(), 0);
    }

    #[test]
    fn regular_rate_is_exact() {
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.25], 400);
        assert_eq!(raster.total_spikes(), 100);
    }

    #[test]
    fn regular_spikes_are_evenly_spaced() {
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.5], 10);
        // Rate 0.5: spike every other step — read straight from the set
        // bits instead of collecting per-bit booleans.
        let spike_steps: Vec<usize> = (0..raster.len())
            .filter(|&t| raster.step(t).iter_ones().next() == Some(0))
            .collect();
        assert_eq!(spike_steps, vec![1, 3, 5, 7, 9]);
        assert_eq!(raster.total_spikes(), 5);
    }

    #[test]
    fn intensities_above_one_are_clamped() {
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[5.0], 10);
        assert_eq!(raster.total_spikes(), 10);
    }

    #[test]
    #[should_panic(expected = "max_rate must be in (0, 1]")]
    fn invalid_rate_panics() {
        let _ = PoissonEncoder::new(1.5, 0);
    }

    #[test]
    fn trait_poisson_is_pure_in_seed() {
        let enc = PoissonEncoder::new(0.8, 999);
        let a = enc.encode_seeded(&[0.4; 24], 30, 5);
        let b = enc.encode_seeded(&[0.4; 24], 30, 5);
        assert_eq!(a, b, "trait encoding must not consume encoder state");
        // And it matches an encoder constructed directly from the seed.
        assert_eq!(a, PoissonEncoder::new(0.8, 5).encode(&[0.4; 24], 30));
    }

    fn first_spike(raster: &SpikeRaster, i: usize) -> Option<usize> {
        raster.iter().position(|v| v.get(i))
    }

    #[test]
    fn ttfs_emits_exactly_one_spike_per_positive_input() {
        let enc = TtfsEncoder::new();
        let raster = enc.encode(&[1.0, 0.7, 0.3, 0.01, 0.0, -2.0], 20);
        let counts = raster.spike_counts();
        assert_eq!(counts, vec![1, 1, 1, 1, 0, 0]);
        // Intensity 1 fires immediately; near-zero fires at the window end.
        assert_eq!(first_spike(&raster, 0), Some(0));
        assert_eq!(first_spike(&raster, 3), Some(19));
    }

    #[test]
    fn ttfs_latency_is_monotone_in_intensity() {
        let intensities: Vec<f32> = (1..=50).map(|i| i as f32 / 50.0).collect();
        let raster = TtfsEncoder::new().encode(&intensities, 64);
        let times: Vec<usize> = (0..intensities.len())
            .map(|i| first_spike(&raster, i).expect("positive intensity must spike"))
            .collect();
        for pair in times.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "higher intensity must not spike later: {times:?}"
            );
        }
    }

    #[test]
    fn ttfs_window_compresses_latencies() {
        let enc = TtfsEncoder::with_window(5);
        let raster = enc.encode(&[0.01, 0.5, 1.0], 40);
        for i in 0..3 {
            assert!(first_spike(&raster, i).expect("spikes") < 5);
        }
        // The tail is fully silent.
        assert!(raster.iter().skip(5).all(|v| v.is_silent()));
    }

    #[test]
    fn burst_length_tracks_intensity() {
        let enc = BurstEncoder::new(8, 2);
        let raster = enc.encode(&[1.0, 0.5, 0.0], 40);
        let counts = raster.spike_counts();
        assert_eq!(counts, vec![8, 4, 0]);
        // Burst spikes are gap-spaced from t = 0.
        for k in 0..8 {
            assert!(raster.step(k * 2).get(0));
        }
        assert!(raster.step(1).is_silent());
    }

    #[test]
    fn burst_is_truncated_by_the_window() {
        let enc = BurstEncoder::new(10, 3);
        let raster = enc.encode(&[1.0], 8);
        // Only k*3 < 8 fits: k = 0, 1, 2.
        assert_eq!(raster.total_spikes(), 3);
    }

    #[test]
    fn encoding_enum_dispatches_and_labels() {
        let x = vec![0.9f32, 0.2, 0.0];
        for (enc, label) in [
            (Encoding::Rate, "rate"),
            (Encoding::RegularRate, "regular-rate"),
            (Encoding::Ttfs, "ttfs"),
            (
                Encoding::Burst {
                    max_burst: 4,
                    gap: 1,
                },
                "burst",
            ),
        ] {
            assert_eq!(enc.label(), label);
            let a = enc.encode(0.8, &x, 16, 3);
            let b = enc.encode(0.8, &x, 16, 3);
            assert_eq!(a, b, "{enc} must be deterministic per seed");
            assert_eq!(a.len(), 16);
            assert_eq!(a.neurons(), 3);
        }
        assert_eq!(Encoding::Ttfs.readout(), Readout::FirstSpike);
        assert_eq!(Encoding::Rate.readout(), Readout::Rate);
        assert_eq!(
            Encoding::Burst {
                max_burst: 4,
                gap: 2
            }
            .to_string(),
            "burst(max 4, gap 2)"
        );
    }

    #[test]
    #[should_panic(expected = "gap must be non-zero")]
    fn burst_zero_gap_panics() {
        let _ = BurstEncoder::new(4, 0);
    }
}
