//! Input spike encoding: converting analog stimulus intensities into spike
//! trains.
//!
//! SNNs "require the input to be encoded as spike trains" (paper §2.1). The
//! standard scheme — and the one used by the Diehl et al. conversion flow
//! the paper trains with — is *rate coding*: a pixel of intensity `p ∈
//! [0, 1]` spikes with probability `p · max_rate` in each timestep.
//!
//! Two encoders are provided:
//!
//! * [`PoissonEncoder`] — stochastic Bernoulli/Poisson rate coding (the
//!   realistic one; seeded for reproducibility),
//! * [`RegularEncoder`] — deterministic evenly-spaced spikes at the same
//!   mean rate (useful for exact, noise-free tests).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::spike::{SpikeRaster, SpikeVector};

/// Stochastic rate encoder: intensity `p` spikes with probability
/// `p × max_rate` per timestep, independently across steps and neurons.
#[derive(Debug)]
pub struct PoissonEncoder {
    max_rate: f64,
    rng: StdRng,
}

impl PoissonEncoder {
    /// Creates an encoder with the given peak per-step spike probability
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 1]`.
    pub fn new(max_rate: f64, seed: u64) -> Self {
        assert!(
            max_rate > 0.0 && max_rate <= 1.0,
            "max_rate must be in (0, 1], got {max_rate}"
        );
        Self {
            max_rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Peak per-step spike probability.
    pub fn max_rate(&self) -> f64 {
        self.max_rate
    }

    /// Encodes intensities (`[0, 1]`, clamped) into a raster of `steps`
    /// timesteps.
    pub fn encode(&mut self, intensities: &[f32], steps: usize) -> SpikeRaster {
        let mut raster = SpikeRaster::new(intensities.len());
        for _ in 0..steps {
            let mut v = SpikeVector::new(intensities.len());
            for (i, &p) in intensities.iter().enumerate() {
                let prob = (p.clamp(0.0, 1.0) as f64) * self.max_rate;
                if prob > 0.0 && self.rng.random_bool(prob) {
                    v.set(i, true);
                }
            }
            raster.push(v);
        }
        raster
    }
}

/// Deterministic rate encoder: intensity `p` produces evenly spaced spikes
/// with mean rate `p × max_rate` using per-neuron phase accumulators.
#[derive(Debug, Clone)]
pub struct RegularEncoder {
    max_rate: f64,
}

impl RegularEncoder {
    /// Creates an encoder with the given peak per-step rate.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 1]`.
    pub fn new(max_rate: f64) -> Self {
        assert!(
            max_rate > 0.0 && max_rate <= 1.0,
            "max_rate must be in (0, 1], got {max_rate}"
        );
        Self { max_rate }
    }

    /// Encodes intensities into a deterministic raster of `steps`
    /// timesteps.
    pub fn encode(&self, intensities: &[f32], steps: usize) -> SpikeRaster {
        let mut raster = SpikeRaster::new(intensities.len());
        let mut phase = vec![0.0f64; intensities.len()];
        for _ in 0..steps {
            let mut v = SpikeVector::new(intensities.len());
            for (i, &p) in intensities.iter().enumerate() {
                phase[i] += (p.clamp(0.0, 1.0) as f64) * self.max_rate;
                if phase[i] >= 1.0 {
                    phase[i] -= 1.0;
                    v.set(i, true);
                }
            }
            raster.push(v);
        }
        raster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_tracks_intensity() {
        let mut enc = PoissonEncoder::new(1.0, 7);
        let raster = enc.encode(&[0.5; 64], 2_000);
        let rate = raster.mean_rate();
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = PoissonEncoder::new(0.8, 42).encode(&[0.3; 32], 50);
        let b = PoissonEncoder::new(0.8, 42).encode(&[0.3; 32], 50);
        assert_eq!(a, b);
        let c = PoissonEncoder::new(0.8, 43).encode(&[0.3; 32], 50);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_intensity_is_silent() {
        let mut enc = PoissonEncoder::new(1.0, 1);
        let raster = enc.encode(&[0.0; 16], 100);
        assert_eq!(raster.total_spikes(), 0);
    }

    #[test]
    fn regular_rate_is_exact() {
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.25], 400);
        assert_eq!(raster.total_spikes(), 100);
    }

    #[test]
    fn regular_spikes_are_evenly_spaced() {
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[0.5], 10);
        // Rate 0.5: spike every other step.
        let pattern: Vec<bool> = raster.iter().map(|s| s.get(0)).collect();
        assert_eq!(
            pattern,
            vec![false, true, false, true, false, true, false, true, false, true]
        );
    }

    #[test]
    fn intensities_above_one_are_clamped() {
        let enc = RegularEncoder::new(1.0);
        let raster = enc.encode(&[5.0], 10);
        assert_eq!(raster.total_spikes(), 10);
    }

    #[test]
    #[should_panic(expected = "max_rate must be in (0, 1]")]
    fn invalid_rate_panics() {
        let _ = PoissonEncoder::new(1.5, 0);
    }
}
