//! Per-timestep, per-boundary spike traces captured from the functional
//! SNN — the workload record the trace-driven architectural simulator
//! replays.
//!
//! The stationary architecture simulator consumes an
//! [`ActivityProfile`]: *expected* rates and
//! zero-packet probabilities, stationary across timesteps. A
//! [`SpikeTrace`] is the exact record instead — one [`SpikeRaster`] per
//! boundary (the network input plus every layer output), aligned on the
//! same timestep axis. Replaying it exercises the fabric per *actual*
//! packet: silent steps cost nothing, bursts pay their true price, and
//! spatially-clustered zeros are dropped at the zero-check exactly as the
//! hardware would drop them (paper §3.2).
//!
//! Traces are captured by [`SnnRunner::run_traced`] /
//! [`Network::spiking_batch_traced`](crate::network::Network::spiking_batch_traced)
//! over the compiled input-major planes — recording costs one bit-packed
//! clone of each layer's spike vector per step.
//!
//! [`SnnRunner::run_traced`]: crate::network::SnnRunner::run_traced

use crate::spike::SpikeRaster;
use crate::stats::ActivityProfile;

/// A complete spike record of one stimulus presentation: the input raster
/// plus every layer's output raster, all over the same timesteps.
///
/// "Boundary" indexing matches [`ActivityProfile`]: boundary `0` is the
/// network input, boundary `l` (1-based) is the output of layer `l-1`. A
/// trace over an `L`-layer network has `L + 1` boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTrace {
    boundaries: Vec<SpikeRaster>,
}

impl SpikeTrace {
    /// Assembles a trace from per-boundary rasters (input first, then one
    /// per layer).
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is empty or the rasters disagree on the
    /// number of timesteps.
    pub fn new(boundaries: Vec<SpikeRaster>) -> Self {
        assert!(
            !boundaries.is_empty(),
            "trace needs at least the input boundary"
        );
        let steps = boundaries[0].len();
        assert!(
            boundaries.iter().all(|r| r.len() == steps),
            "all boundaries must cover the same timesteps"
        );
        Self { boundaries }
    }

    /// Builds an all-silent trace over the given boundary sizes and
    /// timestep count (useful for base-cost probes: the event simulator
    /// must charge zero Crossbar/Neuron energy on it). Each boundary is
    /// one zeroed word arena — no per-step vector construction.
    pub fn silent(neuron_counts: &[usize], steps: usize) -> Self {
        let boundaries = neuron_counts
            .iter()
            .map(|&n| SpikeRaster::zeroed(n, steps))
            .collect();
        Self::new(boundaries)
    }

    /// Number of boundaries (`layers + 1`).
    pub fn boundary_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Number of recorded timesteps.
    pub fn steps(&self) -> usize {
        self.boundaries[0].len()
    }

    /// The raster at boundary `b` (0 = network input).
    pub fn boundary(&self, b: usize) -> &SpikeRaster {
        &self.boundaries[b]
    }

    /// The input raster (boundary 0).
    pub fn input(&self) -> &SpikeRaster {
        &self.boundaries[0]
    }

    /// The output raster of layer `l` (boundary `l + 1`).
    pub fn layer_output(&self, l: usize) -> &SpikeRaster {
        &self.boundaries[l + 1]
    }

    /// A copy of this trace cut to its first `steps` timesteps (clamped
    /// to the recorded window) — the record an early-exited presentation
    /// leaves behind
    /// ([`SnnRunner::run_traced_early_exit`](crate::network::SnnRunner::run_traced_early_exit)).
    pub fn truncated(&self, steps: usize) -> Self {
        let boundaries = self
            .boundaries
            .iter()
            .map(|r| r.truncated(steps.min(r.len())))
            .collect();
        Self::new(boundaries)
    }

    /// Total spikes across every boundary and timestep.
    pub fn total_spikes(&self) -> u64 {
        self.boundaries.iter().map(|r| r.total_spikes()).sum()
    }

    /// Returns `true` if no boundary carries any spike.
    pub fn is_silent(&self) -> bool {
        self.total_spikes() == 0
    }

    /// Summarises the trace into the stationary simulator's input: mean
    /// rates plus zero-packet fractions measured at the given widths.
    /// This is the bridge for agreement checks — a stationary run on
    /// `self.to_profile(..)` should approximate the event-driven replay
    /// of `self` whenever activity really is stationary.
    pub fn to_profile(&self, widths: &[u32]) -> ActivityProfile {
        ActivityProfile::measure(&self.boundaries[0], &self.boundaries[1..], widths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spike::SpikeVector;

    fn raster_with_spike(neurons: usize, steps: usize, at: Option<(usize, usize)>) -> SpikeRaster {
        let mut r = SpikeRaster::new(neurons);
        for t in 0..steps {
            let mut v = SpikeVector::new(neurons);
            if let Some((ts, i)) = at {
                if ts == t {
                    v.set(i, true);
                }
            }
            r.push(v);
        }
        r
    }

    #[test]
    fn trace_accessors() {
        let t = SpikeTrace::new(vec![
            raster_with_spike(8, 3, Some((1, 2))),
            raster_with_spike(4, 3, None),
        ]);
        assert_eq!(t.boundary_count(), 2);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.input().neurons(), 8);
        assert_eq!(t.layer_output(0).neurons(), 4);
        assert_eq!(t.total_spikes(), 1);
        assert!(!t.is_silent());
    }

    #[test]
    fn silent_trace_is_silent() {
        let t = SpikeTrace::silent(&[16, 8, 2], 5);
        assert!(t.is_silent());
        assert_eq!(t.boundary_count(), 3);
        assert_eq!(t.steps(), 5);
    }

    #[test]
    fn to_profile_measures_rates() {
        let t = SpikeTrace::new(vec![
            raster_with_spike(8, 4, Some((0, 0))),
            raster_with_spike(4, 4, Some((2, 3))),
        ]);
        let p = t.to_profile(&[8]);
        assert_eq!(p.boundary_count(), 2);
        assert!((p.rate(0) - 1.0 / 32.0).abs() < 1e-12);
        assert!((p.rate(1) - 1.0 / 16.0).abs() < 1e-12);
        // 4 windows at width 8 on the input, 1 non-zero.
        assert!((p.zero_packet_prob(0, 8) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn truncated_matches_per_step_copy_path() {
        // The arena-slice truncation must produce exactly what the old
        // per-step clone loop produced.
        let mut r0 = SpikeRaster::new(70);
        let mut r1 = SpikeRaster::new(33);
        for t in 0..6 {
            let mut a = SpikeVector::new(70);
            let mut b = SpikeVector::new(33);
            a.set((t * 13) % 70, true);
            a.set((t * 29 + 7) % 70, true);
            b.set((t * 5) % 33, true);
            r0.push(a);
            r1.push(b);
        }
        let trace = SpikeTrace::new(vec![r0, r1]);
        for steps in [0, 1, 4, 6, 10] {
            let fast = trace.truncated(steps);
            // Old path: fresh raster, one cloned step at a time.
            let slow_boundaries: Vec<SpikeRaster> = (0..trace.boundary_count())
                .map(|b| {
                    let r = trace.boundary(b);
                    let mut out = SpikeRaster::new(r.neurons());
                    for t in 0..steps.min(r.len()) {
                        out.push(r.step(t).to_vector());
                    }
                    out
                })
                .collect();
            assert_eq!(fast, SpikeTrace::new(slow_boundaries), "steps {steps}");
        }
    }

    #[test]
    #[should_panic(expected = "same timesteps")]
    fn mismatched_steps_panic() {
        let _ = SpikeTrace::new(vec![
            raster_with_spike(8, 3, None),
            raster_with_spike(4, 2, None),
        ]);
    }
}
