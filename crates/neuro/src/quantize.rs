//! Weight bit-discretization for memristive storage.
//!
//! Memristive devices store a small number of conductance levels — the
//! paper uses "16 levels (4 bits) for weight-discretization" (§4.2) and
//! sweeps 1/2/4/8 bits in Fig. 14. This module quantizes a trained
//! network's weights to `2^bits` uniformly spaced levels per layer
//! (symmetric around zero, per-layer scale = max |w|), which is exactly
//! what a differential crossbar pair realises.
//!
//! # Examples
//!
//! ```
//! use resparc_neuro::quantize::Precision;
//!
//! let p = Precision::new(4);
//! assert_eq!(p.levels(), 16);
//! let (q, _err) = p.quantize_values(&[0.5, -0.25, 1.0]);
//! assert!((q[2] - 1.0).abs() < 1e-6); // the max maps to a level exactly
//! ```

use crate::network::Network;

/// A weight storage precision (bits per weight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Precision {
    bits: u8,
}

impl Precision {
    /// Creates a precision of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "bits must be in 1..=16, got {bits}"
        );
        Self { bits }
    }

    /// The paper's default: 4 bits / 16 levels.
    pub fn paper_default() -> Self {
        Self::new(4)
    }

    /// Bits per weight.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Number of discrete levels (`2^bits`).
    pub fn levels(self) -> u32 {
        1u32 << self.bits
    }

    /// Quantizes a slice of weights symmetrically: levels are uniformly
    /// spaced over `[-max|w|, +max|w|]`. Returns the dequantized values
    /// and the RMS quantization error.
    pub fn quantize_values(self, weights: &[f32]) -> (Vec<f32>, f32) {
        let max = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        if max == 0.0 {
            return (weights.to_vec(), 0.0);
        }
        let levels = self.levels() as f32;
        let step = 2.0 * max / (levels - 1.0);
        let mut err2 = 0.0f64;
        let out: Vec<f32> = weights
            .iter()
            .map(|&w| {
                let q = ((w + max) / step).round().clamp(0.0, levels - 1.0);
                let deq = q * step - max;
                err2 += ((w - deq) as f64).powi(2);
                deq
            })
            .collect();
        let rms = (err2 / weights.len() as f64).sqrt() as f32;
        (out, rms)
    }
}

/// Returns a copy of `net` with every layer's weights quantized to
/// `precision` (per-layer scales), plus per-layer RMS errors.
///
/// Pooling layers (a single fixed averaging weight) are left untouched —
/// on hardware the averaging is wired, not stored in devices.
pub fn quantize_network(net: &Network, precision: Precision) -> (Network, Vec<f32>) {
    let mut out = net.clone();
    let mut errs = Vec::with_capacity(net.layers().len());
    for layer in out.layers_mut() {
        if matches!(layer.spec(), crate::topology::LayerSpec::AvgPool { .. }) {
            errs.push(0.0);
            continue;
        }
        let (q, rms) = precision.quantize_values(layer.weights());
        layer.weights_mut().copy_from_slice(&q);
        errs.push(rms);
    }
    (out, errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::topology::Topology;

    #[test]
    fn levels_double_per_bit() {
        assert_eq!(Precision::new(1).levels(), 2);
        assert_eq!(Precision::new(4).levels(), 16);
        assert_eq!(Precision::new(8).levels(), 256);
    }

    #[test]
    fn quantized_values_are_on_grid() {
        let p = Precision::new(2); // 4 levels
        let (q, _) = p.quantize_values(&[-1.0, -0.2, 0.4, 1.0]);
        // Levels: -1, -1/3, 1/3, 1.
        let third = 1.0 / 3.0;
        assert!((q[0] + 1.0).abs() < 1e-6);
        assert!((q[1] + third).abs() < 1e-6);
        assert!((q[2] - third).abs() < 1e-6);
        assert!((q[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn error_shrinks_with_bits() {
        let weights: Vec<f32> = (0..100).map(|i| (i as f32 / 37.0).sin()).collect();
        let (_, e1) = Precision::new(1).quantize_values(&weights);
        let (_, e2) = Precision::new(2).quantize_values(&weights);
        let (_, e4) = Precision::new(4).quantize_values(&weights);
        let (_, e8) = Precision::new(8).quantize_values(&weights);
        assert!(e1 > e2 && e2 > e4 && e4 > e8, "{e1} {e2} {e4} {e8}");
    }

    #[test]
    fn max_error_bounded_by_half_step() {
        let weights: Vec<f32> = (0..64).map(|i| (i as f32 / 11.0).cos()).collect();
        let p = Precision::new(4);
        let (q, _) = p.quantize_values(&weights);
        let max = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        let step = 2.0 * max / (p.levels() as f32 - 1.0);
        for (&w, &d) in weights.iter().zip(&q) {
            assert!((w - d).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn all_zero_weights_stay_zero() {
        let (q, err) = Precision::new(4).quantize_values(&[0.0; 8]);
        assert_eq!(q, vec![0.0; 8]);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn network_quantization_preserves_shapes() {
        let net = Network::random(Topology::mlp(8, &[6, 3]), 3, 1.0);
        let (qnet, errs) = quantize_network(&net, Precision::new(4));
        assert_eq!(errs.len(), 2);
        assert_eq!(
            qnet.layers()[0].weights().len(),
            net.layers()[0].weights().len()
        );
        // 8-bit quantization barely moves outputs.
        let (q8, _) = quantize_network(&net, Precision::new(8));
        let x = vec![0.5; 8];
        let a = net.forward_analog(&x);
        let b = q8.forward_analog(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 0.05, "{u} vs {v}");
        }
    }
}
