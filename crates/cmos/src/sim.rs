//! Activity-driven execution model of the CMOS baseline.
//!
//! Mirrors the RESPARC simulator's methodology (expected per-timestep
//! quantities × timestep budget) on the digital machine:
//!
//! * synaptic work is time-multiplexed over the 16 neuron units
//!   (1 synaptic accumulate per NU per cycle),
//! * event-driven operation skips the fetch + accumulate for input spike
//!   packets that are entirely zero (the "unnecessary memory fetches and
//!   computations" the paper's §4.1 optimises away),
//! * weights live in an SRAM weight memory sized for the whole network
//!   (CACTI-mini): layers whose *unique* weights fit the reuse buffer
//!   (convolutions) fetch each weight once per timestep and hit the cheap
//!   buffer thereafter; streaming layers (MLPs) pay a memory access per
//!   synaptic operation — this asymmetry produces the paper's
//!   memory-dominated MLP vs core-dominated CNN breakdowns (Fig. 12 b/d),
//! * memory and logic leakage integrate over the (long) execution time.

use resparc_energy::accounting::{Category, EnergyBreakdown};
use resparc_energy::sram::SramSpec;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::stats::ActivityProfile;
use resparc_neuro::topology::Topology;

use crate::config::CmosConfig;

/// Per-classification execution report for the CMOS baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CmosReport {
    /// Energy per classification by fine-grained category.
    pub energy: EnergyBreakdown,
    /// Cycles per timestep.
    pub timestep_cycles: u64,
    /// Wall-clock latency per classification.
    pub latency: Time,
    /// Classifications per second.
    pub throughput: f64,
    /// Weight-memory capacity the network required (bytes).
    pub weight_memory_bytes: usize,
    /// Per-layer expected synaptic operations per timestep.
    pub layer_synops: Vec<f64>,
}

impl CmosReport {
    /// Total energy per classification.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }
}

/// The baseline simulator.
#[derive(Debug, Clone)]
pub struct CmosSimulator {
    config: CmosConfig,
}

impl CmosSimulator {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: CmosConfig) -> Self {
        config.validate().expect("CMOS configuration must be valid");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CmosConfig {
        &self.config
    }

    /// Runs one classification of `topology` under `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile's boundary count is not `layers + 1`.
    pub fn run(&self, topology: &Topology, profile: &ActivityProfile) -> CmosReport {
        let cfg = &self.config;
        assert_eq!(
            profile.boundary_count(),
            topology.layer_count() + 1,
            "profile must have layers + 1 boundaries"
        );
        let cat = &cfg.catalog;

        // Weight memory sized for every unique weight in the network.
        let weight_memory_bytes = (topology.unique_weight_count() as u64 * cfg.weight_bits as u64)
            .div_ceil(8)
            .max(1024) as usize;
        let weight_sram = SramSpec::new(weight_memory_bytes, 64).build();
        // Input/membrane scratch memory: activations + accumulators.
        let state_words: usize = topology
            .layers()
            .iter()
            .map(|l| l.output_count())
            .sum::<usize>()
            + topology.input_count();
        let state_bytes = (state_words as u64 * cfg.accumulator_bits as u64)
            .div_ceil(8)
            .max(1024) as usize;
        let state_sram = SramSpec::new(state_bytes, cfg.accumulator_bits).build();

        let mut per_step = EnergyBreakdown::new();
        let mut cycles_per_step = 0f64;
        let mut layer_synops = Vec::with_capacity(topology.layer_count());

        for (l, layer) in topology.layers().iter().enumerate() {
            let synapses = layer.synapse_count() as f64;
            let outputs = layer.output_count() as f64;
            let active_packet_frac = if cfg.event_driven {
                1.0 - profile.zero_packet_prob(l, cfg.packet_bits)
            } else {
                1.0
            };
            let synops = synapses * active_packet_frac;
            layer_synops.push(synops);

            // --- Weight traffic ----------------------------------------
            let unique = layer.unique_weight_count() as f64;
            let words_per_fetch = 64.0 / cfg.weight_bits as f64;
            if (unique as usize) <= cfg.weight_buffer_words() {
                // Conv-style reuse: fill the kernel buffer once per step,
                // then serve synops from the cheap buffer.
                per_step.charge(
                    Category::MemoryAccess,
                    weight_sram.read_energy() * (unique / words_per_fetch).ceil(),
                );
                per_step.charge(
                    Category::Buffer,
                    cat.buffer_access(cfg.weight_bits) * synops,
                );
            } else {
                // MLP-style streaming: every synop pulls its weight
                // through the memory hierarchy.
                per_step.charge(
                    Category::MemoryAccess,
                    weight_sram.read_energy() * (synops / words_per_fetch),
                );
                per_step.charge(
                    Category::Buffer,
                    cat.buffer_access(cfg.weight_bits) * synops,
                );
            }

            // --- Input spike traffic ------------------------------------
            let packets_in = (layer.input_count() as u64).div_ceil(cfg.packet_bits as u64) as f64;
            per_step.charge(
                Category::MemoryAccess,
                state_sram.read_energy() * (packets_in * active_packet_frac),
            );
            if cfg.event_driven {
                per_step.charge(
                    Category::Control,
                    cat.zero_check(cfg.packet_bits) * packets_in,
                );
            }
            // Input FIFO write + read per synop.
            per_step.charge(
                Category::Buffer,
                cat.buffer_access(cfg.datapath_bits) * (2.0 * synops),
            );

            // --- Compute -------------------------------------------------
            // Accumulate into the membrane register per synop.
            per_step.charge(Category::Compute, cat.add(cfg.accumulator_bits) * synops);
            // Membrane read-modify-write per neuron: accumulators live in
            // NU-local buffers (the FALCON dataflow keeps the working set
            // on-chip), not the weight SRAM.
            per_step.charge(
                Category::Buffer,
                cat.buffer_access(cfg.accumulator_bits) * (2.0 * outputs),
            );
            per_step.charge(
                Category::Compute,
                cat.compare(cfg.accumulator_bits) * outputs,
            );
            // Scheduling control.
            per_step.charge(
                Category::Control,
                cat.control_cycle * (synops / cfg.nu_count as f64),
            );

            // --- Cycles --------------------------------------------------
            // NUs consume one synop per cycle each; neuron updates are
            // time-multiplexed over the same units.
            cycles_per_step += synops / cfg.nu_count as f64 + outputs / cfg.nu_count as f64;
        }

        let timestep_cycles = cycles_per_step.ceil().max(1.0) as u64;
        let latency = cfg
            .frequency
            .cycles_to_time(timestep_cycles * cfg.timesteps as u64);

        let mut energy = per_step.scaled(cfg.timesteps as f64);
        energy.charge(
            Category::MemoryLeakage,
            (weight_sram.leakage() + state_sram.leakage()) * latency,
        );
        energy.charge(Category::LogicLeakage, cfg.logic_leakage * latency);

        CmosReport {
            energy,
            timestep_cycles,
            latency,
            throughput: 1.0 / latency.seconds(),
            weight_memory_bytes,
            layer_synops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resparc_energy::accounting::CmosGroup;
    use resparc_neuro::topology::{ChannelTable, Padding, Shape};

    fn profile_for(t: &Topology, input_rate: f64, layer_rate: f64) -> ActivityProfile {
        let mut counts = vec![t.input_count()];
        counts.extend(t.layers().iter().map(|l| l.output_count()));
        ActivityProfile::uniform(&counts, input_rate, layer_rate)
    }

    fn mlp() -> Topology {
        Topology::mlp(784, &[800, 10])
    }

    fn cnn() -> Topology {
        Topology::builder(Shape::new(16, 16, 1))
            .conv(8, 5, Padding::Valid, ChannelTable::Full)
            .pool(2)
            .dense(10)
            .build()
            .unwrap()
    }

    #[test]
    fn report_is_positive_and_complete() {
        let t = mlp();
        let r =
            CmosSimulator::new(CmosConfig::paper_baseline()).run(&t, &profile_for(&t, 0.2, 0.1));
        assert!(r.total_energy() > Energy::ZERO);
        assert!(r.latency.nanoseconds() > 0.0);
        assert_eq!(r.layer_synops.len(), 2);
        assert!(r.weight_memory_bytes > 100_000); // ~640k weights at 4 bits
    }

    #[test]
    fn mlp_is_memory_dominated() {
        // Fig. 12(b): MLP energy dominated by memory access + leakage.
        let t = mlp();
        let r =
            CmosSimulator::new(CmosConfig::paper_baseline()).run(&t, &profile_for(&t, 0.2, 0.1));
        let groups = r.energy.cmos_groups();
        let core = groups
            .iter()
            .find(|(g, _)| *g == CmosGroup::Core)
            .unwrap()
            .1;
        let memory: Energy = groups
            .iter()
            .filter(|(g, _)| *g != CmosGroup::Core)
            .map(|(_, e)| *e)
            .sum();
        assert!(memory > core, "memory {memory} vs core {core}");
    }

    #[test]
    fn cnn_is_core_dominated() {
        // Fig. 12(d): conv kernels fit the reuse buffer, so the core
        // (buffers + compute) dominates.
        let t = cnn();
        let r =
            CmosSimulator::new(CmosConfig::paper_baseline()).run(&t, &profile_for(&t, 0.2, 0.15));
        let groups = r.energy.cmos_groups();
        let core = groups
            .iter()
            .find(|(g, _)| *g == CmosGroup::Core)
            .unwrap()
            .1;
        let memory: Energy = groups
            .iter()
            .filter(|(g, _)| *g != CmosGroup::Core)
            .map(|(_, e)| *e)
            .sum();
        assert!(core > memory, "core {core} vs memory {memory}");
    }

    #[test]
    fn event_driven_saves_energy_and_time() {
        let t = mlp();
        let p = profile_for(&t, 0.1, 0.05);
        let with = CmosSimulator::new(CmosConfig::paper_baseline()).run(&t, &p);
        let without =
            CmosSimulator::new(CmosConfig::paper_baseline().with_event_driven(false)).run(&t, &p);
        assert!(with.total_energy() < without.total_energy());
        assert!(with.timestep_cycles <= without.timestep_cycles);
    }

    #[test]
    fn energy_grows_with_weight_precision() {
        // Fig. 14(b): higher bit-discretization inflates memory, buffers
        // and compute on the CMOS baseline.
        let t = mlp();
        let p = profile_for(&t, 0.2, 0.1);
        let totals: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&b| {
                CmosSimulator::new(CmosConfig::paper_baseline().with_weight_bits(b))
                    .run(&t, &p)
                    .total_energy()
                    .picojoules()
            })
            .collect();
        assert!(totals.windows(2).all(|w| w[0] < w[1]), "{totals:?}");
    }

    #[test]
    fn cycles_scale_with_network_size() {
        let small = Topology::mlp(64, &[32, 10]);
        let big = Topology::mlp(784, &[800, 10]);
        let sim = CmosSimulator::new(CmosConfig::paper_baseline());
        let rs = sim.run(&small, &profile_for(&small, 0.2, 0.1));
        let rb = sim.run(&big, &profile_for(&big, 0.2, 0.1));
        assert!(rb.timestep_cycles > 10 * rs.timestep_cycles);
    }

    #[test]
    #[should_panic(expected = "boundaries")]
    fn wrong_profile_shape_panics() {
        let t = Topology::mlp(10, &[5]);
        let p = ActivityProfile::uniform(&[10, 5, 5], 0.1, 0.1);
        let _ = CmosSimulator::new(CmosConfig::paper_baseline()).run(&t, &p);
    }
}
