//! CMOS baseline configuration: the micro-architectural parameters of
//! the paper's Fig. 9.
//!
//! The baseline implements the FALCON \[15\] dataflow "aggressively
//! optimized for SNNs": 16 neuron units at 1 GHz, 16 input FIFOs and one
//! weight FIFO (depth 32, width 4), event-driven optimisations that skip
//! fetches/computation for all-zero spike packets, and reuse buffers that
//! keep convolution kernels on-chip.

use resparc_energy::components::{ComponentCatalog, ReportedMetrics};
use resparc_energy::units::{Frequency, Power};

/// Parameters of the digital CMOS SNN accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct CmosConfig {
    /// Parallel neuron units (16 in Fig. 9).
    pub nu_count: usize,
    /// Input FIFO count (16).
    pub input_fifos: usize,
    /// FIFO depth in entries (32).
    pub fifo_depth: usize,
    /// FIFO / NU datapath width in bits (4).
    pub datapath_bits: u32,
    /// Weight precision in bits (4-bit discretized weights, §4.2).
    pub weight_bits: u32,
    /// Membrane-accumulator width in bits.
    pub accumulator_bits: u32,
    /// Clock frequency (1 GHz).
    pub frequency: Frequency,
    /// Spike-packet width for the event-driven zero check.
    pub packet_bits: u32,
    /// Enable event-driven skipping of zero packets.
    pub event_driven: bool,
    /// On-chip weight reuse buffer capacity in bytes (holds conv kernels).
    pub weight_buffer_bytes: usize,
    /// Static logic leakage of the core.
    pub logic_leakage: Power,
    /// Digital-periphery energy catalog.
    pub catalog: ComponentCatalog,
    /// Timesteps per classification (must match the RESPARC side for fair
    /// comparisons).
    pub timesteps: u32,
}

impl CmosConfig {
    /// The paper's Fig. 9 baseline.
    pub fn paper_baseline() -> Self {
        Self {
            nu_count: 16,
            input_fifos: 16,
            fifo_depth: 32,
            datapath_bits: 4,
            weight_bits: 4,
            accumulator_bits: 16,
            frequency: Frequency::from_gigahertz(1.0),
            packet_bits: 64,
            event_driven: true,
            weight_buffer_bytes: 4 * 1024,
            logic_leakage: Power::from_milliwatts(3.0),
            catalog: ComponentCatalog::ibm45(),
            timesteps: 100,
        }
    }

    /// Returns a copy with event-driven optimisations toggled.
    pub fn with_event_driven(mut self, enabled: bool) -> Self {
        self.event_driven = enabled;
        self
    }

    /// Returns a copy with a different timestep budget.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps` is zero.
    pub fn with_timesteps(mut self, timesteps: u32) -> Self {
        assert!(timesteps > 0, "need at least one timestep");
        self.timesteps = timesteps;
        self
    }

    /// Returns a copy with a different weight precision (the Fig. 14b
    /// sweep: bigger weights ⇒ bigger memory, buffers and compute).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`.
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "weight bits out of range");
        self.weight_bits = bits;
        self.datapath_bits = bits;
        self
    }

    /// Words held by the weight reuse buffer at the current precision.
    pub fn weight_buffer_words(&self) -> usize {
        (self.weight_buffer_bytes * 8) / self.weight_bits as usize
    }

    /// The paper's published implementation metrics (Fig. 9).
    pub fn reported_metrics(&self) -> ReportedMetrics {
        ReportedMetrics::cmos_baseline()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nu_count == 0 {
            return Err("need at least one neuron unit".into());
        }
        if self.weight_bits == 0 || self.weight_bits > 16 {
            return Err(format!("weight bits {} out of range", self.weight_bits));
        }
        if self.packet_bits == 0 {
            return Err("packet width must be non-zero".into());
        }
        if self.timesteps == 0 {
            return Err("need at least one timestep".into());
        }
        Ok(())
    }
}

impl Default for CmosConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_parameters() {
        let cfg = CmosConfig::paper_baseline();
        assert_eq!(cfg.nu_count, 16);
        assert_eq!(cfg.input_fifos, 16);
        assert_eq!(cfg.fifo_depth, 32);
        assert_eq!(cfg.datapath_bits, 4);
        assert!((cfg.frequency.gigahertz() - 1.0).abs() < 1e-12);
        cfg.validate().unwrap();
    }

    #[test]
    fn weight_buffer_capacity_scales_with_precision() {
        let cfg4 = CmosConfig::paper_baseline();
        let cfg8 = CmosConfig::paper_baseline().with_weight_bits(8);
        assert_eq!(cfg4.weight_buffer_words(), 8192);
        assert_eq!(cfg8.weight_buffer_words(), 4096);
    }

    #[test]
    fn builders_apply() {
        let cfg = CmosConfig::paper_baseline()
            .with_event_driven(false)
            .with_timesteps(7);
        assert!(!cfg.event_driven);
        assert_eq!(cfg.timesteps, 7);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CmosConfig::paper_baseline();
        cfg.nu_count = 0;
        assert!(cfg.validate().is_err());
    }
}
