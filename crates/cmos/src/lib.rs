//! The optimized digital CMOS baseline accelerator the paper compares
//! RESPARC against (§4.1, Fig. 9).
//!
//! "We implemented the dataflow proposed in \[15\] for our CMOS baseline
//! and aggressively optimized it for SNNs": 16 neuron units at 1 GHz,
//! input/weight FIFOs, event-driven skipping of zero spike packets, and
//! reuse buffers minimising memory fetches. This crate models that
//! machine with the same activity-driven methodology as the RESPARC
//! simulator so the two sides of Figs. 11–14 are directly comparable.
//!
//! # Examples
//!
//! ```
//! use resparc_cmos::prelude::*;
//! use resparc_neuro::stats::ActivityProfile;
//! use resparc_neuro::topology::Topology;
//!
//! let t = Topology::mlp(784, &[800, 10]);
//! let profile = ActivityProfile::uniform(&[784, 800, 10], 0.2, 0.1);
//! let report = CmosSimulator::new(CmosConfig::paper_baseline()).run(&t, &profile);
//! assert!(report.total_energy().picojoules() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod sim;

pub use config::CmosConfig;
pub use sim::{CmosReport, CmosSimulator};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::config::CmosConfig;
    pub use crate::sim::{CmosReport, CmosSimulator};
}
