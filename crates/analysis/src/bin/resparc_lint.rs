//! CLI for the determinism linter. Scans the workspace's first-party
//! sources and exits nonzero on any unsuppressed finding.

use resparc_analysis::lint::lint_workspace;
use std::path::PathBuf;

fn main() {
    // The binary lives at crates/analysis; the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|e| {
            eprintln!("resparc-lint: cannot resolve workspace root: {e}");
            std::process::exit(2);
        });
    let reports = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("resparc-lint: scan failed: {e}");
            std::process::exit(2);
        }
    };
    let mut findings = 0usize;
    let mut suppressed = 0usize;
    for report in &reports {
        suppressed += report.suppressed;
        for f in &report.findings {
            findings += 1;
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule.id(), f.message);
        }
    }
    println!(
        "resparc-lint: {findings} unsuppressed finding(s), {suppressed} suppression(s) with reasons"
    );
    if findings > 0 {
        std::process::exit(1);
    }
}
