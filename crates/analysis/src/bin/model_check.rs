//! CLI for the bounded model checker: runs the CI suite and exits
//! nonzero on any invariant violation.

use resparc_analysis::model::{check, suite};

fn main() {
    let mut total = 0usize;
    let mut failed = false;
    for cfg in suite() {
        let outcome = check(&cfg);
        total += outcome.states;
        match &outcome.violation {
            None => println!(
                "model-check: {} ok ({} transitions, depth {})",
                cfg.name, outcome.states, cfg.depth
            ),
            Some(v) => {
                failed = true;
                println!("model-check: {} VIOLATION: {v}", cfg.name);
            }
        }
    }
    println!("model-check: {total} transitions explored");
    if failed {
        std::process::exit(1);
    }
    if total < 10_000 {
        println!("model-check: suite shrank below the 10^4-transition floor");
        std::process::exit(1);
    }
}
