//! Bounded exhaustive model checking of the fabric scheduling stack.
//!
//! The `FabricScheduler` × NC-health × admission state machine is the
//! part of the repo where a silent invariant break turns directly into
//! wrong energy numbers (a lost tenant stops being billed; a
//! double-occupied NeuroCell is billed twice). Proptests sample that
//! space; this module **enumerates** it: every interleaving of a small
//! event vocabulary — submit / cancel / fail / drain / restore / round
//! — over a 2–4 NeuroCell pool with 2–3 tenants, checking six
//! invariants after every single transition:
//!
//! 1. **NC conservation** — free + occupied + unhealthy cells equal the
//!    physical pool, and no unhealthy cell is occupied.
//! 2. **No double-occupancy** — every resident tenant owns exactly its
//!    contiguous run, every occupied cell belongs to exactly one
//!    resident, and footprints sum to the occupied count. On
//!    heterogeneous inventories the run is additionally uniform in the
//!    mapping's size class and every partition tile physically fits
//!    that class's crossbar (an over-capacity admit — a 16-wide tile on
//!    8×8 cells — is a violation).
//! 3. **Request conservation** — queued ∪ active ∪ completed is
//!    exactly the submitted set, with no duplicates (via
//!    [`FabricScheduler::check_consistency`]): evict–requeue–readmit
//!    never loses or duplicates a request.
//! 4. **Abort legitimacy** — a request retires aborted only if the
//!    harness cancelled it or it was wider than the pool's largest
//!    healthy segment when retired.
//! 5. **Service accounting** — departures served exactly their
//!    requested rounds; aborts never over-serve; nothing departs in the
//!    future.
//! 6. **Energy sanity** (on `Round` transitions of energy-checking
//!    configs) — the shared-replay ledger is identical gated vs
//!    ungated, gated idle leakage never exceeds ungated, bus aggregates
//!    are arbitration-weight independent (work conservation), and the
//!    cumulative pool bill is non-negative and monotone.
//!
//! [`check`] explores one [`ModelConfig`]; [`suite`] is the CI
//! configuration set (≥ 10⁴ states). [`InjectedBug`] seeds a deliberate
//! scheduler misuse so tests can demonstrate the checker actually
//! catches violations.

use std::collections::BTreeSet;

use resparc_core::config::ResparcConfig;
use resparc_core::fabric::{
    FabricPool, FabricScheduler, NcHealth, PackingPolicy, RequestId, SharedEventSimulator, TenantId,
};
use resparc_core::map::{Mapper, Mapping};
use resparc_neuro::encoding::RegularEncoder;
use resparc_neuro::network::Network;
use resparc_neuro::topology::Topology;
use resparc_neuro::trace::SpikeTrace;

/// A deliberately wrong harness behaviour, used to prove the checker
/// detects broken scheduling (never enabled in CI configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// On a NeuroCell fault, silently retire the evicted request
    /// instead of letting the scheduler's requeue-at-head recovery
    /// re-admit it — the classic "skip requeue on evict" bug. Detected
    /// by invariant 4: the abort is neither harness-cancelled nor
    /// unservable.
    DropEvictedOnFail,
    /// On `Submit`, relabel the probe's `config.mca_size` to the
    /// smallest *other* inventory class without re-partitioning — the
    /// heterogeneous over-capacity admit: the pool allocates a run of
    /// cells whose crossbars are smaller than the probe's tiles.
    /// Detected by invariant 2's class-capacity check (a tile wider
    /// than the crossbars of its run). No-op on homogeneous pools.
    MislabelProbeClass,
}

/// One bounded exploration: pool shape, tenant footprints and the
/// interleaving depth.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Label for reports.
    pub name: &'static str,
    /// Physical NeuroCells in the pool (2–4 keeps exhaustion cheap).
    pub physical_ncs: usize,
    /// Per-NC MCA size classes for a heterogeneous inventory (length
    /// must equal `physical_ncs`); `None` = uniform 8×8 machine.
    pub nc_sizes: Option<Vec<usize>>,
    /// Per-tenant footprint in NeuroCells.
    pub tenant_ncs: Vec<usize>,
    /// Per-tenant MCA size class, parallel to `tenant_ncs`; tenants
    /// past its end (and all tenants of homogeneous configs) use the
    /// machine's base class.
    pub tenant_classes: Vec<usize>,
    /// Service rounds each request asks for.
    pub service_rounds: usize,
    /// Maximum events per interleaving.
    pub depth: usize,
    /// Pool packing policy.
    pub policy: PackingPolicy,
    /// Scheduler backfill window (`None` = strict FIFO).
    pub backfill: Option<usize>,
    /// Replay residents through [`SharedEventSimulator`] on every
    /// `Round` and check the energy invariants (slower; use small
    /// depths).
    pub check_energy: bool,
    /// Optional deliberate bug (test-only).
    pub bug: Option<InjectedBug>,
}

/// Result of one [`check`] run.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Transitions explored (every event application of every
    /// interleaving counts once).
    pub states: usize,
    /// First invariant violation found, with its event history; `None`
    /// when the whole bounded space is clean.
    pub violation: Option<String>,
}

/// The event vocabulary the checker interleaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Submit tenant `k`'s request (once per interleaving).
    Submit(usize),
    /// Cancel tenant `k`'s request while queued or active.
    Cancel(usize),
    /// Permanently fail NeuroCell `nc`.
    FailNc(usize),
    /// Quarantine NeuroCell `nc`.
    DrainNc(usize),
    /// Restore quarantined NeuroCell `nc`.
    RestoreNc(usize),
    /// One full scheduling round (`begin_round` … `end_round`).
    Round,
}

/// Immutable per-config fixtures: one sized probe (+ spike trace when
/// energy checking) per tenant.
struct Setup {
    probes: Vec<Mapping>,
    traces: Vec<SpikeTrace>,
}

/// The small machine the model pools are built on: 8×8 crossbars so a
/// NeuroCell holds few synapses and tiny MLPs span 1–2 cells, and a
/// short timestep window so energy replays stay cheap.
fn machine_config(physical_ncs: usize) -> ResparcConfig {
    let mut cfg = ResparcConfig::with_mca_size(8).with_timesteps(6);
    cfg.physical_ncs = physical_ncs;
    cfg
}

/// Builds the config's pool: homogeneous on the 8×8 machine, or the
/// declared mixed inventory.
fn pool_for(cfg: &ModelConfig) -> FabricPool {
    let machine = machine_config(cfg.physical_ncs);
    let pool = match &cfg.nc_sizes {
        Some(sizes) => {
            assert_eq!(
                sizes.len(),
                cfg.physical_ncs,
                "{}: nc_sizes must cover the pool",
                cfg.name
            );
            FabricPool::heterogeneous(machine, sizes)
        }
        None => FabricPool::new(machine),
    };
    pool.with_policy(cfg.policy)
}

/// Finds an MLP whose mapping occupies exactly `target_ncs` NeuroCells
/// on `cfg` by sweeping the hidden width.
fn sized_net(cfg: &ResparcConfig, target_ncs: usize, seed: u64) -> (Network, Mapping) {
    let mut h = 4usize;
    while h <= 4096 {
        let net = Network::random(Topology::mlp(16, &[h, 4]), seed, 1.0);
        if let Ok(m) = Mapper::new(cfg.clone()).map_network(&net) {
            match m.placement.ncs_used.max(1).cmp(&target_ncs) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => return (net, m),
                std::cmp::Ordering::Greater => break,
            }
        }
        h += 4;
    }
    unreachable!("no MLP occupies {target_ncs} NCs on this machine")
}

impl Setup {
    fn build(cfg: &ModelConfig) -> Setup {
        let pool = pool_for(cfg);
        let mut probes = Vec::new();
        let mut traces = Vec::new();
        for (k, &ncs) in cfg.tenant_ncs.iter().enumerate() {
            // Each tenant is partitioned for its declared size class
            // (the base machine when unclassed or homogeneous).
            let class_cfg = match (&cfg.nc_sizes, cfg.tenant_classes.get(k)) {
                (Some(_), Some(&class)) => pool.class_config(class),
                _ => pool.config().clone(),
            };
            let (net, probe) = sized_net(&class_cfg, ncs, 100 + k as u64);
            if cfg.check_energy {
                let stimulus: Vec<f32> = (0..16)
                    .map(|i| 0.25 + 0.25 * ((i + k) % 4) as f32)
                    .collect();
                let raster = RegularEncoder::new(1.0).encode(&stimulus, 6);
                let (_, trace) = net.spiking().run_traced(&raster);
                traces.push(trace);
            }
            probes.push(probe);
        }
        Setup { probes, traces }
    }
}

/// One explored scheduler state plus the harness bookkeeping the
/// invariants compare against.
#[derive(Clone)]
struct Harness {
    sched: FabricScheduler,
    /// Per tenant slot: the request id once submitted.
    submitted: Vec<Option<RequestId>>,
    /// Requests the harness itself cancelled (legitimate aborts).
    cancelled: BTreeSet<RequestId>,
    /// Completed records already validated by invariant 4/5 (records
    /// are append-only, so a cursor suffices).
    checked_completed: usize,
    /// Running pool bill in picojoules (invariant 6 monotonicity).
    cumulative_pj: f64,
    /// Events applied so far (diagnostics).
    history: Vec<Event>,
}

impl Harness {
    fn new(cfg: &ModelConfig) -> Harness {
        let pool = pool_for(cfg);
        let sched = match cfg.backfill {
            Some(w) => FabricScheduler::new(pool).with_backfill(w),
            None => FabricScheduler::new(pool),
        };
        Harness {
            sched,
            submitted: vec![None; cfg.tenant_ncs.len()],
            cancelled: BTreeSet::new(),
            checked_completed: 0,
            cumulative_pj: 0.0,
            history: Vec::new(),
        }
    }

    /// Events applicable in this state, in deterministic order.
    fn enabled_events(&self) -> Vec<Event> {
        let mut events = Vec::new();
        let live: BTreeSet<RequestId> = self
            .sched
            .queued_requests()
            .chain(self.sched.active_requests().map(|(r, _)| r))
            .collect();
        for (k, slot) in self.submitted.iter().enumerate() {
            match slot {
                None => events.push(Event::Submit(k)),
                Some(r) if live.contains(r) => events.push(Event::Cancel(k)),
                Some(_) => {}
            }
        }
        for (nc, health) in self.sched.pool().nc_health().iter().enumerate() {
            match health {
                NcHealth::Healthy => {
                    events.push(Event::FailNc(nc));
                    events.push(Event::DrainNc(nc));
                }
                NcHealth::Quarantined => events.push(Event::RestoreNc(nc)),
                NcHealth::Failed => {}
            }
        }
        events.push(Event::Round);
        events
    }

    /// Applies one event, then re-checks every invariant.
    fn apply(&mut self, ev: Event, cfg: &ModelConfig, setup: &Setup) -> Result<(), String> {
        self.history.push(ev);
        match ev {
            Event::Submit(k) => {
                let mut probe = setup.probes[k].clone();
                if cfg.bug == Some(InjectedBug::MislabelProbeClass) {
                    // The seeded bug: lie about the probe's size class
                    // (smallest other class in the inventory) without
                    // re-partitioning, so its tiles land on crossbars
                    // too small to hold them.
                    if let Some(&wrong) = self
                        .sched
                        .pool()
                        .size_classes()
                        .iter()
                        .find(|&&c| c != probe.config.mca_size)
                    {
                        probe.config.mca_size = wrong;
                    }
                }
                let request = self.sched.submit_mapped(
                    probe,
                    &format!("t{k}"),
                    cfg.service_rounds,
                    (k + 1) as u32,
                );
                self.submitted[k] = Some(request);
            }
            Event::Cancel(k) => {
                if let Some(request) = self.submitted[k] {
                    self.sched.cancel(request);
                    self.cancelled.insert(request);
                }
            }
            Event::FailNc(nc) => {
                let requeued = self.sched.fail_nc(nc);
                if self.sched.pool().nc_health()[nc] == NcHealth::Failed
                    && cfg.bug == Some(InjectedBug::DropEvictedOnFail)
                {
                    // The seeded bug: throw the recovered request away
                    // instead of letting the head-requeue re-admit it.
                    // Deliberately NOT recorded in `cancelled`.
                    if let Some(request) = requeued {
                        self.sched.cancel(request);
                    }
                }
            }
            Event::DrainNc(nc) => {
                self.sched.drain_nc(nc);
            }
            Event::RestoreNc(nc) => {
                self.sched.restore_nc(nc);
            }
            Event::Round => {
                let residents = self.sched.begin_round();
                if cfg.check_energy && !residents.is_empty() {
                    self.check_energy_invariants(&residents, setup)?;
                }
                self.sched.end_round();
            }
        }
        self.check_invariants(cfg, setup)
    }

    /// Invariants 1–5 (structural; checked after every event).
    fn check_invariants(&mut self, cfg: &ModelConfig, setup: &Setup) -> Result<(), String> {
        let pool = self.sched.pool();
        let occupancy = pool.occupancy();
        let health = pool.nc_health();

        // 1. NC conservation.
        let unhealthy = pool.quarantined_ncs() + pool.failed_ncs();
        if pool.free_ncs() + pool.occupied_ncs() + unhealthy != pool.physical_ncs() {
            return self.violated("NC conservation: free + occupied + unhealthy != physical");
        }
        for (nc, (slot, h)) in occupancy.iter().zip(health).enumerate() {
            if *h != NcHealth::Healthy && slot.is_some() {
                return self.violated(&format!("unhealthy NC {nc} is still occupied"));
            }
        }

        // 2. No double-occupancy.
        let mut owned = 0usize;
        let mut ids: BTreeSet<TenantId> = BTreeSet::new();
        for t in pool.tenants() {
            if !ids.insert(t.id) {
                return self.violated("duplicate tenant id in the pool");
            }
            if t.end_nc() > pool.physical_ncs() {
                return self.violated("tenant run exceeds the pool");
            }
            for (nc, slot) in occupancy
                .iter()
                .enumerate()
                .take(t.end_nc())
                .skip(t.first_nc())
            {
                if *slot != Some(t.id) {
                    return self.violated(&format!(
                        "NC {nc} not owned by the tenant whose run covers it"
                    ));
                }
            }
            owned += t.nc_count();
        }
        if owned != pool.occupied_ncs() {
            return self.violated("occupied NCs not exactly covered by tenant runs");
        }
        // 2b. Class capacity: a resident's run is uniformly of its
        // mapping's size class, and every partition tile physically
        // fits that class's crossbar. (Trivially true on homogeneous
        // pools; this is what catches an over-capacity heterogeneous
        // admit.)
        let sizes = pool.nc_sizes();
        for t in pool.tenants() {
            let class = t.mapping.config.mca_size;
            for (nc, &size) in sizes
                .iter()
                .enumerate()
                .take(t.end_nc())
                .skip(t.first_nc())
            {
                if size != class {
                    return self.violated(&format!(
                        "NC {nc} (class {size}) hosts a class-{class} tenant"
                    ));
                }
            }
            for part in &t.mapping.partitions {
                for tile in &part.tiles {
                    if tile.rows as usize > class || tile.cols as usize > class {
                        return self.violated(&format!(
                            "tile {}x{} exceeds the {class}-wide crossbars of its run",
                            tile.rows, tile.cols
                        ));
                    }
                }
            }
        }
        for (nc, slot) in occupancy.iter().enumerate() {
            if let Some(id) = slot {
                if !ids.contains(id) {
                    return self.violated(&format!("NC {nc} owned by a non-resident tenant"));
                }
            }
        }

        // 3. Request conservation (+ internal consistency).
        if let Err(e) = self.sched.check_consistency() {
            return self.violated(&format!("scheduler inconsistency: {e}"));
        }
        let tracked: BTreeSet<RequestId> = self
            .sched
            .queued_requests()
            .chain(self.sched.active_requests().map(|(r, _)| r))
            .chain(self.sched.completed().iter().map(|r| r.request))
            .collect();
        let submitted: BTreeSet<RequestId> = self.submitted.iter().flatten().copied().collect();
        if tracked != submitted {
            return self
                .violated("request lost or invented (queued ∪ active ∪ completed ≠ submitted)");
        }

        // 4 & 5. Newly retired records: abort legitimacy and service
        // accounting. Health did not change since the records appeared
        // (aborts happen inside rounds/cancels, never health events),
        // so the current largest healthy segment is the one they were
        // retired under.
        let completed = self.sched.completed();
        for rec in &completed[self.checked_completed..] {
            if rec.aborted {
                // Servability is per size class: a 2-run of free
                // 8-cells is no capacity at all for a 16-class
                // request. The record carries no class, so recover it
                // from the harness's fixture.
                let limit = self
                    .submitted
                    .iter()
                    .position(|s| *s == Some(rec.request))
                    .map_or(pool.max_admissible_run(), |k| {
                        pool.max_admissible_run_for(setup.probes[k].config.mca_size)
                    });
                let unservable = rec.ncs > limit;
                if !unservable && !self.cancelled.contains(&rec.request) {
                    return self.violated(&format!(
                        "{} aborted while servable and never cancelled",
                        rec.request
                    ));
                }
                if rec.rounds_served >= cfg.service_rounds {
                    return self.violated(&format!("{} over-served before abort", rec.request));
                }
            } else if rec.rounds_served != cfg.service_rounds {
                return self.violated(&format!(
                    "{} departed with {} of {} rounds served",
                    rec.request, rec.rounds_served, cfg.service_rounds
                ));
            }
            match rec.departed_round {
                Some(r) if r <= self.sched.round() => {}
                _ => return self.violated(&format!("{} departed in the future", rec.request)),
            }
        }
        self.checked_completed = completed.len();
        Ok(())
    }

    /// Invariant 6: the energy claims, re-proved on this round's
    /// resident set.
    fn check_energy_invariants(
        &mut self,
        residents: &[resparc_core::fabric::ScheduledTenant],
        setup: &Setup,
    ) -> Result<(), String> {
        let mut pairs: Vec<(TenantId, &SpikeTrace)> = Vec::with_capacity(residents.len());
        for st in residents {
            let Some(k) = self.submitted.iter().position(|s| *s == Some(st.request)) else {
                return self.violated(&format!("resident {} was never submitted", st.request));
            };
            pairs.push((st.tenant, &setup.traces[k]));
        }
        let weights: Vec<u32> = residents.iter().map(|st| st.weight).collect();
        let ungated = SharedEventSimulator::new(self.sched.pool()).run_weighted(&pairs, &weights);
        let gated_pool = self.sched.pool().clone().with_idle_gating(0.25);
        let gated = SharedEventSimulator::new(&gated_pool).run_weighted(&pairs, &weights);

        if gated.energy.total().picojoules() != ungated.energy.total().picojoules() {
            return self.violated("gating changed the occupied-fabric ledger");
        }
        if gated.idle_leakage.picojoules() > ungated.idle_leakage.picojoules() {
            return self.violated("gated idle leakage exceeds ungated");
        }
        let equal_weights = vec![1u32; pairs.len()];
        let flat =
            SharedEventSimulator::new(self.sched.pool()).run_weighted(&pairs, &equal_weights);
        if flat.bus_busy_cycles != ungated.bus_busy_cycles
            || flat.total_bus_stall_cycles() != ungated.total_bus_stall_cycles()
        {
            return self.violated("bus aggregates depend on arbitration weights");
        }
        let bill = ungated.pool_energy().picojoules();
        if bill.is_nan() || bill < 0.0 {
            return self.violated("negative round energy bill");
        }
        let next = self.cumulative_pj + bill;
        if next < self.cumulative_pj {
            return self.violated("cumulative energy bill regressed");
        }
        self.cumulative_pj = next;
        Ok(())
    }

    fn violated(&self, what: &str) -> Result<(), String> {
        Err(format!("{what}; events: {:?}", self.history))
    }
}

/// Exhaustively explores every interleaving of `cfg`'s event vocabulary
/// up to `cfg.depth` events, checking all invariants after each
/// transition. Returns the transition count and the first violation (if
/// any).
pub fn check(cfg: &ModelConfig) -> CheckOutcome {
    let setup = Setup::build(cfg);
    let mut states = 0usize;
    let root = Harness::new(cfg);
    let violation = dfs(&root, cfg.depth, cfg, &setup, &mut states);
    CheckOutcome { states, violation }
}

fn dfs(
    h: &Harness,
    depth: usize,
    cfg: &ModelConfig,
    setup: &Setup,
    states: &mut usize,
) -> Option<String> {
    if depth == 0 {
        return None;
    }
    for ev in h.enabled_events() {
        let mut child = h.clone();
        *states += 1;
        if let Err(v) = child.apply(ev, cfg, setup) {
            return Some(v);
        }
        if let Some(v) = dfs(&child, depth - 1, cfg, setup, states) {
            return Some(v);
        }
    }
    None
}

/// The CI configuration suite: structural configs that exhaust a
/// deeper interleaving space (homogeneous and mixed-inventory), plus
/// energy-checking configs that re-prove the gating/work-conservation
/// claims on every explored round — the heterogeneous one on a mixed
/// 8/16 inventory. Together they exceed 10⁴ transitions.
pub fn suite() -> Vec<ModelConfig> {
    vec![
        ModelConfig {
            name: "structural-3nc-3t",
            physical_ncs: 3,
            nc_sizes: None,
            tenant_ncs: vec![1, 1, 2],
            tenant_classes: vec![],
            service_rounds: 2,
            depth: 5,
            policy: PackingPolicy::BestFit,
            backfill: Some(2),
            check_energy: false,
            bug: None,
        },
        ModelConfig {
            name: "structural-4nc-defrag",
            physical_ncs: 4,
            nc_sizes: None,
            tenant_ncs: vec![2, 2],
            tenant_classes: vec![],
            service_rounds: 2,
            depth: 5,
            policy: PackingPolicy::Defragment,
            backfill: None,
            check_energy: false,
            bug: None,
        },
        ModelConfig {
            name: "structural-het-3nc-2t",
            physical_ncs: 3,
            nc_sizes: Some(vec![8, 8, 16]),
            tenant_ncs: vec![1, 1],
            tenant_classes: vec![8, 16],
            service_rounds: 2,
            depth: 4,
            policy: PackingPolicy::FirstFit,
            backfill: None,
            check_energy: false,
            bug: None,
        },
        ModelConfig {
            name: "structural-het-4nc-defrag",
            physical_ncs: 4,
            nc_sizes: Some(vec![16, 8, 8, 16]),
            tenant_ncs: vec![2, 1],
            tenant_classes: vec![8, 16],
            service_rounds: 2,
            depth: 4,
            policy: PackingPolicy::Defragment,
            backfill: Some(2),
            check_energy: false,
            bug: None,
        },
        ModelConfig {
            name: "energy-2nc-2t",
            physical_ncs: 2,
            nc_sizes: None,
            tenant_ncs: vec![1, 1],
            tenant_classes: vec![],
            service_rounds: 2,
            depth: 4,
            policy: PackingPolicy::FirstFit,
            backfill: None,
            check_energy: true,
            bug: None,
        },
        ModelConfig {
            name: "energy-het-3nc-2t",
            physical_ncs: 3,
            nc_sizes: Some(vec![8, 16, 16]),
            tenant_ncs: vec![1, 1],
            tenant_classes: vec![8, 16],
            service_rounds: 2,
            depth: 3,
            policy: PackingPolicy::FirstFit,
            backfill: None,
            check_energy: true,
            bug: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_nets_hit_their_footprints() {
        let machine = machine_config(4);
        for target in 1..=2 {
            let (_, m) = sized_net(&machine, target, 42);
            assert_eq!(m.placement.ncs_used.max(1), target);
        }
    }

    #[test]
    fn suite_explores_enough_states_with_no_violation() {
        let mut total = 0usize;
        for cfg in suite() {
            let outcome = check(&cfg);
            assert!(
                outcome.violation.is_none(),
                "{}: {}",
                cfg.name,
                outcome.violation.unwrap_or_default()
            );
            total += outcome.states;
        }
        assert!(
            total >= 10_000,
            "suite must exhaust at least 10^4 transitions, got {total}"
        );
    }

    #[test]
    fn injected_requeue_skip_bug_is_caught() {
        let cfg = ModelConfig {
            name: "bug-drop-evicted",
            physical_ncs: 3,
            nc_sizes: None,
            tenant_ncs: vec![1, 1],
            tenant_classes: vec![],
            service_rounds: 2,
            depth: 4,
            policy: PackingPolicy::FirstFit,
            backfill: None,
            check_energy: false,
            bug: Some(InjectedBug::DropEvictedOnFail),
        };
        let outcome = check(&cfg);
        let v = outcome
            .violation
            .expect("the seeded requeue-skip bug must be detected");
        assert!(
            v.contains("aborted while servable"),
            "unexpected violation: {v}"
        );
    }

    #[test]
    fn injected_class_mislabel_bug_is_caught() {
        // The heterogeneous over-capacity admit: a tenant partitioned
        // for 16×16 crossbars is submitted labelled as class 8, so the
        // pool parks its 16-wide tiles on 8×8 cells. The class-capacity
        // invariant must flag it the moment it lands.
        let cfg = ModelConfig {
            name: "bug-mislabel-class",
            physical_ncs: 3,
            nc_sizes: Some(vec![8, 8, 16]),
            tenant_ncs: vec![1],
            tenant_classes: vec![16],
            // Two rounds keep the mislabeled tenant resident past the
            // round that admits it, where the post-event check sees it.
            service_rounds: 2,
            depth: 3,
            policy: PackingPolicy::FirstFit,
            backfill: None,
            check_energy: false,
            bug: Some(InjectedBug::MislabelProbeClass),
        };
        let outcome = check(&cfg);
        let v = outcome
            .violation
            .expect("the seeded over-capacity heterogeneous admit must be detected");
        assert!(
            v.contains("exceeds") && v.contains("crossbars"),
            "unexpected violation: {v}"
        );
    }

    #[test]
    fn cancel_is_a_legitimate_abort() {
        // Same shape as the bug config but with honest cancels only —
        // the checker must stay quiet.
        let cfg = ModelConfig {
            name: "honest-cancels",
            physical_ncs: 2,
            nc_sizes: None,
            tenant_ncs: vec![1, 1],
            tenant_classes: vec![],
            service_rounds: 1,
            depth: 4,
            policy: PackingPolicy::FirstFit,
            backfill: None,
            check_energy: false,
            bug: None,
        };
        let outcome = check(&cfg);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.states > 0);
    }
}
