//! `resparc-lint`: repo-specific determinism and robustness rules.
//!
//! Every headline result in this repo is a determinism claim
//! (bit-identical reports across runs and across shared/dedicated
//! execution). The rules here statically enforce the conditions those
//! claims rest on; the rule catalog is documented in
//! `ARCHITECTURE.md` § Correctness tooling.
//!
//! Suppressions: a finding is suppressed by a comment on the same line
//! or alone on the line directly above:
//!
//! ```text
//! // resparc-lint: allow(no-panic, reason = "documented panic contract")
//! ```
//!
//! A suppression without a `reason = "..."` is itself a finding
//! (rule `suppression-without-reason`), so every exception in the tree
//! carries its justification.

use crate::lexer::{scan, test_line_ranges, LineComment, Token, TokenKind};
use std::path::Path;

/// Rule identifiers, used in findings and in `allow(...)` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `HashMap`/`HashSet` anywhere in workspace sources: iteration
    /// order feeds reports and figures, so ordered collections (or
    /// sorted emission) are required by construction.
    HashCollections,
    /// `thread_rng` / `SystemTime` / `Instant` outside `crates/bench`:
    /// wall-clock and OS entropy break replayability.
    NondetTime,
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in `crates/core` and `crates/workloads`
    /// library paths: library code must return typed errors.
    NoPanic,
    /// `as f32` in the energy ledger's library code: lossy narrowing
    /// silently corrupts picojoule accounting; stay in f64. Test code
    /// is exempt (f32 spike stimuli are the neuro API's type).
    LossyFloatCast,
    /// An `allow(...)` suppression comment with no `reason = "..."`.
    SuppressionWithoutReason,
}

impl Rule {
    /// The stable id accepted in `allow(<id>)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::NondetTime => "nondet-time",
            Rule::NoPanic => "no-panic",
            Rule::LossyFloatCast => "lossy-float-cast",
            Rule::SuppressionWithoutReason => "suppression-without-reason",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        match id {
            "hash-collections" => Some(Rule::HashCollections),
            "nondet-time" => Some(Rule::NondetTime),
            "no-panic" => Some(Rule::NoPanic),
            "lossy-float-cast" => Some(Rule::LossyFloatCast),
            _ => None,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Path the file was scanned under (as passed to [`lint_file`]).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that no `allow(...)` comment covered.
    pub findings: Vec<Finding>,
    /// Count of findings that were suppressed with a reason.
    pub suppressed: usize,
}

/// A parsed `// resparc-lint: allow(rule, reason = "...")` comment.
#[derive(Debug)]
struct Suppression {
    rule: Rule,
    has_reason: bool,
    /// The line whose findings this suppression covers.
    covers_line: u32,
    /// Where the comment itself sits (for reporting missing reasons).
    comment_line: u32,
}

/// Which rule sets apply to a file, derived from its repo-relative
/// path. Mirrors the scoping in the ISSUE: panics are forbidden in
/// `core`/`workloads` library paths, time/entropy everywhere but
/// `crates/bench`, hash collections everywhere, lossy casts in the
/// energy-accounting modules.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    hash_collections: bool,
    nondet_time: bool,
    no_panic: bool,
    lossy_float_cast: bool,
}

impl Scope {
    /// Derives the applicable rules from a repo-relative path like
    /// `crates/core/src/fabric/pool.rs`.
    pub fn for_path(path: &str) -> Scope {
        let p = path.replace('\\', "/");
        let in_bench = p.starts_with("crates/bench/");
        let no_panic = p.starts_with("crates/core/src/") || p.starts_with("crates/workloads/src/");
        let lossy = p.starts_with("crates/energy/src/") || p.starts_with("crates/core/src/sim");
        Scope {
            hash_collections: true,
            nondet_time: !in_bench,
            no_panic,
            lossy_float_cast: lossy,
        }
    }
}

/// Lints one file's source text. `path` is the repo-relative path used
/// for scoping and reporting.
pub fn lint_file(path: &str, source: &str) -> FileReport {
    let scope = Scope::for_path(path);
    let scanned = scan(source);
    let test_ranges = test_line_ranges(&scanned.tokens);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw = Vec::new();
    let toks = &scanned.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if scope.hash_collections => raw.push(Finding {
                rule: Rule::HashCollections,
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "{} has nondeterministic iteration order; use BTree{} or sort before emitting",
                    t.text,
                    &t.text[4..]
                ),
            }),
            "thread_rng" | "SystemTime" if scope.nondet_time => raw.push(Finding {
                rule: Rule::NondetTime,
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "{} is nondeterministic; outside crates/bench use seeded streams",
                    t.text
                ),
            }),
            "Instant" if scope.nondet_time && next_is(toks, i, "::", "now") => raw.push(Finding {
                rule: Rule::NondetTime,
                path: path.to_string(),
                line: t.line,
                message: "Instant::now() is wall-clock; outside crates/bench model time explicitly"
                    .to_string(),
            }),
            "unwrap" | "expect"
                if scope.no_panic
                    && !in_test(t.line)
                    && prev_is_dot(toks, i)
                    && next_is_paren(toks, i) =>
            {
                raw.push(Finding {
                    rule: Rule::NoPanic,
                    path: path.to_string(),
                    line: t.line,
                    message: format!(".{}() can panic; return a typed error instead", t.text),
                })
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if scope.no_panic && !in_test(t.line) && next_is_bang(toks, i) =>
            {
                raw.push(Finding {
                    rule: Rule::NoPanic,
                    path: path.to_string(),
                    line: t.line,
                    message: format!("{}! in library code; return a typed error instead", t.text),
                })
            }
            "as" if scope.lossy_float_cast
                && !in_test(t.line)
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("f32") =>
            {
                raw.push(Finding {
                    rule: Rule::LossyFloatCast,
                    path: path.to_string(),
                    line: t.line,
                    message: "lossy `as f32` in energy accounting; keep the ledger in f64"
                        .to_string(),
                })
            }
            _ => {}
        }
    }

    apply_suppressions(path, raw, &scanned.comments)
}

/// Whether token `i` is followed by `::` then `ident`.
fn next_is(toks: &[Token], i: usize, sep: &str, ident: &str) -> bool {
    // `sep` is punctuation, scanned one char per token.
    let mut j = i + 1;
    for ch in sep.chars() {
        if toks.get(j).map(|t| t.text.as_str()) != Some(ch.to_string().as_str()) {
            return false;
        }
        j += 1;
    }
    toks.get(j).map(|t| t.text.as_str()) == Some(ident)
}

fn prev_is_dot(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].text == "."
}

fn next_is_paren(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
}

fn next_is_bang(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).map(|t| t.text.as_str()) == Some("!")
}

/// Parses suppression comments and filters the raw findings through
/// them; reasonless suppressions become findings themselves.
fn apply_suppressions(path: &str, raw: Vec<Finding>, comments: &[LineComment]) -> FileReport {
    let mut suppressions = Vec::new();
    let mut report = FileReport::default();
    for c in comments {
        let Some(rest) = c
            .text
            .trim_start_matches('/')
            .trim()
            .strip_prefix("resparc-lint:")
        else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            report.findings.push(Finding {
                rule: Rule::SuppressionWithoutReason,
                path: path.to_string(),
                line: c.line,
                message: "malformed resparc-lint comment; expected allow(<rule>, reason = \"...\")"
                    .to_string(),
            });
            continue;
        };
        let rule_id = args.split(',').next().unwrap_or("").trim();
        let Some(rule) = Rule::from_id(rule_id) else {
            report.findings.push(Finding {
                rule: Rule::SuppressionWithoutReason,
                path: path.to_string(),
                line: c.line,
                message: format!("unknown lint rule `{rule_id}` in allow(...)"),
            });
            continue;
        };
        let has_reason = args.contains("reason")
            && args.split("reason").nth(1).is_some_and(|r| {
                let r = r.trim_start().trim_start_matches('=').trim_start();
                r.starts_with('"') && r.trim_end().len() > 2
            });
        // A trailing comment covers its own line; a whole-line comment
        // covers the next line.
        let covers_line = if c.trailing { c.line } else { c.line + 1 };
        suppressions.push(Suppression {
            rule,
            has_reason,
            covers_line,
            comment_line: c.line,
        });
    }

    for s in &suppressions {
        if !s.has_reason {
            report.findings.push(Finding {
                rule: Rule::SuppressionWithoutReason,
                path: path.to_string(),
                line: s.comment_line,
                message: format!(
                    "allow({}) must carry a reason = \"...\" string",
                    s.rule.id()
                ),
            });
        }
    }

    for f in raw {
        let matched = suppressions
            .iter()
            .find(|s| s.rule == f.rule && s.covers_line == f.line);
        match matched {
            Some(s) if s.has_reason => report.suppressed += 1,
            // Reasonless suppressions were already reported above; the
            // underlying finding still counts until a reason is given.
            _ => report.findings.push(f),
        }
    }
    report
}

/// Lints every `.rs` file under the workspace's source roots, returning
/// per-file reports in path order. `root` is the repo root.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<FileReport>> {
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let mut reports = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        reports.push(lint_file(&rel, &source));
    }
    Ok(reports)
}

/// Recursively collects repo-relative paths of first-party `.rs`
/// sources: `crates/*/src/**` and the facade `src/**`; `vendor/` and
/// `target/` are never entered.
fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if dir == root {
                // From the root, descend only into crates/, src/, tests/.
                if name == "crates" || name == "src" || name == "tests" {
                    collect_sources(root, &path, out)?;
                }
            } else if name != "target" && name != "vendor" {
                collect_sources(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Rule> {
        lint_file(path, src)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let fs = findings("crates/workloads/src/sweep.rs", src);
        assert_eq!(fs.len(), 3);
        assert!(fs.iter().all(|r| *r == Rule::HashCollections));
        // Negative: BTreeMap is fine.
        assert!(findings(
            "crates/workloads/src/sweep.rs",
            "use std::collections::BTreeMap;"
        )
        .is_empty());
    }

    #[test]
    fn nondet_time_scoped_to_non_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            findings("crates/core/src/sim.rs", src),
            vec![Rule::NondetTime]
        );
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
        // `Instant` as a plain type annotation is fine; only ::now() fires.
        assert!(findings("crates/core/src/sim.rs", "fn g(t: Instant) {}").is_empty());
        assert_eq!(
            findings(
                "crates/workloads/src/seed.rs",
                "let r = rand::thread_rng();"
            ),
            vec![Rule::NondetTime]
        );
    }

    #[test]
    fn no_panic_scoped_to_core_and_workloads_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(findings("crates/core/src/mpe.rs", src), vec![Rule::NoPanic]);
        assert_eq!(
            findings(
                "crates/workloads/src/churn.rs",
                "fn f() { panic!(\"boom\") }"
            ),
            vec![Rule::NoPanic]
        );
        // Out of scope: other crates may panic.
        assert!(findings("crates/figures/src/lib.rs", src).is_empty());
        // unwrap_or / unwrap_or_else are not panics.
        assert!(findings(
            "crates/core/src/mpe.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }"
        )
        .is_empty());
        // assert! stays allowed (documented contracts).
        assert!(findings("crates/core/src/mpe.rs", "fn f() { assert!(true); }").is_empty());
    }

    #[test]
    fn no_panic_skips_cfg_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u32>.unwrap(); }\n}";
        assert!(findings("crates/core/src/mpe.rs", src).is_empty());
    }

    #[test]
    fn lossy_float_cast_scoped_to_energy() {
        let src = "fn f(x: f64) -> f32 { x as f32 }";
        assert_eq!(
            findings("crates/energy/src/lib.rs", src),
            vec![Rule::LossyFloatCast]
        );
        assert!(findings("crates/neuro/src/kernel.rs", src).is_empty());
        // Widening is fine.
        assert!(findings(
            "crates/energy/src/lib.rs",
            "fn g(x: f32) -> f64 { x as f64 }"
        )
        .is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // resparc-lint: allow(no-panic, reason = \"contract: caller checked\")\n    x.unwrap()\n}";
        let report = lint_file("crates/core/src/mpe.rs", src);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 1);
        // Trailing form works too.
        let src2 = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // resparc-lint: allow(no-panic, reason = \"checked\")";
        let r2 = lint_file("crates/core/src/mpe.rs", src2);
        assert!(r2.findings.is_empty());
        assert_eq!(r2.suppressed, 1);
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // resparc-lint: allow(no-panic)\n    x.unwrap()\n}";
        let report = lint_file("crates/core/src/mpe.rs", src);
        let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::SuppressionWithoutReason));
        // The underlying finding still stands.
        assert!(rules.contains(&Rule::NoPanic));
        assert_eq!(report.suppressed, 0);
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// resparc-lint: allow(no-such-rule, reason = \"x\")\nfn f() {}";
        let report = lint_file("crates/core/src/mpe.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::SuppressionWithoutReason);
    }

    #[test]
    fn suppression_does_not_leak_to_other_lines() {
        let src = "// resparc-lint: allow(no-panic, reason = \"first only\")\nlet a = x.unwrap();\nlet b = y.unwrap();";
        let report = lint_file("crates/core/src/mpe.rs", src);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 3);
    }
}
