//! Correctness tooling for the RESPARC reproduction.
//!
//! Two engines, both run in CI:
//!
//! * [`lint`] — `resparc-lint`, a source-level static analyzer built on
//!   the hand-rolled scanner in [`lexer`]. Its rules encode the
//!   determinism discipline the repo's bit-identity claims depend on:
//!   no unordered collections in result-bearing code, no wall-clock or
//!   OS entropy outside `crates/bench`, no panicking calls in
//!   `core`/`workloads` library paths, no lossy float narrowing in the
//!   energy ledger. Run with
//!   `cargo run -p resparc-analysis --bin resparc-lint`.
//!
//! * [`model`] — a bounded exhaustive model checker for the
//!   `FabricScheduler` × NC-health × admission state machine. It
//!   enumerates every interleaving of a small event vocabulary over
//!   2–4 NC pools and asserts six invariants after each transition.
//!   Run with `cargo run -p resparc-analysis --bin model-check`.

pub mod lexer;
pub mod lint;
pub mod model;
