//! A lightweight Rust scanner for [`lint`](crate::lint).
//!
//! The offline vendor set has no `syn`, and the lint rules only need
//! token-level facts — "identifier `HashMap` outside a test module",
//! "`.unwrap(` in library code" — so a hand-rolled scanner is enough.
//! The scanner's one hard job is *not* producing false tokens out of
//! non-code: string literals (including raw strings), char literals vs
//! lifetimes, and comments (line, block, nested block) are consumed
//! whole, so a `"panic!"` inside a string or a doctest inside a `///`
//! comment can never trigger a rule.
//!
//! Comments are not discarded: line comments are kept (with their line
//! numbers) because suppressions ride on them
//! (`// resparc-lint: allow(rule, reason = "...")`), and
//! [`test_line_ranges`] re-walks the token stream to find
//! `#[cfg(test)] mod … { … }` regions so rules can scope themselves to
//! library code.

/// What a scanned token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, …).
    Ident,
    /// Numeric literal.
    Number,
    /// String or char literal (contents opaque).
    Literal,
    /// A single punctuation character (`.`, `!`, `[`, …).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// The token's text. Literals keep only their delimiter (`"` / `'`)
    /// — their contents can never match a rule.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A `//` comment with its 1-based line and whether any token precedes
/// it on that line (a trailing comment suppresses its own line; a
/// whole-line comment suppresses the next code line).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based source line.
    pub line: u32,
    /// Comment text, `//` included.
    pub text: String,
    /// `true` when code precedes the comment on its line.
    pub trailing: bool,
}

/// Output of [`scan`]: the token stream plus the line comments.
#[derive(Debug, Default)]
pub struct Scanned {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Scans Rust source into tokens and line comments. Never fails: on
/// malformed input (unterminated literal) the rest of the file is
/// consumed as one literal, which can only *hide* findings in that
/// file, never invent them.
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_had_token = false;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                line_had_token = false;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: source[start..i].to_string(),
                    trailing: line_had_token,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            line_had_token = false;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = consume_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"".to_string(),
                    line,
                });
                line_had_token = true;
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let tok_line = line;
                i = consume_raw_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"".to_string(),
                    line: tok_line,
                });
                line_had_token = true;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'".to_string(),
                        line,
                    });
                    i = end;
                } else {
                    // A lifetime: consume the quote, the identifier
                    // lexes on the next iterations.
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "'".to_string(),
                        line,
                    });
                    i += 1;
                }
                line_had_token = true;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
                line_had_token = true;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i] == b'.' || bytes[i].is_ascii_alphanumeric())
                {
                    // `0..8` is a range, not a float: stop a number at
                    // the first of two consecutive dots.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
                line_had_token = true;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
                line_had_token = true;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at `i` (the opening quote);
/// returns the index one past the closing quote.
fn consume_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Whether `r"`, `r#"`, `br"`, `b"`-style raw/byte string syntax starts
/// at `i`.
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > i && bytes.get(j) == Some(&b'"')
}

/// Consumes a raw (or byte) string starting at `i`; returns the index
/// one past the closing delimiter.
fn consume_raw_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    let mut hashes = 0usize;
    if bytes.get(i) == Some(&b'r') {
        i += 1;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
    }
    if bytes.get(i) != Some(&b'"') {
        // Plain byte string `b"…"`.
        return consume_string(bytes, i, line);
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// If a char literal (`'a'`, `'\n'`, `'\u{1F600}'`) starts at `i`,
/// returns the index one past its closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
        // Consume \u{…} / \x41 digits up to the closing quote.
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1);
    }
    // One character (possibly multi-byte UTF-8) then a quote.
    j += 1;
    while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
        j += 1;
    }
    (bytes.get(j) == Some(&b'\'')).then_some(j + 1)
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]`-gated
/// items — test modules (and test-gated functions), whose bodies rules
/// scoped to library code must skip.
pub fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut k = 0usize;
    while k < tokens.len() {
        if is_cfg_test_attr(tokens, k) {
            // Find the gated item's opening brace, then its match.
            let mut j = k;
            let mut depth = 0i32;
            let start_line = tokens[k].line;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        depth += 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            ranges.push((start_line, tokens[j].line));
                            break;
                        }
                    }
                    ";" if depth == 0 => break, // e.g. `#[cfg(test)] use …;`
                    _ => {}
                }
                j += 1;
            }
            k = j;
        }
        k += 1;
    }
    ranges
}

/// Whether `#[cfg(test)]` (or `#[cfg(any(test, …))]`) starts at token
/// `k`.
fn is_cfg_test_attr(tokens: &[Token], k: usize) -> bool {
    if tokens[k].text != "#" || tokens.get(k + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    if tokens.get(k + 2).map(|t| t.text.as_str()) != Some("cfg") {
        return false;
    }
    // Scan to the attribute's closing `]`, accepting any cfg predicate
    // that mentions `test`.
    let mut depth = 0i32;
    for t in tokens.iter().skip(k + 1).take(32) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_identifier_tokens() {
        let src = r##"
            // HashMap in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"thread_rng in a raw "string""#;
            let c = 'x';
            let esc = '\n';
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.iter().any(|t| t == "HashMap"));
        assert!(!ids.iter().any(|t| t == "panic"));
        assert!(!ids.iter().any(|t| t == "unwrap"));
        assert!(!ids.iter().any(|t| t == "thread_rng"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a HashMap<u32, u32>) {}");
        assert!(ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"a".to_string()));
    }

    #[test]
    fn doc_comments_hide_their_examples() {
        let src = "/// let x = map.unwrap();\nfn real() {}";
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "unwrap"));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn comments_are_recorded_with_position() {
        let src = "let x = 1; // trailing\n// whole line\nlet y = 2;";
        let scanned = scan(src);
        assert_eq!(scanned.comments.len(), 2);
        assert!(scanned.comments[0].trailing);
        assert_eq!(scanned.comments[0].line, 1);
        assert!(!scanned.comments[1].trailing);
        assert_eq!(scanned.comments[1].line, 2);
    }

    #[test]
    fn test_module_ranges_cover_the_braces() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn more() {}";
        let scanned = scan(src);
        let ranges = test_line_ranges(&scanned.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
        let src2 = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { }";
        let r2 = test_line_ranges(&scan(src2).tokens);
        assert_eq!(r2, vec![(1, 2)]);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = scan("for i in 0..8 {}");
        let texts: Vec<&str> = toks.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"8"));
    }
}
