//! Benchmark workloads for the RESPARC reproduction.
//!
//! Provides the paper's evaluation inputs:
//!
//! * [`dataset`] — deterministic synthetic stand-ins for MNIST, SVHN and
//!   CIFAR-10 with matched sparsity statistics (the real datasets are not
//!   available offline; see DESIGN.md §4),
//! * [`benchmarks`] — the six Fig. 10 SNNs (MLP + CNN per dataset) with
//!   neuron/layer counts matching the paper exactly, plus measured-input
//!   activity profiles for the architectural simulators,
//! * [`sweep`] — batched accuracy sweeps running whole test sets on a
//!   network's compiled kernels, parallel across stimuli, plus the
//!   trace-driven energy sweep that meters the mapped fabric on each
//!   stimulus's actual spike trace,
//! * [`churn`] — the dynamic-fabric comparison: an arrival/departure
//!   schedule of tenant requests run through a `FabricScheduler`
//!   (admit / queue / evict mid-stream, any packing policy) against the
//!   static co-resident batching baseline, on identical spike traces,
//! * [`packing`] — batch placement quality: the same admission batch
//!   placed by greedy first-fit and by the optimizing `BatchPlacer`
//!   across fabric shapes (fragmented, heterogeneous MCA inventories),
//!   metered for admits, utilization and energy per inference,
//! * [`fault`] — resilience workloads: device-fault grids (stuck-at
//!   rate / drift / variation vs accuracy and energy per coding scheme)
//!   and mid-replay NeuroCell-failure drills measuring the scheduler's
//!   evict-requeue-readmit recovery loop,
//! * [`serving`] — the online-service view: open-loop arrival traces
//!   (Poisson / bursty / diurnal) driven through an event-clock loop
//!   with admission control, backfilling, preemption and an
//!   SLO-adaptive bus-weight controller, reporting p50/p95/p99 latency,
//!   goodput, SLO violations and the gated-vs-ungated idle-energy bill.
//!
//! # Examples
//!
//! ```
//! use resparc_workloads::benchmarks::all_benchmarks;
//!
//! let suite = all_benchmarks();
//! assert_eq!(suite.len(), 6);
//! let mnist_mlp = suite.iter().find(|b| b.name == "MNIST-MLP").unwrap();
//! assert_eq!(mnist_mlp.topology.neuron_count(), 2_378);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmarks;
pub mod churn;
pub mod dataset;
pub mod fault;
pub mod packing;
pub(crate) mod seed;
pub mod serving;
pub mod sweep;

pub use benchmarks::{
    all_benchmarks, cifar10_cnn, cifar10_mlp, cnn_benchmarks, mlp_benchmarks, mnist_cnn, mnist_mlp,
    svhn_cnn, svhn_mlp, Benchmark, NetStyle, PaperSpec,
};
pub use churn::{churn_sweep, ChurnMetrics, ChurnReport, ChurnSpec};
pub use dataset::{DatasetKind, SyntheticImages, CLASSES};
pub use fault::{fault_recovery_drill, fault_sweep, FaultDrillReport, FaultEvent, FaultSweepPoint};
pub use packing::{
    packing_scenario, packing_sweep, PackingOutcome, PackingReport, PackingRow, PackingShape,
};
pub use serving::{
    serving_sweep, ArrivalProcess, ClassReport, QosPolicy, RequestOutcome, ServiceClass,
    ServingReport, ServingSpec,
};
pub use sweep::{
    analog_accuracy_sweep, encoding_energy_sweep, multi_tenant_sweep, spiking_accuracy_sweep,
    trace_energy_sweep, trace_energy_sweep_compiled, MultiTenantReport, SweepConfig, SweepReport,
    TenancyMetrics, TraceEnergyReport,
};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::benchmarks::{
        all_benchmarks, cifar10_cnn, cifar10_mlp, cnn_benchmarks, mlp_benchmarks, mnist_cnn,
        mnist_mlp, svhn_cnn, svhn_mlp, Benchmark, NetStyle, PaperSpec,
    };
    pub use crate::churn::{churn_sweep, ChurnMetrics, ChurnReport, ChurnSpec};
    pub use crate::dataset::{DatasetKind, SyntheticImages, CLASSES};
    pub use crate::fault::{
        fault_recovery_drill, fault_sweep, FaultDrillReport, FaultEvent, FaultSweepPoint,
    };
    pub use crate::packing::{
        packing_scenario, packing_sweep, PackingOutcome, PackingReport, PackingRow, PackingShape,
    };
    pub use crate::serving::{
        serving_sweep, ArrivalProcess, ClassReport, QosPolicy, RequestOutcome, ServiceClass,
        ServingReport, ServingSpec,
    };
    pub use crate::sweep::{
        analog_accuracy_sweep, encoding_energy_sweep, multi_tenant_sweep, spiking_accuracy_sweep,
        trace_energy_sweep, trace_energy_sweep_compiled, MultiTenantReport, SweepConfig,
        SweepReport, TenancyMetrics, TraceEnergyReport,
    };
}
