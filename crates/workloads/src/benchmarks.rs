//! The six SNN benchmarks of the paper's Fig. 10.
//!
//! | Application | Dataset | Connectivity | Layers | Neurons | Synapses |
//! |---|---|---|---|---|---|
//! | House number | SVHN | MLP | 4 | 2,778 | 2,778,000 |
//! | House number | SVHN | CNN | 6 | 124,570 | 2,941,952 |
//! | Digit | MNIST | MLP | 4 | 2,378 | 1,902,400 |
//! | Digit | MNIST | CNN | 6 | 66,778 | 1,484,288 |
//! | Object | CIFAR-10 | MLP | 5 | 3,778 | 3,778,000 |
//! | Object | CIFAR-10 | CNN | 6 | 231,066 | 5,524,480 |
//!
//! Our topologies match the paper's layer counts exactly and the neuron
//! counts exactly (hidden sizes solved for each network). Synapse counts
//! are reported as *mapped connections*; the paper's synapse totals are
//! not reconcilable with any standard topology at the stated neuron
//! counts (see DESIGN.md §5), so the table generator prints ours next to
//! the paper's with an explicit delta.

use resparc_neuro::spike::SpikeRaster;
use resparc_neuro::stats::{ActivityProfile, BoundaryStats};
use resparc_neuro::topology::{ChannelTable, Padding, Shape, Topology};

use crate::dataset::DatasetKind;
use resparc_neuro::encoding::PoissonEncoder;

/// MLP or CNN connectivity (Fig. 10 column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetStyle {
    /// Fully-connected multi-layer perceptron.
    Mlp,
    /// Convolutional network (conv/pool/fc).
    Cnn,
}

impl NetStyle {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NetStyle::Mlp => "MLP",
            NetStyle::Cnn => "CNN",
        }
    }
}

/// The paper's published Fig. 10 row for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperSpec {
    /// Layer count.
    pub layers: usize,
    /// Neuron count.
    pub neurons: usize,
    /// Synapse count.
    pub synapses: usize,
}

/// One benchmark network.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name, e.g. `"MNIST-CNN"`.
    pub name: String,
    /// Source dataset.
    pub dataset: DatasetKind,
    /// Connectivity style.
    pub style: NetStyle,
    /// Our concrete topology.
    pub topology: Topology,
    /// The paper's Fig. 10 numbers for this row.
    pub paper: PaperSpec,
}

impl Benchmark {
    /// Peak per-timestep input spike probability used for rate coding.
    pub const PEAK_RATE: f64 = 0.6;

    /// Builds the measured-input activity profile for this benchmark:
    /// the input boundary's rate and zero-packet fractions are *measured*
    /// by Poisson-encoding synthetic stimuli; deeper boundaries use the
    /// standard depth-attenuated rates of rate-coded deep SNNs
    /// (`0.15 × 0.85^depth`, pooling layers relay their input rate).
    pub fn activity_profile(&self, widths: &[u32], seed: u64) -> ActivityProfile {
        // Measure the input boundary on a handful of encoded stimuli
        // (running average over probe images of different classes).
        let gen = self.dataset.generator(seed);
        let mut enc = PoissonEncoder::new(Self::PEAK_RATE, seed ^ 0xAC71);
        // The probe set is a fixed non-empty class list, so the
        // accumulator can seed from the first probe directly.
        let mut probes = [0usize, 3, 7].into_iter().enumerate().map(|(i, class)| {
            let img = gen.sample(class, i as u64);
            let raster: SpikeRaster = enc.encode(&img, 40);
            ActivityProfile::measure(&raster, &[], widths)
        });
        let mut acc = probes
            .next()
            .unwrap_or_else(|| ActivityProfile::new(Vec::new()));
        for p in probes {
            acc.average_with(&p);
        }
        let input_stats = acc.boundary(0).clone();

        let mut boundaries = vec![input_stats];
        let mut rate = 0.15f64;
        for layer in self.topology.layers() {
            let is_pool = matches!(layer, resparc_neuro::topology::LayerSpec::AvgPool { .. });
            if !is_pool {
                rate *= 0.85;
            }
            boundaries.push(BoundaryStats::analytic(layer.output_count(), rate));
        }
        ActivityProfile::new(boundaries)
    }

    /// Relative deviation of our synapse count from the paper's.
    pub fn synapse_delta(&self) -> f64 {
        (self.topology.synapse_count() as f64 - self.paper.synapses as f64)
            / self.paper.synapses as f64
    }
}

fn cnn_topology(side: usize, f1: usize, f2: usize, hidden: usize) -> Topology {
    Topology::builder(Shape::new(side, side, 1))
        .conv(f1, 5, Padding::Valid, ChannelTable::Full)
        .pool(2)
        .conv(f2, 5, Padding::Valid, ChannelTable::Banded { fan: 2 })
        .pool(2)
        .dense(hidden)
        .dense(10)
        .build()
        // resparc-lint: allow(no-panic, reason = "static benchmark topology, validated by the suite's own tests")
        .expect("benchmark CNN topology is consistent")
}

/// Digit recognition, MLP: 784 → 800 → 800 → 768 → 10.
pub fn mnist_mlp() -> Benchmark {
    Benchmark {
        name: "MNIST-MLP".into(),
        dataset: DatasetKind::Mnist,
        style: NetStyle::Mlp,
        topology: Topology::mlp(784, &[800, 800, 768, 10]),
        paper: PaperSpec {
            layers: 4,
            neurons: 2_378,
            synapses: 1_902_400,
        },
    }
}

/// Digit recognition, CNN: 28×28 −c5×83 −p2 −c5×86(q2) −p2 −fc128 −10.
pub fn mnist_cnn() -> Benchmark {
    Benchmark {
        name: "MNIST-CNN".into(),
        dataset: DatasetKind::Mnist,
        style: NetStyle::Cnn,
        topology: cnn_topology(28, 83, 86, 128),
        paper: PaperSpec {
            layers: 6,
            neurons: 66_778,
            synapses: 1_484_288,
        },
    }
}

/// House-number recognition, MLP: 1024 → 980 → 1000 → 788 → 10.
pub fn svhn_mlp() -> Benchmark {
    Benchmark {
        name: "SVHN-MLP".into(),
        dataset: DatasetKind::Svhn,
        style: NetStyle::Mlp,
        topology: Topology::mlp(1024, &[980, 1000, 788, 10]),
        paper: PaperSpec {
            layers: 4,
            neurons: 2_778,
            synapses: 2_778_000,
        },
    }
}

/// House-number recognition, CNN: 32×32 −c5×116 −p2 −c5×86(q2) −p2
/// −fc130 −10.
pub fn svhn_cnn() -> Benchmark {
    Benchmark {
        name: "SVHN-CNN".into(),
        dataset: DatasetKind::Svhn,
        style: NetStyle::Cnn,
        topology: cnn_topology(32, 116, 86, 130),
        paper: PaperSpec {
            layers: 6,
            neurons: 124_570,
            synapses: 2_941_952,
        },
    }
}

/// Object classification, MLP: 1024 → 1000 → 1000 → 1000 → 768 → 10.
pub fn cifar10_mlp() -> Benchmark {
    Benchmark {
        name: "CIFAR10-MLP".into(),
        dataset: DatasetKind::Cifar10,
        style: NetStyle::Mlp,
        topology: Topology::mlp(1024, &[1000, 1000, 1000, 768, 10]),
        paper: PaperSpec {
            layers: 5,
            neurons: 3_778,
            synapses: 3_778_000,
        },
    }
}

/// Object classification, CNN: 32×32 −c5×216 −p2 −c5×154(q2) −p2 −fc126
/// −10.
pub fn cifar10_cnn() -> Benchmark {
    Benchmark {
        name: "CIFAR10-CNN".into(),
        dataset: DatasetKind::Cifar10,
        style: NetStyle::Cnn,
        topology: cnn_topology(32, 216, 154, 126),
        paper: PaperSpec {
            layers: 6,
            neurons: 231_066,
            synapses: 5_524_480,
        },
    }
}

/// All six benchmarks in the paper's Fig. 10 grouping (per dataset:
/// MLP then CNN).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        svhn_mlp(),
        svhn_cnn(),
        mnist_mlp(),
        mnist_cnn(),
        cifar10_mlp(),
        cifar10_cnn(),
    ]
}

/// The three MLP benchmarks (Figs. 11 b/d, 12 a/b).
pub fn mlp_benchmarks() -> Vec<Benchmark> {
    vec![mnist_mlp(), svhn_mlp(), cifar10_mlp()]
}

/// The three CNN benchmarks (Figs. 11 a/c, 12 c/d).
pub fn cnn_benchmarks() -> Vec<Benchmark> {
    vec![mnist_cnn(), svhn_cnn(), cifar10_cnn()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_counts_match_paper_exactly() {
        for b in all_benchmarks() {
            assert_eq!(
                b.topology.neuron_count(),
                b.paper.neurons,
                "{} neuron count",
                b.name
            );
        }
    }

    #[test]
    fn layer_counts_match_paper_exactly() {
        for b in all_benchmarks() {
            assert_eq!(
                b.topology.layer_count(),
                b.paper.layers,
                "{} layer count",
                b.name
            );
        }
    }

    #[test]
    fn mlp_synapse_counts_within_one_percent() {
        for b in mlp_benchmarks() {
            let delta = b.synapse_delta().abs();
            assert!(delta < 0.01, "{}: delta {delta}", b.name);
        }
    }

    #[test]
    fn cnn_synapse_counts_same_order_as_paper() {
        for b in cnn_benchmarks() {
            let ratio = b.topology.synapse_count() as f64 / b.paper.synapses as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: connection ratio {ratio}",
                b.name
            );
        }
    }

    #[test]
    fn benchmark_scale_matches_paper_range() {
        // "SNNs ranging in complexity from 2k–230k neurons and 1.2M–5.5M
        // synapses" (abstract).
        let all = all_benchmarks();
        let min_n = all.iter().map(|b| b.topology.neuron_count()).min().unwrap();
        let max_n = all.iter().map(|b| b.topology.neuron_count()).max().unwrap();
        assert!(min_n >= 2_000 && max_n <= 240_000);
    }

    #[test]
    fn profiles_have_matching_shapes() {
        let b = mnist_mlp();
        let p = b.activity_profile(&[32, 64], 1);
        assert_eq!(p.boundary_count(), b.topology.layer_count() + 1);
        assert!(p.rate(0) > 0.0 && p.rate(0) < 0.5);
    }

    #[test]
    fn mnist_inputs_have_more_zero_packets_than_cifar() {
        // The §5.3 mechanism: black MNIST background ⇒ long zero
        // run-lengths; CIFAR textures ⇒ few.
        let pm = mnist_mlp().activity_profile(&[32], 2);
        let pc = cifar10_mlp().activity_profile(&[32], 2);
        assert!(
            pm.zero_packet_prob(0, 32) > pc.zero_packet_prob(0, 32) + 0.1,
            "mnist {} vs cifar {}",
            pm.zero_packet_prob(0, 32),
            pc.zero_packet_prob(0, 32)
        );
    }
}
