//! Online serving: open-loop traffic, tail latency and SLO-adaptive
//! QoS over the dynamically scheduled fabric.
//!
//! [`churn_sweep`](crate::churn::churn_sweep) measures the scheduler in
//! *round* time — requests arrive at round indices and the metric is
//! makespan. A service is measured differently: requests arrive on a
//! **wall clock** the service does not control (open loop — arrivals
//! keep coming whether or not the fabric keeps up), and the figures of
//! merit are the latency distribution (p50/p95/p99), goodput
//! (SLO-meeting completions per second) and the SLO-violation rate.
//! [`serving_sweep`] layers that event-clock loop on the existing round
//! machinery:
//!
//! * an [`ArrivalProcess`] generates seeded, reproducible arrival
//!   timestamps (memoryless Poisson, on/off bursts, or a diurnal rate
//!   cycle) for requests drawn round-robin from a set of
//!   [`ServiceClass`]es, each with its own network, service length,
//!   latency SLO and base bus weight;
//! * **admission control** bounds the queue: an arrival that finds
//!   [`ServingSpec::max_queue`] requests already waiting is rejected at
//!   the door (counted against the SLO, not silently dropped);
//! * admitted requests flow through a
//!   [`FabricScheduler`] with **backfilling** enabled
//!   ([`FabricScheduler::with_backfill`]): small requests overtake a
//!   blocked wide head for at most
//!   [`ServingSpec::backfill_window`] rounds, which bounds head-of-line
//!   starvation;
//! * each round replays through
//!   [`SharedEventSimulator::run_weighted`]; the event clock advances
//!   by the round's makespan, and a request's end-to-end latency is its
//!   queue wait plus every round it was resident, finishing at its own
//!   perceived bus-arbitration latency inside its last round;
//! * requests still incomplete [`ServingSpec::preempt_after`] SLOs
//!   after arrival are **preempted** ([`FabricScheduler::cancel`]) —
//!   over-budget tenants stop consuming NeuroCells that SLO-meeting
//!   work could use;
//! * a [`QosPolicy::Adaptive`] feedback controller closes the PR-5 QoS
//!   gap: per class, the bus weight doubles (up to a cap) every round
//!   that completes a request past its SLO and decays by one toward the
//!   static base every clean round — tightening tail latency for the
//!   SLO-pressed class at the expense of the slack ones, while the
//!   work-conserving bus keeps every aggregate (cycles, energy,
//!   makespan) unchanged;
//! * idle silicon is billed at the pool's
//!   [`idle_gating`](resparc_core::fabric::FabricPool::idle_gating)
//!   factor, both inside rounds (NCs no tenant owns) and across the
//!   empty gaps between arrivals — the report carries the gated and
//!   ungated bills side by side so the gating win is explicit.
//!
//! The whole run is deterministic per seed: identical
//! ([`PartialEq`]-equal) [`ServingReport`]s for identical inputs,
//! property-tested in `tests/proptests.rs`.
//!
//! # Examples
//!
//! A one-class Poisson service on a gated pool:
//!
//! ```
//! use resparc_core::fabric::PackingPolicy;
//! use resparc_core::ResparcConfig;
//! use resparc_neuro::network::Network;
//! use resparc_neuro::topology::Topology;
//! use resparc_workloads::serving::{
//!     serving_sweep, ArrivalProcess, QosPolicy, ServiceClass, ServingSpec,
//! };
//! use resparc_workloads::sweep::SweepConfig;
//!
//! let net = Network::random(Topology::mlp(96, &[64, 10]), 7, 1.0);
//! let classes = vec![ServiceClass::new("kws", 2, 40_000.0)];
//! let spec = ServingSpec::new(8, 6_000.0, ArrivalProcess::Poisson, 7);
//! let report = serving_sweep(
//!     &[net],
//!     &classes,
//!     &spec,
//!     &SweepConfig::rate(6, 0.8, 7),
//!     &ResparcConfig::resparc_64(),
//!     PackingPolicy::FirstFit,
//! )
//! .unwrap();
//! assert_eq!(report.arrivals, 8);
//! assert_eq!(
//!     report.completed + report.rejected + report.preempted,
//!     report.arrivals
//! );
//! assert!(report.p50 <= report.p95 && report.p95 <= report.p99);
//! // The default spec gates idle NCs at 10%: the gated idle bill is
//! // well under the always-powered one.
//! assert!(report.gated_idle_leakage < report.ungated_idle_leakage);
//! ```

use rayon::prelude::*;
use resparc_core::fabric::{
    pool_leakage_power, AdmitError, FabricPool, FabricScheduler, PackingPolicy, RequestId,
    SharedEventSimulator, TenantId,
};
use resparc_core::map::{Mapper, Mapping};
use resparc_core::{ReplayEngine, ResparcConfig};
use resparc_energy::accounting::Category;
use resparc_energy::sram::SramSpec;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::network::{Network, SnnRunner};
use resparc_neuro::trace::SpikeTrace;

use crate::seed::stream_seed;
use crate::sweep::SweepConfig;

/// How request arrival timestamps are generated — all three are seeded
/// and reproducible, with the same long-run mean rate
/// (1 / [`ServingSpec::mean_gap_ns`]); they differ in *clumping*.
///
/// # Examples
///
/// ```
/// use resparc_workloads::serving::ArrivalProcess;
///
/// let poisson = ArrivalProcess::Poisson.arrival_times(200, 100.0, 42);
/// assert_eq!(poisson.len(), 200);
/// assert!(poisson.windows(2).all(|w| w[0] <= w[1]), "monotone");
/// // Same seed — bit-identical trace; different seed — a different one.
/// assert_eq!(poisson, ArrivalProcess::Poisson.arrival_times(200, 100.0, 42));
/// assert_ne!(poisson, ArrivalProcess::Poisson.arrival_times(200, 100.0, 43));
///
/// // Bursts arrive back to back: many gaps are (near) zero while the
/// // mean gap stays ~100ns.
/// let bursty = ArrivalProcess::Bursty { burst: 4 }.arrival_times(200, 100.0, 42);
/// let tiny = bursty.windows(2).filter(|w| w[1] - w[0] < 1.0).count();
/// assert!(tiny >= 100, "3 of every 4 gaps are intra-burst");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: i.i.d. exponential inter-arrival gaps.
    Poisson,
    /// On/off traffic: `burst` requests arrive back to back, then the
    /// line goes quiet for an exponential gap of `burst ×` the mean —
    /// the long-run rate matches [`Poisson`](Self::Poisson) but the
    /// instantaneous load slams the queue.
    Bursty {
        /// Requests per burst (≥ 1; `1` degenerates to Poisson).
        burst: usize,
    },
    /// A Poisson process whose rate swings sinusoidally around the mean
    /// — a compressed day/night load cycle. Peaks oversubscribe the
    /// fabric, troughs leave it idle (where power gating earns its
    /// keep).
    Diurnal {
        /// Full cycle length in nanoseconds.
        period_ns: f64,
        /// Rate swing as a fraction of the mean rate, in `[0, 1)`.
        amplitude: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` monotone arrival timestamps (nanoseconds from 0)
    /// with mean inter-arrival gap `mean_gap_ns`, deterministically per
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_ns` is not positive, a `Bursty` burst is
    /// zero, or a `Diurnal` amplitude is outside `[0, 1)`.
    pub fn arrival_times(&self, n: usize, mean_gap_ns: f64, seed: u64) -> Vec<f64> {
        assert!(mean_gap_ns > 0.0, "mean gap must be positive");
        let mut times = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for i in 0..n {
            let u = unit_open(stream_seed(seed, i as u64));
            let gap = match *self {
                ArrivalProcess::Poisson => -u.ln() * mean_gap_ns,
                ArrivalProcess::Bursty { burst } => {
                    assert!(burst > 0, "bursts must hold at least one request");
                    if i % burst == 0 {
                        // The off period carries the whole burst's gap
                        // budget, keeping the long-run rate at the mean.
                        -u.ln() * mean_gap_ns * burst as f64
                    } else {
                        0.0
                    }
                }
                ArrivalProcess::Diurnal {
                    period_ns,
                    amplitude,
                } => {
                    assert!(period_ns > 0.0, "the diurnal period must be positive");
                    assert!(
                        (0.0..1.0).contains(&amplitude),
                        "diurnal amplitude must be in [0, 1)"
                    );
                    let rate = (1.0 + amplitude * (std::f64::consts::TAU * t / period_ns).sin())
                        / mean_gap_ns;
                    -u.ln() / rate
                }
            };
            t += gap;
            times.push(t);
        }
        times
    }

    /// Short label for tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }
}

/// A uniform draw in `(0, 1]` from one splitmix64 output — never 0, so
/// `ln` is always finite.
fn unit_open(x: u64) -> f64 {
    ((x >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// How per-class bus weights evolve across serving rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosPolicy {
    /// Each class keeps its static [`ServiceClass::weight`] forever —
    /// the PR-5 discipline.
    Static,
    /// AIMD feedback toward the latency SLOs: a class's weight
    /// **doubles** (capped at `max_weight`) every round in which one of
    /// its requests completed past its SLO, and **decays by one**
    /// toward the static base every round without a violation. The bus
    /// stays work-conserving, so adaptation redistributes waiting — it
    /// never costs aggregate cycles or energy (property-tested).
    Adaptive {
        /// Upper bound on any adapted weight.
        max_weight: u32,
    },
}

/// One class of requests in a serving mix: a network, how long each
/// request replays, its latency SLO and its base bus weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceClass {
    /// Class label, used in reports.
    pub name: String,
    /// Shared replay rounds each request of this class needs.
    pub service_rounds: usize,
    /// End-to-end latency SLO (arrival → completion), nanoseconds.
    pub slo_ns: f64,
    /// Static bus-arbitration weight (the [`QosPolicy::Adaptive`]
    /// controller's floor and starting point).
    pub weight: u32,
}

impl ServiceClass {
    /// A class at fair (weight-1) arbitration.
    pub fn new(name: &str, service_rounds: usize, slo_ns: f64) -> Self {
        Self {
            name: name.to_string(),
            service_rounds,
            slo_ns,
            weight: 1,
        }
    }

    /// The same class at a different static bus weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// The open-loop traffic and service discipline of one
/// [`serving_sweep`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSpec {
    /// Total arrivals to generate (assigned to classes round-robin).
    pub requests: usize,
    /// Mean inter-arrival gap in nanoseconds (open-loop offered load =
    /// `1 / mean_gap_ns` requests per nanosecond).
    pub mean_gap_ns: f64,
    /// The arrival process shaping the gaps.
    pub arrivals: ArrivalProcess,
    /// Seed for the arrival trace (and nothing else: traces are
    /// encoded under the [`SweepConfig`]'s own seed).
    pub seed: u64,
    /// Admission control: an arrival that finds this many requests
    /// already queued is rejected. `usize::MAX` disables rejection.
    pub max_queue: usize,
    /// Backfill starvation window in rounds
    /// ([`FabricScheduler::with_backfill`]); `0` keeps strict FIFO.
    pub backfill_window: usize,
    /// Idle-NC leakage factor
    /// ([`FabricPool::with_idle_gating`](resparc_core::fabric::FabricPool::with_idle_gating));
    /// `1.0` is the historical always-powered pool.
    pub idle_gating: f64,
    /// Preemption budget: a request still incomplete this many SLOs
    /// after arrival is cancelled. `None` never preempts.
    pub preempt_after: Option<f64>,
    /// How bus weights evolve.
    pub qos: QosPolicy,
    /// Distinct stimulus samples per class (service rounds wrap over
    /// them, like [`churn_sweep`](crate::churn::churn_sweep)).
    pub samples: usize,
    /// Replay engine for service rounds. Both engines are bit-identical
    /// in every report; this knob exists for differential testing and
    /// the benchmark barometer.
    pub replay_engine: ReplayEngine,
}

impl ServingSpec {
    /// A spec with the defaults the figures use: unbounded queue,
    /// backfill window of 4 rounds, idle gating at 10%, no preemption,
    /// static weights, 3 samples per class.
    pub fn new(requests: usize, mean_gap_ns: f64, arrivals: ArrivalProcess, seed: u64) -> Self {
        Self {
            requests,
            mean_gap_ns,
            arrivals,
            seed,
            max_queue: usize::MAX,
            backfill_window: 4,
            idle_gating: 0.1,
            preempt_after: None,
            qos: QosPolicy::Static,
            samples: 3,
            replay_engine: ReplayEngine::default(),
        }
    }

    /// Bounds the admission queue.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Sets the idle-gating factor (`1.0` = ungated).
    pub fn with_idle_gating(mut self, factor: f64) -> Self {
        self.idle_gating = factor;
        self
    }

    /// Enables preemption of requests `budget` SLOs over their arrival.
    pub fn with_preemption(mut self, budget: f64) -> Self {
        self.preempt_after = Some(budget);
        self
    }

    /// Sets the QoS policy.
    pub fn with_qos(mut self, qos: QosPolicy) -> Self {
        self.qos = qos;
        self
    }

    /// Sets the backfill starvation window (`0` = strict FIFO).
    pub fn with_backfill_window(mut self, window: usize) -> Self {
        self.backfill_window = window;
        self
    }

    /// Pins the replay engine used for service rounds.
    pub fn with_replay_engine(mut self, engine: ReplayEngine) -> Self {
        self.replay_engine = engine;
        self
    }
}

/// What happened to one arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestOutcome {
    /// Served to completion; end-to-end latency in nanoseconds and
    /// whether it met the class SLO.
    Completed {
        /// Arrival → completion, nanoseconds.
        latency_ns: f64,
        /// `latency_ns <= slo_ns`.
        met_slo: bool,
    },
    /// Rejected at admission (queue full).
    Rejected,
    /// Preempted after exceeding the [`ServingSpec::preempt_after`]
    /// budget.
    Preempted,
    /// Retired unserved: wider than the pool's largest healthy segment.
    Aborted,
}

/// Per-class slice of a [`ServingReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class label.
    pub name: String,
    /// Arrivals assigned to this class.
    pub arrivals: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected at admission.
    pub rejected: usize,
    /// Requests preempted over budget.
    pub preempted: usize,
    /// Completions past the class SLO.
    pub slo_violations: usize,
    /// Median completion latency.
    pub p50: Time,
    /// 99th-percentile completion latency.
    pub p99: Time,
    /// The class's bus weight when the run ended (equals the static
    /// weight under [`QosPolicy::Static`]).
    pub final_weight: u32,
}

impl ClassReport {
    /// Fraction of this class's arrivals that missed their SLO
    /// (violations + preemptions + rejections over arrivals).
    pub fn violation_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.slo_violations + self.preempted + self.rejected) as f64 / self.arrivals as f64
    }
}

/// Outcome of a [`serving_sweep`]: the service-level view (tail
/// latency, goodput, SLO violations) plus the energy bill with and
/// without idle-NC power gating.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Packing policy the scheduler admitted with.
    pub policy: PackingPolicy,
    /// Arrival-process label (`poisson` / `bursty` / `diurnal`).
    pub trace: &'static str,
    /// Arrivals generated.
    pub arrivals: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected at admission (queue full).
    pub rejected: usize,
    /// Requests preempted over budget.
    pub preempted: usize,
    /// Completions that missed their class SLO.
    pub slo_violations: usize,
    /// Median end-to-end latency over completions.
    pub p50: Time,
    /// 95th-percentile end-to-end latency.
    pub p95: Time,
    /// 99th-percentile end-to-end latency.
    pub p99: Time,
    /// Mean end-to-end latency.
    pub mean_latency: Time,
    /// Event-clock time from 0 to the last completion (idle gaps
    /// between arrivals included).
    pub makespan: Time,
    /// Time the fabric actually replayed rounds (`makespan − busy` is
    /// the idle-gap time gating reclaims).
    pub busy_time: Time,
    /// Replay rounds driven.
    pub rounds: usize,
    /// SLO-meeting completions per second of makespan.
    pub goodput: f64,
    /// Offered load: arrivals per second of makespan.
    pub offered_load: f64,
    /// Dynamic (per-event) energy across all rounds.
    pub dynamic_energy: Energy,
    /// Leakage of the occupied fabric domains over busy time (always
    /// billed at full rate — gating never touches powered tenants).
    pub occupied_leakage: Energy,
    /// Idle-domain leakage actually billed, at the pool's gating factor
    /// — idle NCs inside rounds plus the whole logic fabric across
    /// empty inter-arrival gaps (SRAM always leaks at full rate).
    pub gated_idle_leakage: Energy,
    /// What the same idle silicon would have leaked ungated — the
    /// counterfactual always-powered bill. With
    /// [`ServingSpec::idle_gating`]` == 1.0` this equals
    /// [`gated_idle_leakage`](Self::gated_idle_leakage) bit-identically.
    pub ungated_idle_leakage: Energy,
    /// Per-class slices, in class order.
    pub classes: Vec<ClassReport>,
    /// Outcome of every arrival, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServingReport {
    /// The all-in bill: dynamic + occupied leakage + gated idle.
    pub fn pool_energy(&self) -> Energy {
        self.dynamic_energy + self.occupied_leakage + self.gated_idle_leakage
    }

    /// What the bill would have been on an always-powered pool.
    pub fn ungated_pool_energy(&self) -> Energy {
        self.dynamic_energy + self.occupied_leakage + self.ungated_idle_leakage
    }

    /// Energy the gating saved, as a fraction of the ungated bill.
    pub fn gating_saving(&self) -> f64 {
        let ungated = self.ungated_pool_energy().picojoules();
        if ungated == 0.0 {
            return 0.0;
        }
        1.0 - self.pool_energy().picojoules() / ungated
    }

    /// Fraction of all arrivals that missed their SLO (violations +
    /// preemptions + rejections over arrivals).
    pub fn violation_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.slo_violations + self.preempted + self.rejected) as f64 / self.arrivals as f64
    }
}

/// Nearest-rank percentile of a **sorted** latency list (ns → [`Time`]).
fn percentile(sorted_ns: &[f64], p: f64) -> Time {
    if sorted_ns.is_empty() {
        return Time::ZERO;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    Time::from_nanos(sorted_ns[rank.clamp(1, sorted_ns.len()) - 1])
}

/// Book-keeping for one submitted (not rejected) request.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: RequestId,
    arrival_index: usize,
    class: usize,
    arrival_ns: f64,
    done: bool,
}

/// Runs an open-loop arrival trace against a dynamically scheduled,
/// optionally power-gated [`FabricPool`] and reports the service-level
/// metrics; see the [module docs](self) for the loop. Arrival `i` is
/// assigned class `i % classes.len()` (networks are paired index-wise
/// with `classes`); its service round `r` presents sample
/// `(i + r) % spec.samples`, encoded once per (class, sample) under
/// `cfg`.
///
/// # Errors
///
/// Returns [`AdmitError::Map`] if a network cannot be mapped and
/// [`AdmitError::CapacityExhausted`] if a class's footprint exceeds the
/// whole pool (no request of it could ever be admitted).
///
/// # Panics
///
/// Panics if `nets`/`classes` lengths differ or are empty, any
/// `service_rounds`/`weight` is zero, `spec.requests` or `spec.samples`
/// is zero, or the spec's gating factor is outside `[0, 1]`.
pub fn serving_sweep(
    nets: &[Network],
    classes: &[ServiceClass],
    spec: &ServingSpec,
    cfg: &SweepConfig,
    pool_config: &ResparcConfig,
    policy: PackingPolicy,
) -> Result<ServingReport, AdmitError> {
    assert_eq!(nets.len(), classes.len(), "one network per ServiceClass");
    assert!(!classes.is_empty(), "need at least one class");
    assert!(spec.requests > 0, "need at least one arrival");
    assert!(spec.samples > 0, "need at least one sample per class");
    assert!(
        classes.iter().all(|c| c.service_rounds > 0 && c.weight > 0),
        "service rounds and weights must be positive"
    );

    let mapper = Mapper::new(pool_config.clone());
    let probes: Vec<Mapping> = nets
        .iter()
        .map(|n| mapper.map_network(n))
        .collect::<Result<_, _>>()
        .map_err(AdmitError::Map)?;
    for probe in &probes {
        let needed = probe.placement.ncs_used.max(1);
        if needed > pool_config.physical_ncs {
            return Err(AdmitError::CapacityExhausted {
                needed_ncs: needed,
                free_ncs: pool_config.physical_ncs,
                largest_free_run: pool_config.physical_ncs,
            });
        }
    }

    // --- Traces: every distinct (class, sample) presentation traced
    // once, in parallel; service rounds wrap over the sample set.
    let jobs: Vec<(usize, usize)> = (0..classes.len())
        .flat_map(|c| (0..spec.samples).map(move |j| (c, j)))
        .collect();
    let runs: Vec<SpikeTrace> = jobs
        .par_iter()
        .map(|&(c, j)| {
            let inputs = nets[c].input_count();
            let stimulus: Vec<f32> = (0..inputs)
                .map(|i| ((i * 31 + j * 7 + c) % 10) as f32 / 10.0)
                .collect();
            let raster = cfg.encode_sample(j, &stimulus);
            let mut runner = SnnRunner::from_compiled(nets[c].compiled().clone());
            runner.run_traced(&raster).1
        })
        .collect();
    let mut traces: Vec<Vec<SpikeTrace>> = (0..classes.len()).map(|_| Vec::new()).collect();
    for (&(c, _), trace) in jobs.iter().zip(runs) {
        traces[c].push(trace);
    }

    // --- Arrival trace and the event-clock loop.
    let arrivals = spec
        .arrivals
        .arrival_times(spec.requests, spec.mean_gap_ns, spec.seed);
    let pool = FabricPool::new(pool_config.clone())
        .with_policy(policy)
        .with_idle_gating(spec.idle_gating);
    let mut sched = FabricScheduler::new(pool);
    if spec.backfill_window > 0 {
        sched = sched.with_backfill(spec.backfill_window);
    }

    let sram_leak = SramSpec::new(pool_config.input_sram_bytes, pool_config.packet_bits)
        .build()
        .leakage();
    let pool_leak = pool_leakage_power(pool_config);
    let logic_leak = pool_leak - sram_leak;

    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; spec.requests];
    // Request book-keeping, indexed by RequestId::index().
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut weights: Vec<u32> = classes.iter().map(|c| c.weight).collect();
    let mut now = 0.0f64;
    let mut last_completion = 0.0f64;
    let mut busy_ns = 0.0f64;
    let mut idle_gap_ns = 0.0f64;
    let mut rounds = 0usize;
    let mut dynamic_energy = Energy::ZERO;
    let mut occupied_leakage = Energy::ZERO;
    let mut gated_idle = Energy::ZERO;
    let mut ungated_idle = Energy::ZERO;
    let mut next_arrival = 0usize;

    while next_arrival < arrivals.len() || !sched.is_idle() {
        // Open-loop admission: every arrival due by `now` either joins
        // the queue or is rejected at the door.
        while next_arrival < arrivals.len() && arrivals[next_arrival] <= now {
            let c = next_arrival % classes.len();
            if sched.queue_len() >= spec.max_queue {
                outcomes[next_arrival] = Some(RequestOutcome::Rejected);
            } else {
                let request = sched.submit_mapped(
                    probes[c].clone(),
                    &classes[c].name,
                    classes[c].service_rounds,
                    classes[c].weight,
                );
                debug_assert_eq!(request.index() as usize, in_flight.len());
                in_flight.push(InFlight {
                    request,
                    arrival_index: next_arrival,
                    class: c,
                    arrival_ns: arrivals[next_arrival],
                    done: false,
                });
            }
            next_arrival += 1;
        }
        if sched.is_idle() {
            // Nothing to run: the fabric idles (gated) until the next
            // arrival.
            let gap = arrivals[next_arrival] - now;
            if gap > 0.0 {
                idle_gap_ns += gap;
            }
            now = arrivals[next_arrival].max(now);
            continue;
        }

        let residents = sched.begin_round();
        if residents.is_empty() {
            // The whole queue retired as unservable this round.
            sched.end_round();
            continue;
        }
        let pairs: Vec<(TenantId, &SpikeTrace)> = residents
            .iter()
            .map(|st| {
                let f = in_flight[st.request.index() as usize];
                (
                    st.tenant,
                    &traces[f.class][(f.arrival_index + st.rounds_served) % spec.samples],
                )
            })
            .collect();
        let round_weights: Vec<u32> = residents
            .iter()
            .map(|st| weights[in_flight[st.request.index() as usize].class])
            .collect();
        let report = SharedEventSimulator::with_engine(sched.pool(), spec.replay_engine)
            .run_weighted(&pairs, &round_weights);

        dynamic_energy += report
            .tenants
            .iter()
            .map(|t| t.energy.total())
            .sum::<Energy>();
        occupied_leakage +=
            report.energy.get(Category::LogicLeakage) + report.energy.get(Category::MemoryLeakage);
        gated_idle += report.idle_leakage;
        // The counterfactual ungated idle bill: whole-pool leakage
        // minus what the ledger already charged the occupied domains.
        ungated_idle += pool_leak * report.latency
            - (report.energy.get(Category::LogicLeakage)
                + report.energy.get(Category::MemoryLeakage));

        // Completions: a request finishing its service this round
        // completes at its own perceived latency inside the round.
        let makespan_ns = report.latency.nanoseconds();
        let mut violated = vec![false; classes.len()];
        let mut clean = vec![false; classes.len()];
        for (st, tr) in residents.iter().zip(&report.tenants) {
            let f = &mut in_flight[st.request.index() as usize];
            if st.rounds_served + 1 == classes[f.class].service_rounds {
                let latency_ns = now + tr.latency.nanoseconds() - f.arrival_ns;
                let met = latency_ns <= classes[f.class].slo_ns;
                outcomes[f.arrival_index] = Some(RequestOutcome::Completed {
                    latency_ns,
                    met_slo: met,
                });
                f.done = true;
                last_completion = last_completion.max(now + tr.latency.nanoseconds());
                if met {
                    clean[f.class] = true;
                } else {
                    violated[f.class] = true;
                }
            }
        }
        now += makespan_ns;
        busy_ns += makespan_ns;
        rounds += 1;
        sched.end_round();

        // Preemption: cancel whatever is over its budget, queued or
        // resident.
        if let Some(budget) = spec.preempt_after {
            for f in in_flight.iter_mut() {
                if !f.done
                    && now - f.arrival_ns > budget * classes[f.class].slo_ns
                    && sched.cancel(f.request)
                {
                    outcomes[f.arrival_index] = Some(RequestOutcome::Preempted);
                    f.done = true;
                }
            }
        }

        // SLO feedback: adapt weights for the next round.
        if let QosPolicy::Adaptive { max_weight } = spec.qos {
            for c in 0..classes.len() {
                if violated[c] {
                    weights[c] = (weights[c].saturating_mul(2)).min(max_weight);
                } else if clean[c] {
                    weights[c] = weights[c].saturating_sub(1).max(classes[c].weight);
                }
            }
        }
    }

    // Inter-arrival idle gaps: the logic fabric leaks at the gated
    // rate, the shared SRAM at full rate (it holds the door open for
    // the next packet).
    let gap = Time::from_nanos(idle_gap_ns);
    gated_idle += logic_leak * gap * spec.idle_gating + sram_leak * gap;
    ungated_idle += logic_leak * gap + sram_leak * gap;

    // Anything still un-outcomed retired as aborted (unservable).
    for rec in sched.completed() {
        let f = in_flight[rec.request.index() as usize];
        if outcomes[f.arrival_index].is_none() {
            debug_assert!(rec.aborted);
            outcomes[f.arrival_index] = Some(RequestOutcome::Aborted);
        }
    }
    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .map(|o| {
            debug_assert!(o.is_some(), "every arrival has an outcome");
            o.unwrap_or(RequestOutcome::Aborted)
        })
        .collect();

    // --- Aggregate the service-level view.
    let makespan_ns = last_completion.max(now);
    let mut all_lat: Vec<f64> = Vec::new();
    let mut class_lat: Vec<Vec<f64>> = vec![Vec::new(); classes.len()];
    let mut class_rep: Vec<ClassReport> = classes
        .iter()
        .zip(&weights)
        .map(|(c, &w)| ClassReport {
            name: c.name.clone(),
            arrivals: 0,
            completed: 0,
            rejected: 0,
            preempted: 0,
            slo_violations: 0,
            p50: Time::ZERO,
            p99: Time::ZERO,
            final_weight: w,
        })
        .collect();
    let (mut completed, mut rejected, mut preempted, mut violations, mut met) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for (i, outcome) in outcomes.iter().enumerate() {
        let c = i % classes.len();
        class_rep[c].arrivals += 1;
        match *outcome {
            RequestOutcome::Completed {
                latency_ns,
                met_slo,
            } => {
                completed += 1;
                class_rep[c].completed += 1;
                all_lat.push(latency_ns);
                class_lat[c].push(latency_ns);
                if met_slo {
                    met += 1;
                } else {
                    violations += 1;
                    class_rep[c].slo_violations += 1;
                }
            }
            RequestOutcome::Rejected => {
                rejected += 1;
                class_rep[c].rejected += 1;
            }
            RequestOutcome::Preempted | RequestOutcome::Aborted => {
                preempted += 1;
                class_rep[c].preempted += 1;
            }
        }
    }
    all_lat.sort_by(f64::total_cmp);
    for (rep, lat) in class_rep.iter_mut().zip(&mut class_lat) {
        lat.sort_by(f64::total_cmp);
        rep.p50 = percentile(lat, 50.0);
        rep.p99 = percentile(lat, 99.0);
    }
    let mean_ns = all_lat.iter().sum::<f64>() / all_lat.len().max(1) as f64;
    let seconds = makespan_ns * 1e-9;

    Ok(ServingReport {
        policy,
        trace: spec.arrivals.label(),
        arrivals: spec.requests,
        completed,
        rejected,
        preempted,
        slo_violations: violations,
        p50: percentile(&all_lat, 50.0),
        p95: percentile(&all_lat, 95.0),
        p99: percentile(&all_lat, 99.0),
        mean_latency: Time::from_nanos(mean_ns),
        makespan: Time::from_nanos(makespan_ns),
        busy_time: Time::from_nanos(busy_ns),
        rounds,
        goodput: if seconds > 0.0 {
            met as f64 / seconds
        } else {
            0.0
        },
        offered_load: if seconds > 0.0 {
            spec.requests as f64 / seconds
        } else {
            0.0
        },
        dynamic_energy,
        occupied_leakage,
        gated_idle_leakage: gated_idle,
        ungated_idle_leakage: ungated_idle,
        classes: class_rep,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resparc_neuro::topology::Topology;

    fn small_net(seed: u64) -> Network {
        Network::random(Topology::mlp(96, &[64, 10]), seed, 1.0)
    }

    /// 5 NCs on RESPARC-64 (see `fabric::pool` sized-topology tests).
    fn five_nc_net(seed: u64) -> Network {
        Network::random(Topology::mlp(144, &[576, 576, 576, 576, 10]), seed, 1.0)
    }

    fn cfg() -> SweepConfig {
        SweepConfig::rate(6, 0.8, 5)
    }

    #[test]
    fn serving_conserves_arrivals_and_orders_percentiles() {
        let nets = vec![small_net(1), small_net(2)];
        let classes = vec![
            ServiceClass::new("latency", 1, 30_000.0).with_weight(4),
            ServiceClass::new("batch", 2, 300_000.0),
        ];
        let spec = ServingSpec::new(12, 4_000.0, ArrivalProcess::Poisson, 11);
        let report = serving_sweep(
            &nets,
            &classes,
            &spec,
            &cfg(),
            &ResparcConfig::resparc_64(),
            PackingPolicy::BestFit,
        )
        .unwrap();

        assert_eq!(report.arrivals, 12);
        assert_eq!(report.outcomes.len(), 12);
        assert_eq!(
            report.completed + report.rejected + report.preempted,
            report.arrivals
        );
        assert_eq!(report.completed, 12, "an unbounded queue rejects nobody");
        assert!(report.p50 <= report.p95 && report.p95 <= report.p99);
        assert!(report.p99 <= report.makespan);
        assert!(report.busy_time <= report.makespan);
        assert!(report.rounds > 0);
        assert!(report.goodput > 0.0);
        assert_eq!(report.classes.iter().map(|c| c.arrivals).sum::<usize>(), 12);
        // Energy: gated idle strictly under the ungated counterfactual
        // (the pool idles sometimes), occupied billed at full rate.
        assert!(report.gated_idle_leakage < report.ungated_idle_leakage);
        assert!(report.pool_energy() < report.ungated_pool_energy());
        assert!(report.gating_saving() > 0.0);
    }

    #[test]
    fn same_seed_reproduces_the_report_bit_identically() {
        let nets = vec![small_net(3)];
        let classes = vec![ServiceClass::new("only", 2, 60_000.0)];
        let spec = ServingSpec::new(8, 5_000.0, ArrivalProcess::Bursty { burst: 3 }, 21)
            .with_qos(QosPolicy::Adaptive { max_weight: 16 })
            .with_preemption(64.0);
        let run = || {
            serving_sweep(
                &nets,
                &classes,
                &spec,
                &cfg(),
                &ResparcConfig::resparc_64(),
                PackingPolicy::FirstFit,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn admission_control_rejects_when_the_queue_is_full() {
        // One 5-NC class: at most 3 resident at once; a burst of 12
        // overwhelms a 2-deep queue.
        let nets = vec![five_nc_net(4)];
        let classes = vec![ServiceClass::new("wide", 2, 1e9)];
        let spec =
            ServingSpec::new(12, 100.0, ArrivalProcess::Bursty { burst: 12 }, 9).with_max_queue(2);
        let report = serving_sweep(
            &nets,
            &classes,
            &spec,
            &cfg(),
            &ResparcConfig::resparc_64(),
            PackingPolicy::FirstFit,
        )
        .unwrap();
        assert!(report.rejected > 0, "the burst must overflow the queue");
        assert_eq!(report.completed + report.rejected, 12);
        assert!(report.violation_rate() > 0.0);
        assert_eq!(
            report
                .outcomes
                .iter()
                .filter(|o| matches!(o, RequestOutcome::Rejected))
                .count(),
            report.rejected
        );
    }

    #[test]
    fn preemption_cancels_over_budget_requests() {
        // A hopeless SLO (1ns) with a tight budget: whatever cannot
        // finish within one round gets preempted; every preempted
        // arrival is accounted.
        let nets = vec![five_nc_net(6)];
        let classes = vec![ServiceClass::new("doomed", 50, 1.0)];
        let spec = ServingSpec::new(6, 50.0, ArrivalProcess::Poisson, 13).with_preemption(2.0);
        let report = serving_sweep(
            &nets,
            &classes,
            &spec,
            &cfg(),
            &ResparcConfig::resparc_64(),
            PackingPolicy::FirstFit,
        )
        .unwrap();
        assert!(report.preempted > 0, "the 1ns SLO is unmeetable");
        assert_eq!(report.completed + report.preempted + report.rejected, 6);
        // Preempted requests freed their NCs: the schedule drained.
        assert!(report.makespan > Time::ZERO);
    }

    #[test]
    fn adaptive_controller_holds_aggregates_and_helps_the_pressed_class() {
        // Two classes contending on the bus: "premium" has a tight SLO,
        // "bulk" a loose one. The adaptive controller must not change
        // any aggregate (work-conserving bus) while improving premium's
        // tail vs the same run at static equal weights.
        // Arrivals every ~100ns against ~300ns rounds: requests queue
        // multi-round deep, so premium's 800ns SLO keeps violating and
        // the controller must keep its weight pinned high.
        let nets = vec![small_net(7), small_net(8)];
        let classes = vec![
            ServiceClass::new("premium", 2, 800.0),
            ServiceClass::new("bulk", 4, 10_000_000.0),
        ];
        let mk = |qos| {
            ServingSpec::new(24, 100.0, ArrivalProcess::Bursty { burst: 8 }, 17).with_qos(qos)
        };
        let run = |spec: &ServingSpec| {
            serving_sweep(
                &nets,
                &classes,
                spec,
                &cfg(),
                &ResparcConfig::resparc_64(),
                PackingPolicy::FirstFit,
            )
            .unwrap()
        };
        let adaptive = run(&mk(QosPolicy::Adaptive { max_weight: 64 }));
        let static_run = run(&mk(QosPolicy::Static));

        // Work conservation: identical schedule, energy and clock.
        assert_eq!(adaptive.rounds, static_run.rounds);
        assert_eq!(adaptive.dynamic_energy, static_run.dynamic_energy);
        assert_eq!(adaptive.occupied_leakage, static_run.occupied_leakage);
        assert_eq!(adaptive.makespan, static_run.makespan);
        assert_eq!(adaptive.busy_time, static_run.busy_time);
        // The controller engaged (premium's weight rose off its base)…
        assert!(adaptive.classes[0].final_weight > classes[0].weight);
        // …and premium's tail is no worse than under static weights.
        assert!(adaptive.classes[0].p99 <= static_run.classes[0].p99);
    }

    #[test]
    fn ungated_spec_reproduces_always_powered_billing() {
        let nets = vec![small_net(9)];
        let classes = vec![ServiceClass::new("only", 2, 1e9)];
        let base = ServingSpec::new(6, 3_000.0, ArrivalProcess::Poisson, 23);
        let run = |gating: f64| {
            serving_sweep(
                &nets,
                &classes,
                &base.clone().with_idle_gating(gating),
                &cfg(),
                &ResparcConfig::resparc_64(),
                PackingPolicy::FirstFit,
            )
            .unwrap()
        };
        let ungated = run(1.0);
        let gated = run(0.1);

        // Ungated: the billed idle equals the counterfactual exactly —
        // PR-4/5 always-powered accounting, bit for bit.
        assert_eq!(ungated.gated_idle_leakage, ungated.ungated_idle_leakage);
        assert_eq!(ungated.pool_energy(), ungated.ungated_pool_energy());
        assert_eq!(ungated.gating_saving(), 0.0);
        // Gating changes nothing about the schedule or dynamic work.
        assert_eq!(gated.rounds, ungated.rounds);
        assert_eq!(gated.dynamic_energy, ungated.dynamic_energy);
        assert_eq!(gated.makespan, ungated.makespan);
        assert_eq!(gated.outcomes, ungated.outcomes);
        // Both runs agree on the counterfactual; the gated bill is
        // strictly smaller.
        assert_eq!(gated.ungated_idle_leakage, ungated.ungated_idle_leakage);
        assert!(gated.gated_idle_leakage < ungated.gated_idle_leakage);
        assert!(gated.gating_saving() > 0.0);
    }

    #[test]
    fn oversized_class_is_rejected_up_front() {
        let nets = vec![Network::random(
            Topology::mlp(144, &[2048, 2048, 10]), // 18 NCs > 16
            1,
            1.0,
        )];
        let classes = vec![ServiceClass::new("huge", 1, 1e9)];
        let err = serving_sweep(
            &nets,
            &classes,
            &ServingSpec::new(2, 100.0, ArrivalProcess::Poisson, 1),
            &cfg(),
            &ResparcConfig::resparc_64(),
            PackingPolicy::Defragment,
        )
        .expect_err("cannot ever fit");
        assert!(matches!(err, AdmitError::CapacityExhausted { .. }));
    }

    #[test]
    fn diurnal_troughs_make_gating_matter_more() {
        // A diurnal trace with deep troughs leaves the pool idle far
        // longer than a steady Poisson trace at the same mean rate —
        // the gating saving must be larger.
        let nets = vec![small_net(10)];
        let classes = vec![ServiceClass::new("only", 1, 1e9)];
        let run = |arrivals| {
            serving_sweep(
                &nets,
                &classes,
                &ServingSpec::new(10, 2_000.0, arrivals, 31).with_idle_gating(0.05),
                &cfg(),
                &ResparcConfig::resparc_64(),
                PackingPolicy::FirstFit,
            )
            .unwrap()
        };
        let diurnal = run(ArrivalProcess::Diurnal {
            period_ns: 40_000.0,
            amplitude: 0.9,
        });
        assert!(diurnal.gating_saving() > 0.0);
        assert!(diurnal.makespan >= diurnal.busy_time);
    }
}
