//! Resilience workloads: device-fault accuracy/energy sweeps and
//! NeuroCell-failure recovery drills.
//!
//! The paper's crossbars are built from real memristive devices, and
//! real devices break: cells stick at a conductance rail, drift toward
//! `G_min`, and spread log-normally around their programmed value
//! (modelled by [`FaultPlan`] in `resparc_device`). This module turns
//! those models into workloads:
//!
//! * [`fault_sweep`] applies a grid of [`FaultPlan`]s to a network's
//!   compiled kernels (via
//!   [`CompiledNetwork::with_faults`](resparc_neuro::kernel::CompiledNetwork::with_faults)
//!   — a pure transform, the clean kernels are never touched) and runs
//!   the trace-driven accuracy/energy sweep once per (plan, encoding)
//!   cell. This is the stuck-at-rate-vs-accuracy and drift-vs-accuracy
//!   degradation surface, priced per coding scheme — TTFS's
//!   single-spike code and rate coding's redundancy degrade very
//!   differently under the same silicon damage.
//! * [`fault_recovery_drill`] injects **NeuroCell failures mid-replay**
//!   into a dynamically scheduled fabric ([`FaultEvent`]):
//!   the scheduler's recovery path
//!   ([`FabricScheduler::fail_nc`]) evicts the victim, re-queues it at
//!   the head, and re-admits it wherever healthy capacity remains. The
//!   [`FaultDrillReport`] measures what resilience costs — voided
//!   replays, recovery rounds, utilization before/after the failures —
//!   and what it saves: interrupted requests still complete.

use std::sync::Arc;

use rayon::prelude::*;
use resparc_core::fabric::{
    AdmitError, FabricPool, FabricScheduler, PackingPolicy, ServiceRecord, SharedEventSimulator,
    TenantId,
};
use resparc_core::map::{Mapper, Mapping};
use resparc_core::ResparcConfig;
use resparc_device::fault::FaultPlan;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::encoding::Encoding;
use resparc_neuro::network::{Network, SnnRunner};
use resparc_neuro::trace::SpikeTrace;

use crate::churn::ChurnSpec;
use crate::sweep::{trace_energy_sweep_compiled, SweepConfig, TraceEnergyReport};

/// One `(fault plan, encoding)` cell of a [`fault_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// The input coding scheme this cell ran under.
    pub encoding: Encoding,
    /// Accuracy and per-inference energy on the faulted kernels.
    pub report: TraceEnergyReport,
}

/// Runs the trace-driven accuracy/energy sweep once per
/// `(plan, encoding)` pair: each [`FaultPlan`] is applied to the
/// network's compiled kernels exactly once (a pure transform — the
/// clean kernels survive unchanged, and [`FaultPlan::none`] reproduces
/// the clean sweep bit-identically), then every requested encoding
/// sweeps the same labelled set on those faulted kernels. Cells are
/// returned in `plans`-major order.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`trace_energy_sweep`](crate::sweep::trace_energy_sweep).
pub fn fault_sweep(
    net: &Network,
    mapping: &Mapping,
    samples: &[(Vec<f32>, usize)],
    cfg: &SweepConfig,
    plans: &[FaultPlan],
    encodings: &[Encoding],
) -> Vec<FaultSweepPoint> {
    let clean = net.compiled();
    plans
        .iter()
        .flat_map(|plan| {
            let kernels = Arc::new(clean.with_faults(plan));
            encodings
                .iter()
                .map(|&encoding| {
                    let report = trace_energy_sweep_compiled(
                        &kernels,
                        mapping,
                        samples,
                        &cfg.with_encoding(encoding),
                    );
                    FaultSweepPoint {
                        plan: *plan,
                        encoding,
                        report,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// One NeuroCell failure injected into a [`fault_recovery_drill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Replay round the failure strikes in (after that round's
    /// admissions, before its replay — a resident victim loses the
    /// in-flight round).
    pub round: usize,
    /// The NeuroCell that fails (permanently).
    pub nc: usize,
}

impl FaultEvent {
    /// A failure of `nc` in `round`.
    pub fn new(round: usize, nc: usize) -> Self {
        Self { round, nc }
    }
}

/// Outcome of a [`fault_recovery_drill`]: how a dynamically scheduled
/// fabric absorbs mid-replay NeuroCell failures.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDrillReport {
    /// Rounds until the schedule drained.
    pub rounds: usize,
    /// Requests that completed their full service.
    pub completed: usize,
    /// Requests retired unserved because no healthy segment could ever
    /// hold them again.
    pub aborted: usize,
    /// Requests interrupted at least once by a failure.
    pub interrupted_requests: usize,
    /// Fault evictions summed over all requests.
    pub total_interruptions: usize,
    /// Mean rounds between a fault eviction and the victim's
    /// re-admission, over interrupted requests that completed (the
    /// recovery latency of the self-healing loop).
    pub mean_recovery_rounds: f64,
    /// Replays voided by failures: each resident victim loses the round
    /// it was evicted in (the lost work resilience pays for).
    pub lost_replays: usize,
    /// Mean active NC utilization over busy rounds before the first
    /// fault round.
    pub utilization_before: f64,
    /// Mean active NC utilization over busy rounds from the first fault
    /// round on — the pool is smaller *and* recovery re-packs it.
    pub utilization_after: f64,
    /// NeuroCells permanently failed by the end of the drill.
    pub failed_ncs: usize,
    /// Per-event energy summed over every replayed round.
    pub dynamic_energy: Energy,
    /// Busy wall-clock summed over every replayed round.
    pub latency: Time,
    /// Replays that actually ran (interrupted rounds excluded).
    pub inferences: usize,
    /// The scheduler's full life-cycle log, in departure order.
    pub records: Vec<ServiceRecord>,
}

/// Replays an arrival/departure schedule (the dynamic half of
/// [`churn_sweep`](crate::churn::churn_sweep)) while permanently
/// failing NeuroCells mid-stream, and measures the recovery.
///
/// Request `i` (network `nets[i]`, schedule `specs[i]`) presents sample
/// `r % samples.len()` on its `r`-th *credited* service round. Each
/// [`FaultEvent`] fires in its round after admissions and **before**
/// the replay: a resident victim is evicted through
/// [`FabricScheduler::fail_nc`] (losing the in-flight round — counted
/// in [`FaultDrillReport::lost_replays`]), re-queued at the head, and
/// re-admitted on the next round with healthy room. Requests wider than
/// the largest surviving healthy segment are retired as aborted.
/// Events scheduled after the drill drains never fire.
///
/// # Errors
///
/// Returns [`AdmitError::Map`] if a network cannot be mapped and
/// [`AdmitError::CapacityExhausted`] if a request exceeds the whole
/// (pre-fault) pool.
///
/// # Panics
///
/// Panics if `nets`/`specs` lengths differ or are empty, `samples` is
/// empty, any `service_rounds`/`weight` is zero, an event names a
/// NeuroCell outside the pool, or a stimulus length differs from a
/// network's input count.
pub fn fault_recovery_drill(
    nets: &[Network],
    specs: &[ChurnSpec],
    samples: &[(Vec<f32>, usize)],
    cfg: &SweepConfig,
    pool_config: &ResparcConfig,
    policy: PackingPolicy,
    faults: &[FaultEvent],
) -> Result<FaultDrillReport, AdmitError> {
    assert_eq!(nets.len(), specs.len(), "one ChurnSpec per network");
    assert!(!nets.is_empty(), "need at least one request");
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(
        specs.iter().all(|s| s.service_rounds > 0 && s.weight > 0),
        "service rounds and weights must be positive"
    );
    assert!(
        faults.iter().all(|f| f.nc < pool_config.physical_ncs),
        "fault events must name NeuroCells inside the pool"
    );

    let mapper = Mapper::new(pool_config.clone());
    let probes: Vec<Mapping> = nets
        .iter()
        .map(|n| mapper.map_network(n))
        .collect::<Result<_, _>>()
        .map_err(AdmitError::Map)?;
    for probe in &probes {
        let needed = probe.placement.ncs_used.max(1);
        if needed > pool_config.physical_ncs {
            return Err(AdmitError::CapacityExhausted {
                needed_ncs: needed,
                free_ncs: pool_config.physical_ncs,
                largest_free_run: pool_config.physical_ncs,
            });
        }
    }

    // Trace every distinct (request, sample) presentation once, exactly
    // like churn_sweep (wrapped service rounds replay the same trace).
    let jobs: Vec<(usize, usize)> = (0..nets.len())
        .flat_map(|i| (0..specs[i].service_rounds.min(samples.len())).map(move |j| (i, j)))
        .collect();
    let runs: Vec<SpikeTrace> = jobs
        .par_iter()
        .map(|&(i, j)| {
            let raster = cfg.encode_sample(j, &samples[j].0);
            let mut runner = SnnRunner::from_compiled(nets[i].compiled().clone());
            let (_, trace) = runner.run_traced(&raster);
            trace
        })
        .collect();
    let mut traces: Vec<Vec<SpikeTrace>> = (0..nets.len()).map(|_| Vec::new()).collect();
    for (&(i, _), trace) in jobs.iter().zip(runs) {
        traces[i].push(trace);
    }

    let first_fault_round = faults.iter().map(|f| f.round).min();
    let mut order: Vec<usize> = (0..nets.len()).collect();
    order.sort_by_key(|&i| specs[i].arrival_round);

    let mut sched = FabricScheduler::new(FabricPool::new(pool_config.clone()).with_policy(policy));
    let mut request_net: Vec<usize> = Vec::with_capacity(nets.len());
    let mut next_submit = 0usize;
    let mut energy = Energy::ZERO;
    let mut latency_ns = 0.0f64;
    let mut inferences = 0usize;
    let mut lost_replays = 0usize;
    let mut util_before = (0.0f64, 0usize);
    let mut util_after = (0.0f64, 0usize);
    while next_submit < order.len() || !sched.is_idle() {
        let round = sched.round();
        while next_submit < order.len() && specs[order[next_submit]].arrival_round <= round {
            let i = order[next_submit];
            let request = sched.submit_mapped(
                probes[i].clone(),
                &format!("tenant{i}"),
                specs[i].service_rounds,
                specs[i].weight,
            );
            debug_assert_eq!(request.index() as usize, request_net.len());
            request_net.push(i);
            next_submit += 1;
        }
        let mut residents = sched.begin_round();
        // Failures strike after admission, before the replay: resident
        // victims lose this round and re-enter the queue.
        for fault in faults.iter().filter(|f| f.round == round) {
            if let Some(victim) = sched.fail_nc(fault.nc) {
                let before = residents.len();
                residents.retain(|st| st.request != victim);
                lost_replays += before - residents.len();
            }
        }
        if !residents.is_empty() {
            let pairs: Vec<(TenantId, &SpikeTrace)> = residents
                .iter()
                .map(|st| {
                    let i = request_net[st.request.index() as usize];
                    (st.tenant, &traces[i][st.rounds_served % samples.len()])
                })
                .collect();
            let weights: Vec<u32> = residents.iter().map(|st| st.weight).collect();
            let report = SharedEventSimulator::new(sched.pool()).run_weighted(&pairs, &weights);
            energy += report
                .tenants
                .iter()
                .map(|t| t.energy.total())
                .sum::<Energy>();
            latency_ns += report.latency.nanoseconds();
            inferences += residents.len();
            let active_ncs: usize = residents
                .iter()
                .filter_map(|st| sched.pool().tenant(st.tenant))
                .map(|t| t.nc_count())
                .sum();
            let util = active_ncs as f64 / pool_config.physical_ncs as f64;
            let bucket = match first_fault_round {
                Some(first) if round >= first => &mut util_after,
                _ => &mut util_before,
            };
            bucket.0 += util;
            bucket.1 += 1;
        }
        sched.end_round();
    }

    let records = sched.completed().to_vec();
    let interrupted: Vec<&ServiceRecord> = records.iter().filter(|r| r.interruptions > 0).collect();
    let recovered: Vec<&ServiceRecord> =
        interrupted.iter().copied().filter(|r| !r.aborted).collect();
    let mean_recovery_rounds = if recovered.is_empty() {
        0.0
    } else {
        recovered
            .iter()
            .map(|r| r.recovery_rounds as f64 / r.interruptions as f64)
            .sum::<f64>()
            / recovered.len() as f64
    };
    Ok(FaultDrillReport {
        rounds: sched.round(),
        completed: records.iter().filter(|r| !r.aborted).count(),
        aborted: records.iter().filter(|r| r.aborted).count(),
        interrupted_requests: interrupted.len(),
        total_interruptions: records.iter().map(|r| r.interruptions).sum(),
        mean_recovery_rounds,
        lost_replays,
        utilization_before: util_before.0 / util_before.1.max(1) as f64,
        utilization_after: util_after.0 / util_after.1.max(1) as f64,
        failed_ncs: sched.pool().failed_ncs(),
        dynamic_energy: energy,
        latency: Time::from_nanos(latency_ns),
        inferences,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, SyntheticImages};
    use resparc_neuro::topology::Topology;

    /// 2 and 5-NC networks on RESPARC-64 (footprints asserted in
    /// `resparc_core::fabric::pool` tests).
    fn sized_net(ncs: usize, seed: u64) -> Network {
        let hiddens: &[usize] = match ncs {
            2 => &[576, 576, 10],
            5 => &[576, 576, 576, 576, 10],
            other => panic!("no sized net for {other} NCs"),
        };
        Network::random(Topology::mlp(144, hiddens), seed, 1.0)
    }

    fn samples() -> Vec<(Vec<f32>, usize)> {
        let gen = SyntheticImages::new(DatasetKind::Mnist, 12, 3);
        gen.labelled_set(6, 0)
    }

    #[test]
    fn empty_plan_cell_reproduces_the_clean_sweep_bit_identically() {
        use crate::sweep::trace_energy_sweep;

        let net = Network::random(Topology::mlp(144, &[48, 10]), 3, 1.0);
        let mapping = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        let cfg = SweepConfig::rate(15, 0.7, 9);
        let set = samples();

        let points = fault_sweep(
            &net,
            &mapping,
            &set,
            &cfg,
            &[FaultPlan::none(), FaultPlan::stuck_at(11, 0.3)],
            &[Encoding::Rate],
        );
        assert_eq!(points.len(), 2);
        let clean = trace_energy_sweep(&net, &mapping, &set, &cfg);
        assert_eq!(
            points[0].report, clean,
            "FaultPlan::none() must reproduce the clean sweep exactly"
        );
        // A heavy stuck-at plan changes the replayed spike traffic.
        assert_ne!(points[1].report.per_sample_energy, clean.per_sample_energy);
    }

    #[test]
    fn stuck_at_degrades_accuracy_monotonically_in_the_limit() {
        // Accuracy under total destruction (every cell stuck) collapses
        // to (at or below) chance while the clean plan keeps the
        // network's accuracy; mild damage sits in between or equal.
        let gen = SyntheticImages::new(DatasetKind::Mnist, 12, 3);
        let train = gen.labelled_set(120, 0);
        let mut tc = resparc_neuro::train::TrainConfig::quick_test();
        tc.epochs = 10;
        let mut net = resparc_neuro::train::train_mlp(144, &[24, 10], &train, &tc);
        let calib: Vec<Vec<f32>> = train.iter().take(16).map(|(x, _)| x.clone()).collect();
        resparc_neuro::convert::normalize_for_snn(&mut net, &calib, 0.99);
        let test = gen.labelled_set(30, 9_000);
        let mapping = Mapper::new(ResparcConfig::resparc_64())
            .map_network(&net)
            .unwrap();
        let cfg = SweepConfig::rate(30, 0.8, 7);

        let points = fault_sweep(
            &net,
            &mapping,
            &test,
            &cfg,
            &[
                FaultPlan::none(),
                FaultPlan::stuck_at(5, 0.05),
                FaultPlan::stuck_at(5, 1.0),
            ],
            &[Encoding::Rate],
        );
        let acc: Vec<f64> = points.iter().map(|p| p.report.accuracy()).collect();
        assert!(acc[0] > 0.3, "clean accuracy {}", acc[0]);
        assert!(acc[2] < acc[0], "total destruction must cost accuracy");
        assert!(acc[1] >= acc[2], "mild damage beats total destruction");
    }

    #[test]
    fn recovery_drill_readmits_victims_and_completes_the_schedule() {
        // Two 5-NC requests serving 4 rounds; NC 0 fails in round 1.
        // The victim is evicted (losing round 1), re-admitted in round
        // 2 on the surviving cells, and still completes all 4 rounds.
        let nets: Vec<Network> = (0..2).map(|s| sized_net(5, 30 + s)).collect();
        let specs = vec![ChurnSpec::new(0, 4), ChurnSpec::new(0, 4)];
        let cfg = SweepConfig::rate(10, 0.7, 9);
        let report = fault_recovery_drill(
            &nets,
            &specs,
            &samples(),
            &cfg,
            &ResparcConfig::resparc_64(),
            PackingPolicy::FirstFit,
            &[FaultEvent::new(1, 0)],
        )
        .expect("both requests fit");

        assert_eq!(report.completed, 2);
        assert_eq!(report.aborted, 0);
        assert_eq!(report.interrupted_requests, 1);
        assert_eq!(report.total_interruptions, 1);
        assert_eq!(report.lost_replays, 1, "the in-flight round was voided");
        assert_eq!(report.mean_recovery_rounds, 1.0);
        assert_eq!(report.failed_ncs, 1);
        // 2 tenants × 4 rounds = 8 credited replays despite the fault.
        assert_eq!(report.inferences, 8);
        assert_eq!(report.rounds, 5, "one round lost to recovery");
        assert!(report.utilization_before > 0.0);
        assert!(report.utilization_after > 0.0);
        let victim = report
            .records
            .iter()
            .find(|r| r.interruptions > 0)
            .expect("one interrupted record");
        assert_eq!(victim.rounds_served, 4, "full service despite the fault");
        assert!(!victim.aborted);
    }

    #[test]
    fn drill_aborts_requests_no_healthy_segment_can_hold() {
        // Killing NCs 4, 9 and 14 in round 0 caps healthy segments at 4
        // cells: the 5-NC request is interrupted and then aborted, the
        // 2-NC request completes.
        let nets = vec![sized_net(5, 1), sized_net(2, 2)];
        let specs = vec![ChurnSpec::new(0, 3), ChurnSpec::new(0, 3)];
        let cfg = SweepConfig::rate(10, 0.7, 9);
        let report = fault_recovery_drill(
            &nets,
            &specs,
            &samples(),
            &cfg,
            &ResparcConfig::resparc_64(),
            PackingPolicy::FirstFit,
            &[
                FaultEvent::new(0, 4),
                FaultEvent::new(0, 9),
                FaultEvent::new(0, 14),
            ],
        )
        .expect("both requests fit the pre-fault pool");

        assert_eq!(report.completed, 1);
        assert_eq!(report.aborted, 1);
        assert_eq!(report.failed_ncs, 3);
        let aborted = report.records.iter().find(|r| r.aborted).unwrap();
        assert_eq!(aborted.ncs, 5);
        assert!(aborted.rounds_served < 3);
        let done = report.records.iter().find(|r| !r.aborted).unwrap();
        assert_eq!(done.rounds_served, 3);
    }
}
