//! Shared per-sample RNG seed derivation.
//!
//! Everything in this crate that derives many RNG seeds from one base
//! seed plus a counter (sweep sample indices, synthetic dataset
//! `(class, index)` coordinates) must decorrelate them the same way: a
//! plain `seed ^ i` collapses `i == seed` to seed 0 and makes base seeds
//! that differ only in low bits share most derived streams. The
//! splitmix64 output mix (Steele et al., "Fast splittable pseudorandom
//! number generators") is a bijective avalanche over the stream state,
//! so distinct `(seed, i)` states yield decorrelated seeds.

/// splitmix64 increment ("golden gamma").
pub(crate) const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 output mix: finalizes one stream state into a seed.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(SPLITMIX64_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `i`-th output of a splitmix64 stream seeded with `seed`.
pub(crate) fn stream_seed(seed: u64, i: u64) -> u64 {
    splitmix64(seed.wrapping_add(i.wrapping_mul(SPLITMIX64_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn stream_seeds_are_distinct_and_uncorrelated() {
        let a: BTreeSet<u64> = (0..256).map(|i| stream_seed(7, i)).collect();
        let b: BTreeSet<u64> = (0..256).map(|i| stream_seed(6, i)).collect();
        assert_eq!(a.len(), 256);
        assert!(
            a.is_disjoint(&b),
            "nearby base seeds must not share streams"
        );
        assert_ne!(stream_seed(7, 7), 0, "i == seed must not zero out");
    }
}
