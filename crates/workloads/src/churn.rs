//! Mid-replay tenant churn: a dynamically scheduled fabric vs the
//! static co-resident baseline.
//!
//! [`multi_tenant_sweep`](crate::sweep::multi_tenant_sweep) fixed the
//! tenant set for a whole replay batch — PR 4's static realisation of
//! RESPARC's reconfigurability. [`churn_sweep`] measures the dynamic
//! half: requests **arrive over rounds**, are admitted by a
//! [`FabricScheduler`] when the pool's [`PackingPolicy`] finds capacity
//! (first-fit, best-fit, or defragmenting compaction), queue FIFO
//! otherwise, and **depart** when their service completes — freeing
//! NeuroCells for the next arrival while other tenants keep replaying.
//!
//! The baseline runs the *same* requests, traces and per-event charges
//! the static way: tenants are packed into co-resident batches in
//! arrival order, and a batch stays provisioned until its
//! longest-running member finishes — early finishers idle on powered
//! silicon, and later arrivals wait for the whole batch to drain. The
//! difference between the two disciplines is pure scheduling: dynamic
//! churn compresses the schedule (fewer, fuller rounds), so the powered
//! pool's leakage is amortized over more inferences per unit time.

use rayon::prelude::*;
use resparc_core::fabric::{
    pool_leakage_power, AdmitError, FabricPool, FabricScheduler, PackingPolicy,
    SharedEventSimulator, TenantId,
};
use resparc_core::map::{Mapper, Mapping};
use resparc_core::ResparcConfig;
use resparc_energy::units::{Energy, Time};
use resparc_neuro::network::{Network, SnnRunner};
use resparc_neuro::trace::SpikeTrace;

use crate::sweep::{accuracy_fraction, SweepConfig, TenancyMetrics};

/// One request in a churn schedule, paired index-wise with the network
/// list [`churn_sweep`] receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Round the request is submitted in.
    pub arrival_round: usize,
    /// Replay rounds of service the request needs before departing
    /// (each round presents one sample; sample `r % samples.len()` on
    /// the request's `r`-th service round).
    pub service_rounds: usize,
    /// Bus-arbitration weight for the request's shared replays.
    pub weight: u32,
}

impl ChurnSpec {
    /// A fair-weight request.
    pub fn new(arrival_round: usize, service_rounds: usize) -> Self {
        Self {
            arrival_round,
            service_rounds,
            weight: 1,
        }
    }

    /// The same request at a different bus-arbitration weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// Scheduling metrics of one execution discipline in a [`ChurnReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnMetrics {
    /// Energy/latency/inference totals, billed like every other tenancy
    /// comparison: dynamic per-event energy plus the whole powered
    /// pool's leakage over the discipline's busy wall-clock.
    pub tenancy: TenancyMetrics,
    /// Rounds from round 0 until the schedule drained — idle gaps
    /// before and between arrivals included, so a schedule whose first
    /// request arrives late counts the leading idle rounds too (they
    /// are free energy-wise; see [`busy_rounds`](Self::busy_rounds)).
    pub rounds: usize,
    /// Rounds in which at least one tenant replayed.
    pub busy_rounds: usize,
    /// Mean fraction of the pool's NeuroCells owned by tenants that
    /// *replayed* in a busy round — statically provisioned tenants
    /// idling past their service do not count, which is exactly the
    /// waste the dynamic discipline reclaims.
    pub mean_active_utilization: f64,
    /// Mean rounds a request waited between submission and admission.
    pub mean_queue_wait: f64,
    /// Worst-case queue wait in rounds.
    pub max_queue_wait: usize,
}

/// Outcome of a [`churn_sweep`]: the same arrival/departure schedule,
/// traces and per-event charges under dynamic scheduling and under
/// static batch provisioning.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Packing policy the dynamic scheduler admitted with.
    pub policy: PackingPolicy,
    /// Requests in the schedule.
    pub tenants: usize,
    /// Per-request classification accuracy over its service rounds
    /// (identical under both disciplines: scheduling shares the fabric,
    /// not the spikes).
    pub per_tenant_accuracy: Vec<f64>,
    /// The dynamically scheduled discipline ([`FabricScheduler`]).
    pub churned: ChurnMetrics,
    /// The static baseline: co-resident batches in arrival order, each
    /// provisioned until its longest member departs.
    pub static_baseline: ChurnMetrics,
}

impl ChurnReport {
    /// Static ÷ churned energy per inference (> 1 = churn wins).
    pub fn energy_per_inference_gain(&self) -> f64 {
        self.static_baseline
            .tenancy
            .energy_per_inference()
            .picojoules()
            / self.churned.tenancy.energy_per_inference().picojoules()
    }

    /// Static ÷ churned busy wall-clock (> 1 = churn drains the same
    /// work sooner).
    pub fn makespan_gain(&self) -> f64 {
        self.static_baseline.tenancy.latency.nanoseconds()
            / self.churned.tenancy.latency.nanoseconds()
    }

    /// Static ÷ churned batch EDP (> 1 = churn wins).
    pub fn edp_gain(&self) -> f64 {
        self.static_baseline.tenancy.energy_delay_product()
            / self.churned.tenancy.energy_delay_product()
    }

    /// Churned − static mean active utilization (> 0 = churn keeps the
    /// powered silicon busier).
    pub fn utilization_gain(&self) -> f64 {
        self.churned.mean_active_utilization - self.static_baseline.mean_active_utilization
    }
}

/// Runs an arrival/departure schedule of `nets` through a dynamically
/// scheduled [`FabricPool`] and through the static co-resident baseline,
/// on identical spike traces.
///
/// Request `i` (network `nets[i]`, schedule `specs[i]`) classifies
/// sample `r % samples.len()` on its `r`-th service round; sample `j`
/// is encoded once under `cfg` with seed
/// [`SweepConfig::sample_seed`]`(j)`, so functional results are
/// identical in both disciplines *and* across requests presenting the
/// same sample. The dynamic discipline drives a [`FabricScheduler`]
/// over the pool (admit when `policy` finds capacity — including
/// defragmentation for [`PackingPolicy::Defragment`] — queue FIFO
/// otherwise, evict on departure) and replays each round through
/// [`SharedEventSimulator::run_weighted`] at the requests' weights. The
/// static baseline packs requests into co-resident batches in arrival
/// order; a batch is admitted whole, runs until its longest member's
/// service completes (early finishers idle resident, their silicon
/// still powered), and only then is the next batch admitted.
///
/// Both disciplines bill dynamic per-event energy plus the whole
/// powered pool's leakage over their busy wall-clock; idle rounds
/// waiting for future arrivals are free in both.
///
/// # Errors
///
/// Returns [`AdmitError::Map`] if a network cannot be mapped and
/// [`AdmitError::CapacityExhausted`] if a single request exceeds the
/// whole pool (it could never be admitted).
///
/// # Panics
///
/// Panics if `nets`/`specs` lengths differ or are empty, `samples` is
/// empty, any `service_rounds`/`weight` is zero, or a stimulus length
/// differs from a network's input count.
pub fn churn_sweep(
    nets: &[Network],
    specs: &[ChurnSpec],
    samples: &[(Vec<f32>, usize)],
    cfg: &SweepConfig,
    pool_config: &ResparcConfig,
    policy: PackingPolicy,
) -> Result<ChurnReport, AdmitError> {
    assert_eq!(nets.len(), specs.len(), "one ChurnSpec per network");
    assert!(!nets.is_empty(), "need at least one request");
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(
        specs.iter().all(|s| s.service_rounds > 0 && s.weight > 0),
        "service rounds and weights must be positive"
    );

    let mapper = Mapper::new(pool_config.clone());
    let probes: Vec<Mapping> = nets
        .iter()
        .map(|n| mapper.map_network(n))
        .collect::<Result<_, _>>()
        .map_err(AdmitError::Map)?;
    for probe in &probes {
        let needed = probe.placement.ncs_used.max(1);
        if needed > pool_config.physical_ncs {
            return Err(AdmitError::CapacityExhausted {
                needed_ncs: needed,
                free_ncs: pool_config.physical_ncs,
                largest_free_run: pool_config.physical_ncs,
            });
        }
    }

    // --- Functional runs: every *distinct* (request, sample)
    // presentation traced once. A request whose service outlasts the
    // sample set wraps (round r presents sample r % samples.len()),
    // and the run is deterministic per (network, sample, seed), so
    // wrapped rounds replay the identical trace rather than
    // re-simulating it; `traces[i][r % samples.len()]` is the round-r
    // trace in both disciplines.
    let readout = cfg.readout();
    let jobs: Vec<(usize, usize)> = (0..nets.len())
        .flat_map(|i| (0..specs[i].service_rounds.min(samples.len())).map(move |j| (i, j)))
        .collect();
    let runs: Vec<(usize, SpikeTrace)> = jobs
        .par_iter()
        .map(|&(i, j)| {
            let raster = cfg.encode_sample(j, &samples[j].0);
            let mut runner = SnnRunner::from_compiled(nets[i].compiled().clone());
            let (outcome, trace) = runner.run_traced(&raster);
            (outcome.decode(readout), trace)
        })
        .collect();
    let mut traces: Vec<Vec<SpikeTrace>> = (0..nets.len()).map(|_| Vec::new()).collect();
    let mut per_tenant_correct = vec![0usize; nets.len()];
    for (&(i, j), (predicted, trace)) in jobs.iter().zip(runs) {
        if predicted == samples[j].1 {
            // Sample j is presented on every service round that wraps
            // onto it.
            per_tenant_correct[i] += specs[i].service_rounds / samples.len()
                + usize::from(j < specs[i].service_rounds % samples.len());
        }
        traces[i].push(trace);
    }
    let per_tenant_accuracy: Vec<f64> = per_tenant_correct
        .iter()
        .zip(specs)
        .map(|(&c, s)| accuracy_fraction(c, s.service_rounds))
        .collect();

    let pool_leak = pool_leakage_power(pool_config);
    // Submission order: arrival round, ties in input order.
    let mut order: Vec<usize> = (0..nets.len()).collect();
    order.sort_by_key(|&i| specs[i].arrival_round);

    // --- Dynamic discipline: FabricScheduler-driven churn.
    let mut sched = FabricScheduler::new(FabricPool::new(pool_config.clone()).with_policy(policy));
    let mut request_net: Vec<usize> = Vec::with_capacity(nets.len());
    let mut next_submit = 0usize;
    let mut dyn_energy = Energy::ZERO;
    let mut dyn_latency_ns = 0.0f64;
    let mut dyn_busy = 0usize;
    let mut dyn_util = 0.0f64;
    let mut dyn_inferences = 0usize;
    while next_submit < order.len() || !sched.is_idle() {
        let round = sched.round();
        while next_submit < order.len() && specs[order[next_submit]].arrival_round <= round {
            let i = order[next_submit];
            // The up-front footprint validation already mapped every
            // network; submit the cached probe instead of partitioning
            // a second time.
            let request = sched.submit_mapped(
                probes[i].clone(),
                &format!("tenant{i}"),
                specs[i].service_rounds,
                specs[i].weight,
            );
            debug_assert_eq!(request.index() as usize, request_net.len());
            request_net.push(i);
            next_submit += 1;
        }
        let residents = sched.begin_round();
        if !residents.is_empty() {
            let pairs: Vec<(TenantId, &SpikeTrace)> = residents
                .iter()
                .map(|st| {
                    let i = request_net[st.request.index() as usize];
                    (st.tenant, &traces[i][st.rounds_served % samples.len()])
                })
                .collect();
            let weights: Vec<u32> = residents.iter().map(|st| st.weight).collect();
            let report = SharedEventSimulator::new(sched.pool()).run_weighted(&pairs, &weights);
            dyn_energy += report
                .tenants
                .iter()
                .map(|t| t.energy.total())
                .sum::<Energy>();
            dyn_latency_ns += report.latency.nanoseconds();
            let active_ncs: usize = residents
                .iter()
                .filter_map(|st| sched.pool().tenant(st.tenant))
                .map(|t| t.nc_count())
                .sum();
            dyn_util += active_ncs as f64 / pool_config.physical_ncs as f64;
            dyn_busy += 1;
            dyn_inferences += residents.len();
        }
        sched.end_round();
    }
    let dyn_latency = Time::from_nanos(dyn_latency_ns);
    let dyn_waits: Vec<usize> = sched.completed().iter().map(|r| r.wait_rounds()).collect();
    let churned = ChurnMetrics {
        tenancy: TenancyMetrics {
            dynamic_energy: dyn_energy,
            pool_energy: dyn_energy + pool_leak * dyn_latency,
            latency: dyn_latency,
            inferences: dyn_inferences,
        },
        rounds: sched.round(),
        busy_rounds: dyn_busy,
        mean_active_utilization: dyn_util / dyn_busy.max(1) as f64,
        mean_queue_wait: dyn_waits.iter().sum::<usize>() as f64 / dyn_waits.len().max(1) as f64,
        max_queue_wait: dyn_waits.iter().copied().max().unwrap_or(0),
    };

    // --- Static baseline: co-resident batches in arrival order, each
    // provisioned until its longest member departs.
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_ncs = 0usize;
    for &i in &order {
        let ncs = probes[i].placement.ncs_used.max(1);
        if current_ncs + ncs > pool_config.physical_ncs && !current.is_empty() {
            batches.push(std::mem::take(&mut current));
            current_ncs = 0;
        }
        current.push(i);
        current_ncs += ncs;
    }
    if !current.is_empty() {
        batches.push(current);
    }

    let mut stat_energy = Energy::ZERO;
    let mut stat_latency_ns = 0.0f64;
    let mut stat_busy = 0usize;
    let mut stat_util = 0.0f64;
    let mut stat_inferences = 0usize;
    let mut stat_waits: Vec<usize> = Vec::new();
    let mut round_cursor = 0usize;
    for batch in &batches {
        let arrival = batch
            .iter()
            .map(|&i| specs[i].arrival_round)
            .max()
            .unwrap_or(0);
        let start = round_cursor.max(arrival);
        for &i in batch {
            stat_waits.push(start - specs[i].arrival_round);
        }
        let duration = batch
            .iter()
            .map(|&i| specs[i].service_rounds)
            .max()
            .unwrap_or(0);
        let mut pool = FabricPool::new(pool_config.clone());
        let ids: Vec<(usize, TenantId)> = batch
            .iter()
            .filter_map(|&i| {
                // Batches are sized to fit the empty pool; a refusal
                // would be a batching bug, and skipping the member
                // (under-counting the static baseline) is strictly
                // safer than panicking mid-sweep.
                let id = pool
                    .admit_mapped(probes[i].clone(), &format!("tenant{i}"))
                    .ok()?;
                Some((i, id))
            })
            .collect();
        let sim = SharedEventSimulator::new(&pool);
        // `k` is a service-round index into several tenants' trace
        // lists at once, not a single iterable.
        #[allow(clippy::needless_range_loop)]
        for k in 0..duration {
            // Members whose service already completed stay resident
            // (statically provisioned) but have nothing to replay.
            let active: Vec<&(usize, TenantId)> = ids
                .iter()
                .filter(|(i, _)| specs[*i].service_rounds > k)
                .collect();
            let pairs: Vec<(TenantId, &SpikeTrace)> = active
                .iter()
                .map(|&&(i, id)| (id, &traces[i][k % samples.len()]))
                .collect();
            let report = sim.run(&pairs);
            stat_energy += report
                .tenants
                .iter()
                .map(|t| t.energy.total())
                .sum::<Energy>();
            stat_latency_ns += report.latency.nanoseconds();
            let active_ncs: usize = active
                .iter()
                .filter_map(|&&(_, id)| pool.tenant(id))
                .map(|t| t.nc_count())
                .sum();
            stat_util += active_ncs as f64 / pool_config.physical_ncs as f64;
            stat_busy += 1;
            stat_inferences += pairs.len();
        }
        round_cursor = start + duration;
    }
    let stat_latency = Time::from_nanos(stat_latency_ns);
    let static_baseline = ChurnMetrics {
        tenancy: TenancyMetrics {
            dynamic_energy: stat_energy,
            pool_energy: stat_energy + pool_leak * stat_latency,
            latency: stat_latency,
            inferences: stat_inferences,
        },
        rounds: round_cursor,
        busy_rounds: stat_busy,
        mean_active_utilization: stat_util / stat_busy.max(1) as f64,
        mean_queue_wait: stat_waits.iter().sum::<usize>() as f64 / stat_waits.len().max(1) as f64,
        max_queue_wait: stat_waits.iter().copied().max().unwrap_or(0),
    };

    debug_assert_eq!(
        churned.tenancy.inferences,
        static_baseline.tenancy.inferences
    );
    Ok(ChurnReport {
        policy,
        tenants: nets.len(),
        per_tenant_accuracy,
        churned,
        static_baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resparc_neuro::topology::Topology;

    /// 1, 2, 4 and 5-NC networks on RESPARC-64 (footprints asserted in
    /// `resparc_core::fabric::pool` tests).
    fn sized_net(ncs: usize, seed: u64) -> Network {
        let hiddens: &[usize] = match ncs {
            1 => &[96, 10],
            2 => &[576, 576, 10],
            4 => &[576, 576, 576, 10],
            5 => &[576, 576, 576, 576, 10],
            other => panic!("no sized net for {other} NCs"),
        };
        Network::random(Topology::mlp(144, hiddens), seed, 1.0)
    }

    fn samples() -> Vec<(Vec<f32>, usize)> {
        (0..3)
            .map(|s| {
                let x: Vec<f32> = (0..144).map(|i| ((s * 5 + i) % 9) as f32 / 9.0).collect();
                (x, s % 10)
            })
            .collect()
    }

    #[test]
    fn churn_beats_static_batching_on_a_heterogeneous_schedule() {
        // Batch 1 = three 5-NC requests; two finish after 1 round but
        // the batch stays provisioned for 6. Dynamic churn evicts the
        // short ones and backfills the fourth request immediately.
        let nets: Vec<Network> = (0..4).map(|s| sized_net(5, 30 + s)).collect();
        let specs = vec![
            ChurnSpec::new(0, 1),
            ChurnSpec::new(0, 6),
            ChurnSpec::new(0, 1),
            ChurnSpec::new(0, 6),
        ];
        let cfg = SweepConfig::rate(12, 0.7, 9);
        let report = churn_sweep(
            &nets,
            &specs,
            &samples(),
            &cfg,
            &ResparcConfig::resparc_64(),
            PackingPolicy::FirstFit,
        )
        .expect("every request fits the pool alone");

        assert_eq!(report.tenants, 4);
        assert_eq!(report.churned.tenancy.inferences, 14);
        assert_eq!(report.static_baseline.tenancy.inferences, 14);
        // Static: batch {0,1,2} runs 6 rounds, then {3} runs 6 more.
        assert_eq!(report.static_baseline.rounds, 12);
        assert_eq!(report.static_baseline.busy_rounds, 12);
        // Dynamic: requests 0 and 2 depart after round 0, request 3
        // backfills in round 1 and the schedule drains in 7 rounds.
        assert_eq!(report.churned.rounds, 7);
        assert_eq!(report.churned.busy_rounds, 7);
        assert_eq!(report.churned.max_queue_wait, 1);
        // Same work, same spikes: dynamic per-event energy matches.
        let rel = report.churned.tenancy.dynamic_energy.picojoules()
            / report.static_baseline.tenancy.dynamic_energy.picojoules()
            - 1.0;
        assert!(rel.abs() < 1e-9, "dynamic energies diverged by {rel}");
        // The headline: churn drains sooner, keeps the silicon busier
        // and amortizes leakage over the same inferences.
        assert!(
            report.makespan_gain() > 1.0,
            "gain {}",
            report.makespan_gain()
        );
        assert!(report.utilization_gain() > 0.0);
        assert!(
            report.energy_per_inference_gain() > 1.0,
            "gain {}",
            report.energy_per_inference_gain()
        );
        assert!(report.edp_gain() > 1.0);
        assert!(report.churned.mean_queue_wait <= report.static_baseline.mean_queue_wait);
    }

    #[test]
    fn defragmentation_cuts_queue_wait_under_fragmenting_churn() {
        // Eight 2-NC requests fill the pool; two depart after round 0,
        // leaving non-adjacent 2-NC holes. The ninth request needs 4
        // contiguous NCs: first-fit keeps it queued until the pool
        // drains, defragmentation admits it in round 1.
        let mut nets: Vec<Network> = (0..8).map(|s| sized_net(2, 40 + s)).collect();
        nets.push(sized_net(4, 50));
        let mut specs: Vec<ChurnSpec> = (0..8)
            .map(|i| ChurnSpec::new(0, if i == 0 || i == 2 { 1 } else { 4 }))
            .collect();
        specs.push(ChurnSpec::new(0, 1));
        let cfg = SweepConfig::rate(10, 0.7, 11);

        let run = |policy| {
            churn_sweep(
                &nets,
                &specs,
                &samples(),
                &cfg,
                &ResparcConfig::resparc_64(),
                policy,
            )
            .expect("every request fits the pool alone")
        };
        let defrag = run(PackingPolicy::Defragment);
        let first = run(PackingPolicy::FirstFit);

        assert!(defrag.churned.max_queue_wait < first.churned.max_queue_wait);
        assert!(defrag.churned.rounds <= first.churned.rounds);
        // Identical functional results and total work either way.
        assert_eq!(defrag.per_tenant_accuracy, first.per_tenant_accuracy);
        assert_eq!(
            defrag.churned.tenancy.inferences,
            first.churned.tenancy.inferences
        );
    }

    #[test]
    fn oversized_request_is_rejected_up_front() {
        let nets = vec![Network::random(
            Topology::mlp(144, &[2048, 2048, 10]), // 18 NCs > 16
            1,
            1.0,
        )];
        let specs = vec![ChurnSpec::new(0, 1)];
        let err = churn_sweep(
            &nets,
            &specs,
            &samples(),
            &SweepConfig::rate(5, 0.5, 1),
            &ResparcConfig::resparc_64(),
            PackingPolicy::Defragment,
        )
        .expect_err("cannot ever fit");
        assert!(matches!(err, AdmitError::CapacityExhausted { .. }));
    }
}
