//! Synthetic image datasets standing in for MNIST, SVHN and CIFAR-10.
//!
//! The paper's benchmarks span three recognition applications: digit
//! recognition (MNIST \[20\]), house-number recognition (SVHN \[19\]) and
//! object classification (CIFAR-10 \[21\]). Those datasets are not
//! available offline, so this module synthesises stand-ins that preserve
//! the *statistics the experiments depend on*:
//!
//! * **MNIST-like** — sparse bright strokes on a black background
//!   (~15–25 % foreground). The black background is what gives MLP input
//!   packets their long zero run-lengths (paper §5.3),
//! * **SVHN-like** — digit strokes over a dim textured background
//!   (mostly non-zero pixels),
//! * **CIFAR-like** — dense class-dependent textures (almost no zero
//!   pixels).
//!
//! Classes differ in stroke/texture *placement* (direction in pixel
//! space), so bias-free networks — the only kind the Diehl conversion
//! flow supports — can separate them. Generation is deterministic per
//! `(class, seed)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which real dataset a synthetic set stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Digit recognition: sparse strokes, black background (28×28).
    Mnist,
    /// House-number recognition: strokes over texture (32×32).
    Svhn,
    /// Object classification: dense textures (32×32).
    Cifar10,
}

impl DatasetKind {
    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Mnist => "MNIST",
            DatasetKind::Svhn => "SVHN",
            DatasetKind::Cifar10 => "CIFAR-10",
        }
    }

    /// Native image side length.
    pub fn native_side(self) -> usize {
        match self {
            DatasetKind::Mnist => 28,
            DatasetKind::Svhn | DatasetKind::Cifar10 => 32,
        }
    }

    /// Builds a generator at the native resolution.
    pub fn generator(self, seed: u64) -> SyntheticImages {
        SyntheticImages::new(self, self.native_side(), seed)
    }
}

/// A deterministic synthetic image source.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    kind: DatasetKind,
    side: usize,
    seed: u64,
    /// Per-class stroke templates (segment endpoints in unit coords).
    templates: Vec<Vec<(f32, f32, f32, f32)>>,
    /// Per-class texture frequencies (CIFAR/SVHN backgrounds).
    textures: Vec<(f32, f32, f32)>,
}

/// Number of classes in every synthetic set (matching the real ones).
pub const CLASSES: usize = 10;

impl SyntheticImages {
    /// Creates a generator producing `side × side` grayscale images.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8` (too small to carry class structure).
    pub fn new(kind: DatasetKind, side: usize, seed: u64) -> Self {
        assert!(side >= 8, "image side must be at least 8, got {side}");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let templates = (0..CLASSES)
            .map(|_| {
                let segments = 3 + (rng.random_range(0..3u32) as usize);
                (0..segments)
                    .map(|_| {
                        (
                            rng.random_range(0.1..0.9f32),
                            rng.random_range(0.1..0.9f32),
                            rng.random_range(0.1..0.9f32),
                            rng.random_range(0.1..0.9f32),
                        )
                    })
                    .collect()
            })
            .collect();
        let textures = (0..CLASSES)
            .map(|_| {
                (
                    rng.random_range(1.0..4.5f32),
                    rng.random_range(1.0..4.5f32),
                    rng.random_range(0.0..std::f32::consts::PI),
                )
            })
            .collect();
        Self {
            kind,
            side,
            seed,
            templates,
            textures,
        }
    }

    /// The dataset being imitated.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Pixels per image.
    pub fn pixels(&self) -> usize {
        self.side * self.side
    }

    /// Generates sample `index` of class `class` (intensities in
    /// `[0, 1]`). Deterministic in `(class, index, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= CLASSES`.
    pub fn sample(&self, class: usize, index: u64) -> Vec<f32> {
        assert!(class < CLASSES, "class {class} out of range");
        let mut rng = StdRng::seed_from_u64(crate::seed::stream_seed(
            crate::seed::stream_seed(self.seed, class as u64),
            index,
        ));
        let s = self.side;
        let mut img = vec![0.0f32; s * s];

        // Background.
        match self.kind {
            DatasetKind::Mnist => {} // black
            DatasetKind::Svhn => {
                for v in &mut img {
                    *v = 0.15 + 0.15 * rng.random::<f32>();
                }
            }
            DatasetKind::Cifar10 => {
                let (fx, fy, phase) = self.textures[class];
                for y in 0..s {
                    for x in 0..s {
                        let t = (fx * x as f32 / s as f32 * std::f32::consts::TAU
                            + fy * y as f32 / s as f32 * std::f32::consts::TAU
                            + phase)
                            .sin();
                        img[y * s + x] =
                            (0.45 + 0.3 * t + 0.15 * rng.random::<f32>()).clamp(0.0, 1.0);
                    }
                }
            }
        }

        // Strokes (class identity) with per-sample jitter.
        if self.kind != DatasetKind::Cifar10 {
            let jx: f32 = rng.random_range(-0.06..0.06);
            let jy: f32 = rng.random_range(-0.06..0.06);
            for &(x0, y0, x1, y1) in &self.templates[class] {
                let steps = 2 * s;
                for k in 0..=steps {
                    let t = k as f32 / steps as f32;
                    let x = ((x0 + (x1 - x0) * t + jx) * s as f32) as isize;
                    let y = ((y0 + (y1 - y0) * t + jy) * s as f32) as isize;
                    for (dx, dy) in [(0, 0), (1, 0), (0, 1)] {
                        let (px, py) = (x + dx, y + dy);
                        if px >= 0 && py >= 0 && (px as usize) < s && (py as usize) < s {
                            let v = &mut img[py as usize * s + px as usize];
                            *v = (0.75 + 0.25 * rng.random::<f32>()).max(*v);
                        }
                    }
                }
            }
        } else {
            // CIFAR classes get a bright patch whose location is
            // class-specific (directional separation).
            let cx = (class % 5) as f32 / 5.0 + 0.1;
            let cy = (class / 5) as f32 / 2.0 + 0.2;
            let r = s as f32 * 0.18;
            for y in 0..s {
                for x in 0..s {
                    let dx = x as f32 - cx * s as f32;
                    let dy = y as f32 - cy * s as f32;
                    if dx * dx + dy * dy < r * r {
                        img[y * s + x] = (img[y * s + x] + 0.35).min(1.0);
                    }
                }
            }
        }
        img
    }

    /// Generates a balanced labelled set of `n` samples.
    pub fn labelled_set(&self, n: usize, offset: u64) -> Vec<(Vec<f32>, usize)> {
        (0..n)
            .map(|i| {
                let class = i % CLASSES;
                (self.sample(class, offset + (i / CLASSES) as u64), class)
            })
            .collect()
    }

    /// Mean fraction of non-zero pixels over a probe set — the foreground
    /// statistic behind the event-driven results.
    pub fn foreground_fraction(&self, probes: usize) -> f64 {
        let set = self.labelled_set(probes.max(1), 10_000);
        let total: usize = set.iter().map(|(x, _)| x.len()).sum();
        let nonzero: usize = set
            .iter()
            .map(|(x, _)| x.iter().filter(|&&v| v > 0.02).count())
            .sum();
        nonzero as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = DatasetKind::Mnist.generator(1);
        assert_eq!(g.sample(3, 7), g.sample(3, 7));
        assert_ne!(g.sample(3, 7), g.sample(3, 8));
        assert_ne!(g.sample(3, 7), g.sample(4, 7));
    }

    #[test]
    fn intensities_in_unit_range() {
        for kind in [DatasetKind::Mnist, DatasetKind::Svhn, DatasetKind::Cifar10] {
            let g = kind.generator(2);
            for class in 0..CLASSES {
                let img = g.sample(class, 0);
                assert_eq!(img.len(), g.pixels());
                assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn mnist_is_sparse_cifar_is_dense() {
        let mnist = DatasetKind::Mnist.generator(3).foreground_fraction(20);
        let svhn = DatasetKind::Svhn.generator(3).foreground_fraction(20);
        let cifar = DatasetKind::Cifar10.generator(3).foreground_fraction(20);
        assert!(mnist < 0.35, "MNIST foreground {mnist}");
        assert!(svhn > 0.9, "SVHN foreground {svhn}");
        assert!(cifar > 0.9, "CIFAR foreground {cifar}");
    }

    #[test]
    fn labelled_set_is_balanced() {
        let set = DatasetKind::Svhn.generator(5).labelled_set(40, 0);
        let per_class = set.iter().filter(|(_, y)| *y == 0).count();
        assert_eq!(per_class, 4);
        assert_eq!(set.len(), 40);
    }

    #[test]
    fn scaled_down_generation_works() {
        let g = SyntheticImages::new(DatasetKind::Mnist, 16, 9);
        assert_eq!(g.sample(0, 0).len(), 256);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean per-class images must differ pixel-wise (directional
        // separability proxy).
        let g = DatasetKind::Mnist.generator(11);
        let mean = |c: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; g.pixels()];
            for i in 0..8 {
                for (a, v) in acc.iter_mut().zip(g.sample(c, i)) {
                    *a += v / 8.0;
                }
            }
            acc
        };
        let m0 = mean(0);
        let m1 = mean(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "class means too close: {dist}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_class_panics() {
        let g = DatasetKind::Mnist.generator(0);
        let _ = g.sample(10, 0);
    }
}
